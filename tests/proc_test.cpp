#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "proc/process.hpp"
#include "proc/services.hpp"
#include "proc/world.hpp"

namespace ps::proc {
namespace {

// ------------------------------------------------------------- services ----

struct FakeServer {
  int id = 0;
};

TEST(ServiceDirectory, BindAndResolve) {
  ServiceDirectory dir;
  auto server = std::make_shared<FakeServer>();
  server->id = 7;
  dir.bind<FakeServer>("kv://host:6379", server);
  EXPECT_EQ(dir.resolve<FakeServer>("kv://host:6379")->id, 7);
  EXPECT_TRUE(dir.contains("kv://host:6379"));
}

TEST(ServiceDirectory, ResolveMissingThrows) {
  ServiceDirectory dir;
  EXPECT_THROW(dir.resolve<FakeServer>("nope"), NotRegisteredError);
  EXPECT_EQ(dir.try_resolve<FakeServer>("nope"), nullptr);
}

TEST(ServiceDirectory, TypeMismatchThrows) {
  ServiceDirectory dir;
  dir.bind<FakeServer>("addr", std::make_shared<FakeServer>());
  EXPECT_THROW(dir.resolve<std::string>("addr"), NotRegisteredError);
  EXPECT_EQ(dir.try_resolve<std::string>("addr"), nullptr);
}

TEST(ServiceDirectory, RebindReplaces) {
  ServiceDirectory dir;
  auto a = std::make_shared<FakeServer>();
  a->id = 1;
  auto b = std::make_shared<FakeServer>();
  b->id = 2;
  dir.bind<FakeServer>("addr", a);
  dir.bind<FakeServer>("addr", b);
  EXPECT_EQ(dir.resolve<FakeServer>("addr")->id, 2);
}

TEST(ServiceDirectory, UnbindRemoves) {
  ServiceDirectory dir;
  dir.bind<FakeServer>("addr", std::make_shared<FakeServer>());
  dir.unbind("addr");
  EXPECT_FALSE(dir.contains("addr"));
  dir.unbind("addr");  // idempotent
}

TEST(ServiceDirectory, AddressesSorted) {
  ServiceDirectory dir;
  dir.bind<FakeServer>("b", std::make_shared<FakeServer>());
  dir.bind<FakeServer>("a", std::make_shared<FakeServer>());
  EXPECT_EQ(dir.addresses(), (std::vector<std::string>{"a", "b"}));
}

// ---------------------------------------------------------------- world ----

TEST(World, MakeLocalHasMainProcess) {
  auto world = World::make_local();
  Process& main = world->process("main");
  EXPECT_EQ(main.host(), "localhost");
  EXPECT_EQ(&main.world(), world.get());
}

TEST(World, SpawnRequiresKnownHost) {
  auto world = World::make_local();
  EXPECT_THROW(world->spawn("p", "mars"), NotRegisteredError);
}

TEST(World, SpawnRejectsDuplicateName) {
  auto world = World::make_local();
  world->spawn("p", "localhost");
  EXPECT_THROW(world->spawn("p", "localhost"), NotRegisteredError);
}

TEST(World, UnknownProcessThrows) {
  auto world = World::make_local();
  EXPECT_THROW(world->process("ghost"), NotRegisteredError);
}

// -------------------------------------------------------------- process ----

struct Counter {
  int value = 0;
};

TEST(Process, LocalSlotsAreProcessIsolated) {
  auto world = World::make_local();
  Process& a = world->spawn("a", "localhost");
  Process& b = world->spawn("b", "localhost");
  a.local<Counter>().value = 10;
  b.local<Counter>().value = 20;
  EXPECT_EQ(a.local<Counter>().value, 10);
  EXPECT_EQ(b.local<Counter>().value, 20);
}

TEST(Process, LocalSlotPersistsAcrossCalls) {
  auto world = World::make_local();
  Process& p = world->spawn("p", "localhost");
  p.local<Counter>().value = 5;
  EXPECT_EQ(p.local<Counter>().value, 5);
}

TEST(Process, CurrentDefaultsToMainOfDefaultWorld) {
  Process& p = current_process();
  EXPECT_EQ(p.name(), "main");
}

TEST(Process, ScopeSwitchesCurrent) {
  auto world = World::make_local();
  Process& p = world->spawn("worker", "localhost");
  {
    ProcessScope scope(p);
    EXPECT_EQ(current_process().name(), "worker");
    {
      Process& q = world->spawn("nested", "localhost");
      ProcessScope inner(q);
      EXPECT_EQ(current_process().name(), "nested");
    }
    EXPECT_EQ(current_process().name(), "worker");
  }
  EXPECT_EQ(current_process().name(), "main");
}

TEST(Process, ScopeIsPerThread) {
  auto world = World::make_local();
  Process& p = world->spawn("worker", "localhost");
  ProcessScope scope(p);
  std::string other_thread_process;
  std::thread t([&] { other_thread_process = current_process().name(); });
  t.join();
  EXPECT_EQ(current_process().name(), "worker");
  EXPECT_EQ(other_thread_process, "main");
}

TEST(Process, WorldAccessors) {
  auto world = World::make_local();
  Process& p = world->spawn("p", "localhost");
  EXPECT_NO_THROW(p.world().fabric().host("localhost"));
  EXPECT_NO_THROW(p.world().services());
}

TEST(Process, ScopeInstallsScopedRegistryWhenWorldOptsIn) {
  auto world = World::make_local();
  Process& a = world->spawn("scoped-a", "localhost");
  Process& b = world->spawn("scoped-b", "localhost");

  // Default: scoping off — entering a scope leaves the ambient registry
  // global (zero-cost ambient fast path everywhere).
  {
    ProcessScope scope(a);
    EXPECT_EQ(&obs::MetricsRegistry::ambient(), &obs::MetricsRegistry::global());
  }

  world->set_metrics_scoping(true);
  {
    ProcessScope outer(a);
    EXPECT_EQ(&obs::MetricsRegistry::ambient(), &a.metrics());
    obs::MetricsRegistry::ambient().counter("scoped.ops").inc();
    {
      // Nested scopes stack: inner process's registry while inside, outer's
      // again on exit.
      ProcessScope inner(b);
      EXPECT_EQ(&obs::MetricsRegistry::ambient(), &b.metrics());
    }
    EXPECT_EQ(&obs::MetricsRegistry::ambient(), &a.metrics());
  }
  // Outside any scope the ambient registry is global again, and the scoped
  // record landed in the process's registry, not the global one.
  EXPECT_EQ(&obs::MetricsRegistry::ambient(), &obs::MetricsRegistry::global());
  EXPECT_EQ(a.metrics().counter("scoped.ops").value(), 1u);
  ASSERT_NE(a.try_metrics(), nullptr);
  EXPECT_EQ(b.try_metrics()->counter("scoped.ops").value(), 0u);
  world->set_metrics_scoping(false);
}

}  // namespace
}  // namespace ps::proc
