// Data-flow proxies (paper section 6 future work): consumers hold proxies
// to objects that do not exist yet; resolution blocks (polling in virtual
// time) until the producer fulfils the future, as in Id's I-structures.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "connectors/endpoint.hpp"
#include "connectors/file.hpp"
#include "connectors/local.hpp"
#include "connectors/redis.hpp"
#include "core/store.hpp"
#include "endpoint/endpoint.hpp"
#include "kv/server.hpp"
#include "proc/world.hpp"
#include "relay/relay.hpp"
#include "sim/vtime.hpp"

namespace ps::core {
namespace {

namespace fs = std::filesystem;

class DataflowTest : public ::testing::Test {
 protected:
  DataflowTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("site", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().add_host("host", "site");
    producer_ = &world_->spawn("producer", "host");
    consumer_ = &world_->spawn("consumer", "host");
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* producer_ = nullptr;
  proc::Process* consumer_ = nullptr;
};

TEST_F(DataflowTest, FulfilledFutureResolves) {
  proc::ProcessScope scope(*producer_);
  auto store = std::make_shared<Store>(
      "df1", std::make_shared<connectors::LocalConnector>());
  register_store(store);
  auto future = store->make_future<std::string>();
  EXPECT_FALSE(future.proxy.resolved());
  store->fulfill(future.key, std::string("written"));
  EXPECT_EQ(*future.proxy, "written");
}

TEST_F(DataflowTest, ReaderBlocksUntilWriterWrites) {
  proc::ProcessScope scope(*producer_);
  auto store = std::make_shared<Store>(
      "df2", std::make_shared<connectors::LocalConnector>());
  register_store(store);
  auto future = store->make_future<int>(/*poll_interval_s=*/0.001,
                                        /*max_polls=*/100000);

  std::thread writer([&] {
    proc::ProcessScope writer_scope(*producer_);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    store->fulfill(future.key, 42);
  });
  // The reader starts before the write happens and blocks until it does.
  EXPECT_EQ(*future.proxy, 42);
  writer.join();
}

TEST_F(DataflowTest, PollBudgetExhaustionThrows) {
  proc::ProcessScope scope(*producer_);
  auto store = std::make_shared<Store>(
      "df3", std::make_shared<connectors::LocalConnector>());
  register_store(store);
  auto future = store->make_future<int>(/*poll_interval_s=*/0.001,
                                        /*max_polls=*/3);
  EXPECT_THROW(future.proxy.resolve(), ProxyResolutionError);
}

TEST_F(DataflowTest, PollingChargesVirtualTime) {
  proc::ProcessScope scope(*producer_);
  auto store = std::make_shared<Store>(
      "df4", std::make_shared<connectors::LocalConnector>());
  register_store(store);
  auto future = store->make_future<int>(/*poll_interval_s=*/0.5,
                                        /*max_polls=*/4);
  sim::VtimeScope vt;
  EXPECT_THROW(future.proxy.resolve(), ProxyResolutionError);
  EXPECT_NEAR(vt.elapsed(), 4 * 0.5, 1e-6);
}

TEST_F(DataflowTest, FutureCrossesProcessBoundary) {
  auto store = [&] {
    proc::ProcessScope scope(*producer_);
    auto s = std::make_shared<Store>(
        "df5", std::make_shared<connectors::LocalConnector>());
    register_store(s);
    return s;
  }();
  Store::Future<std::string> future = [&] {
    proc::ProcessScope scope(*producer_);
    return store->make_future<std::string>();
  }();
  const Bytes wire = serde::to_bytes(future.proxy);

  // The consumer receives the proxy before the object exists...
  std::thread consumer_thread([&] {
    proc::ProcessScope scope(*consumer_);
    auto proxy = serde::from_bytes<Proxy<std::string>>(wire);
    EXPECT_EQ(*proxy, "late");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    proc::ProcessScope scope(*producer_);
    store->fulfill(future.key, std::string("late"));
  }
  consumer_thread.join();
}

TEST_F(DataflowTest, WorksOverRedisAndFileAndEndpoint) {
  kv::KvServer::start(*world_, "host", "df");
  relay::RelayServer::start(*world_, "host", "df-relay");
  endpoint::Endpoint::start(*world_, "host", "df-ep", "relay://host/df-relay");
  const fs::path dir =
      fs::temp_directory_path() / ("ps_df_" + Uuid::random().str());

  proc::ProcessScope scope(*producer_);
  const std::vector<std::shared_ptr<Connector>> connectors = {
      std::make_shared<connectors::RedisConnector>(kv::kv_address("host",
                                                                  "df")),
      std::make_shared<connectors::FileConnector>(dir),
      std::make_shared<connectors::EndpointConnector>(
          std::vector<std::string>{endpoint::endpoint_address("host",
                                                              "df-ep")}),
  };
  int n = 0;
  for (const auto& connector : connectors) {
    auto store = std::make_shared<Store>("df-multi-" + std::to_string(n++),
                                         connector);
    register_store(store);
    auto future = store->make_future<int>();
    store->fulfill(future.key, 7);
    EXPECT_EQ(*future.proxy, 7) << connector->type();
  }
  fs::remove_all(dir);
}

TEST_F(DataflowTest, UnsupportedConnectorsReportClearly) {
  // Connectors without addressed writes refuse future creation up front.
  struct Minimal : Connector {
    std::string type() const override { return "minimal"; }
    ConnectorConfig config() const override { return {"minimal", {}}; }
    ConnectorTraits traits() const override { return {}; }
    Key put(BytesView) override { return Key{"x", {}}; }
    std::optional<Bytes> get(const Key&) override { return std::nullopt; }
    bool exists(const Key&) override { return false; }
    void evict(const Key&) override {}
  };
  proc::ProcessScope scope(*producer_);
  auto store = std::make_shared<Store>("df-min", std::make_shared<Minimal>());
  EXPECT_THROW(store->make_future<int>(), ConnectorError);
  EXPECT_THROW(store->fulfill(Key{"x", {}}, 1), ConnectorError);
}

}  // namespace
}  // namespace ps::core
