#include <gtest/gtest.h>

#include <cmath>

#include "ml/data.hpp"
#include "ml/layers.hpp"
#include "ml/model.hpp"
#include "ml/tensor.hpp"
#include "serde/serde.hpp"

namespace ps::ml {
namespace {

// --------------------------------------------------------------- tensor ----

TEST(Tensor, ZerosShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::size_t i = 0; i < 12; ++i) t.at(i) = static_cast<float>(i);
  t.reshape({3, 4});
  EXPECT_EQ(t.at(2, 3), 11.0f);
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({2, 2});
  Tensor b({2, 2});
  for (std::size_t i = 0; i < 4; ++i) {
    a.at(i) = static_cast<float>(i);
    b.at(i) = 1.0f;
  }
  a += b;
  EXPECT_EQ(a.at(3), 4.0f);
  a -= b;
  EXPECT_EQ(a.at(3), 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a.at(3), 6.0f);
  Tensor c({3, 1});
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(Tensor, MatmulKnownValues) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  for (std::size_t i = 0; i < 6; ++i) {
    a.at(i) = static_cast<float>(i + 1);
    b.at(i) = static_cast<float>(i + 7);
  }
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(Tensor, MatmulTransposedVariantsAgree) {
  Rng rng(5);
  const Tensor a = Tensor::randn({4, 6}, rng, 1.0f);
  const Tensor b = Tensor::randn({6, 3}, rng, 1.0f);
  const Tensor c = matmul(a, b);
  // matmul_bt(a, b') with b' = b^T (3x6) must equal c.
  Tensor bt({3, 6});
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 3; ++j) bt.at(j, i) = b.at(i, j);
  }
  const Tensor c2 = matmul_bt(a, bt);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.at(i), c2.at(i), 1e-4f);
  }
  // matmul_at(a', b) with a' = a^T must equal c as well.
  Tensor at({6, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 6; ++j) at.at(j, i) = a.at(i, j);
  }
  const Tensor c3 = matmul_at(at, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.at(i), c3.at(i), 1e-4f);
  }
}

TEST(Tensor, MatmulShapeChecks) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Tensor, SerdeRoundTrip) {
  Rng rng(2);
  const Tensor t = Tensor::randn({3, 5}, rng, 1.0f);
  EXPECT_EQ(serde::from_bytes<Tensor>(serde::to_bytes(t)), t);
}

// --------------------------------------------------------------- layers ----

TEST(Layers, DenseForwardMatchesManual) {
  Rng rng(1);
  Dense dense(2, 2, rng);
  // Overwrite weights for a deterministic check.
  Tensor* w = dense.parameters()[0];
  Tensor* b = dense.parameters()[1];
  w->at(0, 0) = 1.0f;
  w->at(0, 1) = 2.0f;
  w->at(1, 0) = 3.0f;
  w->at(1, 1) = 4.0f;
  b->at(0) = 0.5f;
  b->at(1) = -0.5f;
  Tensor x({1, 2});
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  const Tensor y = dense.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 + 6 + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2 + 8 - 0.5f);
}

TEST(Layers, DenseGradientMatchesFiniteDifference) {
  Rng rng(3);
  Dense dense(4, 3, rng);
  Tensor x = Tensor::randn({2, 4}, rng, 1.0f);
  const std::vector<std::size_t> labels{1, 2};

  // Analytic gradient of loss w.r.t. W[0][0].
  dense.zero_gradients();
  Tensor out = dense.forward(x);
  auto [loss, grad] = softmax_cross_entropy(out, labels);
  dense.backward(grad);
  const float analytic = dense.gradients()[0]->at(0, 0);

  const float eps = 1e-3f;
  Tensor* w = dense.parameters()[0];
  w->at(0, 0) += eps;
  auto [loss_plus, g1] = softmax_cross_entropy(dense.forward(x), labels);
  w->at(0, 0) -= 2 * eps;
  auto [loss_minus, g2] = softmax_cross_entropy(dense.forward(x), labels);
  const float numeric = (loss_plus - loss_minus) / (2 * eps);
  EXPECT_NEAR(analytic, numeric, 5e-3f);
}

TEST(Layers, ReluZeroesNegativesAndGradients) {
  ReLU relu;
  Tensor x({1, 4});
  x.at(0) = -1.0f;
  x.at(1) = 2.0f;
  x.at(2) = 0.0f;
  x.at(3) = -3.0f;
  const Tensor y = relu.forward(x);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(1), 2.0f);
  Tensor g({1, 4});
  for (std::size_t i = 0; i < 4; ++i) g.at(i) = 1.0f;
  const Tensor gx = relu.backward(g);
  EXPECT_EQ(gx.at(0), 0.0f);
  EXPECT_EQ(gx.at(1), 1.0f);
  EXPECT_EQ(gx.at(2), 0.0f);
}

TEST(Layers, FlattenRoundTrips) {
  Flatten flatten;
  Tensor x({2, 3, 4, 4});
  const Tensor y = flatten.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 48}));
  const Tensor back = flatten.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(Layers, Conv2DIdentityKernel) {
  Rng rng(4);
  Conv2D conv(1, 1, 3, 5, 5, rng);
  Tensor* w = conv.parameters()[0];
  Tensor* b = conv.parameters()[1];
  std::fill(w->values().begin(), w->values().end(), 0.0f);
  w->at(4) = 1.0f;  // center tap of the 3x3 kernel
  b->at(0) = 0.0f;
  const Tensor x = Tensor::randn({1, 1, 5, 5}, rng, 1.0f);
  const Tensor y = conv.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y.at(i), x.at(i), 1e-5f);
  }
}

TEST(Layers, Conv2DRequiresOddKernel) {
  Rng rng(4);
  EXPECT_THROW(Conv2D(1, 1, 4, 5, 5, rng), std::invalid_argument);
}

TEST(Layers, MaxPoolSelectsWindowMaxima) {
  MaxPool2D pool;
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x.at(i) = static_cast<float>(i);
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 2, 2}));
  EXPECT_EQ(y.at(0), 5.0f);   // max of {0,1,4,5}
  EXPECT_EQ(y.at(1), 7.0f);   // max of {2,3,6,7}
  EXPECT_EQ(y.at(2), 13.0f);
  EXPECT_EQ(y.at(3), 15.0f);
}

TEST(Layers, MaxPoolBackwardRoutesGradToArgmax) {
  MaxPool2D pool;
  Tensor x({1, 1, 2, 2});
  x.at(0) = 1.0f;
  x.at(1) = 9.0f;  // window max
  x.at(2) = 3.0f;
  x.at(3) = 2.0f;
  pool.forward(x);
  Tensor g({1, 1, 1, 1});
  g.at(0) = 2.5f;
  const Tensor gx = pool.backward(g);
  EXPECT_EQ(gx.at(0), 0.0f);
  EXPECT_EQ(gx.at(1), 2.5f);
  EXPECT_EQ(gx.at(2), 0.0f);
}

TEST(Layers, MaxPoolRejectsOddDimensions) {
  MaxPool2D pool;
  Tensor x({1, 1, 3, 4});
  EXPECT_THROW(pool.forward(x), std::invalid_argument);
}

TEST(Layers, CnnWithPoolingTrains) {
  // A genuine conv -> pool -> dense pipeline learns the synthetic set.
  Rng rng(21);
  const Dataset train = fashion_like(64, rng);
  Rng init(22);
  Model model;
  model.add(std::make_unique<Conv2D>(1, 4, 3, 28, 28, init));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2D>());
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(4 * 14 * 14, 10, init));
  float first = 0, last = 0;
  for (int step = 0; step < 30; ++step) {
    model.zero_gradients();
    const Tensor out = model.forward(train.images);
    auto [loss, grad] = softmax_cross_entropy(out, train.labels);
    model.backward(grad);
    model.sgd_step(0.05f);
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
  // Architecture round-trips through the spec factory.
  Model restored = Model::deserialize(model.serialize());
  const Tensor a = model.forward(train.images);
  const Tensor b = restored.forward(train.images);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a.at(i), b.at(i));
}

TEST(Layers, SpecRoundTripsThroughFactory) {
  Rng rng(6);
  Dense dense(8, 4, rng);
  auto rebuilt = layer_from_spec(dense.spec(), rng);
  EXPECT_EQ(rebuilt->spec(), dense.spec());
  Conv2D conv(2, 3, 3, 8, 8, rng);
  EXPECT_EQ(layer_from_spec(conv.spec(), rng)->spec(), conv.spec());
}

// ---------------------------------------------------------------- model ----

TEST(Model, TrainingReducesLoss) {
  Rng rng(7);
  Model model;
  model.add(std::make_unique<Dense>(8, 16, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(16, 3, rng));

  // Learnable toy problem: class = argmax of first 3 features.
  Tensor x = Tensor::randn({64, 8}, rng, 1.0f);
  std::vector<std::size_t> labels(64);
  for (std::size_t i = 0; i < 64; ++i) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < 3; ++j) {
      if (x.at(i, j) > x.at(i, best)) best = j;
    }
    labels[i] = best;
  }
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 200; ++step) {
    model.zero_gradients();
    const Tensor out = model.forward(x);
    auto [loss, grad] = softmax_cross_entropy(out, labels);
    model.backward(grad);
    model.sgd_step(0.1f);
    if (step == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, 0.5f * first_loss);
  EXPECT_GT(accuracy(model.forward(x), labels), 0.8);
}

TEST(Model, StateRoundTripPreservesOutputs) {
  Rng rng(8);
  Model model;
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(16, 8, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(8, 4, rng));
  const Tensor x = Tensor::randn({3, 1, 4, 4}, rng, 1.0f);
  const Tensor y = model.forward(x);
  Model restored = Model::deserialize(model.serialize());
  const Tensor y2 = restored.forward(x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_FLOAT_EQ(y.at(i), y2.at(i));
  }
}

TEST(Model, SetStateRejectsMismatchedArchitecture) {
  Rng rng(9);
  Model a;
  a.add(std::make_unique<Dense>(4, 4, rng));
  Model b;
  b.add(std::make_unique<Dense>(4, 5, rng));
  EXPECT_THROW(b.set_state(a.state()), std::invalid_argument);
}

TEST(Model, ParameterCountMatchesArchitecture) {
  Rng rng(10);
  Model model;
  model.add(std::make_unique<Dense>(10, 20, rng));  // 10*20 + 20
  model.add(std::make_unique<Dense>(20, 5, rng));   // 20*5 + 5
  EXPECT_EQ(model.parameter_count(), 200u + 20u + 100u + 5u);
}

TEST(Model, FederatedAverageAveragesWeights) {
  Rng rng(11);
  Model a;
  a.add(std::make_unique<Dense>(2, 2, rng));
  Model b = Model::from_state(a.state());
  // Shift b's weights by +2.
  ModelState bs = b.state();
  for (Tensor& w : bs.weights) {
    for (float& v : w.values()) v += 2.0f;
  }
  const ModelState avg = federated_average({a.state(), bs});
  for (std::size_t w = 0; w < avg.weights.size(); ++w) {
    for (std::size_t i = 0; i < avg.weights[w].size(); ++i) {
      EXPECT_NEAR(avg.weights[w].at(i), a.state().weights[w].at(i) + 1.0f,
                  1e-5f);
    }
  }
}

TEST(Model, FederatedAverageRejectsMismatch) {
  Rng rng(12);
  Model a;
  a.add(std::make_unique<Dense>(2, 2, rng));
  Model b;
  b.add(std::make_unique<Dense>(2, 3, rng));
  EXPECT_THROW(federated_average({a.state(), b.state()}),
               std::invalid_argument);
  EXPECT_THROW(federated_average({}), std::invalid_argument);
}

TEST(Model, MseLossGradient) {
  Tensor out({2, 1});
  out.at(0, 0) = 1.0f;
  out.at(1, 0) = 3.0f;
  auto [loss, grad] = mse_loss(out, {0.0f, 3.0f});
  EXPECT_FLOAT_EQ(loss, 0.5f);  // (1 + 0) / 2
  EXPECT_FLOAT_EQ(grad.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(grad.at(1, 0), 0.0f);
}

// ----------------------------------------------------------------- data ----

TEST(Data, FashionLikeShapesAndLabels) {
  Rng rng(13);
  const Dataset ds = fashion_like(32, rng);
  EXPECT_EQ(ds.images.shape(), (std::vector<std::size_t>{32, 1, 28, 28}));
  EXPECT_EQ(ds.labels.size(), 32u);
  for (const std::size_t label : ds.labels) EXPECT_LT(label, 10u);
}

TEST(Data, FashionLikeIsLearnable) {
  Rng rng(14);
  const Dataset train = fashion_like(256, rng);
  Rng init(15);
  Model model;
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(784, 32, init));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(32, 10, init));
  for (int step = 0; step < 100; ++step) {
    model.zero_gradients();
    const Tensor out = model.forward(train.images);
    auto [loss, grad] = softmax_cross_entropy(out, train.labels);
    model.backward(grad);
    model.sgd_step(0.1f);
  }
  // Much better than the 10% random baseline.
  EXPECT_GT(accuracy(model.forward(train.images), train.labels), 0.5);
}

TEST(Data, MicrographHasSeededDefects) {
  Rng rng(16);
  const Micrograph m = micrograph(64, 64, 5, rng);
  EXPECT_EQ(m.image.shape(), (std::vector<std::size_t>{1, 1, 64, 64}));
  EXPECT_GT(m.defect_count, 0u);
  EXPECT_EQ(m.defect_mask.size(), 64u * 64u);
}

TEST(Data, MoleculesDeterministicIp) {
  Rng rng(17);
  const auto mols = molecules(10, 8, rng);
  for (const Molecule& mol : mols) {
    EXPECT_FLOAT_EQ(simulate_ionization_potential(mol.features),
                    mol.ionization_potential);
  }
}

}  // namespace
}  // namespace ps::ml
