// Concurrency stress tests: the Store, proxies, and the FaaS fabric under
// many threads — the regimes the paper's federated deployments live in.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "connectors/local.hpp"
#include "connectors/redis.hpp"
#include "core/refcount.hpp"
#include "core/store.hpp"
#include "faas/cloud.hpp"
#include "faas/executor.hpp"
#include "faas/registry.hpp"
#include "kv/server.hpp"
#include "proc/world.hpp"
#include "serde/serde.hpp"

namespace ps {
namespace {

class StressTest : public ::testing::Test {
 protected:
  StressTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("site", net::hpc_interconnect(1e-5, 10e9));
    world_->fabric().add_host("host", "site");
    main_ = &world_->spawn("main-proc", "host");
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* main_ = nullptr;
};

TEST_F(StressTest, StoreConcurrentPutGetEvict) {
  proc::ProcessScope scope(*main_);
  auto store = std::make_shared<core::Store>(
      "stress-store", std::make_shared<connectors::LocalConnector>());
  constexpr int kThreads = 8;
  constexpr int kOps = 100;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      proc::ProcessScope thread_scope(*main_);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(t) * 10'000 + static_cast<std::uint64_t>(i);
        const core::Key key = store->put(pattern_bytes(256, seed));
        const auto value = store->get<Bytes>(key);
        if (!value || !check_pattern(*value, seed)) failures.fetch_add(1);
        store->evict(key);
        if (store->exists(key)) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store->metrics().puts, kThreads * kOps);
}

TEST_F(StressTest, ManyThreadsShareOneProxy) {
  proc::ProcessScope scope(*main_);
  auto store = std::make_shared<core::Store>(
      "stress-proxy", std::make_shared<connectors::LocalConnector>());
  core::register_store(store);
  auto proxy = store->proxy(pattern_bytes(100'000, 9));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      proc::ProcessScope thread_scope(*main_);
      if (!check_pattern(*proxy, 9)) failures.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(StressTest, ConcurrentAsyncResolves) {
  proc::ProcessScope scope(*main_);
  auto store = std::make_shared<core::Store>(
      "stress-async", std::make_shared<connectors::LocalConnector>());
  core::register_store(store);
  std::vector<core::Proxy<Bytes>> proxies;
  for (std::uint64_t i = 0; i < 32; ++i) {
    proxies.push_back(store->proxy(pattern_bytes(10'000, i)));
  }
  for (auto& proxy : proxies) proxy.resolve_async();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::uint64_t i = 0; i < proxies.size(); ++i) {
    threads.emplace_back([&, i] {
      proc::ProcessScope thread_scope(*main_);
      if (!check_pattern(*proxies[i], i)) failures.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(StressTest, RefcountedProxyUnderContention) {
  proc::ProcessScope scope(*main_);
  auto store = std::make_shared<core::Store>(
      "stress-rc", std::make_shared<connectors::LocalConnector>());
  core::register_store(store);
  constexpr std::uint32_t kConsumers = 12;
  auto proxy = core::proxy_with_refs(*store, pattern_bytes(5000, 3),
                                     kConsumers);
  const core::Key key = proxy.factory().descriptor()->key;
  const Bytes wire = serde::to_bytes(proxy);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      proc::Process& consumer = world_->spawn(
          "rc-consumer-" + Uuid::random().str(), "host");
      proc::ProcessScope thread_scope(consumer);
      auto p = serde::from_bytes<core::Proxy<Bytes>>(wire);
      if (!check_pattern(*p, 3)) failures.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  proc::ProcessScope check_scope(*main_);
  EXPECT_FALSE(store->connector().exists(key));  // fully consumed
}

TEST_F(StressTest, ManyClientsOneFaasEndpoint) {
  faas::FunctionRegistry::instance().register_function(
      "stress-echo", [](BytesView request) { return Bytes(request); });
  auto cloud = faas::CloudService::start(*world_, "host");
  proc::Process& worker_proc = world_->spawn("faas-worker", "host");
  faas::ComputeEndpoint endpoint(cloud, worker_proc, /*workers=*/4);

  constexpr int kClients = 8;
  constexpr int kTasksEach = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      proc::Process& client = world_->spawn(
          "faas-client-" + std::to_string(c), "host");
      proc::ProcessScope scope(client);
      faas::Executor executor(cloud, endpoint.uuid());
      for (int i = 0; i < kTasksEach; ++i) {
        const Bytes payload = serde::to_bytes(c * 1000 + i);
        if (executor.submit("stress-echo", payload).get() != payload) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  endpoint.stop();
}

TEST_F(StressTest, RedisStoreUnderParallelClients) {
  kv::KvServer::start(*world_, "host", "stress");
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      proc::Process& client = world_->spawn(
          "redis-client-" + std::to_string(t), "host");
      proc::ProcessScope scope(client);
      connectors::RedisConnector connector(kv::kv_address("host", "stress"));
      for (int i = 0; i < 50; ++i) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(t) * 777 + static_cast<std::uint64_t>(i);
        const core::Key key = connector.put(pattern_bytes(300, seed));
        const auto got = connector.get(key);
        if (!got || !check_pattern(*got, seed)) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace ps
