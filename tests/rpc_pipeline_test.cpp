// Tier-2 concurrency tests for the completion-driven wire protocol:
// submitters racing one PipelinedChannel, and vset-pinned double-run
// determinism of a pipelined RPC ladder. Run under TSan via
// -DPS_SANITIZE=thread + `ctest -L tier2`.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "net/channel.hpp"
#include "net/fabric.hpp"
#include "proc/world.hpp"
#include "rpc/rpc.hpp"
#include "rpc/transport.hpp"
#include "sim/resource.hpp"
#include "sim/vtime.hpp"

namespace ps {
namespace {

// Eight threads pipeline onto ONE channel from the same pinned base clock.
// The channel's FIFO lanes must hand every request a distinct, strictly
// increasing completion (in transact order), run each request's handler
// exactly once, and report in-flight depth climbing 1..N (same-issue
// requests never prune each other).
TEST(PipelinedChannelRace, EightSubmittersShareOneChannelFifo) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  constexpr double kBase = 1000.0;
  constexpr double kRequestCost = 1e-4;
  constexpr double kServiceCost = 1e-3;
  constexpr double kResponseCost = 2e-4;

  net::PipelinedChannel channel;
  sim::Resource queue{1};
  std::atomic<int> handled{0};

  std::mutex samples_mu;
  std::vector<net::WireSample> samples;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      sim::vset(kBase);
      for (int i = 0; i < kPerThread; ++i) {
        const net::WireSample sample = channel.transact(
            sim::vnow(), kRequestCost, [&](double arrival) {
              handled.fetch_add(1, std::memory_order_relaxed);
              const double done = queue.schedule(arrival, kServiceCost);
              return std::pair<double, double>{done, kResponseCost};
            });
        std::lock_guard lock(samples_mu);
        samples.push_back(sample);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  constexpr int kTotal = kThreads * kPerThread;
  EXPECT_EQ(handled.load(), kTotal);
  EXPECT_EQ(channel.requests(), static_cast<std::uint64_t>(kTotal));
  ASSERT_EQ(samples.size(), static_cast<std::size_t>(kTotal));

  // depth was assigned under the channel lock in transact order: sorting by
  // it recovers that order, where completions must strictly increase.
  std::sort(samples.begin(), samples.end(),
            [](const net::WireSample& a, const net::WireSample& b) {
              return a.depth < b.depth;
            });
  std::set<double> distinct;
  for (int i = 0; i < kTotal; ++i) {
    EXPECT_EQ(samples[static_cast<std::size_t>(i)].depth,
              static_cast<std::size_t>(i + 1));
    distinct.insert(samples[static_cast<std::size_t>(i)].completion);
    if (i > 0) {
      EXPECT_GT(samples[static_cast<std::size_t>(i)].completion,
                samples[static_cast<std::size_t>(i - 1)].completion);
    }
    EXPECT_GT(samples[static_cast<std::size_t>(i)].completion, kBase);
  }
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kTotal));
}

// A clock regression (VtimeGuard rep isolation, a pool worker reseeded into
// the past) starts a new virtual era: the channel must forget its frontiers
// and behave exactly like a fresh one.
TEST(PipelinedChannelRace, ClockRegressionResetsToFreshChannel) {
  const auto serve = [](double arrival) {
    return std::pair<double, double>{arrival + 1e-3, 2e-4};
  };

  net::PipelinedChannel warm;
  for (int i = 0; i < 4; ++i) warm.transact(100.0, 1e-4, serve);

  net::PipelinedChannel fresh;
  const net::WireSample after_reset = warm.transact(50.0, 1e-4, serve);
  const net::WireSample baseline = fresh.transact(50.0, 1e-4, serve);
  EXPECT_EQ(after_reset.send_start, baseline.send_start);
  EXPECT_EQ(after_reset.arrival, baseline.arrival);
  EXPECT_EQ(after_reset.completion, baseline.completion);
  EXPECT_EQ(after_reset.depth, baseline.depth);
}

// vset-pinned double run of a pipelined RPC ladder: two fully isolated
// worlds, same pinned base clock, must produce bit-identical per-request
// completion vtimes (the determinism contract the blessed baselines and the
// CI double-run gate rely on).
TEST(PipelinedChannelRace, PinnedLadderDoubleRunIsDeterministic) {
  constexpr int kDepth = 16;
  constexpr double kBase = 1000.0;

  const auto run_ladder = [&] {
    std::vector<double> completions;
    std::thread runner([&] {
      proc::World world;
      world.fabric().add_site("hpc", net::rdma_fabric(2e-6, 25e9));
      world.fabric().add_host("hpc-0", "hpc");
      world.fabric().add_host("hpc-1", "hpc");
      proc::Process& client_proc = world.spawn("ladder", "hpc-0");
      auto server = rpc::RpcServer::start(world, "hpc-1", "pipeline-test",
                                          rpc::margo_transport());
      server->register_handler(
          "echo", [](BytesView request) { return Bytes(request); });

      proc::ProcessScope scope(client_proc);
      sim::vset(kBase);
      rpc::RpcClient client(rpc::rpc_address("margo", "hpc-1",
                                             "pipeline-test"));
      const Bytes payload = pattern_bytes(4096, 7);
      std::vector<core::Future<Bytes>> ladder;
      ladder.reserve(kDepth);
      for (int i = 0; i < kDepth; ++i) {
        ladder.push_back(client.call_async("echo", payload));
      }
      for (core::Future<Bytes>& pending : ladder) {
        completions.push_back(pending.done_vtime());
      }
    });
    runner.join();
    return completions;
  };

  const std::vector<double> first = run_ladder();
  const std::vector<double> second = run_ladder();
  ASSERT_EQ(first.size(), static_cast<std::size_t>(kDepth));
  EXPECT_EQ(first, second);  // exact: vtime math is deterministic

  // Per-request stamps are individually meaningful: strictly increasing,
  // all above the pinned base.
  for (int i = 0; i < kDepth; ++i) {
    EXPECT_GT(first[static_cast<std::size_t>(i)], kBase);
    if (i > 0) {
      EXPECT_GT(first[static_cast<std::size_t>(i)],
                first[static_cast<std::size_t>(i - 1)]);
    }
  }
}

}  // namespace
}  // namespace ps
