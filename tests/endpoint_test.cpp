#include <gtest/gtest.h>

#include <filesystem>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "endpoint/datachannel.hpp"
#include "endpoint/endpoint.hpp"
#include "proc/world.hpp"
#include "relay/relay.hpp"
#include "sim/vtime.hpp"

namespace ps::endpoint {
namespace {

namespace fs = std::filesystem;

/// Two NAT'd sites plus a public cloud site hosting the relay — the
/// deployment shape of Figures 3 and 4.
class EndpointTest : public ::testing::Test {
 protected:
  EndpointTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("site-a", net::hpc_interconnect(10e-6, 10e9),
                              /*behind_nat=*/true);
    world_->fabric().add_site("site-b", net::hpc_interconnect(10e-6, 10e9),
                              /*behind_nat=*/true);
    world_->fabric().add_site("cloud", net::hpc_interconnect(50e-6, 10e9));
    world_->fabric().connect_sites("site-a", "site-b",
                                   net::wan_tcp(20e-3, 1.25e9));
    world_->fabric().connect_sites("site-a", "cloud",
                                   net::wan_tcp(15e-3, 1e9));
    world_->fabric().connect_sites("site-b", "cloud",
                                   net::wan_tcp(15e-3, 1e9));
    world_->fabric().add_host("a-login", "site-a");
    world_->fabric().add_host("b-login", "site-b");
    world_->fabric().add_host("relay-host", "cloud");
    client_a_ = &world_->spawn("client-a", "a-login");
    client_b_ = &world_->spawn("client-b", "b-login");
    relay_ = relay::RelayServer::start(*world_, "relay-host", "relay");
  }

  std::shared_ptr<Endpoint> start_endpoint(const std::string& host,
                                           const std::string& name,
                                           EndpointOptions options = {}) {
    return Endpoint::start(*world_, host, name, "relay://relay-host/relay",
                           std::move(options));
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* client_a_ = nullptr;
  proc::Process* client_b_ = nullptr;
  std::shared_ptr<relay::RelayServer> relay_;
};

// ---------------------------------------------------------------- relay ----

TEST_F(EndpointTest, RelayAssignsUuidOnRegistration) {
  auto ep = start_endpoint("a-login", "ep1");
  EXPECT_FALSE(ep->uuid().is_nil());
  EXPECT_TRUE(relay_->is_registered(ep->uuid()));
  EXPECT_EQ(relay_->endpoint_host(ep->uuid()), "a-login");
}

TEST_F(EndpointTest, RelayKeepsPreferredUuid) {
  const Uuid preferred = Uuid::random();
  auto ep = Endpoint::start(*world_, "a-login", "ep2",
                            "relay://relay-host/relay", {}, preferred);
  EXPECT_EQ(ep->uuid(), preferred);
}

TEST_F(EndpointTest, RelayRejectsUnknownTargets) {
  auto ep = start_endpoint("a-login", "ep3");
  relay::RelayMessage msg{.from = ep->uuid(), .to = Uuid::random(),
                          .kind = "offer", .payload = "x", .stamp = 0.0};
  EXPECT_THROW(relay_->forward(msg), ProtocolError);
  relay::RelayMessage msg2{.from = Uuid::random(), .to = ep->uuid(),
                           .kind = "offer", .payload = "x", .stamp = 0.0};
  EXPECT_THROW(relay_->forward(msg2), ProtocolError);
}

TEST_F(EndpointTest, StopUnregistersFromRelay) {
  auto ep = start_endpoint("a-login", "ep4");
  const Uuid id = ep->uuid();
  ep->stop();
  EXPECT_FALSE(relay_->is_registered(id));
  EXPECT_TRUE(ep->stopped());
  EXPECT_THROW(ep->handle(EndpointRequest{.op = "get", .object_id = "x",
                                          .endpoint_id = id, .data = {}}),
               ProtocolError);
}

// ------------------------------------------------------- local requests ----

TEST_F(EndpointTest, SetGetLocalObject) {
  auto ep = start_endpoint("a-login", "ep5");
  proc::ProcessScope scope(*client_a_);
  const Bytes data = pattern_bytes(1000, 7);
  auto set = ep->handle(EndpointRequest{.op = "set", .object_id = "obj",
                                        .endpoint_id = ep->uuid(),
                                        .data = data});
  EXPECT_TRUE(set.ok);
  auto get = ep->handle(EndpointRequest{.op = "get", .object_id = "obj",
                                        .endpoint_id = ep->uuid(),
                                        .data = {}});
  EXPECT_TRUE(get.ok);
  EXPECT_EQ(get.data, data);
}

TEST_F(EndpointTest, ExistsEvictLifecycle) {
  auto ep = start_endpoint("a-login", "ep6");
  proc::ProcessScope scope(*client_a_);
  ep->handle(EndpointRequest{.op = "set", .object_id = "obj",
                             .endpoint_id = ep->uuid(), .data = "x"});
  EXPECT_TRUE(ep->handle(EndpointRequest{.op = "exists", .object_id = "obj",
                                         .endpoint_id = ep->uuid(),
                                         .data = {}})
                  .ok);
  ep->handle(EndpointRequest{.op = "evict", .object_id = "obj",
                             .endpoint_id = ep->uuid(), .data = {}});
  EXPECT_FALSE(ep->handle(EndpointRequest{.op = "exists", .object_id = "obj",
                                          .endpoint_id = ep->uuid(),
                                          .data = {}})
                   .ok);
}

TEST_F(EndpointTest, UnknownOpThrows) {
  auto ep = start_endpoint("a-login", "ep7");
  proc::ProcessScope scope(*client_a_);
  EXPECT_THROW(ep->handle(EndpointRequest{.op = "frobnicate",
                                          .object_id = "x",
                                          .endpoint_id = ep->uuid(),
                                          .data = {}}),
               ProtocolError);
}

TEST_F(EndpointTest, MemoryLimitSpillsToDisk) {
  const fs::path spill =
      fs::temp_directory_path() / ("ps_ep_spill_" + Uuid::random().str());
  EndpointOptions options;
  options.max_memory_bytes = 1500;
  options.spill_dir = spill;
  auto ep = start_endpoint("a-login", "ep8", options);
  proc::ProcessScope scope(*client_a_);
  const Bytes big = pattern_bytes(1000, 1);
  ep->handle(EndpointRequest{.op = "set", .object_id = "in-mem",
                             .endpoint_id = ep->uuid(), .data = big});
  ep->handle(EndpointRequest{.op = "set", .object_id = "spilled",
                             .endpoint_id = ep->uuid(), .data = big});
  EXPECT_EQ(ep->object_count(), 2u);
  EXPECT_EQ(ep->spilled_count(), 1u);
  // Spilled object still readable and evictable.
  auto get = ep->handle(EndpointRequest{.op = "get", .object_id = "spilled",
                                        .endpoint_id = ep->uuid(),
                                        .data = {}});
  EXPECT_EQ(get.data, big);
  ep->handle(EndpointRequest{.op = "evict", .object_id = "spilled",
                             .endpoint_id = ep->uuid(), .data = {}});
  EXPECT_EQ(ep->spilled_count(), 0u);
  fs::remove_all(spill);
}

TEST_F(EndpointTest, FiniteMemoryRequiresSpillDir) {
  EndpointOptions options;
  options.max_memory_bytes = 100;
  EXPECT_THROW(start_endpoint("a-login", "ep9", options), ProtocolError);
}

// ---------------------------------------------------- peering & forward ----

TEST_F(EndpointTest, ForwardedRequestReachesOwningEndpoint) {
  auto ep_a = start_endpoint("a-login", "epA");
  auto ep_b = start_endpoint("b-login", "epB");
  // Producer stores at B.
  {
    proc::ProcessScope scope(*client_b_);
    ep_b->handle(EndpointRequest{.op = "set", .object_id = "obj",
                                 .endpoint_id = ep_b->uuid(),
                                 .data = pattern_bytes(500, 2)});
  }
  // Consumer asks its local endpoint A, which forwards to B.
  proc::ProcessScope scope(*client_a_);
  auto get = ep_a->handle(EndpointRequest{.op = "get", .object_id = "obj",
                                          .endpoint_id = ep_b->uuid(),
                                          .data = {}});
  ASSERT_TRUE(get.ok);
  EXPECT_TRUE(check_pattern(*get.data, 2));
}

TEST_F(EndpointTest, PeerConnectionEstablishedOnceAndReused) {
  auto ep_a = start_endpoint("a-login", "epC");
  auto ep_b = start_endpoint("b-login", "epD");
  proc::ProcessScope scope(*client_a_);
  EXPECT_FALSE(ep_a->has_peer(ep_b->uuid()));
  for (int i = 0; i < 3; ++i) {
    ep_a->handle(EndpointRequest{.op = "exists", .object_id = "x",
                                 .endpoint_id = ep_b->uuid(), .data = {}});
  }
  EXPECT_TRUE(ep_a->has_peer(ep_b->uuid()));
  EXPECT_TRUE(ep_b->has_peer(ep_a->uuid()));
  // One handshake each despite three forwarded requests.
  EXPECT_EQ(ep_a->handshakes_completed(), 1u);
  EXPECT_EQ(ep_b->handshakes_completed(), 1u);
}

TEST_F(EndpointTest, HandshakeExchangesSignalingViaRelay) {
  auto ep_a = start_endpoint("a-login", "epE");
  auto ep_b = start_endpoint("b-login", "epF");
  proc::ProcessScope scope(*client_a_);
  const auto before = relay_->forwarded_count();
  ep_a->handle(EndpointRequest{.op = "exists", .object_id = "x",
                               .endpoint_id = ep_b->uuid(), .data = {}});
  // Figure 4: offer, answer, ice(initiator), ice(responder) = 4 messages.
  EXPECT_EQ(relay_->forwarded_count() - before, 4u);
}

TEST_F(EndpointTest, DroppedPeerConnectionIsReestablished) {
  auto ep_a = start_endpoint("a-login", "epG");
  auto ep_b = start_endpoint("b-login", "epH");
  proc::ProcessScope scope(*client_a_);
  ep_a->handle(EndpointRequest{.op = "exists", .object_id = "x",
                               .endpoint_id = ep_b->uuid(), .data = {}});
  ep_a->drop_peer(ep_b->uuid());
  ep_b->drop_peer(ep_a->uuid());
  EXPECT_FALSE(ep_a->has_peer(ep_b->uuid()));
  ep_a->handle(EndpointRequest{.op = "exists", .object_id = "x",
                               .endpoint_id = ep_b->uuid(), .data = {}});
  EXPECT_TRUE(ep_a->has_peer(ep_b->uuid()));
  EXPECT_EQ(ep_a->handshakes_completed(), 2u);
}

TEST_F(EndpointTest, ForwardToStoppedPeerThrows) {
  auto ep_a = start_endpoint("a-login", "epI");
  auto ep_b = start_endpoint("b-login", "epJ");
  const Uuid b_id = ep_b->uuid();
  ep_b->stop();
  proc::ProcessScope scope(*client_a_);
  EXPECT_THROW(ep_a->handle(EndpointRequest{.op = "get", .object_id = "x",
                                            .endpoint_id = b_id, .data = {}}),
               ProtocolError);
}

// ------------------------------------------------------------- timing ----

TEST_F(EndpointTest, SingleThreadedQueueSerializesConcurrentClients) {
  auto ep = start_endpoint("a-login", "epK");
  // The Figure 8 effect: N same-instant requests are served FIFO, so the
  // k-th response completes ~k service times after the first.
  const double service = ep->service_time(1000);
  const double t1 = ep->queue().schedule(0.0, service);
  const double t4 = [&] {
    double last = 0;
    for (int i = 0; i < 3; ++i) last = ep->queue().schedule(0.0, service);
    return last;
  }();
  EXPECT_NEAR(t4 - t1, 3.0 * service, 1e-12);
}

TEST_F(EndpointTest, WanForwardSlowerThanLocal) {
  auto ep_a = start_endpoint("a-login", "epL");
  auto ep_b = start_endpoint("b-login", "epM");
  const Bytes data = pattern_bytes(5'000'000, 3);
  {
    proc::ProcessScope scope(*client_b_);
    ep_b->handle(EndpointRequest{.op = "set", .object_id = "obj",
                                 .endpoint_id = ep_b->uuid(), .data = data});
  }
  proc::ProcessScope scope(*client_a_);
  sim::VtimeGuard guard;
  // Warm the peer connection so we compare data-plane costs.
  ep_a->handle(EndpointRequest{.op = "exists", .object_id = "obj",
                               .endpoint_id = ep_b->uuid(), .data = {}});
  sim::VtimeScope local_scope;
  ep_a->handle(EndpointRequest{.op = "set", .object_id = "local-obj",
                               .endpoint_id = ep_a->uuid(), .data = data});
  const double local = local_scope.elapsed();
  sim::VtimeScope remote_scope;
  ep_a->handle(EndpointRequest{.op = "get", .object_id = "obj",
                               .endpoint_id = ep_b->uuid(), .data = {}});
  const double remote = remote_scope.elapsed();
  EXPECT_GT(remote, 5.0 * local);
  // The 10 MB/s WAN data-channel throttle dominates: ~0.5 s for 5 MB.
  EXPECT_GT(remote, 0.4);
}

// ----------------------------------------------------------- datachannel ----

TEST_F(EndpointTest, DataChannelThrottledOnWanOnly) {
  DataChannelOptions options;
  const std::size_t bytes = 50'000'000;
  const double intra = data_channel_time(world_->fabric(), "a-login",
                                         "a-login", bytes, options);
  const double inter = data_channel_time(world_->fabric(), "a-login",
                                         "b-login", bytes, options);
  EXPECT_LT(intra, 0.1);
  EXPECT_GT(inter, static_cast<double>(bytes) / options.wan_throttle_Bps *
                       0.9);
}

TEST_F(EndpointTest, MultiplexingHelpsOnlyUpToTwoChannels) {
  DataChannelOptions one;
  DataChannelOptions two;
  two.channels = 2;
  DataChannelOptions eight;
  eight.channels = 8;
  const std::size_t bytes = 100'000'000;
  const double t1 =
      data_channel_time(world_->fabric(), "a-login", "b-login", bytes, one);
  const double t2 =
      data_channel_time(world_->fabric(), "a-login", "b-login", bytes, two);
  const double t8 =
      data_channel_time(world_->fabric(), "a-login", "b-login", bytes, eight);
  EXPECT_LT(t2, t1);
  EXPECT_NEAR(t8, t2, 1e-9);  // asyncio cannot drive more than ~2
}

}  // namespace
}  // namespace ps::endpoint
