// Wide-area reference counting (paper section 6 future work): the last of
// N consumers to resolve an object evicts it from the channel.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "connectors/local.hpp"
#include "core/refcount.hpp"
#include "core/store.hpp"
#include "proc/world.hpp"
#include "serde/serde.hpp"

namespace ps::core {
namespace {

class RefcountTest : public ::testing::Test {
 protected:
  RefcountTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("site", net::hpc_interconnect(1e-5, 1e9));
    world_->fabric().add_host("host", "site");
    producer_ = &world_->spawn("producer", "host");
    for (int i = 0; i < 3; ++i) {
      consumers_.push_back(
          &world_->spawn("consumer-" + std::to_string(i), "host"));
    }
  }

  std::shared_ptr<Store> make_store(const std::string& name) {
    proc::ProcessScope scope(*producer_);
    auto store = std::make_shared<Store>(
        name, std::make_shared<connectors::LocalConnector>());
    register_store(store);
    return store;
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* producer_ = nullptr;
  std::vector<proc::Process*> consumers_;
};

TEST_F(RefcountTest, LastConsumerEvicts) {
  auto store = make_store("rc1");
  Bytes wire;
  Key key;
  {
    proc::ProcessScope scope(*producer_);
    auto proxy = proxy_with_refs(*store, std::string("shared-value"), 3);
    key = proxy.factory().descriptor()->key;
    wire = serde::to_bytes(proxy);
  }
  for (int c = 0; c < 3; ++c) {
    proc::ProcessScope scope(*consumers_[static_cast<std::size_t>(c)]);
    auto proxy = serde::from_bytes<Proxy<std::string>>(wire);
    EXPECT_EQ(*proxy, "shared-value") << "consumer " << c;
  }
  // The third resolve exhausted the references: the channel is clean.
  proc::ProcessScope scope(*producer_);
  EXPECT_FALSE(store->connector().exists(key));
}

TEST_F(RefcountTest, ObjectSurvivesUntilCountExhausted) {
  auto store = make_store("rc2");
  proc::ProcessScope scope(*producer_);
  auto proxy = proxy_with_refs(*store, 42, 2);
  const Key key = proxy.factory().descriptor()->key;
  const Bytes wire = serde::to_bytes(proxy);

  auto first = serde::from_bytes<Proxy<int>>(wire);
  EXPECT_EQ(*first, 42);
  EXPECT_TRUE(store->connector().exists(key));  // one reference left

  store->cache().clear();  // force the second resolve through the channel
  auto second = serde::from_bytes<Proxy<int>>(wire);
  EXPECT_EQ(*second, 42);
  EXPECT_FALSE(store->connector().exists(key));
}

TEST_F(RefcountTest, ExhaustedProxyFailsClearly) {
  auto store = make_store("rc3");
  proc::ProcessScope scope(*producer_);
  auto proxy = proxy_with_refs(*store, std::string("once"), 1);
  const Bytes wire = serde::to_bytes(proxy);
  {
    auto first = serde::from_bytes<Proxy<std::string>>(wire);
    EXPECT_EQ(*first, "once");
  }
  store->cache().clear();
  auto late = serde::from_bytes<Proxy<std::string>>(wire);
  EXPECT_THROW(late.resolve(), ProxyResolutionError);
}

TEST_F(RefcountTest, ZeroConsumersRejected) {
  auto store = make_store("rc4");
  proc::ProcessScope scope(*producer_);
  EXPECT_THROW(proxy_with_refs(*store, 1, 0), ProxyResolutionError);
}

TEST_F(RefcountTest, RegistryBasics) {
  proc::ProcessScope scope(*producer_);
  auto registry = RefCountRegistry::for_store("rc-reg");
  EXPECT_EQ(RefCountRegistry::for_store("rc-reg"), registry);  // shared
  registry->set("k", 2);
  EXPECT_EQ(registry->remaining("k"), 2u);
  EXPECT_EQ(registry->decrement("k"), 1u);
  EXPECT_EQ(registry->decrement("k"), 0u);
  EXPECT_EQ(registry->remaining("k"), std::nullopt);
  EXPECT_EQ(registry->decrement("k"), 0u);  // idempotent at zero
  EXPECT_EQ(registry->decrement("unknown"), 0u);
}

/// Counts evict calls so the race test below can assert the final
/// decrement evicts exactly once, not once per racing thread.
class EvictCountingConnector : public Connector {
 public:
  std::string type() const override { return inner_.type(); }
  ConnectorConfig config() const override { return inner_.config(); }
  ConnectorTraits traits() const override { return inner_.traits(); }
  Key put(BytesView data) override { return inner_.put(data); }
  std::optional<Bytes> get(const Key& key) override {
    return inner_.get(key);
  }
  bool exists(const Key& key) override { return inner_.exists(key); }
  void evict(const Key& key) override {
    evicts.fetch_add(1, std::memory_order_relaxed);
    inner_.evict(key);
  }

  std::atomic<int> evicts{0};

 private:
  connectors::LocalConnector inner_;
};

TEST_F(RefcountTest, ConcurrentFinalDecrementEvictsExactlyOnce) {
  constexpr int kThreads = 8;
  auto counting = std::make_shared<EvictCountingConnector>();
  std::shared_ptr<Store> store;
  Bytes wire;
  Key key;
  {
    proc::ProcessScope scope(*producer_);
    store = std::make_shared<Store>("rc-race", counting);
    register_store(store);
    auto proxy = proxy_with_refs(*store, std::string("racy"),
                                 static_cast<std::uint32_t>(kThreads));
    key = proxy.factory().descriptor()->key;
    wire = serde::to_bytes(proxy);
  }
  // All threads resolve in the producer's process, so get_or_register_store
  // hands every one the same registered store (and counting connector) and
  // the decrements race on the shared registry entry.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      proc::ProcessScope scope(*producer_);
      try {
        auto proxy = serde::from_bytes<Proxy<std::string>>(wire);
        if (*proxy != "racy") failures.fetch_add(1);
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Every resolve completes its get before its decrement, so the final
  // decrement — and the eviction it triggers — strictly follows all reads.
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(counting->evicts.load(), 1);
  proc::ProcessScope scope(*producer_);
  EXPECT_FALSE(store->connector().exists(key));
}

TEST_F(RefcountTest, DescriptorFlagSurvivesSerde) {
  auto store = make_store("rc5");
  proc::ProcessScope scope(*producer_);
  auto proxy = proxy_with_refs(*store, 7, 2);
  const auto descriptor = serde::from_bytes<FactoryDescriptor>(
      serde::to_bytes(*proxy.factory().descriptor()));
  EXPECT_TRUE(descriptor.ref_counted);
}

}  // namespace
}  // namespace ps::core
