#include <gtest/gtest.h>

#include <memory>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "connectors/local.hpp"
#include "core/store.hpp"
#include "faas/cloud.hpp"
#include "faas/executor.hpp"
#include "faas/registry.hpp"
#include "proc/world.hpp"
#include "serde/serde.hpp"
#include "sim/vtime.hpp"

namespace ps::faas {
namespace {

class FaasTest : public ::testing::Test {
 protected:
  FaasTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("site", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().add_site("aws", net::hpc_interconnect(50e-6, 10e9));
    world_->fabric().connect_sites("site", "aws", net::wan_tcp(35e-3, 0.6e9));
    world_->fabric().add_host("login", "site");
    world_->fabric().add_host("compute", "site");
    world_->fabric().add_host("cloud-host", "aws");
    client_ = &world_->spawn("client", "login");
    endpoint_proc_ = &world_->spawn("endpoint", "compute");
    cloud_ = CloudService::start(*world_, "cloud-host");

    FunctionRegistry::instance().register_function(
        "echo", [](BytesView request) { return Bytes(request); });
    FunctionRegistry::instance().register_function(
        "fail", [](BytesView) -> Bytes { throw Error("boom"); });
    FunctionRegistry::instance().register_function(
        "sleep1", [](BytesView request) {
          sim::vadvance(1.0);
          return Bytes(request);
        });
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* client_ = nullptr;
  proc::Process* endpoint_proc_ = nullptr;
  std::shared_ptr<CloudService> cloud_;
};

TEST_F(FaasTest, RoundTripEcho) {
  ComputeEndpoint endpoint(cloud_, *endpoint_proc_);
  proc::ProcessScope scope(*client_);
  Executor executor(cloud_, endpoint.uuid());
  const Bytes payload = pattern_bytes(1000, 1);
  TaskFuture future = executor.submit("echo", payload);
  EXPECT_EQ(future.get(), payload);
  endpoint.stop();
}

TEST_F(FaasTest, ManyTasksAllComplete) {
  ComputeEndpoint endpoint(cloud_, *endpoint_proc_, /*workers=*/4);
  proc::ProcessScope scope(*client_);
  Executor executor(cloud_, endpoint.uuid());
  std::vector<TaskFuture> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(
        executor.submit("echo", serde::to_bytes(i)));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get_as<int>(), i);
  }
  endpoint.stop();
}

TEST_F(FaasTest, RemoteErrorsPropagate) {
  ComputeEndpoint endpoint(cloud_, *endpoint_proc_);
  proc::ProcessScope scope(*client_);
  Executor executor(cloud_, endpoint.uuid());
  TaskFuture future = executor.submit("fail", "");
  EXPECT_THROW(future.get(), Error);
  endpoint.stop();
}

TEST_F(FaasTest, UnknownFunctionFailsRemotely) {
  ComputeEndpoint endpoint(cloud_, *endpoint_proc_);
  proc::ProcessScope scope(*client_);
  Executor executor(cloud_, endpoint.uuid());
  TaskFuture future = executor.submit("no-such-function", "");
  EXPECT_THROW(future.get(), Error);
  endpoint.stop();
}

TEST_F(FaasTest, PayloadLimitEnforcedOnSubmit) {
  ComputeEndpoint endpoint(cloud_, *endpoint_proc_);
  proc::ProcessScope scope(*client_);
  Executor executor(cloud_, endpoint.uuid());
  EXPECT_THROW(executor.submit("echo", pattern_bytes(6'000'000)),
               PayloadTooLargeError);
  endpoint.stop();
}

TEST_F(FaasTest, OversizedResultBecomesRemoteFailure) {
  FunctionRegistry::instance().register_function(
      "inflate", [](BytesView) { return pattern_bytes(6'000'000); });
  ComputeEndpoint endpoint(cloud_, *endpoint_proc_);
  proc::ProcessScope scope(*client_);
  Executor executor(cloud_, endpoint.uuid());
  TaskFuture future = executor.submit("inflate", "");
  EXPECT_THROW(future.get(), Error);
  endpoint.stop();
}

TEST_F(FaasTest, UnknownEndpointThrows) {
  proc::ProcessScope scope(*client_);
  Executor executor(cloud_, Uuid::random());
  EXPECT_THROW(executor.submit("echo", ""), NotRegisteredError);
}

TEST_F(FaasTest, RoundTripChargesCloudLegs) {
  ComputeEndpoint endpoint(cloud_, *endpoint_proc_);
  proc::ProcessScope scope(*client_);
  sim::VtimeGuard guard;
  Executor executor(cloud_, endpoint.uuid());
  sim::VtimeScope vt;
  executor.submit("echo", pattern_bytes(1'000'000)).get();
  // 4 WAN legs (client->cloud->endpoint->cloud->client) with 35 ms latency
  // each, plus storage handling: well over 140 ms.
  EXPECT_GT(vt.elapsed(), 0.14);
  endpoint.stop();
}

TEST_F(FaasTest, LargerPayloadsCostMore) {
  ComputeEndpoint endpoint(cloud_, *endpoint_proc_);
  proc::ProcessScope scope(*client_);
  sim::VtimeGuard guard;
  Executor executor(cloud_, endpoint.uuid());
  sim::VtimeScope small_scope;
  executor.submit("echo", pattern_bytes(10)).get();
  const double small = small_scope.elapsed();
  sim::VtimeScope large_scope;
  executor.submit("echo", pattern_bytes(4'000'000)).get();
  EXPECT_GT(large_scope.elapsed(), small);
  endpoint.stop();
}

TEST_F(FaasTest, VirtualSleepAddsOneSecond) {
  ComputeEndpoint endpoint(cloud_, *endpoint_proc_);
  proc::ProcessScope scope(*client_);
  sim::VtimeGuard guard;
  Executor executor(cloud_, endpoint.uuid());
  sim::VtimeScope noop_scope;
  executor.submit("echo", pattern_bytes(10)).get();
  const double noop = noop_scope.elapsed();
  sim::VtimeScope sleep_scope;
  executor.submit("sleep1", pattern_bytes(10)).get();
  EXPECT_NEAR(sleep_scope.elapsed(), noop + 1.0, 0.05);
  endpoint.stop();
}

TEST_F(FaasTest, ProxyInputBypassesPayloadLimit) {
  // The headline ProxyStore-with-FaaS pattern (Listing 2): proxy a 10 MB
  // object (over the 5 MB limit) and pass the tiny proxy as the payload.
  FunctionRegistry::instance().register_function(
      "consume-proxy", [](BytesView request) {
        auto proxy = serde::from_bytes<core::Proxy<Bytes>>(request);
        const Bytes& data = *proxy;  // transparent resolution on the worker
        return serde::to_bytes(data.size());
      });
  ComputeEndpoint endpoint(cloud_, *endpoint_proc_);
  proc::ProcessScope scope(*client_);
  auto store = std::make_shared<core::Store>(
      "faas-store", std::make_shared<connectors::LocalConnector>());
  core::register_store(store, /*overwrite=*/true);
  Executor executor(cloud_, endpoint.uuid());
  auto proxy = store->proxy(pattern_bytes(10'000'000));
  TaskFuture future = executor.submit("consume-proxy", serde::to_bytes(proxy));
  EXPECT_EQ(future.get_as<std::size_t>(), 10'000'000u);
  endpoint.stop();
}

TEST_F(FaasTest, EndpointStopDrainsCleanly) {
  auto endpoint = std::make_unique<ComputeEndpoint>(cloud_, *endpoint_proc_);
  proc::ProcessScope scope(*client_);
  Executor executor(cloud_, endpoint->uuid());
  TaskFuture future = executor.submit("echo", "x");
  EXPECT_EQ(future.get(), "x");
  endpoint->stop();
  endpoint->stop();  // idempotent
  EXPECT_THROW(executor.submit("echo", "y"), NotRegisteredError);
}

}  // namespace
}  // namespace ps::faas
