// Protocol-level details: relay registration lifecycle, factory descriptor
// wire format, key ordering, and connector config helpers.
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "core/key.hpp"
#include "proc/world.hpp"
#include "relay/relay.hpp"
#include "serde/serde.hpp"
#include "sim/vtime.hpp"

namespace ps {
namespace {

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("site", net::hpc_interconnect(1e-5, 1e9));
    world_->fabric().add_host("host-a", "site");
    world_->fabric().add_host("host-b", "site");
    world_->fabric().add_host("relay-host", "site");
    driver_ = &world_->spawn("driver", "host-a");
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* driver_ = nullptr;
};

// ---------------------------------------------------------------- relay ----

TEST_F(ProtocolTest, RelayDeliversToRegisteredHandler) {
  auto relay = relay::RelayServer::start(*world_, "relay-host", "r");
  std::vector<std::string> received;
  const Uuid a = relay->register_endpoint(
      Uuid(), "host-a", [&](const relay::RelayMessage& m) {
        received.push_back("a:" + m.kind);
      });
  const Uuid b = relay->register_endpoint(
      Uuid(), "host-b", [&](const relay::RelayMessage& m) {
        received.push_back("b:" + m.kind);
      });
  proc::ProcessScope scope(*driver_);
  relay->forward({.from = a, .to = b, .kind = "offer", .payload = "x",
                  .stamp = 0});
  relay->forward({.from = b, .to = a, .kind = "answer", .payload = "y",
                  .stamp = 0});
  EXPECT_EQ(received,
            (std::vector<std::string>{"b:offer", "a:answer"}));
  EXPECT_EQ(relay->forwarded_count(), 2u);
}

TEST_F(ProtocolTest, RelayStampsMessagesWithArrivalTime) {
  auto relay = relay::RelayServer::start(*world_, "relay-host", "r");
  double stamp = -1;
  const Uuid a = relay->register_endpoint(Uuid(), "host-a",
                                          [](const relay::RelayMessage&) {});
  const Uuid b = relay->register_endpoint(
      Uuid(), "host-b",
      [&](const relay::RelayMessage& m) { stamp = m.stamp; });
  proc::ProcessScope scope(*driver_);
  sim::VtimeGuard guard;
  sim::vset(5.0);
  relay->forward({.from = a, .to = b, .kind = "offer", .payload = "x",
                  .stamp = 0});
  EXPECT_GT(stamp, 5.0);  // two signaling legs after the send time
}

TEST_F(ProtocolTest, UnregisteredEndpointUnreachable) {
  auto relay = relay::RelayServer::start(*world_, "relay-host", "r");
  const Uuid a = relay->register_endpoint(Uuid(), "host-a",
                                          [](const relay::RelayMessage&) {});
  const Uuid b = relay->register_endpoint(Uuid(), "host-b",
                                          [](const relay::RelayMessage&) {});
  relay->unregister_endpoint(b);
  EXPECT_FALSE(relay->is_registered(b));
  proc::ProcessScope scope(*driver_);
  EXPECT_THROW(relay->forward({.from = a, .to = b, .kind = "offer",
                               .payload = "", .stamp = 0}),
               ProtocolError);
  EXPECT_THROW(relay->endpoint_host(b), ProtocolError);
}

TEST_F(ProtocolTest, ReRegistrationReplacesHandler) {
  auto relay = relay::RelayServer::start(*world_, "relay-host", "r");
  int old_hits = 0, new_hits = 0;
  const Uuid a = relay->register_endpoint(Uuid(), "host-a",
                                          [](const relay::RelayMessage&) {});
  const Uuid b = relay->register_endpoint(
      Uuid(), "host-b", [&](const relay::RelayMessage&) { ++old_hits; });
  // The endpoint reconnects (e.g. after restart) keeping its UUID.
  relay->register_endpoint(b, "host-b",
                           [&](const relay::RelayMessage&) { ++new_hits; });
  EXPECT_EQ(relay->endpoint_count(), 2u);
  proc::ProcessScope scope(*driver_);
  relay->forward({.from = a, .to = b, .kind = "ice", .payload = "",
                  .stamp = 0});
  EXPECT_EQ(old_hits, 0);
  EXPECT_EQ(new_hits, 1);
}

// ----------------------------------------------------------- descriptors ----

TEST_F(ProtocolTest, FactoryDescriptorWireRoundTrip) {
  core::FactoryDescriptor d;
  d.store_name = "store";
  d.key = core::Key{.object_id = "obj", .meta = {{"endpoint_id", "e"}}};
  d.connector = core::ConnectorConfig{.type = "endpoint",
                                      .params = {{"count", "1"}}};
  d.evict = true;
  d.poll_interval_s = 0.25;
  d.max_polls = 7;
  d.ref_counted = true;
  const auto restored = serde::from_bytes<core::FactoryDescriptor>(
      serde::to_bytes(d));
  EXPECT_EQ(restored, d);
}

TEST_F(ProtocolTest, EmptyFactoryIsInvalid) {
  core::Factory<int> factory;
  EXPECT_FALSE(factory.valid());
  EXPECT_THROW(factory(), ProxyResolutionError);
  EXPECT_FALSE(factory.descriptor().has_value());
}

// ----------------------------------------------------------------- keys ----

TEST_F(ProtocolTest, KeysOrderDeterministically) {
  core::Key a{.object_id = "a", .meta = {}};
  core::Key a2{.object_id = "a", .meta = {{"x", "1"}}};
  core::Key b{.object_id = "b", .meta = {}};
  EXPECT_LT(a, a2);
  EXPECT_LT(a2, b);
  EXPECT_EQ(a, (core::Key{.object_id = "a", .meta = {}}));
}

TEST_F(ProtocolTest, ConnectorConfigParamHelpers) {
  core::ConnectorConfig cfg{.type = "t", .params = {{"present", "yes"}}};
  EXPECT_EQ(cfg.param("present"), "yes");
  EXPECT_EQ(cfg.param_or("absent", "fallback"), "fallback");
  EXPECT_THROW(cfg.param("absent"), ConnectorError);
}

}  // namespace
}  // namespace ps
