// Telemetry plane: registry snapshots, windowed deltas, cross-site merge,
// federation over the rpc wire, and burn-rate SLO evaluation (DESIGN.md
// §12). The exactness tests are the heart: merging every window of a run
// must reproduce the whole-run histogram bit for bit, and splitting a
// workload across scoped registries then merging must equal the unsplit
// registry — telemetry is a decomposition, never an approximation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/fabric.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "proc/process.hpp"
#include "proc/world.hpp"
#include "serde/serde.hpp"
#include "sim/vtime.hpp"
#include "telemetry/agent.hpp"
#include "telemetry/aggregator.hpp"

namespace ps::obs {
namespace {

// Deterministic latency series: spread over several histogram buckets,
// including sub-microsecond and tail values.
double sample_value(std::uint64_t i) {
  const double base[] = {3e-7, 1.2e-6, 4.5e-5, 9e-4, 2.3e-3, 8e-2, 1.7e-1};
  return base[i % 7] * (1.0 + static_cast<double>(i % 13) * 0.01);
}

RegistrySnapshot snap(const MetricsRegistry& reg, double vtime) {
  return reg.take_snapshot(vtime);
}

void expect_histograms_identical(const HistogramSnapshot& a,
                                 const HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum_ns, b.sum_ns);
  EXPECT_EQ(a.min_ns, b.min_ns);
  EXPECT_EQ(a.max_ns, b.max_ns);
  ASSERT_EQ(a.buckets.size(), b.buckets.size());
  for (std::size_t i = 0; i < a.buckets.size(); ++i) {
    EXPECT_EQ(a.buckets[i], b.buckets[i]) << "bucket " << i;
  }
  // Bit-identical percentiles, not approximately equal.
  EXPECT_EQ(a.p50(), b.p50());
  EXPECT_EQ(a.p99(), b.p99());
  EXPECT_EQ(a.p999(), b.p999());
}

// ------------------------------------------------ windowed exactness ----

TEST(TelemetryWindows, MergedWindowsReproduceWholeRunExactly) {
  // 600 samples (within the reservoir), scraped into 7 uneven windows.
  MetricsRegistry reg;
  Histogram& h = reg.histogram("op");
  Counter& c = reg.counter("ops");
  TelemetryWindows windows;
  windows.feed(snap(reg, 0.0));  // seed

  const std::uint64_t kTotal = 600;
  const std::uint64_t cuts[] = {13, 100, 101, 350, 351, 500, kTotal};
  std::uint64_t fed = 0;
  for (std::uint64_t cut : cuts) {
    for (; fed < cut; ++fed) {
      h.observe(sample_value(fed));
      c.inc();
    }
    windows.feed(snap(reg, static_cast<double>(cut)));
  }
  ASSERT_EQ(windows.windows().size(), 7u);

  const RegistrySnapshot whole = snap(reg, 1000.0);
  const RegistrySnapshot merged = windows.merged_all();
  ASSERT_TRUE(merged.histograms.count("op"));
  expect_histograms_identical(merged.histograms.at("op"),
                              whole.histograms.at("op"));
  // The reservoir recomposes to the exact whole-run sample prefix, so the
  // percentile path is the Stats-exact one on both sides.
  EXPECT_EQ(merged.histograms.at("op").reservoir,
            whole.histograms.at("op").reservoir);
  EXPECT_EQ(merged.counters.at("ops"), kTotal);
  EXPECT_EQ(windows.clamped(), 0u);
}

TEST(TelemetryWindows, MergedWindowsExactBeyondReservoir) {
  // 3000 samples: past the 1024-sample reservoir, both sides fall back to
  // bucket interpolation over identical buckets — still bit-identical.
  MetricsRegistry reg;
  Histogram& h = reg.histogram("op");
  TelemetryWindows windows;
  windows.feed(snap(reg, 0.0));

  const std::uint64_t kTotal = 3000;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    h.observe(sample_value(i));
    if ((i + 1) % 400 == 0) windows.feed(snap(reg, static_cast<double>(i)));
  }
  windows.feed(snap(reg, static_cast<double>(kTotal)));

  const RegistrySnapshot whole = snap(reg, 1e9);
  const RegistrySnapshot merged = windows.merged_all();
  expect_histograms_identical(merged.histograms.at("op"),
                              whole.histograms.at("op"));
}

TEST(TelemetrySnapshot, PercentileMirrorsLiveHistogram) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("op");
  for (std::uint64_t i = 0; i < 257; ++i) h.observe(sample_value(i));
  const RegistrySnapshot s = snap(reg, 0.0);
  const HistogramSnapshot& hs = s.histograms.at("op");
  for (double p : {0.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(hs.percentile(p), h.percentile(p)) << "p" << p;
  }
}

// ------------------------------------------------- scoped split merge ----

TEST(TelemetryMerge, SplitRegistriesMergeBackToUnsplitRegistry) {
  // The same deterministic workload recorded twice: once into a single
  // registry, once split across three scoped registries round-robin. The
  // cross-space merge of the split must equal the unsplit whole.
  MetricsRegistry whole;
  MetricsRegistry parts[3];
  for (std::uint64_t i = 0; i < 900; ++i) {
    const double v = sample_value(i);
    whole.histogram("op").observe(v);
    whole.counter("ops").inc();
    parts[i % 3].histogram("op").observe(v);
    parts[i % 3].counter("ops").inc();
  }
  std::vector<RegistrySnapshot> split;
  for (const MetricsRegistry& part : parts) split.push_back(snap(part, 1.0));
  const RegistrySnapshot merged = merge_registry_snapshots(split);
  const RegistrySnapshot expected = snap(whole, 1.0);
  EXPECT_EQ(merged.counters.at("ops"), expected.counters.at("ops"));
  const HistogramSnapshot& m = merged.histograms.at("op");
  const HistogramSnapshot& e = expected.histograms.at("op");
  EXPECT_EQ(m.count, e.count);
  EXPECT_EQ(m.sum_ns, e.sum_ns);
  EXPECT_EQ(m.min_ns, e.min_ns);
  EXPECT_EQ(m.max_ns, e.max_ns);
  EXPECT_EQ(m.buckets, e.buckets);
}

TEST(TelemetryMerge, GaugeAggregationHintsHonored) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.gauge("queue.depth", GaugeAgg::kSum).set(3.0);
  b.gauge("queue.depth", GaugeAgg::kSum).set(4.0);
  a.gauge("queue.wait", GaugeAgg::kMax).set(0.25);
  b.gauge("queue.wait", GaugeAgg::kMax).set(0.75);
  a.gauge("phase", GaugeAgg::kLast).set(1.0);
  b.gauge("phase", GaugeAgg::kLast).set(2.0);
  // b is the fresher snapshot: last-write gauges take its value.
  const RegistrySnapshot merged =
      merge_registry_snapshots({snap(a, 1.0), snap(b, 2.0)});
  EXPECT_DOUBLE_EQ(merged.gauges.at("queue.depth").value, 7.0);
  EXPECT_EQ(merged.gauges.at("queue.depth").agg_hint(), GaugeAgg::kSum);
  EXPECT_DOUBLE_EQ(merged.gauges.at("queue.wait").value, 0.75);
  EXPECT_DOUBLE_EQ(merged.gauges.at("phase").value, 2.0);
  // Reversed feed order must not change last-write resolution (vtime wins,
  // not position).
  const RegistrySnapshot reversed =
      merge_registry_snapshots({snap(b, 2.0), snap(a, 1.0)});
  EXPECT_DOUBLE_EQ(reversed.gauges.at("phase").value, 2.0);
}

// ----------------------------------------------------- clamp counting ----

TEST(TelemetryWindows, ResetClampsToZeroAndCountsTheClamp) {
  MetricsRegistry scraper;
  MetricsRegistry* previous = set_ambient_registry(&scraper);
  {
    MetricsRegistry reg;
    reg.counter("ops").inc(100);
    TelemetryWindows windows;
    windows.feed(snap(reg, 0.0));
    // Simulate a registry reset (process restart): the next cumulative
    // snapshot is *smaller*. The delta must clamp to zero, never go
    // negative, and the clamp must be counted on the scraper's side.
    RegistrySnapshot shrunk = snap(reg, 1.0);
    shrunk.counters["ops"] = 40;
    windows.feed(shrunk);
    ASSERT_EQ(windows.windows().size(), 1u);
    EXPECT_EQ(windows.windows().back().delta.counters.at("ops"), 0u);
    EXPECT_GE(windows.clamped(), 1u);
    EXPECT_GE(scraper.counter("telemetry.rate.clamped").value(),
              windows.clamped());
    EXPECT_GE(windows.rate("ops", 10.0), 0.0);
  }
  set_ambient_registry(previous);
}

// ------------------------------------------------------- prom export ----

TEST(TelemetryFederation, PromSiteLabelsEscapedAndTerminated) {
  std::map<std::string, RegistrySnapshot> by_site;
  MetricsRegistry good;
  good.counter("ops").inc(7);
  good.histogram("op").observe(0.001);
  by_site["theta"] = snap(good, 1.0);
  // Hostile site name: quotes, backslashes, and a newline must all
  // round-trip through the label escaper without breaking line framing.
  const std::string hostile = "evil\"site\\with\nnewline";
  MetricsRegistry bad;
  bad.counter("ops").inc(3);
  by_site[hostile] = snap(bad, 1.0);

  const std::string text = federated_prometheus_text(by_site);
  // OpenMetrics termination.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  // Every site label uses the canonical escaping.
  EXPECT_NE(text.find("site=\"" + prom_label_escape("theta") + "\""),
            std::string::npos);
  EXPECT_NE(text.find("site=\"" + prom_label_escape(hostile) + "\""),
            std::string::npos);
  // Line framing survives the hostile name: every non-comment, non-empty
  // line is exactly one sample — metric name, one balanced label block, a
  // value — and no raw quote leaks outside a label string.
  std::size_t samples = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    ++samples;
    EXPECT_EQ(line.rfind("ps_", 0), 0u) << line;
    const std::size_t open = line.find('{');
    const std::size_t close = line.rfind('}');
    ASSERT_NE(open, std::string::npos) << line;
    ASSERT_NE(close, std::string::npos) << line;
    EXPECT_LT(open, close) << line;
    EXPECT_NE(line.find(' ', close), std::string::npos) << line;
  }
  EXPECT_GT(samples, 0u);

  const std::string json = federated_metrics_json(by_site);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
}

// ---------------------------------------------------- wire federation ----

class TelemetryWireTest : public ::testing::Test {
 protected:
  TelemetryWireTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("hpc", net::rdma_fabric(2e-6, 25e9));
    world_->fabric().add_site("cloud", net::hpc_interconnect(20e-6, 5e9));
    world_->fabric().add_host("hpc-0", "hpc");
    world_->fabric().add_host("cloud-0", "cloud");
    world_->fabric().connect_sites("hpc", "cloud", net::wan_tcp(0.030, 1e9));
    world_->set_metrics_scoping(true);
  }
  ~TelemetryWireTest() override { world_->set_metrics_scoping(false); }

  std::unique_ptr<proc::World> world_;
};

TEST_F(TelemetryWireTest, AgentServesScopedRegistriesOverRpc) {
  proc::Process& hpc_worker = world_->spawn("w0", "hpc-0");
  proc::Process& cloud_worker = world_->spawn("c0", "cloud-0");
  {
    proc::ProcessScope scope(hpc_worker);
    MetricsRegistry::ambient().counter("work.items").inc(11);
    MetricsRegistry::ambient().histogram("work.lat").observe(0.002);
  }
  {
    proc::ProcessScope scope(cloud_worker);
    MetricsRegistry::ambient().counter("work.items").inc(5);
  }

  auto hpc_agent = telemetry::TelemetryAgent::start(*world_, "hpc-0");
  auto cloud_agent = telemetry::TelemetryAgent::start(*world_, "cloud-0");
  EXPECT_EQ(hpc_agent->site(), "hpc");
  EXPECT_EQ(cloud_agent->site(), "cloud");

  telemetry::TelemetryAggregator aggregator;
  aggregator.add_agent(hpc_agent->address());
  aggregator.add_agent(cloud_agent->address());

  proc::Process& monitor = world_->spawn("mon", "cloud-0");
  proc::ProcessScope scope(monitor);
  const double before = sim::vnow();
  const auto round = aggregator.scrape_all();
  // Scraping crossed the fabric: it must have cost virtual time.
  EXPECT_GT(sim::vnow(), before);

  ASSERT_EQ(round.size(), 2u);
  EXPECT_EQ(round.at("hpc").registry.counters.at("work.items"), 11u);
  EXPECT_EQ(round.at("hpc").registry.histograms.at("work.lat").count, 1u);
  // The monitor's own scoped registry must not leak into hpc's snapshot.
  EXPECT_EQ(round.at("cloud").registry.counters.at("work.items"), 5u);

  const RegistrySnapshot aggregate = aggregator.aggregate();
  EXPECT_EQ(aggregate.counters.at("work.items"), 16u);

  // Snapshot round-trips the serde wire format losslessly.
  const SiteSnapshot& wire = aggregator.latest().at("hpc");
  const auto redecoded =
      serde::from_bytes<SiteSnapshot>(serde::to_bytes(wire));
  EXPECT_EQ(redecoded.site, wire.site);
  EXPECT_EQ(redecoded.registry.counters, wire.registry.counters);
}

TEST_F(TelemetryWireTest, ScopingOffKeepsAmbientGlobal) {
  world_->set_metrics_scoping(false);
  proc::Process& p = world_->spawn("p-off", "hpc-0");
  proc::ProcessScope scope(p);
  EXPECT_EQ(&MetricsRegistry::ambient(), &MetricsRegistry::global());
}

// ------------------------------------------------------- burn rate ----

TEST(SloBurnRate, FastAndSlowWindowsMustBothBreach) {
  SloRegistry slos;
  SloObjective burn{"svc.p99.burn", "svc.op", "p99",
                    /*threshold_s=*/0.010, /*min_samples=*/8};
  burn.burn_fast_window_s = 1.0;
  burn.burn_slow_window_s = 3.0;
  slos.declare(burn);
  // Whole-run-only objectives are skipped by evaluate_burn.
  slos.declare({"svc.p99.whole", "svc.op", "p99", 0.010, 8});

  MetricsRegistry reg;
  Histogram& h = reg.histogram("svc.op");
  TelemetryWindows windows;
  windows.feed(reg.take_snapshot(0.0));

  // Three healthy windows: 1 ms ops.
  for (int w = 1; w <= 3; ++w) {
    for (int i = 0; i < 32; ++i) h.observe(0.001);
    windows.feed(reg.take_snapshot(static_cast<double>(w)));
  }
  SloReport report = slos.evaluate_burn(windows);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].objective.name, "svc.p99.burn");
  EXPECT_EQ(report.verdicts[0].status, SloStatus::kPass);

  // A regression confined to the fast window: the slow window still holds
  // enough healthy samples that its p99... both windows now contain the
  // spike (fast window is entirely bad, slow window's p99 is dragged over
  // the threshold too once bad samples dominate its tail) — keep feeding
  // until both breach.
  for (int w = 4; w <= 6; ++w) {
    for (int i = 0; i < 32; ++i) h.observe(0.050);
    windows.feed(reg.take_snapshot(static_cast<double>(w)));
  }
  report = slos.evaluate_burn(windows);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].status, SloStatus::kBreach);
  EXPECT_GT(report.verdicts[0].observed_s, 0.010);
  EXPECT_GT(report.verdicts[0].slow_observed_s, 0.010);

  // Insufficient data: a trailing fast window with too few samples must
  // report insufficient, not pass or breach.
  for (int i = 0; i < 2; ++i) h.observe(0.050);
  windows.feed(reg.take_snapshot(7.0));
  TelemetryWindows sparse;
  sparse.feed(reg.take_snapshot(10.0));
  for (int i = 0; i < 3; ++i) h.observe(0.050);
  sparse.feed(reg.take_snapshot(11.0));
  report = slos.evaluate_burn(sparse);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].status, SloStatus::kInsufficientData);
}

// ------------------------------------------------------ TSan race ----

TEST(TelemetryRace, WritersVersusWindowedScrapes) {
  // Writers hammer one registry while a scraper snapshots it into a window
  // ring. Under -DPS_SANITIZE=thread this is the data-race probe for the
  // whole snapshot path; in any build it asserts the monotonicity
  // guarantees: no negative deltas, merged counts never exceed the final
  // cumulative count.
  MetricsRegistry reg;
  Counter& ops = reg.counter("ops");
  Histogram& lat = reg.histogram("lat");
  std::atomic<bool> stop{false};

  TelemetryWindows windows(/*capacity=*/1 << 20);
  // Seed while the registry is still empty: merged_all() telescopes to
  // (final cumulative - seed), so the baseline must predate every write.
  windows.feed(reg.take_snapshot(0.0));

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 20000; ++i) {
        ops.inc();
        lat.observe(sample_value(i * 4 + static_cast<std::uint64_t>(t)));
      }
    });
  }
  std::thread scraper([&] {
    double vtime = 0.0;
    while (!stop.load(std::memory_order_acquire)) {
      windows.feed(reg.take_snapshot(vtime));
      vtime += 1.0;
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  scraper.join();
  windows.feed(reg.take_snapshot(1e6));

  const RegistrySnapshot merged = windows.merged_all();
  const RegistrySnapshot whole = reg.take_snapshot(1e6 + 1);
  EXPECT_EQ(whole.counters.at("ops"), 80000u);
  // Quiescent scrape after all writers joined: the ring has seen every
  // increment, and clamping guarantees it never over-counts.
  EXPECT_EQ(merged.counters.at("ops"), 80000u);
  EXPECT_EQ(merged.histograms.at("lat").count, 80000u);
  for (const TelemetryWindows::Window& w : windows.windows()) {
    for (const auto& [name, value] : w.delta.counters) {
      EXPECT_LE(value, 80000u);
    }
  }
}

}  // namespace
}  // namespace ps::obs
