#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"

namespace ps {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  parallel_for(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, RespectsOffsetRange) {
  std::atomic<long> sum{0};
  parallel_for(100, 200, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(Parallel, BlocksPartitionTheRange) {
  constexpr std::size_t kN = 1'000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_blocks(0, kN, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, LargeGrainFallsBackToSerial) {
  std::atomic<int> blocks{0};
  parallel_for_blocks(
      0, 100,
      [&](std::size_t lo, std::size_t hi) {
        blocks.fetch_add(1);
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 100u);
      },
      /*min_grain=*/1000);
  EXPECT_EQ(blocks.load(), 1);
}

TEST(Parallel, ExceptionsPropagate) {
  EXPECT_THROW(
      parallel_for(0, 1000,
                   [](std::size_t i) {
                     if (i == 567) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, WorkersReported) { EXPECT_GE(parallel_workers(), 1u); }

}  // namespace
}  // namespace ps
