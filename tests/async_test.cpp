// Tier-2 suite for the asynchronous operation core: Future/Promise
// semantics, the bounded AsyncExecutor, single-flight proxy resolution
// under racing threads, and the Store deserialized-object cache under
// concurrent get_async / resolve_batch. Built with -DPS_SANITIZE=thread in
// CI so every cross-thread handoff here is TSan-checked.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "connectors/local.hpp"
#include "core/async.hpp"
#include "core/factory.hpp"
#include "core/future.hpp"
#include "core/proxy.hpp"
#include "core/store.hpp"
#include "obs/metrics.hpp"
#include "proc/world.hpp"
#include "sim/vtime.hpp"

namespace ps::core {
namespace {

using connectors::LocalConnector;

// --------------------------------------------------------------- future ----

TEST(Future, ValueRoundTrip) {
  Promise<int> promise;
  Future<int> future = promise.future();
  EXPECT_TRUE(future.valid());
  EXPECT_FALSE(future.ready());
  promise.set_value(7);
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(future.wait(), 7);
  EXPECT_EQ(future.get(), 7);
}

TEST(Future, ErrorRethrowsToEveryWaiter) {
  Promise<int> promise;
  Future<int> future = promise.future();
  promise.set_error(std::make_exception_ptr(Error("boom")));
  EXPECT_THROW(future.wait(), Error);
  EXPECT_THROW(future.get(), Error);  // sticky: rethrows every time
}

TEST(Future, DoubleCompleteThrows) {
  Promise<int> promise;
  promise.set_value(1);
  EXPECT_THROW(promise.set_value(2), Error);
}

TEST(Future, DefaultConstructedIsInvalid) {
  Future<int> future;
  EXPECT_FALSE(future.valid());
  EXPECT_THROW(future.wait(), Error);
}

TEST(Future, WaitMergesCompletingThreadsVtime) {
  sim::vset(1.0);
  Promise<Unit> promise;
  std::thread worker([&promise] {
    sim::vset(1.25);  // the completing thread's virtual clock
    promise.set_value(Unit{});
  });
  worker.join();
  promise.future().wait();
  EXPECT_DOUBLE_EQ(promise.future().done_vtime(), 1.25);
  EXPECT_GE(sim::vnow(), 1.25);  // waiter merged the completion time
}

TEST(Future, MakeReadyStampsCurrentVtime) {
  sim::vset(2.0);
  Future<int> future = make_ready_future(9);
  EXPECT_TRUE(future.ready());
  EXPECT_DOUBLE_EQ(future.done_vtime(), 2.0);
  EXPECT_EQ(future.get(), 9);
}

TEST(Future, OnReadyDeferredRunsOnCompletingThread) {
  Promise<int> promise;
  Future<int> future = promise.future();
  std::thread::id callback_thread;
  future.on_ready([&callback_thread] {
    callback_thread = std::this_thread::get_id();
  });
  std::thread worker([&promise] { promise.set_value(3); });
  const std::thread::id worker_id = worker.get_id();
  worker.join();
  EXPECT_EQ(callback_thread, worker_id);
}

TEST(Future, OnReadyRunsInlineWhenAlreadyComplete) {
  Future<int> future = make_ready_future(3);
  std::thread::id callback_thread;
  future.on_ready([&callback_thread] {
    callback_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(callback_thread, std::this_thread::get_id());
}

TEST(Future, ThenTransformsValueAndPropagatesError) {
  Promise<int> promise;
  Future<int> doubled =
      promise.future().then([](const int& v) { return v * 2; });
  promise.set_value(21);
  EXPECT_EQ(doubled.get(), 42);

  Promise<int> failing;
  Future<int> derived =
      failing.future().then([](const int& v) { return v + 1; });
  failing.set_error(std::make_exception_ptr(Error("upstream")));
  EXPECT_THROW(derived.get(), Error);
}

// ------------------------------------------------------------- executor ----

/// Fixture giving each test a one-host world and a process to run in, so
/// executor jobs have a submitting process + virtual clock to inherit.
class AsyncTest : public ::testing::Test {
 protected:
  AsyncTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("site-a", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().add_host("host-a", "site-a");
    process_ = &world_->spawn("async-proc", "host-a");
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* process_ = nullptr;
};

TEST_F(AsyncTest, RunCarriesProcessAndSeedsVtimeFromSubmitter) {
  proc::ProcessScope scope(*process_);
  sim::vset(1.0);
  Future<std::string> future =
      AsyncExecutor::shared().run<std::string>([] {
        sim::vadvance(0.5);  // charged on the worker's seeded clock
        return proc::current_process().name();
      });
  EXPECT_EQ(future.wait(), "async-proc");
  EXPECT_DOUBLE_EQ(future.done_vtime(), 1.5);
  EXPECT_DOUBLE_EQ(sim::vnow(), 1.5);  // wait() merged the job's clock
}

TEST_F(AsyncTest, RunPropagatesJobErrors) {
  proc::ProcessScope scope(*process_);
  Future<int> future = AsyncExecutor::shared().run<int>(
      []() -> int { throw Error("job failed"); });
  EXPECT_THROW(future.wait(), Error);
}

TEST_F(AsyncTest, OverlappedJobCostsMaxOfTransferAndCompute) {
  proc::ProcessScope scope(*process_);
  sim::vset(10.0);
  // Background "transfer" of 0.2 virtual seconds...
  Future<Unit> transfer = AsyncExecutor::shared().run<Unit>([] {
    sim::vadvance(0.2);
    return Unit{};
  });
  sim::vadvance(0.6);  // ...while the submitter "computes" for 0.6.
  transfer.wait();
  EXPECT_DOUBLE_EQ(sim::vnow(), 10.6);  // max(0.2, 0.6), not the sum

  Future<Unit> slow = AsyncExecutor::shared().run<Unit>([] {
    sim::vadvance(0.9);
    return Unit{};
  });
  sim::vadvance(0.1);
  slow.wait();
  EXPECT_DOUBLE_EQ(sim::vnow(), 11.5);  // 10.6 + max(0.9, 0.1)
}

TEST_F(AsyncTest, BoundedQueueBlocksSubmitterAndCountsSaturation) {
  AsyncExecutor executor(AsyncExecutor::Options{/*workers=*/1,
                                                /*max_queue=*/1});
  proc::ProcessScope scope(*process_);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  const auto gate = [&mu, &cv, &release] {
    std::unique_lock lock(mu);
    cv.wait(lock, [&release] { return release; });
    return Unit{};
  };

  const std::uint64_t saturated_before =
      obs::MetricsRegistry::global().counter("async.executor.saturated")
          .value();

  // First job occupies the single worker (blocked on the gate)...
  Future<Unit> first = executor.run<Unit>(gate);
  while (executor.queue_depth() > 0) std::this_thread::yield();
  // ...second fills the one queue slot...
  Future<Unit> second = executor.run<Unit>(gate);
  EXPECT_EQ(executor.queue_depth(), 1u);

  // ...so a third submission must block until a slot frees. It cannot
  // complete before the gate opens no matter how long we wait: the worker
  // holds job one and the queue is full.
  std::atomic<bool> third_submitted{false};
  std::thread submitter([&] {
    proc::ProcessScope worker_scope(*process_);
    Future<Unit> third = executor.run<Unit>(gate);
    third_submitted.store(true);
    third.wait();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_submitted.load());

  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();
  first.wait();
  second.wait();
  submitter.join();
  EXPECT_TRUE(third_submitted.load());
  EXPECT_GT(obs::MetricsRegistry::global()
                .counter("async.executor.saturated")
                .value(),
            saturated_before);
}

TEST_F(AsyncTest, EightWritersRacingBoundedQueueKeepTelemetryConsistent) {
  // 8 producer threads race a 2-worker pool whose queue holds 4 jobs while
  // the workers are gated shut, so every producer slams into blocking
  // backpressure at once. Under -DPS_SANITIZE=thread this is the data-race
  // gate for the saturation-telemetry counters themselves.
  constexpr std::size_t kWriters = 8;
  constexpr std::size_t kJobsPerWriter = 4;
  constexpr std::size_t kWorkers = 2;
  constexpr std::size_t kQueue = 4;

  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t submitted_before =
      registry.counter("async.executor.submitted").value();
  const std::uint64_t completed_before =
      registry.counter("async.executor.completed").value();
  const std::uint64_t saturated_before =
      registry.counter("async.executor.saturated").value();

  {
    AsyncExecutor executor(
        AsyncExecutor::Options{/*workers=*/kWorkers, /*max_queue=*/kQueue});
    proc::ProcessScope scope(*process_);

    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    const auto gate = [&mu, &cv, &release] {
      std::unique_lock lock(mu);
      cv.wait(lock, [&release] { return release; });
      return Unit{};
    };

    // Gate both workers, then fill every queue slot with gated jobs.
    std::vector<Future<Unit>> gated;
    for (std::size_t i = 0; i < kWorkers; ++i) {
      gated.push_back(executor.run<Unit>(gate));
    }
    while (executor.queue_depth() > 0) std::this_thread::yield();
    for (std::size_t i = 0; i < kQueue; ++i) {
      gated.push_back(executor.run<Unit>(gate));
    }
    EXPECT_EQ(executor.queue_depth(), kQueue);

    // Every writer's first submission must block: the queue is full and no
    // worker can drain it until the gate opens.
    std::atomic<std::size_t> writers_done{0};
    std::vector<std::thread> writers;
    for (std::size_t w = 0; w < kWriters; ++w) {
      writers.emplace_back([&] {
        proc::ProcessScope writer_scope(*process_);
        std::vector<Future<Unit>> futures;
        for (std::size_t j = 0; j < kJobsPerWriter; ++j) {
          futures.push_back(executor.run<Unit>([] { return Unit{}; }));
        }
        for (Future<Unit>& future : futures) future.wait();
        writers_done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Saturation is counted before the blocking wait, so once 8 increments
    // are visible every writer is provably stuck in its first submit.
    while (registry.counter("async.executor.saturated").value() <
           saturated_before + kWriters) {
      std::this_thread::yield();
    }
    EXPECT_EQ(writers_done.load(), 0u);

    {
      std::lock_guard lock(mu);
      release = true;
    }
    cv.notify_all();
    for (std::thread& writer : writers) writer.join();
    for (Future<Unit>& future : gated) future.wait();
    EXPECT_EQ(writers_done.load(), kWriters);
    EXPECT_EQ(executor.queue_depth(), 0u);
  }  // destructor joins the workers: counters are final below

  const std::uint64_t total = kWorkers + kQueue + kWriters * kJobsPerWriter;
  EXPECT_EQ(registry.counter("async.executor.submitted").value(),
            submitted_before + total);
  EXPECT_EQ(registry.counter("async.executor.completed").value(),
            completed_before + total);
  // Each writer's first push found the queue full, so at least 8 blocking
  // submissions were counted (later pushes may or may not block).
  EXPECT_GE(registry.counter("async.executor.saturated").value(),
            saturated_before + kWriters);
}

// ---------------------------------------------------- proxy single-flight --

TEST_F(AsyncTest, RacingResolversInvokeFactoryExactlyOnce) {
  constexpr int kThreads = 8;
  constexpr double kStart = 5.0;
  constexpr double kTransfer = 0.3;
  std::atomic<int> invocations{0};
  Proxy<int> proxy(Factory<int>(std::function<int()>([&invocations] {
    invocations.fetch_add(1, std::memory_order_relaxed);
    sim::vadvance(kTransfer);
    // Widen the race window so waiters genuinely pile onto the pending
    // future instead of arriving after completion.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return 42;
  })));

  std::vector<std::thread> threads;
  std::vector<double> observed_vtime(kThreads, 0.0);
  std::atomic<int> wrong_values{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      proc::ProcessScope scope(*process_);
      sim::vset(kStart);
      if (i % 2 == 0) proxy.resolve_async();  // mix async and sync entry
      if (proxy.resolve() != 42) wrong_values.fetch_add(1);
      observed_vtime[static_cast<std::size_t>(i)] = sim::vnow();
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(invocations.load(), 1);  // single-flight: one factory call
  EXPECT_EQ(wrong_values.load(), 0);
  EXPECT_TRUE(proxy.resolved());
  // Every observer, resolver or waiter, merged the transfer's virtual cost.
  for (const double vtime : observed_vtime) {
    EXPECT_GE(vtime, kStart + kTransfer);
  }
}

TEST_F(AsyncTest, FailedResolveRethrowsAndPermitsRetry) {
  std::atomic<int> calls{0};
  Proxy<int> proxy(Factory<int>(std::function<int()>([&calls]() -> int {
    if (calls.fetch_add(1) == 0) throw Error("transient");
    return 7;
  })));
  proc::ProcessScope scope(*process_);
  EXPECT_THROW(proxy.resolve(), Error);
  EXPECT_FALSE(proxy.resolved());
  EXPECT_EQ(proxy.resolve(), 7);  // pending slot was cleared: retry works
  EXPECT_EQ(calls.load(), 2);
}

TEST_F(AsyncTest, ProxyAsyncResolveOverlapsCompute) {
  proc::ProcessScope scope(*process_);
  sim::vset(0.0);
  Proxy<int> proxy(Factory<int>(std::function<int()>([] {
    sim::vadvance(0.3);  // simulated transfer
    return 5;
  })));
  sim::VtimeScope elapsed;
  proxy.resolve_async();  // transfer rides the shared executor
  sim::vadvance(0.5);     // compute proceeds meanwhile
  EXPECT_EQ(proxy.resolve(), 5);
  // Access merges the resolver's completion vtime: cost is max(T, C), i.e.
  // strictly less than the 0.8 a sync resolve-then-compute would pay.
  EXPECT_DOUBLE_EQ(elapsed.elapsed(), 0.5);
}

// --------------------------------------------------- store async fetches ---

/// Delegates synchronous ops to an in-process LocalConnector but keeps the
/// base-class executor-backed async adapters and the default looping
/// get_batch, so Store's async paths genuinely cross threads here. The
/// small wall-clock delay in get() widens race windows for TSan.
class AdapterConnector : public Connector {
 public:
  std::string type() const override { return "adapter-test"; }
  ConnectorConfig config() const override { return inner_.config(); }
  ConnectorTraits traits() const override { return inner_.traits(); }
  Key put(BytesView data) override { return inner_.put(data); }
  std::optional<Bytes> get(const Key& key) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return inner_.get(key);
  }
  bool exists(const Key& key) override { return inner_.exists(key); }
  void evict(const Key& key) override { inner_.evict(key); }

 private:
  LocalConnector inner_;
};

TEST_F(AsyncTest, DefaultAsyncAdaptersRideTheSharedExecutor) {
  proc::ProcessScope scope(*process_);
  AdapterConnector connector;
  const Key key = connector.put(Bytes("abc"));

  // .get() (by value) — .wait()'s reference would dangle once the
  // temporary future releases the shared state.
  const std::optional<Bytes> got = connector.get_async(key).get();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "abc");
  EXPECT_TRUE(connector.exists_async(key).wait());
  connector.evict_async(key).wait();
  EXPECT_FALSE(connector.exists(key));

  const Key stored = connector.put_async(Bytes("xyz")).wait();
  EXPECT_EQ(*connector.get_async(stored).wait(), "xyz");
}

TEST_F(AsyncTest, LocalConnectorAsyncOpsCompleteInline) {
  proc::ProcessScope scope(*process_);
  LocalConnector connector;
  Future<Key> put = connector.put_async(Bytes("abc"));
  EXPECT_TRUE(put.ready());  // native override: no executor hop
  Future<std::optional<Bytes>> get = connector.get_async(put.wait());
  EXPECT_TRUE(get.ready());
  EXPECT_EQ(*get.wait(), "abc");
}

/// Store over `connector` with a deserializer that counts invocations, so
/// tests can assert the single-deserialization-per-key guarantee.
std::shared_ptr<Store> counting_store(const std::string& name,
                                      std::shared_ptr<Connector> connector,
                                      Store::Options options,
                                      std::atomic<int>& deserializations) {
  auto store = std::make_shared<Store>(name, std::move(connector), options);
  store->register_serializer<std::string>(
      [](const std::string& value) { return Bytes(value); },
      [&deserializations](BytesView data) {
        deserializations.fetch_add(1, std::memory_order_relaxed);
        return std::string(data);
      });
  return store;
}

TEST_F(AsyncTest, ConcurrentAsyncFetchesDeserializeOncePerKey) {
  constexpr int kObjects = 8;
  constexpr int kBatchThreads = 3;
  constexpr int kSingleThreads = 3;
  std::atomic<int> deserializations{0};
  auto store =
      counting_store("async-flight", std::make_shared<AdapterConnector>(),
                     Store::Options{.cache_size = 64}, deserializations);

  std::vector<Key> keys;
  std::vector<std::string> expected;
  {
    proc::ProcessScope scope(*process_);
    for (int i = 0; i < kObjects; ++i) {
      expected.push_back("object-" + std::to_string(i));
      keys.push_back(store->put(expected.back()));
    }
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kBatchThreads; ++t) {
    threads.emplace_back([&] {
      proc::ProcessScope scope(*process_);
      const std::vector<std::optional<std::string>> values =
          store->resolve_batch<std::string>(keys);
      for (int i = 0; i < kObjects; ++i) {
        const auto index = static_cast<std::size_t>(i);
        if (!values[index] || *values[index] != expected[index]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < kSingleThreads; ++t) {
    threads.emplace_back([&] {
      proc::ProcessScope scope(*process_);
      for (int i = 0; i < kObjects; ++i) {
        const auto index = static_cast<std::size_t>(i);
        const std::optional<std::string> value =
            store->get_async<std::string>(keys[index]).get();
        if (!value || *value != expected[index]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  // Single-flight: no matter how the six threads interleave, each object
  // crosses the deserializer exactly once and lands in the cache.
  EXPECT_EQ(deserializations.load(), kObjects);
  const Store::Metrics metrics = store->metrics();
  EXPECT_EQ(metrics.gets,
            static_cast<std::uint64_t>((kBatchThreads + kSingleThreads) *
                                       kObjects));
  EXPECT_EQ(metrics.cache_evictions, 0u);  // capacity 64 never pressured
  EXPECT_LE(metrics.cache_hits,
            metrics.gets - static_cast<std::uint64_t>(kObjects));
}

TEST_F(AsyncTest, ResolveBatchDedupsRepeatsAndReportsMisses) {
  proc::ProcessScope scope(*process_);
  std::atomic<int> deserializations{0};
  auto store =
      counting_store("async-dedup", std::make_shared<LocalConnector>(),
                     Store::Options{.cache_size = 16}, deserializations);
  const Key alpha = store->put(std::string("alpha"));
  const Key beta = store->put(std::string("beta"));
  const Key missing{.object_id = "never-stored"};

  const std::vector<std::optional<std::string>> values =
      store->resolve_batch<std::string>(
          {alpha, beta, alpha, missing, beta, alpha});
  ASSERT_EQ(values.size(), 6u);
  EXPECT_EQ(values[0], "alpha");
  EXPECT_EQ(values[1], "beta");
  EXPECT_EQ(values[2], "alpha");
  EXPECT_EQ(values[3], std::nullopt);  // miss yields nullopt in place
  EXPECT_EQ(values[4], "beta");
  EXPECT_EQ(values[5], "alpha");
  // Batch-internal duplicates collapse onto one fetch + deserialization.
  EXPECT_EQ(deserializations.load(), 2);
}

TEST_F(AsyncTest, ResolveBatchEvictionMetricsStayConsistent) {
  proc::ProcessScope scope(*process_);
  std::atomic<int> deserializations{0};
  auto store =
      counting_store("async-evict", std::make_shared<LocalConnector>(),
                     Store::Options{.cache_size = 2}, deserializations);
  std::vector<Key> keys;
  for (int i = 0; i < 6; ++i) {
    keys.push_back(store->put("value-" + std::to_string(i)));
  }
  const std::vector<std::optional<std::string>> values =
      store->resolve_batch<std::string>(keys);
  for (int i = 0; i < 6; ++i) {
    const auto index = static_cast<std::size_t>(i);
    ASSERT_TRUE(values[index].has_value());
    EXPECT_EQ(*values[index], "value-" + std::to_string(i));
  }
  const Store::Metrics metrics = store->metrics();
  EXPECT_EQ(metrics.gets, 6u);
  EXPECT_EQ(metrics.cache_hits, 0u);
  EXPECT_EQ(metrics.cache_evictions, 4u);  // 6 inserts into a 2-slot LRU
  EXPECT_EQ(store->cache().size(), 2u);
  EXPECT_EQ(deserializations.load(), 6);
}

TEST_F(AsyncTest, GetAsyncCachesAndCompletesInlineOnHit) {
  proc::ProcessScope scope(*process_);
  std::atomic<int> deserializations{0};
  auto store =
      counting_store("async-hit", std::make_shared<LocalConnector>(),
                     Store::Options{.cache_size = 16}, deserializations);
  const Key key = store->put(std::string("payload"));

  const std::optional<std::string> first =
      store->get_async<std::string>(key).get();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "payload");

  Future<std::optional<std::string>> second =
      store->get_async<std::string>(key);
  EXPECT_TRUE(second.ready());  // cache hit completes inline
  EXPECT_EQ(*second.wait(), "payload");
  EXPECT_EQ(deserializations.load(), 1);
  EXPECT_GE(store->metrics().cache_hits, 1u);
}

TEST_F(AsyncTest, PrefetchWarmsTheDeserializedCache) {
  proc::ProcessScope scope(*process_);
  std::atomic<int> deserializations{0};
  auto store =
      counting_store("async-prefetch", std::make_shared<LocalConnector>(),
                     Store::Options{.cache_size = 16}, deserializations);
  std::vector<Key> keys;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(store->put("warm-" + std::to_string(i)));
  }

  store->prefetch<std::string>(keys);
  // LocalConnector's native get_async completes inline, so the cache is
  // warm (and the metrics stable) by the time prefetch returns.
  EXPECT_EQ(deserializations.load(), 4);
  for (const Key& key : keys) {
    EXPECT_TRUE(store->cache().contains(key.canonical()));
  }
  const std::optional<std::string> hit = store->get<std::string>(keys[0]);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "warm-0");
  EXPECT_EQ(deserializations.load(), 4);  // pure cache hit: no re-decode

  store->prefetch<std::string>(keys);  // cached keys are skipped entirely
  EXPECT_EQ(deserializations.load(), 4);
}

}  // namespace
}  // namespace ps::core
