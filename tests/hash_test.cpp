// SHA-256 against the FIPS 180-4 / NIST CAVP reference vectors, with the
// incremental update() path exercised across every interesting split
// boundary: the 55/56-byte padding edge (where the length field no longer
// fits the final block) and the 64-byte block edge. The swarm subsystem
// trusts these digests for chunk identity and verification, so the
// one-shot and chunked paths must agree bit-for-bit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/hash.hpp"

namespace ps {
namespace {

std::string hex(const std::array<std::uint8_t, 32>& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

TEST(Sha256, Fips180EmptyMessage) {
  EXPECT_EQ(
      Sha256::hex_digest(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Fips180OneByte) {
  // NIST CAVP SHA256ShortMsg, Len = 8, Msg = 0xd3.
  EXPECT_EQ(
      Sha256::hex_digest(Bytes(1, static_cast<char>(0xd3))),
      "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1");
}

TEST(Sha256, Fips180Abc) {
  EXPECT_EQ(
      Sha256::hex_digest("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, Fips180TwoBlockMessage) {
  // FIPS 180-4 example 2: 56 bytes, forcing the length into a second block.
  EXPECT_EQ(
      Sha256::hex_digest(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, Fips180FourBlockMessage) {
  // FIPS 180-4 SHA-512 example message (112 bytes), SHA-256 digest.
  EXPECT_EQ(
      Sha256::hex_digest(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
          "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, Fips180MillionA) {
  EXPECT_EQ(
      Sha256::hex_digest(Bytes(1'000'000, 'a')),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, PaddingEdgeLengths) {
  // 55 bytes: padding + 8-byte length exactly fill one block. 56 and 64
  // straddle the block boundary in the two other interesting ways. These
  // digests are pinned (computed with coreutils sha256sum) so a padding
  // regression cannot hide behind chunked-vs-one-shot self-consistency.
  EXPECT_EQ(
      Sha256::hex_digest(Bytes(55, 'x')),
      "d5e285683cd4efc02d021a5c62014694958901005d6f71e89e0989fac77e4072");
  EXPECT_EQ(
      Sha256::hex_digest(Bytes(56, 'x')),
      "04c26261370ee7541549d16dee320c723e3fd14671e66a099afe0a377c16888e");
  EXPECT_EQ(
      Sha256::hex_digest(Bytes(64, 'x')),
      "7ce100971f64e7001e8fe5a51973ecdfe1ced42befe7ee8d5fd6219506b5393c");
}

TEST(Sha256, IncrementalMatchesOneShotAcrossSplitBoundaries) {
  // 200 bytes of varied content split at every boundary around the padding
  // and block edges, plus degenerate 0/1-byte prefixes: the streaming
  // update() path must agree with the one-shot digest regardless of how
  // the bytes arrive — exactly what swarm chunk verification relies on.
  Bytes data;
  for (int i = 0; i < 200; ++i) data.push_back(static_cast<char>(i * 7 + 3));
  const auto reference = Sha256::digest(data);
  for (const std::size_t split :
       std::vector<std::size_t>{0, 1, 54, 55, 56, 63, 64, 65, 127, 128, 199,
                                200}) {
    Sha256 hasher;
    hasher.update(BytesView(data).substr(0, split));
    hasher.update(BytesView(data).substr(split));
    EXPECT_EQ(hex(hasher.finish()), hex(reference)) << "split=" << split;
  }
}

TEST(Sha256, IncrementalManySmallUpdates) {
  // Byte-at-a-time absorption crosses the internal 64-byte buffer dozens
  // of times; the digest must match the one-shot result.
  const Bytes data = pattern_bytes(1000, 42);
  Sha256 hasher;
  for (const char byte : data) hasher.update(BytesView(&byte, 1));
  EXPECT_EQ(hex(hasher.finish()), Sha256::hex_digest(data));
}

TEST(Sha256, ChunkedThreeWaySplit) {
  // Multi-block updates that each end mid-block.
  const Bytes data = pattern_bytes(500, 7);
  Sha256 hasher;
  hasher.update(BytesView(data).substr(0, 100));
  hasher.update(BytesView(data).substr(100, 300));
  hasher.update(BytesView(data).substr(400));
  EXPECT_EQ(hex(hasher.finish()), Sha256::hex_digest(data));
}

}  // namespace
}  // namespace ps
