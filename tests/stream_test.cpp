// ProxyStream: brokers, producer/consumer, eviction protocol, dispatch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "connectors/local.hpp"
#include "core/store.hpp"
#include "faas/cloud.hpp"
#include "faas/executor.hpp"
#include "faas/registry.hpp"
#include "kv/server.hpp"
#include "proc/world.hpp"
#include "serde/serde.hpp"
#include "stream/dispatch.hpp"
#include "stream/event.hpp"
#include "stream/kv_broker.hpp"
#include "stream/queue_broker.hpp"
#include "stream/stream.hpp"

namespace ps::stream {
namespace {

using connectors::LocalConnector;

// --------------------------------------------------------- broker layer ----

TEST(QueueBrokerTest, FanOutMidStreamJoinAndClose) {
  QueueBroker broker;
  broker.publish("t", Bytes("unreachable"));  // zero subscribers: no error
  auto sub1 = broker.subscribe("t");
  broker.publish("t", Bytes("e1"));
  auto sub2 = broker.subscribe("t");  // mid-stream joiner
  broker.publish("t", Bytes("e2"));
  EXPECT_EQ(broker.subscriber_count("t"), 2u);
  broker.close_topic("t");
  // sub1 sees everything since it joined; sub2 only what came after it.
  EXPECT_EQ(sub1->next(), Bytes("e1"));
  EXPECT_EQ(sub1->next(), Bytes("e2"));
  EXPECT_EQ(sub1->next(), std::nullopt);
  EXPECT_EQ(sub2->next(), Bytes("e2"));
  EXPECT_EQ(sub2->next(), std::nullopt);
  EXPECT_THROW(broker.publish("t", Bytes("late")), Error);
  auto sub3 = broker.subscribe("t");  // after close: immediately drained
  EXPECT_EQ(sub3->next(), std::nullopt);
}

TEST(QueueBrokerTest, FullQueueBlocksPublisher) {
  QueueBroker broker(QueueBrokerOptions{.queue_capacity = 1});
  auto sub = broker.subscribe("t");
  broker.publish("t", Bytes("e1"));
  std::atomic<bool> second_landed{false};
  std::thread publisher([&] {
    broker.publish("t", Bytes("e2"));  // blocks: queue holds e1
    second_landed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_landed.load());
  EXPECT_EQ(sub->next(), Bytes("e1"));  // frees the slot
  publisher.join();
  EXPECT_TRUE(second_landed.load());
  EXPECT_EQ(sub->next(), Bytes("e2"));
}

// ---------------------------------------------------------- event serde ----

TEST(StreamEvent, SerdeRoundTripPreservesTraceContext) {
  Event event;
  event.topic = "training";
  event.sequence = 42;
  event.payload_bytes = 1234;
  event.descriptor.store_name = "grads";
  event.descriptor.key = core::Key{.object_id = "obj-7", .meta = {{"m", "1"}}};
  event.descriptor.connector =
      core::ConnectorConfig{"local", {{"address", "local://abc"}}};
  event.descriptor.ref_counted = true;
  event.attrs = {{"epoch", "3"}, {"model", "resnet"}};
  event.trace = obs::TraceContext{0x1111, 0x2222, 0x3333, 0x4444};
  event.descriptor.trace = event.trace;
  const Event decoded = serde::from_bytes<Event>(serde::to_bytes(event));
  EXPECT_EQ(decoded, event);
  EXPECT_TRUE(decoded.trace.valid());
  EXPECT_EQ(decoded.descriptor.trace, event.trace);
}

// ------------------------------------------------- producer / consumer ----

/// Two sites, producer on one, two consumer processes on the other,
/// mirroring the cross-process resolution path of real deployments.
class StreamTest : public ::testing::Test {
 protected:
  StreamTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("site-a", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().add_site("site-b", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().connect_sites("site-a", "site-b",
                                   net::wan_tcp(20e-3, 1e9));
    world_->fabric().add_host("host-a", "site-a");
    world_->fabric().add_host("host-b", "site-b");
    producer_ = &world_->spawn("producer", "host-a");
    consumer1_ = &world_->spawn("consumer-1", "host-b");
    consumer2_ = &world_->spawn("consumer-2", "host-b");
  }

  std::shared_ptr<core::Store> make_store(const std::string& name) {
    proc::ProcessScope scope(*producer_);
    auto store = std::make_shared<core::Store>(
        name, std::make_shared<LocalConnector>());
    core::register_store(store);
    return store;
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* producer_ = nullptr;
  proc::Process* consumer1_ = nullptr;
  proc::Process* consumer2_ = nullptr;
};

TEST_F(StreamTest, SendFlushesAtItemThreshold) {
  auto store = make_store("items");
  auto broker = std::make_shared<QueueBroker>();
  proc::ProcessScope scope(*producer_);
  StreamProducer<int> producer(store, broker, "t",
                               StreamProducerOptions{.max_batch_items = 3});
  producer.send(1);
  producer.send(2);
  EXPECT_EQ(producer.pending(), 2u);
  EXPECT_EQ(producer.published(), 0u);
  producer.send(3);  // hits the item threshold: batch flushes
  EXPECT_EQ(producer.pending(), 0u);
  EXPECT_EQ(producer.published(), 3u);
}

TEST_F(StreamTest, SendFlushesAtByteThreshold) {
  auto store = make_store("bytes");
  auto broker = std::make_shared<QueueBroker>();
  proc::ProcessScope scope(*producer_);
  StreamProducer<Bytes> producer(
      store, broker, "t",
      StreamProducerOptions{.max_batch_items = 100, .max_batch_bytes = 64});
  producer.send(pattern_bytes(10));
  EXPECT_EQ(producer.pending(), 1u);
  producer.send(pattern_bytes(100));  // pushes the buffer past 64 bytes
  EXPECT_EQ(producer.pending(), 0u);
  EXPECT_EQ(producer.published(), 2u);
}

TEST_F(StreamTest, CloseFlushesPartialBatchAndEndsStream) {
  auto store = make_store("close");
  auto broker = std::make_shared<QueueBroker>();
  StreamConsumer<int> consumer(broker, "t");
  {
    proc::ProcessScope scope(*producer_);
    StreamProducer<int> producer(
        store, broker, "t", StreamProducerOptions{.max_batch_items = 100});
    producer.send(1);
    producer.send(2);
    EXPECT_EQ(producer.published(), 0u);  // below both thresholds
    producer.close();
    EXPECT_TRUE(producer.closed());
    EXPECT_EQ(producer.published(), 2u);  // close flushed the tail
    EXPECT_THROW(producer.send(3), Error);
    producer.close();  // idempotent
  }
  proc::ProcessScope scope(*consumer1_);
  auto first = consumer.next_item();
  auto second = consumer.next_item();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->event.sequence, 0u);
  EXPECT_EQ(second->event.sequence, 1u);
  EXPECT_EQ(first->proxy.resolve(), 1);
  EXPECT_EQ(second->proxy.resolve(), 2);
  EXPECT_EQ(consumer.next_item(), std::nullopt);
  EXPECT_EQ(consumer.consumed(), 2u);
}

TEST_F(StreamTest, ZeroSubscriberPublishEvictsPayloadImmediately) {
  proc::ProcessScope scope(*producer_);
  auto local = std::make_shared<LocalConnector>();
  auto store = std::make_shared<core::Store>("zero-subs", local);
  core::register_store(store);
  auto broker = std::make_shared<QueueBroker>();
  StreamProducer<int> producer(store, broker, "t");
  producer.send(7);
  EXPECT_EQ(producer.flush(), 1u);  // no error with nobody listening
  EXPECT_EQ(producer.published(), 1u);
  // Subscribers join at the tail, so the payload was unreachable: the
  // producer reclaimed the channel instead of leaking it.
  EXPECT_EQ(local->count(), 0u);
}

// Acceptance: consumers get lazily-resolving proxies and the last
// subscriber's resolve evicts — through the in-process QueueBroker.
TEST_F(StreamTest, QueueBrokerLastSubscriberResolveEvicts) {
  auto store = make_store("q-evict");
  auto broker = std::make_shared<QueueBroker>();
  StreamConsumer<std::string> consumer1(broker, "t");
  StreamConsumer<std::string> consumer2(broker, "t");
  {
    proc::ProcessScope scope(*producer_);
    StreamProducer<std::string> producer(store, broker, "t");
    producer.send("alpha");
    producer.send("beta");
    producer.close();
  }
  std::vector<StreamItem<std::string>> items1;
  std::vector<StreamItem<std::string>> items2;
  while (auto item = consumer1.next_item()) items1.push_back(std::move(*item));
  while (auto item = consumer2.next_item()) items2.push_back(std::move(*item));
  ASSERT_EQ(items1.size(), 2u);
  ASSERT_EQ(items2.size(), 2u);
  // Events arrive with unresolved proxies: no payload moved yet.
  EXPECT_FALSE(items1[0].proxy.resolved());
  EXPECT_TRUE(items1[0].event.descriptor.ref_counted);
  EXPECT_EQ(items1[0].event.payload_bytes,
            store->serialize(std::string("alpha")).size());
  const core::Key key0 = items1[0].event.descriptor.key;
  const core::Key key1 = items1[1].event.descriptor.key;
  {
    proc::ProcessScope scope(*consumer1_);
    EXPECT_EQ(items1[0].proxy.resolve(), "alpha");
    EXPECT_EQ(items1[1].proxy.resolve(), "beta");
  }
  {
    // One reference left on each payload: still in the channel.
    proc::ProcessScope scope(*producer_);
    EXPECT_TRUE(store->connector().exists(key0));
    EXPECT_TRUE(store->connector().exists(key1));
  }
  {
    proc::ProcessScope scope(*consumer2_);
    EXPECT_EQ(items2[0].proxy.resolve(), "alpha");
    EXPECT_EQ(items2[1].proxy.resolve(), "beta");
  }
  proc::ProcessScope scope(*producer_);
  EXPECT_FALSE(store->connector().exists(key0));
  EXPECT_FALSE(store->connector().exists(key1));
}

// Acceptance: the same eviction protocol through the cross-site KvBroker.
TEST_F(StreamTest, KvBrokerCrossSiteLastResolveEvicts) {
  kv::KvServer::start(*world_, "host-b", "broker");
  auto store = make_store("kv-evict");
  std::shared_ptr<KvBroker> broker;
  std::unique_ptr<StreamConsumer<std::string>> consumer;
  {
    proc::ProcessScope scope(*consumer1_);
    broker = std::make_shared<KvBroker>(kv::kv_address("host-b", "broker"));
    consumer = std::make_unique<StreamConsumer<std::string>>(broker, "kt");
  }
  {
    proc::ProcessScope scope(*producer_);
    StreamProducer<std::string> producer(store, broker, "kt");
    producer.send("gamma");
    producer.send("delta");
    producer.close();
  }
  proc::ProcessScope scope(*consumer1_);
  std::vector<StreamItem<std::string>> items;
  while (auto item = consumer->next_item()) items.push_back(std::move(*item));
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].event.sequence, 0u);
  EXPECT_EQ(items[1].event.sequence, 1u);
  EXPECT_FALSE(items[0].proxy.resolved());
  EXPECT_TRUE(items[0].event.descriptor.ref_counted);
  EXPECT_EQ(items[0].proxy.resolve(), "gamma");
  EXPECT_EQ(items[1].proxy.resolve(), "delta");
  // Single subscriber: each resolve was the last reference.
  EXPECT_FALSE(store->connector().exists(items[0].event.descriptor.key));
  EXPECT_FALSE(store->connector().exists(items[1].event.descriptor.key));
}

TEST_F(StreamTest, KvBrokerMidStreamJoinAndCloseSemantics) {
  kv::KvServer::start(*world_, "host-b", "log");
  proc::ProcessScope scope(*producer_);
  KvBroker broker(kv::kv_address("host-b", "log"));
  EXPECT_EQ(broker.subscriber_count("t"), 0u);
  broker.publish("t", Bytes("e1"));  // zero subscribers: just logged
  auto sub = broker.subscribe("t");
  EXPECT_EQ(broker.subscriber_count("t"), 1u);
  broker.publish("t", Bytes("e2"));
  broker.close_topic("t");
  // The joiner's cursor started at the tail: e1 is before its time.
  EXPECT_EQ(sub->next(), Bytes("e2"));
  EXPECT_EQ(sub->next(), std::nullopt);
  EXPECT_THROW(broker.publish("t", Bytes("late")), Error);
}

// --------------------------------------------------- dispatch-on-event ----

TEST_F(StreamTest, DispatcherBridgesEventsIntoFaas) {
  world_->fabric().add_site("cloud", net::hpc_interconnect(50e-6, 10e9));
  world_->fabric().connect_sites("site-a", "cloud", net::wan_tcp(35e-3, 1e9));
  world_->fabric().connect_sites("site-b", "cloud", net::wan_tcp(35e-3, 1e9));
  world_->fabric().add_host("cloud-host", "cloud");
  auto cloud = faas::CloudService::start(*world_, "cloud-host");
  auto& endpoint_proc = world_->spawn("endpoint", "host-b");
  // The remote function receives the serialized Event, mints the payload
  // proxy, and resolves it inside the worker — data flows channel->worker.
  faas::FunctionRegistry::instance().register_function(
      "stream-double", [](BytesView request) {
        const Event event = serde::from_bytes<Event>(request);
        core::Proxy<int> payload = payload_proxy<int>(event);
        return serde::to_bytes(*payload * 2);
      });
  faas::ComputeEndpoint endpoint(cloud, endpoint_proc);

  auto store = make_store("dispatch");
  auto broker = std::make_shared<QueueBroker>();
  std::unique_ptr<StreamDispatcher> dispatcher;
  {
    proc::ProcessScope scope(*consumer1_);
    faas::Executor executor(cloud, endpoint.uuid());
    dispatcher = std::make_unique<StreamDispatcher>(broker, "jobs", executor,
                                                    "stream-double");
  }
  {
    proc::ProcessScope scope(*producer_);
    StreamProducer<int> producer(store, broker, "jobs");
    for (int i = 1; i <= 3; ++i) producer.send(i);
    producer.close();
  }
  {
    proc::ProcessScope scope(*consumer1_);
    EXPECT_EQ(dispatcher->run(), 3u);
    EXPECT_EQ(dispatcher->dispatched(), 3u);
    ASSERT_EQ(dispatcher->futures().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(dispatcher->futures()[i].get_as<int>(),
                static_cast<int>(i + 1) * 2);
    }
  }
  endpoint.stop();
}

}  // namespace
}  // namespace ps::stream
