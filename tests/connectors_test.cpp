#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/uuid.hpp"
#include "connectors/distributed.hpp"
#include "connectors/endpoint.hpp"
#include "connectors/file.hpp"
#include "connectors/globus.hpp"
#include "connectors/local.hpp"
#include "connectors/redis.hpp"
#include "core/connector.hpp"
#include "core/multi.hpp"
#include "core/store.hpp"
#include "endpoint/endpoint.hpp"
#include "globus/transfer.hpp"
#include "kv/server.hpp"
#include "relay/relay.hpp"
#include "proc/world.hpp"
#include "sim/vtime.hpp"

namespace ps::connectors {
namespace {

namespace fs = std::filesystem;

/// Environment for connector construction: a private world with one site.
struct ConnectorEnv {
  ConnectorEnv() {
    world = std::make_unique<proc::World>();
    world->fabric().add_site("site", net::hpc_interconnect(10e-6, 10e9));
    world->fabric().add_host("host", "site");
    process = &world->spawn("proc", "host");
  }

  std::unique_ptr<proc::World> world;
  proc::Process* process = nullptr;
};

using ConnectorFactory =
    std::function<std::shared_ptr<core::Connector>(ConnectorEnv&)>;

struct ConnectorCase {
  std::string name;
  ConnectorFactory make;
};

void PrintTo(const ConnectorCase& c, std::ostream* os) { *os << c.name; }

// ---------------------------------------------------------------------------
// Shared law suite: every connector must satisfy the Connector protocol.
// ---------------------------------------------------------------------------

class ConnectorLaws : public ::testing::TestWithParam<ConnectorCase> {
 protected:
  ConnectorLaws() : scope_(*env_.process) {
    connector_ = GetParam().make(env_);
  }

  ConnectorEnv env_;
  proc::ProcessScope scope_;
  std::shared_ptr<core::Connector> connector_;
};

TEST_P(ConnectorLaws, PutThenGetReturnsSameBytes) {
  const Bytes data = pattern_bytes(1000, 1);
  const core::Key key = connector_->put(data);
  EXPECT_EQ(connector_->get(key), data);
}

TEST_P(ConnectorLaws, EmptyPayloadSupported) {
  const core::Key key = connector_->put("");
  const auto got = connector_->get(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST_P(ConnectorLaws, LargePayloadRoundTrips) {
  const Bytes data = pattern_bytes(5'000'000, 2);
  const core::Key key = connector_->put(data);
  EXPECT_EQ(connector_->get(key), data);
}

TEST_P(ConnectorLaws, DistinctPutsGetDistinctKeys) {
  const core::Key a = connector_->put("one");
  const core::Key b = connector_->put("one");
  EXPECT_NE(a.canonical(), b.canonical());
  EXPECT_EQ(connector_->get(a), "one");
  EXPECT_EQ(connector_->get(b), "one");
}

TEST_P(ConnectorLaws, ExistsReflectsLifecycle) {
  const core::Key key = connector_->put("x");
  EXPECT_TRUE(connector_->exists(key));
  connector_->evict(key);
  EXPECT_FALSE(connector_->exists(key));
}

TEST_P(ConnectorLaws, GetAfterEvictReturnsNullopt) {
  const core::Key key = connector_->put("x");
  connector_->evict(key);
  EXPECT_EQ(connector_->get(key), std::nullopt);
}

TEST_P(ConnectorLaws, EvictMissingIsNoop) {
  // A structurally valid key whose object no longer exists.
  const core::Key ghost = connector_->put("ephemeral");
  connector_->evict(ghost);
  EXPECT_NO_THROW(connector_->evict(ghost));  // double evict is a no-op
}

TEST_P(ConnectorLaws, GetMissingReturnsNullopt) {
  const core::Key ghost = connector_->put("ephemeral");
  connector_->evict(ghost);
  EXPECT_EQ(connector_->get(ghost), std::nullopt);
}

TEST_P(ConnectorLaws, PutBatchMatchesIndividualPuts) {
  const std::vector<Bytes> items{"a", "bb", "ccc"};
  const auto keys = connector_->put_batch(items);
  ASSERT_EQ(keys.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(connector_->get(keys[i]), items[i]);
  }
}

TEST_P(ConnectorLaws, ConfigReconstructsEquivalentConnector) {
  const Bytes data = pattern_bytes(500, 3);
  const core::Key key = connector_->put(data);
  auto rebuilt =
      core::ConnectorRegistry::instance().reconstruct(connector_->config());
  EXPECT_EQ(rebuilt->type(), connector_->type());
  EXPECT_EQ(rebuilt->get(key), data);  // same underlying channel
}

TEST_P(ConnectorLaws, TraitsAreDeclared) {
  const auto traits = connector_->traits();
  EXPECT_FALSE(traits.storage.empty());
}

TEST_P(ConnectorLaws, StoreProxyRoundTripsAcrossProcesses) {
  // The end-to-end law every connector must satisfy: a proxy created from
  // a Store over this connector, serialized and resolved in another
  // simulated process, yields the original object.
  auto store = std::make_shared<core::Store>(
      "laws-store-" + GetParam().name + "-" + Uuid::random().str(),
      connector_);
  core::register_store(store);
  const Bytes wire = serde::to_bytes(store->proxy(pattern_bytes(2000, 11)));
  proc::Process& other = env_.world->spawn(
      "laws-consumer-" + Uuid::random().str(), "host");
  proc::ProcessScope scope(other);
  auto proxy = serde::from_bytes<core::Proxy<Bytes>>(wire);
  EXPECT_TRUE(check_pattern(*proxy, 11));
}

TEST_P(ConnectorLaws, ConcurrentPutsAndGetsAreSafe) {
  constexpr int kThreads = 4;
  constexpr int kOpsEach = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      proc::ProcessScope scope(*env_.process);
      for (int i = 0; i < kOpsEach; ++i) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(t) * 1000 + static_cast<std::uint64_t>(i);
        const Bytes data = pattern_bytes(500, seed);
        const core::Key key = connector_->put(data);
        const auto got = connector_->get(key);
        if (!got || !check_pattern(*got, seed)) failures.fetch_add(1);
        connector_->evict(key);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(ConnectorLaws, AddressedWritesWhenSupported) {
  // Connectors supporting put_at honor reserve_key/put_at semantics:
  // the key reads back the written bytes; unsupported connectors say so.
  core::Key key;
  try {
    key = connector_->reserve_key();
  } catch (const ConnectorError&) {
    core::Key some{.object_id = "x", .meta = {}};
    EXPECT_FALSE(connector_->put_at(some, "data"));
    return;
  }
  EXPECT_EQ(connector_->get(key), std::nullopt);  // reserved, not written
  EXPECT_TRUE(connector_->put_at(key, "addressed"));
  EXPECT_EQ(connector_->get(key), "addressed");
  EXPECT_TRUE(connector_->put_at(key, "overwritten"));
  EXPECT_EQ(connector_->get(key), "overwritten");
}

INSTANTIATE_TEST_SUITE_P(
    AllConnectors, ConnectorLaws,
    ::testing::Values(
        ConnectorCase{"local",
                      [](ConnectorEnv&) {
                        return std::make_shared<LocalConnector>();
                      }},
        ConnectorCase{"file",
                      [](ConnectorEnv&) {
                        const fs::path dir =
                            fs::temp_directory_path() /
                            ("ps_file_laws_" + Uuid::random().str());
                        return std::make_shared<FileConnector>(dir);
                      }},
        ConnectorCase{"redis",
                      [](ConnectorEnv& env) {
                        kv::KvServer::start(*env.world, "host", "laws");
                        return std::make_shared<RedisConnector>(
                            kv::kv_address("host", "laws"));
                      }},
        ConnectorCase{"margo",
                      [](ConnectorEnv&) {
                        return std::make_shared<MargoConnector>(
                            "laws-margo-" + Uuid::random().str());
                      }},
        ConnectorCase{"ucx",
                      [](ConnectorEnv&) {
                        return std::make_shared<UCXConnector>(
                            "laws-ucx-" + Uuid::random().str());
                      }},
        ConnectorCase{"zmq",
                      [](ConnectorEnv&) {
                        return std::make_shared<ZMQConnector>(
                            "laws-zmq-" + Uuid::random().str());
                      }},
        ConnectorCase{"globus",
                      [](ConnectorEnv& env) {
                        auto service = globus::TransferService::start(
                            *env.world);
                        const fs::path base =
                            fs::temp_directory_path() /
                            ("ps_globus_laws_" + Uuid::random().str());
                        const Uuid a =
                            service->register_endpoint("host", base / "a");
                        const Uuid b =
                            service->register_endpoint("host", base / "b");
                        return std::make_shared<GlobusConnector>(
                            std::vector<GlobusEndpointSpec>{
                                {"^host$", a}, {"^never-matches$", b}});
                      }},
        ConnectorCase{"endpoint",
                      [](ConnectorEnv& env) {
                        relay::RelayServer::start(*env.world, "host",
                                                  "laws-relay");
                        endpoint::Endpoint::start(
                            *env.world, "host",
                            "laws-ep-" + Uuid::random().str(),
                            "relay://host/laws-relay");
                        // Find the endpoint address we just bound.
                        std::vector<std::string> addresses;
                        for (const auto& addr :
                             env.world->services().addresses()) {
                          if (addr.rfind("psep://", 0) == 0) {
                            addresses.push_back(addr);
                          }
                        }
                        return std::make_shared<EndpointConnector>(addresses);
                      }}),
    [](const ::testing::TestParamInfo<ConnectorCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Connector-specific behaviour.
// ---------------------------------------------------------------------------

TEST(FileConnector, PersistsAcrossInstances) {
  ConnectorEnv env;
  proc::ProcessScope scope(*env.process);
  const fs::path dir =
      fs::temp_directory_path() / ("ps_file_persist_" + Uuid::random().str());
  core::Key key;
  {
    FileConnector c(dir);
    key = c.put("durable");
  }
  {
    FileConnector c(dir);  // new instance over the same directory
    EXPECT_EQ(c.get(key), "durable");
  }
  fs::remove_all(dir);
}

TEST(FileConnector, RejectsPathTraversalKeys) {
  ConnectorEnv env;
  proc::ProcessScope scope(*env.process);
  const fs::path dir =
      fs::temp_directory_path() / ("ps_file_sec_" + Uuid::random().str());
  FileConnector c(dir);
  core::Key evil{.object_id = "../../etc/passwd", .meta = {}};
  EXPECT_THROW(c.get(evil), ConnectorError);
  fs::remove_all(dir);
}

TEST(FileConnector, ChargesDiskCosts) {
  ConnectorEnv env;
  proc::ProcessScope scope(*env.process);
  sim::VtimeGuard guard;
  const fs::path dir =
      fs::temp_directory_path() / ("ps_file_cost_" + Uuid::random().str());
  FileConnector c(dir);
  sim::VtimeScope vt;
  const core::Key key = c.put(pattern_bytes(1'000'000));
  c.get(key);
  // Host defaults: 1 GB/s write + 2 GB/s read + 2x1 ms latency.
  EXPECT_NEAR(vt.elapsed(), 1e-3 + 1e-3 + 1e-3 + 0.5e-3, 1e-4);
  fs::remove_all(dir);
}

TEST(LocalConnector, SharedAcrossProcessesInWorld) {
  ConnectorEnv env;
  proc::Process& other = env.world->spawn("other", "host");
  core::Key key;
  std::string address;
  {
    proc::ProcessScope scope(*env.process);
    LocalConnector c;
    key = c.put("shared");
    address = c.address();
  }
  {
    proc::ProcessScope scope(other);
    LocalConnector c(address);
    EXPECT_EQ(c.get(key), "shared");
  }
}

TEST(LocalConnector, IsolatedBetweenInstances) {
  ConnectorEnv env;
  proc::ProcessScope scope(*env.process);
  LocalConnector a;
  LocalConnector b;
  const core::Key key = a.put("mine");
  EXPECT_EQ(b.get(key), std::nullopt);
}

TEST(RedisConnector, SharesServerBetweenConnectors) {
  ConnectorEnv env;
  kv::KvServer::start(*env.world, "host", "shared");
  proc::ProcessScope scope(*env.process);
  RedisConnector a(kv::kv_address("host", "shared"));
  RedisConnector b(kv::kv_address("host", "shared"));
  const core::Key key = a.put("via-a");
  EXPECT_EQ(b.get(key), "via-a");
}

TEST(RedisConnector, MissingServerThrowsAtConstruction) {
  ConnectorEnv env;
  proc::ProcessScope scope(*env.process);
  EXPECT_THROW(RedisConnector("redis://host/none"), NotRegisteredError);
}

// ---------------------------------------------------------------------------
// exists_batch: bulk presence probes (the swarm discovery primitive).
// ---------------------------------------------------------------------------

TEST(LocalConnector, ExistsBatchMatchesPerKeyExists) {
  ConnectorEnv env;
  proc::ProcessScope scope(*env.process);
  LocalConnector c;
  const core::Key a = c.put("alpha");
  const core::Key b = c.put("beta");
  core::Key gone = c.put("gone");
  c.evict(gone);
  const std::vector<core::Key> keys{a, gone, b, a};
  const std::vector<bool> present = c.exists_batch(keys);
  ASSERT_EQ(present.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(present[i], c.exists(keys[i])) << "key " << i;
  }
  EXPECT_TRUE(c.exists_batch({}).empty());
}

TEST(RedisConnector, ExistsBatchIsOnePipelinedRoundTrip) {
  ConnectorEnv env;
  kv::KvServer::start(*env.world, "host", "probe");
  proc::ProcessScope scope(*env.process);
  RedisConnector c(kv::kv_address("host", "probe"));
  std::vector<core::Key> keys;
  for (int i = 0; i < 8; ++i) {
    keys.push_back(c.put(pattern_bytes(100, static_cast<std::uint64_t>(i))));
  }
  core::Key missing = keys.back();
  c.evict(missing);

  // Pipelined batch probe vs. eight sequential exists() calls: the batch
  // pays one KV round trip, so it must be strictly cheaper in virtual time.
  sim::VtimeGuard guard;
  std::vector<bool> batch;
  double batch_s = 0.0;
  {
    sim::VtimeScope elapsed;
    batch = c.exists_batch(keys);
    batch_s = elapsed.elapsed();
  }
  double loop_s = 0.0;
  std::vector<bool> loop;
  {
    sim::VtimeScope elapsed;
    for (const core::Key& key : keys) loop.push_back(c.exists(key));
    loop_s = elapsed.elapsed();
  }
  EXPECT_EQ(batch, loop);
  EXPECT_FALSE(batch[keys.size() - 1]);  // evicted key reads absent
  EXPECT_TRUE(batch[0]);
  EXPECT_LT(batch_s, loop_s);
}

TEST(MultiConnector, ExistsBatchRoutesPerChildAndPreservesOrder) {
  ConnectorEnv env;
  proc::ProcessScope scope(*env.process);
  auto small = std::make_shared<LocalConnector>();
  auto large = std::make_shared<LocalConnector>();
  core::Policy small_policy;
  small_policy.max_size = 1000;
  core::Policy large_policy;
  large_policy.min_size = 1001;
  core::MultiConnector multi({{"small", small, small_policy},
                              {"large", large, large_policy}});
  // Interleave children so the scatter back to request order is exercised.
  std::vector<core::Key> keys;
  for (int i = 0; i < 6; ++i) {
    keys.push_back(multi.put(pattern_bytes(i % 2 == 0 ? 100 : 5000,
                                           static_cast<std::uint64_t>(i))));
  }
  multi.evict(keys[1]);
  multi.evict(keys[4]);
  const std::vector<bool> present = multi.exists_batch(keys);
  ASSERT_EQ(present.size(), keys.size());
  const std::vector<bool> expected{true, false, true, true, false, true};
  EXPECT_EQ(present, expected);
}

TEST(RedisConnector, Traits) {
  ConnectorEnv env;
  kv::KvServer::start(*env.world, "host", "traits");
  proc::ProcessScope scope(*env.process);
  RedisConnector c(kv::kv_address("host", "traits"));
  const auto t = c.traits();
  EXPECT_EQ(t.storage, "hybrid");
  EXPECT_TRUE(t.intra_site);
  EXPECT_FALSE(t.inter_site);
  EXPECT_TRUE(t.persistent);
}

}  // namespace
}  // namespace ps::connectors
