#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "globus/transfer.hpp"
#include "proc/world.hpp"
#include "sim/vtime.hpp"

namespace ps::globus {
namespace {

namespace fs = std::filesystem;

class GlobusTest : public ::testing::Test {
 protected:
  GlobusTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("anl", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().add_site("tacc", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().connect_sites("anl", "tacc", net::wan_tcp(25e-3, 1.25e9));
    world_->fabric().add_host("theta-login", "anl");
    world_->fabric().add_host("frontera-login", "tacc");
    process_ = &world_->spawn("client", "theta-login");
    service_ = TransferService::start(*world_);
    dir_a_ = fs::temp_directory_path() / ("ps_globus_a_" + Uuid::random().str());
    dir_b_ = fs::temp_directory_path() / ("ps_globus_b_" + Uuid::random().str());
    ep_a_ = service_->register_endpoint("theta-login", dir_a_);
    ep_b_ = service_->register_endpoint("frontera-login", dir_b_);
  }

  ~GlobusTest() override {
    fs::remove_all(dir_a_);
    fs::remove_all(dir_b_);
  }

  void write_file(const fs::path& dir, const std::string& name,
                  const Bytes& data) {
    std::ofstream out(dir / name, std::ios::binary);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  Bytes read_file(const fs::path& dir, const std::string& name) {
    std::ifstream in(dir / name, std::ios::binary);
    return Bytes((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* process_ = nullptr;
  std::shared_ptr<TransferService> service_;
  fs::path dir_a_, dir_b_;
  Uuid ep_a_, ep_b_;
};

TEST_F(GlobusTest, TransferCopiesFiles) {
  proc::ProcessScope scope(*process_);
  const Bytes data = pattern_bytes(10000, 1);
  write_file(dir_a_, "obj1", data);
  const Uuid task = service_->submit(ep_a_, ep_b_, {"obj1"});
  service_->wait(task);
  EXPECT_EQ(read_file(dir_b_, "obj1"), data);
}

TEST_F(GlobusTest, TaskStatusProgressesWithVirtualTime) {
  proc::ProcessScope scope(*process_);
  sim::VtimeGuard guard;
  write_file(dir_a_, "obj2", pattern_bytes(1000));
  const Uuid task = service_->submit(ep_a_, ep_b_, {"obj2"});
  EXPECT_EQ(service_->status(task), TaskStatus::kActive);
  sim::vadvance(60.0);
  EXPECT_EQ(service_->status(task), TaskStatus::kSucceeded);
}

TEST_F(GlobusTest, WaitAdvancesToCompletion) {
  proc::ProcessScope scope(*process_);
  sim::VtimeGuard guard;
  write_file(dir_a_, "obj3", pattern_bytes(1000));
  sim::VtimeScope vt;
  const Uuid task = service_->submit(ep_a_, ep_b_, {"obj3"});
  service_->wait(task);
  // Dominated by the per-task SaaS overhead (default 2 s).
  EXPECT_GE(vt.elapsed(), 2.0);
  EXPECT_LT(vt.elapsed(), 5.0);
}

TEST_F(GlobusTest, BulkBandwidthIsHigh) {
  // The hybrid SaaS model: large transfers approach link bandwidth.
  proc::ProcessScope scope(*process_);
  sim::VtimeGuard guard;
  const std::size_t bytes = 200'000'000;
  write_file(dir_a_, "big", pattern_bytes(bytes));
  sim::VtimeScope vt;
  service_->wait(service_->submit(ep_a_, ep_b_, {"big"}));
  const double wire_floor = static_cast<double>(bytes) / 1.25e9;
  EXPECT_LT(vt.elapsed(), 2.0 /*overhead*/ + 3.0 * wire_floor);
}

TEST_F(GlobusTest, MissingSourceFileFailsTask) {
  proc::ProcessScope scope(*process_);
  const Uuid task = service_->submit(ep_a_, ep_b_, {"does-not-exist"});
  EXPECT_EQ(service_->status(task), TaskStatus::kFailed);
  EXPECT_THROW(service_->wait(task), TransferError);
}

TEST_F(GlobusTest, FailingEndpointFailsTask) {
  proc::ProcessScope scope(*process_);
  write_file(dir_a_, "obj4", pattern_bytes(100));
  service_->set_endpoint_failing(ep_b_, true);
  const Uuid task = service_->submit(ep_a_, ep_b_, {"obj4"});
  EXPECT_THROW(service_->wait(task), TransferError);
  service_->set_endpoint_failing(ep_b_, false);
  const Uuid retry = service_->submit(ep_a_, ep_b_, {"obj4"});
  EXPECT_NO_THROW(service_->wait(retry));
}

TEST_F(GlobusTest, UnknownTaskOrEndpointThrows) {
  proc::ProcessScope scope(*process_);
  EXPECT_THROW(service_->status(Uuid::random()), TransferError);
  EXPECT_THROW(service_->wait(Uuid::random()), TransferError);
  EXPECT_THROW(service_->submit(Uuid::random(), ep_b_, {}), TransferError);
  EXPECT_THROW(service_->endpoint_host(Uuid::random()), TransferError);
}

TEST_F(GlobusTest, BatchCheaperThanIndividualTransfers) {
  proc::ProcessScope scope(*process_);
  sim::VtimeGuard guard;
  for (int i = 0; i < 8; ++i) {
    write_file(dir_a_, "batch" + std::to_string(i), pattern_bytes(1000));
  }
  sim::VtimeScope batch_scope;
  std::vector<std::string> files;
  for (int i = 0; i < 8; ++i) files.push_back("batch" + std::to_string(i));
  service_->wait(service_->submit(ep_a_, ep_b_, files));
  const double batch = batch_scope.elapsed();

  sim::VtimeScope individual_scope;
  for (const std::string& f : files) {
    service_->wait(service_->submit(ep_a_, ep_b_, {f}));
  }
  EXPECT_LT(batch, individual_scope.elapsed() / 2.0);
}

TEST_F(GlobusTest, ConnectResolvesRunningService) {
  proc::ProcessScope scope(*process_);
  EXPECT_EQ(TransferService::connect(), service_);
}

}  // namespace
}  // namespace ps::globus
