// AccessControlConnector: confidential objects resolve only where
// permitted (paper section 3.3's patient-health-information example).
#include <gtest/gtest.h>

#include "connectors/access.hpp"
#include "connectors/local.hpp"
#include "core/store.hpp"
#include "proc/world.hpp"
#include "serde/serde.hpp"

namespace ps::connectors {
namespace {

class AccessTest : public ::testing::Test {
 protected:
  AccessTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("hospital", net::hpc_interconnect(1e-5, 1e9));
    world_->fabric().add_site("hpc", net::hpc_interconnect(1e-5, 1e9));
    world_->fabric().add_site("cloud", net::hpc_interconnect(1e-5, 1e9));
    world_->fabric().connect_sites("hospital", "hpc", net::wan_tcp(5e-3, 1e9));
    world_->fabric().connect_sites("hospital", "cloud",
                                   net::wan_tcp(5e-3, 1e9));
    world_->fabric().add_host("hospital-node", "hospital");
    world_->fabric().add_host("hpc-node", "hpc");
    world_->fabric().add_host("cloud-node", "cloud");
    hospital_ = &world_->spawn("hospital-proc", "hospital-node");
    hpc_ = &world_->spawn("hpc-proc", "hpc-node");
    cloud_ = &world_->spawn("cloud-proc", "cloud-node");
  }

  std::shared_ptr<AccessControlConnector> make_connector() {
    proc::ProcessScope scope(*hospital_);
    return std::make_shared<AccessControlConnector>(
        std::make_shared<LocalConnector>(),
        std::set<std::string>{"hospital", "hpc"});
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* hospital_ = nullptr;
  proc::Process* hpc_ = nullptr;
  proc::Process* cloud_ = nullptr;
};

TEST_F(AccessTest, AllowedSitesResolve) {
  auto connector = make_connector();
  core::Key key;
  {
    proc::ProcessScope scope(*hospital_);
    key = connector->put("phi-record");
    EXPECT_EQ(connector->get(key), "phi-record");
  }
  proc::ProcessScope scope(*hpc_);
  EXPECT_EQ(connector->get(key), "phi-record");
  EXPECT_TRUE(connector->exists(key));
}

TEST_F(AccessTest, DisallowedSiteDenied) {
  auto connector = make_connector();
  core::Key key;
  {
    proc::ProcessScope scope(*hospital_);
    key = connector->put("phi-record");
  }
  proc::ProcessScope scope(*cloud_);
  EXPECT_THROW(connector->get(key), AccessDeniedError);
  EXPECT_THROW(connector->exists(key), AccessDeniedError);
}

TEST_F(AccessTest, ProxyCirculatesButResolvesOnlyWherePermitted) {
  Bytes wire;
  {
    proc::ProcessScope scope(*hospital_);
    auto store = std::make_shared<core::Store>("phi-store", make_connector());
    core::register_store(store);
    wire = serde::to_bytes(store->proxy(std::string("scan-data")));
  }
  {
    // The proxy itself travels anywhere — including the cloud...
    proc::ProcessScope scope(*cloud_);
    auto proxy = serde::from_bytes<core::Proxy<std::string>>(wire);
    EXPECT_THROW(proxy.resolve(), AccessDeniedError);
  }
  {
    // ...but the data only materializes at permitted sites.
    proc::ProcessScope scope(*hpc_);
    auto proxy = serde::from_bytes<core::Proxy<std::string>>(wire);
    EXPECT_EQ(*proxy, "scan-data");
  }
}

TEST_F(AccessTest, ConfigRoundTripsThroughRegistry) {
  auto connector = make_connector();
  core::Key key;
  {
    proc::ProcessScope scope(*hospital_);
    key = connector->put("data");
  }
  proc::ProcessScope scope(*hpc_);
  auto rebuilt =
      core::ConnectorRegistry::instance().reconstruct(connector->config());
  EXPECT_EQ(rebuilt->type(), "access");
  EXPECT_EQ(rebuilt->get(key), "data");
}

TEST_F(AccessTest, EvictionAllowedAnywhere) {
  // Deleting data is not an information flow; any holder may evict.
  auto connector = make_connector();
  core::Key key;
  {
    proc::ProcessScope scope(*hospital_);
    key = connector->put("data");
  }
  {
    proc::ProcessScope scope(*cloud_);
    EXPECT_NO_THROW(connector->evict(key));
  }
  proc::ProcessScope scope(*hospital_);
  EXPECT_FALSE(connector->exists(key));
}

TEST_F(AccessTest, RejectsBadConstruction) {
  proc::ProcessScope scope(*hospital_);
  EXPECT_THROW(AccessControlConnector(nullptr, {"hospital"}), ConnectorError);
  EXPECT_THROW(
      AccessControlConnector(std::make_shared<LocalConnector>(), {}),
      ConnectorError);
}

TEST_F(AccessTest, DataflowFuturesRespectAccessControl) {
  proc::ProcessScope scope(*hospital_);
  auto store = std::make_shared<core::Store>("phi-df", make_connector());
  core::register_store(store);
  auto future = store->make_future<std::string>();
  store->fulfill(future.key, std::string("late-phi"));
  const Bytes wire = serde::to_bytes(future.proxy);
  {
    proc::ProcessScope cloud_scope(*cloud_);
    auto proxy = serde::from_bytes<core::Proxy<std::string>>(wire);
    EXPECT_THROW(proxy.resolve(), AccessDeniedError);
  }
  EXPECT_EQ(*future.proxy, "late-phi");
}

}  // namespace
}  // namespace ps::connectors
