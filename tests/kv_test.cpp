#include <gtest/gtest.h>

#include <filesystem>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "kv/client.hpp"
#include "kv/server.hpp"
#include "proc/world.hpp"
#include "sim/vtime.hpp"

namespace ps::kv {
namespace {

namespace fs = std::filesystem;

class KvTest : public ::testing::Test {
 protected:
  KvTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("site", net::hpc_interconnect(50e-6, 10e9));
    world_->fabric().add_host("server-host", "site");
    world_->fabric().add_host("client-host", "site");
    client_proc_ = &world_->spawn("client", "client-host");
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* client_proc_ = nullptr;
};

TEST_F(KvTest, SetGetRoundTrip) {
  auto server = KvServer::start(*world_, "server-host", "db");
  proc::ProcessScope scope(*client_proc_);
  KvClient client(kv_address("server-host", "db"));
  client.set("k", "value");
  EXPECT_EQ(client.get("k"), "value");
}

TEST_F(KvTest, GetMissingReturnsNullopt) {
  KvServer::start(*world_, "server-host", "db");
  proc::ProcessScope scope(*client_proc_);
  KvClient client(kv_address("server-host", "db"));
  EXPECT_EQ(client.get("nope"), std::nullopt);
}

TEST_F(KvTest, ExistsAndDelete) {
  KvServer::start(*world_, "server-host", "db");
  proc::ProcessScope scope(*client_proc_);
  KvClient client(kv_address("server-host", "db"));
  client.set("k", "v");
  EXPECT_TRUE(client.exists("k"));
  EXPECT_TRUE(client.del("k"));
  EXPECT_FALSE(client.exists("k"));
  EXPECT_FALSE(client.del("k"));
}

TEST_F(KvTest, OverwriteReplacesValue) {
  KvServer::start(*world_, "server-host", "db");
  proc::ProcessScope scope(*client_proc_);
  KvClient client(kv_address("server-host", "db"));
  client.set("k", "v1");
  client.set("k", "v2");
  EXPECT_EQ(client.get("k"), "v2");
}

TEST_F(KvTest, BinaryValuesAreSafe) {
  KvServer::start(*world_, "server-host", "db");
  proc::ProcessScope scope(*client_proc_);
  KvClient client(kv_address("server-host", "db"));
  const Bytes blob = pattern_bytes(100000, 9);
  client.set("blob", blob);
  EXPECT_EQ(client.get("blob"), blob);
}

TEST_F(KvTest, UnknownAddressThrows) {
  proc::ProcessScope scope(*client_proc_);
  EXPECT_THROW(KvClient("redis://nowhere/db"), NotRegisteredError);
}

TEST_F(KvTest, TtlExpiresInVirtualTime) {
  auto server = KvServer::start(*world_, "server-host", "db");
  proc::ProcessScope scope(*client_proc_);
  sim::VtimeGuard guard;
  KvClient client(kv_address("server-host", "db"));
  client.set("k", "v", std::chrono::milliseconds(100));
  EXPECT_EQ(client.get("k"), "v");
  sim::vadvance(0.2);  // 200 ms of virtual time pass
  EXPECT_EQ(client.get("k"), std::nullopt);
}

TEST_F(KvTest, OperationsChargeVirtualTime) {
  KvServer::start(*world_, "server-host", "db");
  proc::ProcessScope scope(*client_proc_);
  sim::VtimeGuard guard;
  KvClient client(kv_address("server-host", "db"));
  sim::VtimeScope scope_small;
  client.set("small", pattern_bytes(100));
  const double small_cost = scope_small.elapsed();
  sim::VtimeScope scope_large;
  client.set("large", pattern_bytes(100'000'000));
  const double large_cost = scope_large.elapsed();
  EXPECT_GT(small_cost, 0.0);
  EXPECT_GT(large_cost, 10.0 * small_cost);
}

TEST_F(KvTest, QueueSerializesConcurrentVirtualRequests) {
  auto server = KvServer::start(*world_, "server-host", "db");
  // Two requests arriving at the same virtual instant are served one after
  // the other by the single-threaded server.
  const double service = server->service_time(0);
  const double first = server->queue().schedule(0.0, service);
  const double second = server->queue().schedule(0.0, service);
  EXPECT_NEAR(second - first, service, 1e-12);
}

TEST_F(KvTest, AofPersistsAcrossRestart) {
  const fs::path aof = fs::temp_directory_path() / "ps_kv_test.aof";
  fs::remove(aof);
  KvServerOptions opts;
  opts.aof_path = aof;
  {
    KvServer server("server-host", opts);
    server.set("persisted", "yes");
    server.set("deleted", "gone");
    server.del("deleted");
  }
  {
    KvServer revived("server-host", opts);
    EXPECT_EQ(revived.get("persisted"), "yes");
    EXPECT_EQ(revived.get("deleted"), std::nullopt);
    EXPECT_EQ(revived.size(), 1u);
  }
  fs::remove(aof);
}

TEST_F(KvTest, CorruptAofRejected) {
  const fs::path aof = fs::temp_directory_path() / "ps_kv_corrupt.aof";
  {
    std::ofstream out(aof, std::ios::binary | std::ios::trunc);
    out << "garbage that is not a record";
  }
  KvServerOptions opts;
  opts.aof_path = aof;
  EXPECT_THROW(KvServer("server-host", opts), ps::Error);
  fs::remove(aof);
}

TEST_F(KvTest, SetManyStoresAllPairs) {
  KvServer::start(*world_, "server-host", "db");
  proc::ProcessScope scope(*client_proc_);
  KvClient client(kv_address("server-host", "db"));
  client.set_many({{"a", "1"}, {"b", "2"}, {"c", "3"}});
  EXPECT_EQ(client.get("a"), "1");
  EXPECT_EQ(client.get("b"), "2");
  EXPECT_EQ(client.get("c"), "3");
}

TEST_F(KvTest, PipelinedSetManyCheaperThanIndividualSets) {
  KvServer::start(*world_, "server-host", "db");
  proc::ProcessScope scope(*client_proc_);
  sim::VtimeGuard guard;
  KvClient client(kv_address("server-host", "db"));
  std::vector<std::pair<std::string, Bytes>> pairs;
  for (int i = 0; i < 32; ++i) {
    pairs.emplace_back("k" + std::to_string(i), pattern_bytes(100));
  }
  sim::VtimeScope individual;
  for (const auto& [key, value] : pairs) client.set(key, value);
  const double one_by_one = individual.elapsed();
  sim::VtimeScope batched;
  client.set_many(pairs);
  // One round trip instead of 32.
  EXPECT_LT(batched.elapsed(), one_by_one / 8.0);
}

TEST_F(KvTest, FlushAllEmptiesStore) {
  KvServer server("server-host");
  server.set("a", "1");
  server.set("b", "2");
  EXPECT_EQ(server.size(), 2u);
  server.flush_all();
  EXPECT_EQ(server.size(), 0u);
}

TEST_F(KvTest, RebindSimulatesServerRestart) {
  KvServer::start(*world_, "server-host", "db");
  {
    proc::ProcessScope scope(*client_proc_);
    KvClient client(kv_address("server-host", "db"));
    client.set("k", "v");
  }
  // Restart: a fresh (empty) server takes over the address.
  KvServer::start(*world_, "server-host", "db");
  proc::ProcessScope scope(*client_proc_);
  KvClient client(kv_address("server-host", "db"));
  EXPECT_EQ(client.get("k"), std::nullopt);
}

}  // namespace
}  // namespace ps::kv
