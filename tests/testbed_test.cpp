#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace ps::testbed {
namespace {

class TestbedTest : public ::testing::Test {
 protected:
  TestbedTest() : tb_(build()) {}
  Testbed tb_;
};

TEST_F(TestbedTest, AllNamedHostsExist) {
  const net::Fabric& fabric = tb_.world->fabric();
  for (const std::string& host :
       {tb_.theta_login, tb_.theta_compute0, tb_.theta_compute1,
        tb_.polaris_login, tb_.polaris_compute0, tb_.perlmutter_login,
        tb_.perlmutter_compute, tb_.midway_login, tb_.frontera_login,
        tb_.chameleon0, tb_.chameleon1, tb_.cloud, tb_.relay_host,
        tb_.remote_gpu}) {
    EXPECT_TRUE(fabric.has_host(host)) << host;
  }
  for (const std::string& edge : tb_.edge_devices) {
    EXPECT_TRUE(fabric.has_host(edge)) << edge;
  }
}

TEST_F(TestbedTest, IntraSiteFasterThanInterSite) {
  const net::Fabric& fabric = tb_.world->fabric();
  const std::size_t bytes = 1'000'000;
  const double intra =
      fabric.transfer_time(tb_.theta_login, tb_.theta_compute0, bytes);
  const double inter =
      fabric.transfer_time(tb_.midway_login, tb_.theta_login, bytes);
  EXPECT_LT(intra, inter);
}

TEST_F(TestbedTest, FronteraFartherThanMidwayFromTheta) {
  // Packets travel ~1500 km Frontera->Theta vs tens of km Midway->Theta.
  const net::Fabric& fabric = tb_.world->fabric();
  EXPECT_GT(fabric.route(tb_.frontera_login, tb_.theta_login).rtt(),
            5.0 * fabric.route(tb_.midway_login, tb_.theta_login).rtt());
}

TEST_F(TestbedTest, PolarisFasterFabricThanChameleon) {
  const net::Fabric& fabric = tb_.world->fabric();
  const std::size_t bytes = 1'000'000'000;
  EXPECT_LT(
      fabric.transfer_time(tb_.polaris_compute0, tb_.polaris_compute1, bytes),
      fabric.transfer_time(tb_.chameleon0, tb_.chameleon1, bytes));
}

TEST_F(TestbedTest, EdgeDevicesBehindNat) {
  const net::Fabric& fabric = tb_.world->fabric();
  for (const std::string& edge : tb_.edge_devices) {
    EXPECT_FALSE(fabric.can_connect_direct(tb_.cloud, edge)) << edge;
    EXPECT_TRUE(fabric.can_connect_direct(edge, tb_.cloud)) << edge;
  }
}

TEST_F(TestbedTest, RemoteGpuBehindNat) {
  const net::Fabric& fabric = tb_.world->fabric();
  EXPECT_FALSE(fabric.can_connect_direct(tb_.theta_login, tb_.remote_gpu));
}

TEST_F(TestbedTest, EdgeUplinkIsSlow) {
  const net::Fabric& fabric = tb_.world->fabric();
  const std::size_t bytes = 10'000'000;
  // 100 Mb/s consumer uplink: 10 MB takes most of a second.
  EXPECT_GT(fabric.transfer_time(tb_.edge_devices[0], tb_.cloud, bytes), 0.5);
}

TEST_F(TestbedTest, EveryHostReachesTheCloud) {
  const net::Fabric& fabric = tb_.world->fabric();
  for (const std::string& host :
       {tb_.theta_login, tb_.polaris_login, tb_.perlmutter_login,
        tb_.midway_login, tb_.frontera_login, tb_.chameleon0,
        tb_.remote_gpu, tb_.edge_devices[0]}) {
    EXPECT_NO_THROW(fabric.route(host, tb_.cloud)) << host;
  }
}

TEST_F(TestbedTest, EdgePeersCanRouteToEachOther) {
  const net::Fabric& fabric = tb_.world->fabric();
  EXPECT_NO_THROW(
      fabric.route(tb_.edge_devices[0], tb_.edge_devices[3]));
  EXPECT_TRUE(fabric.route(tb_.edge_devices[0], tb_.edge_devices[3])
                  .requires_nat_traversal);
}

}  // namespace
}  // namespace ps::testbed
