// Observability subsystem: metrics registry, histograms, tracing, and the
// InstrumentedConnector decorator.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/stats.hpp"
#include "connectors/local.hpp"
#include "core/instrumented.hpp"
#include "core/proxy.hpp"
#include "core/store.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "proc/world.hpp"
#include "serde/serde.hpp"
#include "sim/vtime.hpp"

namespace ps::obs {
namespace {

using core::InstrumentedConnector;
using core::Key;
using core::Proxy;
using core::Store;
using connectors::LocalConnector;

// ------------------------------------------------- minimal JSON reader ----
// Just enough JSON to round-trip dump_json() output in tests: objects,
// arrays, strings (registry names never need full escape handling), and
// numbers.

struct JsonValue {
  std::variant<std::nullptr_t, double, std::string,
               std::map<std::string, JsonValue>, std::vector<JsonValue>>
      v = nullptr;

  const JsonValue& at(const std::string& key) const {
    return std::get<std::map<std::string, JsonValue>>(v).at(key);
  }
  bool has(const std::string& key) const {
    return std::get<std::map<std::string, JsonValue>>(v).contains(key);
  }
  double num() const { return std::get<double>(v); }
  const std::vector<JsonValue>& arr() const {
    return std::get<std::vector<JsonValue>>(v);
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing JSON content";
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    EXPECT_EQ(peek(), c);
    ++pos_;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out += text_[pos_++];
    }
    expect('"');
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "expected a JSON number";
    return JsonValue{std::stod(text_.substr(start, pos_ - start))};
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> out;
    if (peek() != '}') {
      while (true) {
        std::string key = parse_string();
        expect(':');
        out[std::move(key)] = parse_value();
        if (peek() != ',') break;
        ++pos_;
      }
    }
    expect('}');
    return JsonValue{std::move(out)};
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> out;
    if (peek() != ']') {
      while (true) {
        out.push_back(parse_value());
        if (peek() != ',') break;
        ++pos_;
      }
    }
    expect(']');
    return JsonValue{std::move(out)};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ----------------------------------------------------------- histogram ----

TEST(Histogram, BucketBoundsAreLogSpaced) {
  const auto& bounds = Histogram::bounds();
  ASSERT_EQ(bounds.size(), Histogram::kBuckets);
  EXPECT_NEAR(bounds.front(), 1.778e-7, 1e-10);  // 1e-7 * 10^(1/4)
  EXPECT_NEAR(bounds[3], 1e-6, 1e-12);           // decade boundary
  EXPECT_NEAR(bounds.back(), 1000.0, 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
    // Four buckets per decade.
    EXPECT_NEAR(bounds[i] / bounds[i - 1], std::pow(10.0, 0.25), 1e-9);
  }
}

TEST(Histogram, BucketIndexBoundaries) {
  const auto& bounds = Histogram::bounds();
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0u);
  for (const std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{20},
                              Histogram::kBuckets - 1}) {
    // A value exactly at an upper bound belongs to that bucket...
    EXPECT_EQ(Histogram::bucket_index(bounds[i]), i);
    // ...and just above it to the next.
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_EQ(Histogram::bucket_index(bounds[i] * 1.0001), i + 1);
    }
  }
  // Values beyond the last bound land in the final bucket.
  EXPECT_EQ(Histogram::bucket_index(1e9), Histogram::kBuckets - 1);
}

TEST(Histogram, ObserveFillsTheRightBucket) {
  Histogram h;
  const auto& bounds = Histogram::bounds();
  h.observe(bounds[5]);          // exactly at the bound -> bucket 5
  h.observe(bounds[5] * 1.001);  // just above -> bucket 6
  h.observe(1e9);                // clamped into the last bucket
  const auto nonzero = h.nonzero_buckets();
  ASSERT_EQ(nonzero.size(), 3u);
  EXPECT_EQ(nonzero[0].first, bounds[5]);
  EXPECT_EQ(nonzero[0].second, 1u);
  EXPECT_EQ(nonzero[1].first, bounds[6]);
  EXPECT_EQ(nonzero[1].second, 1u);
  EXPECT_EQ(nonzero[2].first, bounds.back());
  EXPECT_EQ(nonzero[2].second, 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, ExactPercentilesMatchStatsForShortSeries) {
  Histogram h;
  ps::Stats reference;
  for (int i = 1; i <= 200; ++i) {
    const double v = static_cast<double>(i) * 1e-3;
    h.observe(v);
    reference.add(v);
  }
  // While the series fits the reservoir, percentiles are computed through
  // ps::Stats and are exact — not bucket-interpolated.
  EXPECT_DOUBLE_EQ(h.p50(), reference.p50());
  EXPECT_DOUBLE_EQ(h.p95(), reference.p95());
  EXPECT_DOUBLE_EQ(h.p99(), reference.p99());
  EXPECT_NEAR(h.mean(), reference.mean(), 1e-8);
  EXPECT_NEAR(h.min(), 1e-3, 1e-9);
  EXPECT_NEAR(h.max(), 0.2, 1e-9);
}

TEST(Histogram, InterpolatedPercentilesBeyondReservoir) {
  Histogram h;
  for (std::size_t i = 0; i < Histogram::kReservoir + 1000; ++i) {
    h.observe(1e-3);
  }
  ASSERT_GT(h.count(), Histogram::kReservoir);
  // Interpolation can only place the percentile inside the 1 ms bucket.
  const std::size_t bucket = Histogram::bucket_index(1e-3);
  const double lower = Histogram::bounds()[bucket - 1];
  const double upper = Histogram::bounds()[bucket];
  for (const double p : {50.0, 95.0, 99.0}) {
    EXPECT_GE(h.percentile(p), lower);
    EXPECT_LE(h.percentile(p), upper);
  }
}

TEST(Histogram, ConcurrentObserves) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(1e-6 * static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (const auto& [le, n] : h.nonzero_buckets()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_NEAR(h.min(), 1e-6, 1e-12);
  EXPECT_NEAR(h.max(), 8e-6, 1e-12);
}

// ----------------------------------------------------- counters/gauges ----

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.25);
  EXPECT_DOUBLE_EQ(g.value(), 4.75);
  g.add(-4.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(9.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ------------------------------------------------------------- registry ----

TEST(Registry, SameNameReturnsSameMetric) {
  auto& registry = MetricsRegistry::global();
  EXPECT_EQ(&registry.counter("reg.same"), &registry.counter("reg.same"));
  EXPECT_EQ(&registry.gauge("reg.same"), &registry.gauge("reg.same"));
  EXPECT_EQ(&registry.histogram("reg.same"), &registry.histogram("reg.same"));
  EXPECT_EQ(registry.find_histogram("reg.same"),
            &registry.histogram("reg.same"));
  EXPECT_EQ(registry.find_histogram("reg.no-such"), nullptr);
}

TEST(Registry, ResetZeroesValuesButKeepsReferences) {
  auto& registry = MetricsRegistry::global();
  Counter& c = registry.counter("reg.reset.count");
  Histogram& h = registry.histogram("reg.reset.hist");
  c.inc(7);
  h.observe(0.5);
  registry.reset();
  EXPECT_EQ(&registry.counter("reg.reset.count"), &c);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Registry, JsonExportRoundTrips) {
  auto& registry = MetricsRegistry::global();
  registry.counter("json.requests").inc(42);
  registry.gauge("json.depth").set(2.5);
  Histogram& h = registry.histogram("json.latency");
  h.reset();
  h.observe(1e-3);
  h.observe(2e-3);
  h.observe(3e-3);

  const std::string text = registry.dump_json();
  JsonValue root = JsonReader(text).parse();

  EXPECT_EQ(root.at("counters").at("json.requests").num(), 42.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("json.depth").num(), 2.5);

  const JsonValue& hist = root.at("histograms").at("json.latency");
  EXPECT_EQ(hist.at("count").num(), 3.0);
  EXPECT_NEAR(hist.at("sum_s").num(), 6e-3, 1e-9);
  EXPECT_NEAR(hist.at("mean_s").num(), 2e-3, 1e-9);
  EXPECT_NEAR(hist.at("min_s").num(), 1e-3, 1e-9);
  EXPECT_NEAR(hist.at("max_s").num(), 3e-3, 1e-9);
  EXPECT_NEAR(hist.at("p50_s").num(), h.p50(), 1e-9);
  EXPECT_NEAR(hist.at("p99_s").num(), h.p99(), 1e-9);
  std::uint64_t bucket_total = 0;
  for (const JsonValue& bucket : hist.at("buckets").arr()) {
    ASSERT_EQ(bucket.arr().size(), 2u);  // [upper_bound, count]
    bucket_total += static_cast<std::uint64_t>(bucket.arr()[1].num());
  }
  EXPECT_EQ(bucket_total, 3u);

  // The table export mentions every registered metric by name.
  const std::string table = registry.dump_table();
  EXPECT_NE(table.find("json.requests"), std::string::npos);
  EXPECT_NE(table.find("json.depth"), std::string::npos);
  EXPECT_NE(table.find("json.latency"), std::string::npos);
}

// ---------------------------------------------------------------- timer ----

TEST(TimerTest, RecordsVirtualElapsedOnce) {
  ASSERT_TRUE(enabled());
  Histogram vtime;
  {
    Timer timer(&vtime);
    sim::vadvance(0.25);
    EXPECT_NEAR(timer.stop(), 0.25, 1e-9);
    sim::vadvance(1.0);  // after stop(): not measured, dtor must not re-add
  }
  ASSERT_EQ(vtime.count(), 1u);
  EXPECT_NEAR(vtime.sum(), 0.25, 1e-9);
}

TEST(TimerTest, DisabledTimerRecordsNothing) {
  Histogram vtime;
  set_enabled(false);
  {
    Timer timer(&vtime);
    sim::vadvance(0.25);
  }
  set_enabled(true);
  EXPECT_EQ(vtime.count(), 0u);
}

// ---------------------------------------------------------------- trace ----

TEST(Trace, RecordsDualTimestampsInOrder) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);
  sim::vadvance(0.125);
  recorder.record("subj", "first");
  sim::vadvance(0.5);
  {
    Span span("subj", "work");
  }
  recorder.set_enabled(false);
  recorder.record("subj", "dropped");  // disabled: must not record

  const auto events = recorder.timeline("subj");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[1].name, "work.start");
  EXPECT_EQ(events[2].name, "work.done");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].wall_s, events[i - 1].wall_s);
    EXPECT_GE(events[i].vtime_s, events[i - 1].vtime_s);
  }
  EXPECT_NEAR(events[1].vtime_s - events[0].vtime_s, 0.5, 1e-9);
  recorder.clear();
}

// -------------------------------------------- instrumented connector ------

/// World with two processes on different sites, as the store tests use.
class ObsStoreTest : public ::testing::Test {
 protected:
  ObsStoreTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("site-a", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().add_site("site-b", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().connect_sites("site-a", "site-b",
                                   net::wan_tcp(20e-3, 1e9));
    world_->fabric().add_host("host-a", "site-a");
    world_->fabric().add_host("host-b", "site-b");
    producer_ = &world_->spawn("producer", "host-a");
    consumer_ = &world_->spawn("consumer", "host-b");
    set_enabled(true);
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* producer_ = nullptr;
  proc::Process* consumer_ = nullptr;
};

TEST_F(ObsStoreTest, InstrumentedConnectorPassesOperationsThrough) {
  proc::ProcessScope scope(*producer_);
  auto raw = std::make_shared<LocalConnector>();
  auto wrapped = InstrumentedConnector::wrap(raw);
  ASSERT_NE(wrapped, raw);
  // Decorator is transparent: same type/config/traits as the raw connector.
  EXPECT_EQ(wrapped->type(), raw->type());
  EXPECT_EQ(wrapped->config(), raw->config());
  // Idempotent: wrapping twice adds no second layer.
  EXPECT_EQ(InstrumentedConnector::wrap(wrapped), wrapped);

  const auto before = MetricsRegistry::global().counters();
  const auto delta = [&before](const std::string& name) {
    const auto now = MetricsRegistry::global().counters();
    const auto it = before.find(name);
    return now.at(name) - (it == before.end() ? 0 : it->second);
  };

  const Bytes data = pattern_bytes(64, 1);
  const Key key = wrapped->put(data);
  EXPECT_EQ(wrapped->get(key), data);       // visible through the decorator
  EXPECT_EQ(raw->get(key), data);           // ...and on the raw connector
  EXPECT_TRUE(wrapped->exists(key));
  const auto keys =
      wrapped->put_batch({pattern_bytes(8, 2), pattern_bytes(8, 3)});
  EXPECT_EQ(keys.size(), 2u);
  wrapped->evict(key);
  EXPECT_FALSE(raw->exists(key));

  EXPECT_EQ(delta("connector.local.put"), 1u);
  EXPECT_EQ(delta("connector.local.get"), 1u);  // the raw get is not counted
  EXPECT_EQ(delta("connector.local.exists"), 1u);
  EXPECT_EQ(delta("connector.local.put_batch"), 1u);
  EXPECT_EQ(delta("connector.local.evict"), 1u);
  // The per-op latency histograms saw the same traffic.
  const Histogram* put_vtime =
      MetricsRegistry::global().find_histogram("connector.local.put.vtime");
  ASSERT_NE(put_vtime, nullptr);
  EXPECT_GE(put_vtime->count(), 1u);
}

TEST_F(ObsStoreTest, StoreMetricsSplitEvictionKinds) {
  proc::ProcessScope scope(*producer_);
  Store::Options options;
  options.cache_size = 2;
  auto store = std::make_shared<Store>(
      "obs-split", InstrumentedConnector::wrap(
                       std::make_shared<LocalConnector>()),
      options);

  // Three distinct cached objects overflow the 2-slot LRU cache.
  std::vector<Key> keys;
  for (int i = 0; i < 3; ++i) keys.push_back(store->put(i));
  for (const Key& key : keys) store->get<int>(key);
  store->exists(keys[0]);
  store->evict(keys[0]);

  const Store::Metrics m = store->metrics();
  EXPECT_EQ(m.puts, 3u);
  EXPECT_EQ(m.gets, 3u);
  EXPECT_EQ(m.exists_calls, 1u);
  EXPECT_EQ(m.evicts, 1u);           // the explicit evict() call
  EXPECT_EQ(m.cache_evictions, 1u);  // the LRU overflow
}

TEST_F(ObsStoreTest, ProxyLifecycleTraceHasOrderedEvents) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);

  Bytes wire;
  std::string subject;
  {
    proc::ProcessScope scope(*producer_);
    auto store = std::make_shared<Store>(
        "obs-trace", InstrumentedConnector::wrap(
                         std::make_shared<LocalConnector>()));
    core::register_store(store, /*overwrite=*/true);
    Proxy<std::string> p = store->proxy(std::string("traced"));
    subject = core::trace_subject(store->name(),
                                  p.factory().descriptor()->key);
    wire = serde::to_bytes(p);
  }
  {
    proc::ProcessScope scope(*consumer_);
    auto p = serde::from_bytes<Proxy<std::string>>(wire);
    EXPECT_EQ(*p, "traced");  // resolve across the simulated WAN
  }

  const auto events = recorder.timeline(subject);
  // The full store-backed lifecycle: proxy.created, factory.serialized,
  // factory.deserialized, resolve.start, connector.get, deserialize,
  // cache.insert, resolve.done.
  ASSERT_GE(events.size(), 4u);
  std::vector<std::string> names;
  for (const TraceEvent& event : events) names.push_back(event.name);
  for (const char* required :
       {"proxy.created", "factory.serialized", "factory.deserialized",
        "resolve.start", "connector.get", "resolve.done"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "missing lifecycle event " << required;
  }
  // Distinct event names, timestamps monotonically non-decreasing in both
  // clocks.
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].wall_s, events[i - 1].wall_s);
    EXPECT_GE(events[i].vtime_s, events[i - 1].vtime_s);
  }

  recorder.set_enabled(false);
  recorder.clear();
  core::unregister_store("obs-trace");
}

TEST(TraceCapacity, OldestEventsDropWhenFull) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    recorder.record("cap", "event-" + std::to_string(i));
  }
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "event-6");
  EXPECT_EQ(events.back().name, "event-9");
}

}  // namespace
}  // namespace ps::obs
