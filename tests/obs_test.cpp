// Observability subsystem: metrics registry, histograms, tracing, and the
// InstrumentedConnector decorator.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "connectors/endpoint.hpp"
#include "connectors/local.hpp"
#include "core/instrumented.hpp"
#include "core/proxy.hpp"
#include "core/store.hpp"
#include "endpoint/endpoint.hpp"
#include "faas/cloud.hpp"
#include "faas/executor.hpp"
#include "faas/registry.hpp"
#include "obs/context.hpp"
#include "obs/critical.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/slo.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "proc/world.hpp"
#include "relay/relay.hpp"
#include "serde/serde.hpp"
#include "sim/vtime.hpp"

namespace ps::obs {
namespace {

using core::InstrumentedConnector;
using core::Key;
using core::Proxy;
using core::Store;
using connectors::LocalConnector;

// ------------------------------------------------- minimal JSON reader ----
// Just enough JSON to round-trip dump_json() output in tests: objects,
// arrays, strings (registry names never need full escape handling), and
// numbers.

struct JsonValue {
  std::variant<std::nullptr_t, double, std::string,
               std::map<std::string, JsonValue>, std::vector<JsonValue>>
      v = nullptr;

  const JsonValue& at(const std::string& key) const {
    return std::get<std::map<std::string, JsonValue>>(v).at(key);
  }
  bool has(const std::string& key) const {
    return std::get<std::map<std::string, JsonValue>>(v).contains(key);
  }
  double num() const { return std::get<double>(v); }
  const std::vector<JsonValue>& arr() const {
    return std::get<std::vector<JsonValue>>(v);
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing JSON content";
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    EXPECT_EQ(peek(), c);
    ++pos_;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out += text_[pos_++];
    }
    expect('"');
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "expected a JSON number";
    return JsonValue{std::stod(text_.substr(start, pos_ - start))};
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> out;
    if (peek() != '}') {
      while (true) {
        std::string key = parse_string();
        expect(':');
        out[std::move(key)] = parse_value();
        if (peek() != ',') break;
        ++pos_;
      }
    }
    expect('}');
    return JsonValue{std::move(out)};
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> out;
    if (peek() != ']') {
      while (true) {
        out.push_back(parse_value());
        if (peek() != ',') break;
        ++pos_;
      }
    }
    expect(']');
    return JsonValue{std::move(out)};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ----------------------------------------------------------- histogram ----

TEST(Histogram, BucketBoundsAreLogSpaced) {
  const auto& bounds = Histogram::bounds();
  ASSERT_EQ(bounds.size(), Histogram::kBuckets);
  EXPECT_NEAR(bounds.front(), 1.778e-7, 1e-10);  // 1e-7 * 10^(1/4)
  EXPECT_NEAR(bounds[3], 1e-6, 1e-12);           // decade boundary
  EXPECT_NEAR(bounds.back(), 1000.0, 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
    // Four buckets per decade.
    EXPECT_NEAR(bounds[i] / bounds[i - 1], std::pow(10.0, 0.25), 1e-9);
  }
}

TEST(Histogram, BucketIndexBoundaries) {
  const auto& bounds = Histogram::bounds();
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0u);
  for (const std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{20},
                              Histogram::kBuckets - 1}) {
    // A value exactly at an upper bound belongs to that bucket...
    EXPECT_EQ(Histogram::bucket_index(bounds[i]), i);
    // ...and just above it to the next.
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_EQ(Histogram::bucket_index(bounds[i] * 1.0001), i + 1);
    }
  }
  // Values beyond the last bound land in the final bucket.
  EXPECT_EQ(Histogram::bucket_index(1e9), Histogram::kBuckets - 1);
}

TEST(Histogram, ObserveFillsTheRightBucket) {
  Histogram h;
  const auto& bounds = Histogram::bounds();
  h.observe(bounds[5]);          // exactly at the bound -> bucket 5
  h.observe(bounds[5] * 1.001);  // just above -> bucket 6
  h.observe(1e9);                // clamped into the last bucket
  const auto nonzero = h.nonzero_buckets();
  ASSERT_EQ(nonzero.size(), 3u);
  EXPECT_EQ(nonzero[0].first, bounds[5]);
  EXPECT_EQ(nonzero[0].second, 1u);
  EXPECT_EQ(nonzero[1].first, bounds[6]);
  EXPECT_EQ(nonzero[1].second, 1u);
  EXPECT_EQ(nonzero[2].first, bounds.back());
  EXPECT_EQ(nonzero[2].second, 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, ExactPercentilesMatchStatsForShortSeries) {
  Histogram h;
  ps::Stats reference;
  for (int i = 1; i <= 200; ++i) {
    const double v = static_cast<double>(i) * 1e-3;
    h.observe(v);
    reference.add(v);
  }
  // While the series fits the reservoir, percentiles are computed through
  // ps::Stats and are exact — not bucket-interpolated.
  EXPECT_DOUBLE_EQ(h.p50(), reference.p50());
  EXPECT_DOUBLE_EQ(h.p95(), reference.p95());
  EXPECT_DOUBLE_EQ(h.p99(), reference.p99());
  EXPECT_NEAR(h.mean(), reference.mean(), 1e-8);
  EXPECT_NEAR(h.min(), 1e-3, 1e-9);
  EXPECT_NEAR(h.max(), 0.2, 1e-9);
}

TEST(Histogram, InterpolatedPercentilesBeyondReservoir) {
  Histogram h;
  for (std::size_t i = 0; i < Histogram::kReservoir + 1000; ++i) {
    h.observe(1e-3);
  }
  ASSERT_GT(h.count(), Histogram::kReservoir);
  // Interpolation can only place the percentile inside the 1 ms bucket.
  const std::size_t bucket = Histogram::bucket_index(1e-3);
  const double lower = Histogram::bounds()[bucket - 1];
  const double upper = Histogram::bounds()[bucket];
  for (const double p : {50.0, 95.0, 99.0}) {
    EXPECT_GE(h.percentile(p), lower);
    EXPECT_LE(h.percentile(p), upper);
  }
}

TEST(Histogram, ConcurrentObserves) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(1e-6 * static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (const auto& [le, n] : h.nonzero_buckets()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_NEAR(h.min(), 1e-6, 1e-12);
  EXPECT_NEAR(h.max(), 8e-6, 1e-12);
}

// ----------------------------------------------------- counters/gauges ----

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.25);
  EXPECT_DOUBLE_EQ(g.value(), 4.75);
  g.add(-4.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(9.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ------------------------------------------------------------- registry ----

TEST(Registry, SameNameReturnsSameMetric) {
  auto& registry = MetricsRegistry::global();
  EXPECT_EQ(&registry.counter("reg.same"), &registry.counter("reg.same"));
  EXPECT_EQ(&registry.gauge("reg.same"), &registry.gauge("reg.same"));
  EXPECT_EQ(&registry.histogram("reg.same"), &registry.histogram("reg.same"));
  EXPECT_EQ(registry.find_histogram("reg.same"),
            &registry.histogram("reg.same"));
  EXPECT_EQ(registry.find_histogram("reg.no-such"), nullptr);
}

TEST(Registry, ResetZeroesValuesButKeepsReferences) {
  auto& registry = MetricsRegistry::global();
  Counter& c = registry.counter("reg.reset.count");
  Histogram& h = registry.histogram("reg.reset.hist");
  c.inc(7);
  h.observe(0.5);
  registry.reset();
  EXPECT_EQ(&registry.counter("reg.reset.count"), &c);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Registry, JsonExportRoundTrips) {
  auto& registry = MetricsRegistry::global();
  registry.counter("json.requests").inc(42);
  registry.gauge("json.depth").set(2.5);
  Histogram& h = registry.histogram("json.latency");
  h.reset();
  h.observe(1e-3);
  h.observe(2e-3);
  h.observe(3e-3);

  const std::string text = registry.dump_json();
  JsonValue root = JsonReader(text).parse();

  EXPECT_EQ(root.at("counters").at("json.requests").num(), 42.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("json.depth").num(), 2.5);

  const JsonValue& hist = root.at("histograms").at("json.latency");
  EXPECT_EQ(hist.at("count").num(), 3.0);
  EXPECT_NEAR(hist.at("sum_s").num(), 6e-3, 1e-9);
  EXPECT_NEAR(hist.at("mean_s").num(), 2e-3, 1e-9);
  EXPECT_NEAR(hist.at("min_s").num(), 1e-3, 1e-9);
  EXPECT_NEAR(hist.at("max_s").num(), 3e-3, 1e-9);
  EXPECT_NEAR(hist.at("p50_s").num(), h.p50(), 1e-9);
  EXPECT_NEAR(hist.at("p99_s").num(), h.p99(), 1e-9);
  std::uint64_t bucket_total = 0;
  for (const JsonValue& bucket : hist.at("buckets").arr()) {
    ASSERT_EQ(bucket.arr().size(), 2u);  // [upper_bound, count]
    bucket_total += static_cast<std::uint64_t>(bucket.arr()[1].num());
  }
  EXPECT_EQ(bucket_total, 3u);

  // The table export mentions every registered metric by name.
  const std::string table = registry.dump_table();
  EXPECT_NE(table.find("json.requests"), std::string::npos);
  EXPECT_NE(table.find("json.depth"), std::string::npos);
  EXPECT_NE(table.find("json.latency"), std::string::npos);
}

// ---------------------------------------------------------------- timer ----

TEST(TimerTest, RecordsVirtualElapsedOnce) {
  ASSERT_TRUE(enabled());
  Histogram vtime;
  {
    Timer timer(&vtime);
    sim::vadvance(0.25);
    EXPECT_NEAR(timer.stop(), 0.25, 1e-9);
    sim::vadvance(1.0);  // after stop(): not measured, dtor must not re-add
  }
  ASSERT_EQ(vtime.count(), 1u);
  EXPECT_NEAR(vtime.sum(), 0.25, 1e-9);
}

TEST(TimerTest, DisabledTimerRecordsNothing) {
  Histogram vtime;
  set_enabled(false);
  {
    Timer timer(&vtime);
    sim::vadvance(0.25);
  }
  set_enabled(true);
  EXPECT_EQ(vtime.count(), 0u);
}

// ---------------------------------------------------------------- trace ----

TEST(Trace, RecordsDualTimestampsInOrder) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);
  sim::vadvance(0.125);
  recorder.record("subj", "first");
  sim::vadvance(0.5);
  {
    Span span("subj", "work");
  }
  recorder.set_enabled(false);
  recorder.record("subj", "dropped");  // disabled: must not record

  const auto events = recorder.timeline("subj");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[1].name, "work.start");
  EXPECT_EQ(events[2].name, "work.done");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].wall_s, events[i - 1].wall_s);
    EXPECT_GE(events[i].vtime_s, events[i - 1].vtime_s);
  }
  EXPECT_NEAR(events[1].vtime_s - events[0].vtime_s, 0.5, 1e-9);
  recorder.clear();
}

// -------------------------------------------- instrumented connector ------

/// World with two processes on different sites, as the store tests use.
class ObsStoreTest : public ::testing::Test {
 protected:
  ObsStoreTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("site-a", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().add_site("site-b", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().connect_sites("site-a", "site-b",
                                   net::wan_tcp(20e-3, 1e9));
    world_->fabric().add_host("host-a", "site-a");
    world_->fabric().add_host("host-b", "site-b");
    producer_ = &world_->spawn("producer", "host-a");
    consumer_ = &world_->spawn("consumer", "host-b");
    set_enabled(true);
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* producer_ = nullptr;
  proc::Process* consumer_ = nullptr;
};

TEST_F(ObsStoreTest, InstrumentedConnectorPassesOperationsThrough) {
  proc::ProcessScope scope(*producer_);
  auto raw = std::make_shared<LocalConnector>();
  auto wrapped = InstrumentedConnector::wrap(raw);
  ASSERT_NE(wrapped, raw);
  // Decorator is transparent: same type/config/traits as the raw connector.
  EXPECT_EQ(wrapped->type(), raw->type());
  EXPECT_EQ(wrapped->config(), raw->config());
  // Idempotent: wrapping twice adds no second layer.
  EXPECT_EQ(InstrumentedConnector::wrap(wrapped), wrapped);

  const auto before = MetricsRegistry::global().counters();
  const auto delta = [&before](const std::string& name) {
    const auto now = MetricsRegistry::global().counters();
    const auto it = before.find(name);
    return now.at(name) - (it == before.end() ? 0 : it->second);
  };

  const Bytes data = pattern_bytes(64, 1);
  const Key key = wrapped->put(data);
  EXPECT_EQ(wrapped->get(key), data);       // visible through the decorator
  EXPECT_EQ(raw->get(key), data);           // ...and on the raw connector
  EXPECT_TRUE(wrapped->exists(key));
  const auto keys =
      wrapped->put_batch({pattern_bytes(8, 2), pattern_bytes(8, 3)});
  EXPECT_EQ(keys.size(), 2u);
  wrapped->evict(key);
  EXPECT_FALSE(raw->exists(key));

  EXPECT_EQ(delta("connector.local.put"), 1u);
  EXPECT_EQ(delta("connector.local.get"), 1u);  // the raw get is not counted
  EXPECT_EQ(delta("connector.local.exists"), 1u);
  EXPECT_EQ(delta("connector.local.put_batch"), 1u);
  EXPECT_EQ(delta("connector.local.evict"), 1u);
  // The per-op latency histograms saw the same traffic.
  const Histogram* put_vtime =
      MetricsRegistry::global().find_histogram("connector.local.put.vtime");
  ASSERT_NE(put_vtime, nullptr);
  EXPECT_GE(put_vtime->count(), 1u);
}

TEST_F(ObsStoreTest, StoreMetricsSplitEvictionKinds) {
  proc::ProcessScope scope(*producer_);
  Store::Options options;
  options.cache_size = 2;
  auto store = std::make_shared<Store>(
      "obs-split", InstrumentedConnector::wrap(
                       std::make_shared<LocalConnector>()),
      options);

  // Three distinct cached objects overflow the 2-slot LRU cache.
  std::vector<Key> keys;
  for (int i = 0; i < 3; ++i) keys.push_back(store->put(i));
  for (const Key& key : keys) store->get<int>(key);
  store->exists(keys[0]);
  store->evict(keys[0]);

  const Store::Metrics m = store->metrics();
  EXPECT_EQ(m.puts, 3u);
  EXPECT_EQ(m.gets, 3u);
  EXPECT_EQ(m.exists_calls, 1u);
  EXPECT_EQ(m.evicts, 1u);           // the explicit evict() call
  EXPECT_EQ(m.cache_evictions, 1u);  // the LRU overflow
}

TEST_F(ObsStoreTest, ProxyLifecycleTraceHasOrderedEvents) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);

  Bytes wire;
  std::string subject;
  {
    proc::ProcessScope scope(*producer_);
    auto store = std::make_shared<Store>(
        "obs-trace", InstrumentedConnector::wrap(
                         std::make_shared<LocalConnector>()));
    core::register_store(store, /*overwrite=*/true);
    Proxy<std::string> p = store->proxy(std::string("traced"));
    subject = core::trace_subject(store->name(),
                                  p.factory().descriptor()->key);
    wire = serde::to_bytes(p);
  }
  {
    proc::ProcessScope scope(*consumer_);
    auto p = serde::from_bytes<Proxy<std::string>>(wire);
    EXPECT_EQ(*p, "traced");  // resolve across the simulated WAN
  }

  const auto events = recorder.timeline(subject);
  // The full store-backed lifecycle: proxy.created, factory.serialized,
  // factory.deserialized, resolve.start, connector.get, deserialize,
  // cache.insert, resolve.done.
  ASSERT_GE(events.size(), 4u);
  std::vector<std::string> names;
  for (const TraceEvent& event : events) names.push_back(event.name);
  for (const char* required :
       {"proxy.created", "factory.serialized", "factory.deserialized",
        "resolve.start", "connector.get", "resolve.done"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "missing lifecycle event " << required;
  }
  // Distinct event names, timestamps monotonically non-decreasing in both
  // clocks.
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].wall_s, events[i - 1].wall_s);
    EXPECT_GE(events[i].vtime_s, events[i - 1].vtime_s);
  }

  recorder.set_enabled(false);
  recorder.clear();
  core::unregister_store("obs-trace");
}

TEST(TraceCapacity, OldestEventsDropWhenFull) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    recorder.record("cap", "event-" + std::to_string(i));
  }
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "event-6");
  EXPECT_EQ(events.back().name, "event-9");
}

// ------------------------------------------------- distributed tracing ----

TEST(TraceContextTest, ChildLinksAndSerdeRoundTrip) {
  const TraceContext root = new_root_context();
  EXPECT_TRUE(root.valid());
  EXPECT_NE(root.span_id, 0u);
  EXPECT_EQ(root.parent_span_id, 0u);

  const TraceContext child = child_of(root);
  EXPECT_EQ(child.trace_hi, root.trace_hi);
  EXPECT_EQ(child.trace_lo, root.trace_lo);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
  EXPECT_EQ(child.trace_id_hex(), root.trace_id_hex());
  EXPECT_EQ(child.trace_id_hex().size(), 32u);

  const auto decoded = serde::from_bytes<TraceContext>(serde::to_bytes(child));
  EXPECT_EQ(decoded, child);

  // The invalid (zero) context survives the wire too and stays invalid, so
  // receivers of untraced messages can adopt unconditionally.
  const auto none =
      serde::from_bytes<TraceContext>(serde::to_bytes(TraceContext{}));
  EXPECT_FALSE(none.valid());
  EXPECT_EQ(none, TraceContext{});
}

TEST_F(ObsStoreTest, TraceContextSurvivesFactoryEncodeDecode) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);

  Bytes wire;
  TraceContext created;
  {
    proc::ProcessScope scope(*producer_);
    auto store = std::make_shared<Store>(
        "obs-ctx", std::make_shared<LocalConnector>());
    core::register_store(store, /*overwrite=*/true);
    Proxy<std::string> p = store->proxy(std::string("ctx"));
    ASSERT_TRUE(p.factory().descriptor().has_value());
    created = p.factory().descriptor()->trace;
    EXPECT_TRUE(created.valid());  // minted by the store.proxy span
    wire = serde::to_bytes(p);
  }
  {
    proc::ProcessScope scope(*consumer_);
    auto p = serde::from_bytes<Proxy<std::string>>(wire);
    ASSERT_TRUE(p.factory().descriptor().has_value());
    // The context crossed the process boundary byte-identical.
    EXPECT_EQ(p.factory().descriptor()->trace, created);
    EXPECT_EQ(*p, "ctx");
  }

  // The remote resolve adopted the carried context: its span is a child of
  // the store.proxy span, in the same trace, despite running in another
  // simulated process.
  bool found_resolve = false;
  for (const SpanRecord& span : recorder.spans()) {
    if (span.name != "proxy.resolve") continue;
    found_resolve = true;
    EXPECT_EQ(span.ctx.trace_hi, created.trace_hi);
    EXPECT_EQ(span.ctx.trace_lo, created.trace_lo);
    EXPECT_EQ(span.ctx.parent_span_id, created.span_id);
    EXPECT_EQ(span.process, "consumer");
    EXPECT_EQ(span.site, "site-b");
  }
  EXPECT_TRUE(found_resolve);

  recorder.set_enabled(false);
  recorder.clear();
  core::unregister_store("obs-ctx");
}

TEST(DistributedTrace, CrossSiteFaasRoundTripIsOneCausalTrace) {
  proc::World world;
  net::Fabric& fabric = world.fabric();
  fabric.add_site("alcf", net::hpc_interconnect(10e-6, 10e9));
  fabric.add_site("uchicago", net::hpc_interconnect(10e-6, 10e9));
  fabric.add_site("aws", net::hpc_interconnect(50e-6, 10e9));
  fabric.connect_sites("alcf", "uchicago", net::wan_tcp(20e-3, 1e9));
  fabric.connect_sites("alcf", "aws", net::wan_tcp(35e-3, 0.6e9));
  fabric.connect_sites("uchicago", "aws", net::wan_tcp(35e-3, 0.6e9));
  fabric.add_host("client-host", "alcf");
  fabric.add_host("task-host", "uchicago");
  fabric.add_host("cloud-host", "aws");

  proc::Process& client = world.spawn("trace-client", "client-host");
  proc::Process& worker = world.spawn("trace-worker", "task-host");

  faas::FunctionRegistry::instance().register_function(
      "obs-trace-task", [](BytesView request) {
        auto proxy = serde::from_bytes<Proxy<Bytes>>(request);
        return serde::to_bytes<std::uint64_t>(proxy->size());
      });

  auto cloud = faas::CloudService::start(world, "cloud-host");
  faas::ComputeEndpoint gc_endpoint(cloud, worker);
  relay::RelayServer::start(world, "cloud-host", "obs-trace-relay");
  auto ep_client =
      endpoint::Endpoint::start(world, "client-host", "obs-ep-client",
                                "relay://cloud-host/obs-trace-relay");
  auto ep_task =
      endpoint::Endpoint::start(world, "task-host", "obs-ep-task",
                                "relay://cloud-host/obs-trace-relay");

  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);

  TraceContext root_ctx;
  {
    proc::ProcessScope scope(client);
    auto store = std::make_shared<Store>(
        "obs-trace-faas",
        std::make_shared<connectors::EndpointConnector>(
            std::vector<std::string>{
                endpoint::endpoint_address("client-host", "obs-ep-client"),
                endpoint::endpoint_address("task-host", "obs-ep-task")}));
    core::register_store(store, /*overwrite=*/true);
    // One explicit root ties proxy creation, FaaS submit, relay forwards,
    // worker dispatch, and the remote resolve into a single trace.
    SpanScope root("test.round_trip");
    root_ctx = root.context();
    ASSERT_TRUE(root_ctx.valid());
    Proxy<Bytes> proxy = store->proxy(Bytes(4096, 'x'));
    faas::Executor executor(cloud, gc_endpoint.uuid());
    faas::TaskFuture future =
        executor.submit("obs-trace-task", serde::to_bytes(proxy));
    EXPECT_EQ(serde::from_bytes<std::uint64_t>(future.get()), 4096u);
  }
  gc_endpoint.stop();  // joins the worker threads: all spans are recorded
  recorder.set_enabled(false);

  const std::vector<SpanRecord> spans = recorder.spans();
  ASSERT_FALSE(spans.empty());

  std::set<std::string> trace_ids;
  std::set<std::string> sites;
  std::map<std::uint64_t, const SpanRecord*> by_span_id;
  std::map<std::string, int> name_counts;
  for (const SpanRecord& span : spans) {
    trace_ids.insert(span.ctx.trace_id_hex());
    sites.insert(span.site);
    EXPECT_TRUE(by_span_id.emplace(span.ctx.span_id, &span).second)
        << "duplicate span id for " << span.name;
    ++name_counts[span.name];
  }

  // Acceptance criterion: one trace id, spanning at least two simulated
  // sites, with the whole causal path present.
  EXPECT_EQ(trace_ids.size(), 1u);
  EXPECT_EQ(*trace_ids.begin(), root_ctx.trace_id_hex());
  EXPECT_GE(sites.size(), 2u);
  EXPECT_TRUE(sites.contains("alcf"));
  EXPECT_TRUE(sites.contains("uchicago"));
  for (const char* required :
       {"test.round_trip", "store.proxy", "faas.submit", "relay.forward",
        "faas.dispatch", "proxy.resolve", "faas.result"}) {
    EXPECT_GE(name_counts[required], 1) << "missing span " << required;
  }

  // Exactly one root; every other span's parent was itself recorded (no
  // orphans), so the trace forms a single tree.
  int roots = 0;
  for (const SpanRecord& span : spans) {
    if (span.ctx.parent_span_id == 0) {
      ++roots;
      EXPECT_EQ(span.name, "test.round_trip");
      continue;
    }
    const auto parent = by_span_id.find(span.ctx.parent_span_id);
    ASSERT_NE(parent, by_span_id.end()) << "orphan span " << span.name;
    EXPECT_EQ(parent->second->ctx.trace_id_hex(), span.ctx.trace_id_hex());
  }
  EXPECT_EQ(roots, 1);

  // Cross-boundary parent/child links: the worker-side dispatch span hangs
  // under the client-side submit span (context carried by the task record),
  // and the remote resolve under the proxy-creation span (context carried
  // by the factory descriptor).
  const auto parent_name = [&by_span_id](const SpanRecord& span) {
    const auto it = by_span_id.find(span.ctx.parent_span_id);
    return it == by_span_id.end() ? std::string() : it->second->name;
  };
  for (const SpanRecord& span : spans) {
    if (span.name == "faas.dispatch") {
      EXPECT_EQ(parent_name(span), "faas.submit");
      EXPECT_EQ(span.site, "uchicago");
    }
    if (span.name == "proxy.resolve") {
      EXPECT_EQ(parent_name(span), "store.proxy");
      EXPECT_EQ(span.site, "uchicago");
    }
    if (span.name == "faas.submit" || span.name == "store.proxy") {
      EXPECT_EQ(parent_name(span), "test.round_trip");
      EXPECT_EQ(span.site, "alcf");
    }
  }

  recorder.clear();
  core::unregister_store("obs-trace-faas");
}

TEST(PerfettoExport, EmittedFileParsesAsChromeTraceEvents) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);
  {
    SpanScope outer("export.outer", "subject-1");
    sim::vadvance(0.010);
    SpanScope inner("export.inner");
    inner.set_locality({"relay", "relay-host", "relay-site"});
    sim::vadvance(0.005);
  }
  recorder.set_enabled(false);
  ASSERT_EQ(recorder.span_count(), 2u);

  const std::string path =
      (std::filesystem::temp_directory_path() / "ps_obs_trace_test.json")
          .string();
  ASSERT_TRUE(write_perfetto_trace(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_EQ(text, perfetto_trace_json(recorder));

  // Re-parse the emitted file: it must load as a Chrome trace-event JSON
  // object, the format ui.perfetto.dev and chrome://tracing open natively.
  JsonValue root = JsonReader(text).parse();
  EXPECT_EQ(std::get<std::string>(root.at("displayTimeUnit").v), "ms");
  const std::vector<JsonValue>& events = root.at("traceEvents").arr();
  std::size_t metadata = 0;
  std::size_t slices = 0;
  std::set<std::string> slice_names;
  std::set<double> pids;
  for (const JsonValue& event : events) {
    const std::string ph = std::get<std::string>(event.at("ph").v);
    ASSERT_TRUE(ph == "M" || ph == "X") << "unexpected phase " << ph;
    EXPECT_TRUE(event.has("pid"));
    EXPECT_TRUE(event.has("name"));
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ++slices;
    pids.insert(event.at("pid").num());
    slice_names.insert(std::get<std::string>(event.at("name").v));
    EXPECT_GE(event.at("ts").num(), 0.0);
    EXPECT_GE(event.at("dur").num(), 0.0);
    const JsonValue& args = event.at("args");
    EXPECT_EQ(std::get<std::string>(args.at("trace_id").v).size(), 32u);
    EXPECT_GT(args.at("span_id").num(), 0.0);
    EXPECT_TRUE(args.has("parent_span_id"));
    EXPECT_TRUE(args.has("process"));
    EXPECT_TRUE(args.has("site"));
  }
  // Each span is emitted twice — a virtual-time slice and a wall-clock
  // slice — on distinct Perfetto "process" tracks.
  EXPECT_EQ(slices, 4u);
  EXPECT_EQ(slice_names, (std::set<std::string>{"export.outer",
                                                "export.inner"}));
  EXPECT_GE(pids.size(), 2u);
  // process_name + thread_name metadata exist for every track.
  EXPECT_GE(metadata, 4u);

  // The virtual-time slices carry the simulated durations (microseconds):
  // outer spans the full 15 ms, inner the nested 5 ms.
  double outer_vdur = 0.0;
  double inner_vdur = 0.0;
  for (const JsonValue& event : events) {
    if (std::get<std::string>(event.at("ph").v) != "X") continue;
    if (event.at("pid").num() >= 1000) continue;  // wall-clock track
    const std::string name = std::get<std::string>(event.at("name").v);
    if (name == "export.outer") outer_vdur = event.at("dur").num();
    if (name == "export.inner") inner_vdur = event.at("dur").num();
  }
  EXPECT_NEAR(outer_vdur, 15000.0, 1.0);
  EXPECT_NEAR(inner_vdur, 5000.0, 1.0);

  recorder.clear();
  std::filesystem::remove(path);
}

// ------------------------------------------------------------- profiler ----

/// Synthetic span with explicit ids and times, all in one trace.
SpanRecord make_span(std::uint64_t span_id, std::uint64_t parent,
                     const std::string& name, double v0, double v1,
                     double w0, double w1) {
  SpanRecord span;
  span.ctx.trace_hi = 0x1;
  span.ctx.trace_lo = 0x2;
  span.ctx.span_id = span_id;
  span.ctx.parent_span_id = parent;
  span.name = name;
  span.vtime_start = v0;
  span.vtime_end = v1;
  span.wall_start = w0;
  span.wall_end = w1;
  return span;
}

TEST(Profile, AggregatesSpansIntoCallTreeWithSelfTimes) {
  // root(0..10) { a(1..4) { leaf(2..3) }, b(4..9) }, plus a second
  // invocation of the same shape so same-path spans merge.
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(1, 0, "root", 0.0, 10.0, 0.0, 1.0));
  spans.push_back(make_span(2, 1, "a", 1.0, 4.0, 0.1, 0.4));
  spans.push_back(make_span(3, 2, "leaf", 2.0, 3.0, 0.2, 0.3));
  spans.push_back(make_span(4, 1, "b", 4.0, 9.0, 0.4, 0.9));
  spans.push_back(make_span(5, 0, "root", 10.0, 12.0, 1.0, 1.2));

  const Profile profile = Profile::from_spans(spans);
  ASSERT_EQ(profile.roots().size(), 1u);
  const ProfileNode& root = profile.roots()[0];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.count, 2u);
  EXPECT_NEAR(root.total_vtime_s, 12.0, 1e-12);
  // Self: 12 total minus children (a: 3, b: 5).
  EXPECT_NEAR(root.self_vtime_s, 4.0, 1e-12);
  ASSERT_EQ(root.children.size(), 2u);
  // Children sorted by total vtime descending: b (5) before a (3).
  EXPECT_EQ(root.children[0].name, "b");
  EXPECT_NEAR(root.children[0].self_vtime_s, 5.0, 1e-12);
  EXPECT_EQ(root.children[1].name, "a");
  EXPECT_NEAR(root.children[1].total_vtime_s, 3.0, 1e-12);
  EXPECT_NEAR(root.children[1].self_vtime_s, 2.0, 1e-12);
  ASSERT_EQ(root.children[1].children.size(), 1u);
  EXPECT_EQ(root.children[1].children[0].name, "leaf");
  EXPECT_NEAR(profile.total_vtime_s(), 12.0, 1e-12);
  EXPECT_NEAR(profile.total_wall_s(), 1.2, 1e-12);

  // top_nodes is hottest-self-first and flattens paths.
  const auto top = profile.top_nodes(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, "root;b");
  EXPECT_NEAR(top[0].self_vtime_s, 5.0, 1e-12);
}

TEST(Profile, SelfTimeClampsForOverlappingAsyncChildren) {
  // Child charged more vtime than its parent (async continuation measured
  // on another virtual timeline): parent self clamps to zero instead of
  // going negative.
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(1, 0, "submit", 0.0, 1.0, 0.0, 0.1));
  spans.push_back(make_span(2, 1, "dispatch", 0.0, 5.0, 0.0, 0.05));
  const Profile profile = Profile::from_spans(spans);
  ASSERT_EQ(profile.roots().size(), 1u);
  EXPECT_NEAR(profile.roots()[0].self_vtime_s, 0.0, 1e-12);
  EXPECT_NEAR(profile.roots()[0].children[0].self_vtime_s, 5.0, 1e-12);
}

TEST(Profile, FromRecorderAggregatesRealNestedSpanScopes) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    SpanScope root("prof.root");
    sim::vadvance(0.1);
    {
      SpanScope child("prof.child");
      sim::vadvance(0.2);
    }
    sim::vadvance(0.05);
  }
  recorder.set_enabled(false);

  const Profile profile = Profile::from_recorder(recorder);
  ASSERT_EQ(profile.roots().size(), 1u);
  const ProfileNode& root = profile.roots()[0];
  EXPECT_EQ(root.name, "prof.root");
  EXPECT_EQ(root.count, 3u);
  EXPECT_NEAR(root.total_vtime_s, 3 * 0.35, 1e-9);
  EXPECT_NEAR(root.self_vtime_s, 3 * 0.15, 1e-9);
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_NEAR(root.children[0].total_vtime_s, 3 * 0.2, 1e-9);
  recorder.clear();
}

TEST(Profile, FoldedStacksRoundTripAndSelfSumsMatchRootTotals) {
  // Two distinct roots; properly nested, non-overlapping children, so the
  // per-root sum of self times must equal the root's total time exactly
  // (up to the integer-nanosecond rounding of the folded format).
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(1, 0, "alpha", 0.0, 2.0, 0.0, 0.2));
  spans.push_back(make_span(2, 1, "x", 0.25, 1.0, 0.02, 0.1));
  spans.push_back(make_span(3, 1, "y", 1.0, 1.75, 0.1, 0.18));
  spans.push_back(make_span(4, 0, "beta", 2.0, 5.5, 0.2, 0.55));
  spans.push_back(make_span(5, 4, "x", 3.0, 4.25, 0.3, 0.42));
  const Profile profile = Profile::from_spans(spans);

  // Re-parse the folded output: "path;to;node <self-ns>" per line.
  std::map<std::string, double> root_self_sums;
  std::map<std::string, double> root_totals;
  for (const ProfileNode& root : profile.roots()) {
    root_totals[root.name] = root.total_vtime_s;
  }
  std::istringstream folded(profile.folded(/*vtime=*/true));
  std::string line;
  std::size_t lines = 0;
  while (std::getline(folded, line)) {
    ASSERT_FALSE(line.empty());
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string path = line.substr(0, space);
    const double self_ns = std::stod(line.substr(space + 1));
    EXPECT_GE(self_ns, 0.0);
    const std::string root_name = path.substr(0, path.find(';'));
    root_self_sums[root_name] += self_ns * 1e-9;
    ++lines;
  }
  EXPECT_EQ(lines, 5u);  // alpha, alpha;x, alpha;y, beta, beta;x

  ASSERT_EQ(root_self_sums.size(), 2u);
  for (const auto& [root_name, total] : root_totals) {
    ASSERT_TRUE(root_self_sums.contains(root_name)) << root_name;
    // Each folded line rounds to whole nanoseconds.
    EXPECT_NEAR(root_self_sums[root_name], total, 1e-8) << root_name;
  }
}

// ------------------------------------------------------- bench artifacts ----

BenchArtifact sample_artifact() {
  BenchArtifact artifact;
  artifact.bench = "unit_bench";
  artifact.seed = 42;
  artifact.git_rev = "abc123";
  SeriesStats vt;
  vt.count = 10;
  vt.mean_s = 0.5;
  vt.p50_s = 0.4;
  vt.p99_s = 0.9;
  vt.min_s = 0.1;
  vt.max_s = 1.0;
  vt.sum_s = 5.0;
  artifact.series["cell.vtime"] = vt;
  SeriesStats wall = vt;
  wall.kind = "wall";
  artifact.series["cell.wall"] = wall;
  ProfileEntry entry;
  entry.path = "root;child";
  entry.count = 3;
  entry.total_vtime_s = 1.5;
  entry.self_vtime_s = 0.5;
  entry.total_wall_s = 0.01;
  entry.self_wall_s = 0.005;
  artifact.profile_top.push_back(entry);
  return artifact;
}

TEST(BenchReport, ArtifactJsonRoundTrips) {
  const BenchArtifact artifact = sample_artifact();
  const std::string text = bench_artifact_json(artifact);

  std::string error;
  const auto parsed = parse_bench_artifact(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->schema_version, kBenchSchemaVersion);
  EXPECT_EQ(parsed->bench, "unit_bench");
  EXPECT_EQ(parsed->seed, 42u);
  EXPECT_EQ(parsed->git_rev, "abc123");
  ASSERT_EQ(parsed->series.size(), 2u);
  const SeriesStats& vt = parsed->series.at("cell.vtime");
  EXPECT_EQ(vt.count, 10u);
  EXPECT_NEAR(vt.mean_s, 0.5, 1e-12);
  EXPECT_NEAR(vt.p99_s, 0.9, 1e-12);
  EXPECT_EQ(vt.kind, "vtime");
  EXPECT_EQ(parsed->series.at("cell.wall").kind, "wall");
  ASSERT_EQ(parsed->profile_top.size(), 1u);
  EXPECT_EQ(parsed->profile_top[0].path, "root;child");
  EXPECT_EQ(parsed->profile_top[0].count, 3u);
  EXPECT_NEAR(parsed->profile_top[0].self_vtime_s, 0.5, 1e-12);
}

TEST(BenchReport, ParserRejectsMalformedArtifacts) {
  std::string error;
  EXPECT_FALSE(parse_bench_artifact("not json", &error).has_value());
  EXPECT_FALSE(parse_bench_artifact("{}", &error).has_value());

  // Wrong schema version must be rejected, not silently accepted.
  BenchArtifact artifact = sample_artifact();
  artifact.schema_version = kBenchSchemaVersion + 1;
  EXPECT_FALSE(
      parse_bench_artifact(bench_artifact_json(artifact), &error)
          .has_value());
  EXPECT_NE(error.find("schema"), std::string::npos) << error;

  // Unknown series kind is a schema violation too.
  artifact = sample_artifact();
  artifact.series["cell.vtime"].kind = "cpu";
  EXPECT_FALSE(
      parse_bench_artifact(bench_artifact_json(artifact), &error)
          .has_value());
}

TEST(BenchReport, CollectPullsRegisteredSeriesAndProfile) {
  auto& registry = MetricsRegistry::global();
  registry.histogram("collect.cell").observe(0.25);
  registry.histogram("collect.cell").observe(0.75);
  registry.histogram("collect.unregistered").observe(1.0);

  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);
  {
    SpanScope root("collect.span");
    sim::vadvance(0.125);
  }
  recorder.set_enabled(false);

  std::map<std::string, SeriesMeta> meta;
  meta["collect.cell"] = SeriesMeta{"vtime", "s"};
  meta["collect.absent"] = SeriesMeta{"vtime", "s"};  // not in the registry
  const BenchArtifact artifact =
      collect_bench_artifact("collect_bench", 7, meta, 5);

  EXPECT_EQ(artifact.bench, "collect_bench");
  EXPECT_EQ(artifact.seed, 7u);
  EXPECT_FALSE(artifact.git_rev.empty());
  // Only the registered-and-populated series lands in the artifact: the
  // unregistered registry histogram and the absent name are both skipped.
  ASSERT_EQ(artifact.series.size(), 1u);
  const SeriesStats& stats = artifact.series.at("collect.cell");
  EXPECT_EQ(stats.count, 2u);
  EXPECT_NEAR(stats.mean_s, 0.5, 1e-12);
  ASSERT_FALSE(artifact.profile_top.empty());
  EXPECT_EQ(artifact.profile_top[0].path, "collect.span");
  recorder.clear();
}

TEST(BenchDiff, IdenticalArtifactsPassAndVtimeDriftFails) {
  const BenchArtifact base = sample_artifact();

  const DiffResult same = diff_bench_artifacts(base, base);
  EXPECT_FALSE(same.failed);
  for (const SeriesDelta& delta : same.deltas) {
    EXPECT_EQ(delta.verdict, "ok") << delta.name;
  }

  // A deterministic vtime series that moved AT ALL is drift — in either
  // direction, however small beyond float formatting.
  for (const double factor : {2.0, 0.9}) {
    BenchArtifact cand = sample_artifact();
    cand.series["cell.vtime"].mean_s *= factor;
    const DiffResult result = diff_bench_artifacts(base, cand);
    EXPECT_TRUE(result.failed) << "factor " << factor;
    bool found = false;
    for (const SeriesDelta& delta : result.deltas) {
      if (delta.name == "cell.vtime") {
        EXPECT_EQ(delta.verdict, "drift");
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }

  // Changed repetition count on a vtime series is drift too.
  BenchArtifact cand = sample_artifact();
  cand.series["cell.vtime"].count = 11;
  EXPECT_TRUE(diff_bench_artifacts(base, cand).failed);
}

TEST(BenchDiff, WallSeriesGetToleranceAndSlowdownFails) {
  const BenchArtifact base = sample_artifact();

  // +20% wall noise is within the default 25% tolerance.
  BenchArtifact noisy = sample_artifact();
  noisy.series["cell.wall"].mean_s *= 1.2;
  EXPECT_FALSE(diff_bench_artifacts(base, noisy).failed);

  // A 2x wall slowdown is a regression.
  BenchArtifact slow = sample_artifact();
  slow.series["cell.wall"].mean_s *= 2.0;
  const DiffResult result = diff_bench_artifacts(base, slow);
  EXPECT_TRUE(result.failed);
  bool found = false;
  for (const SeriesDelta& delta : result.deltas) {
    if (delta.name == "cell.wall") {
      EXPECT_EQ(delta.verdict, "regression");
      EXPECT_NEAR(delta.rel_delta, 1.0, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // ...unless the caller widens the tolerance.
  DiffOptions loose;
  loose.wall_rel_tol = 3.0;
  EXPECT_FALSE(diff_bench_artifacts(base, slow, loose).failed);

  // Wall improvements never fail.
  BenchArtifact fast = sample_artifact();
  fast.series["cell.wall"].mean_s *= 0.25;
  EXPECT_FALSE(diff_bench_artifacts(base, fast).failed);
}

TEST(BenchDiff, MissingSeriesFailsAndNewSeriesInforms) {
  const BenchArtifact base = sample_artifact();

  BenchArtifact missing = sample_artifact();
  missing.series.erase("cell.vtime");
  const DiffResult gone = diff_bench_artifacts(base, missing);
  EXPECT_TRUE(gone.failed);

  BenchArtifact extra = sample_artifact();
  SeriesStats added;
  added.count = 1;
  added.mean_s = 1.0;
  extra.series["cell.added"] = added;
  const DiffResult result = diff_bench_artifacts(base, extra);
  EXPECT_FALSE(result.failed);  // new series are informational
  bool found = false;
  for (const SeriesDelta& delta : result.deltas) {
    if (delta.name == "cell.added") {
      EXPECT_EQ(delta.verdict, "new");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchReport, SloVerdictsRoundTripAndV1ArtifactsStillParse) {
  BenchArtifact artifact = sample_artifact();
  artifact.series["cell.vtime"].p999_s = 0.95;
  SloResult slo;
  slo.name = "cell.p999";
  slo.metric = "cell.vtime";
  slo.percentile = "p999";
  slo.threshold_s = 1.0;
  slo.min_samples = 8;
  slo.status = "pass";
  slo.observed_s = 0.95;
  slo.samples = 10;
  artifact.slos.push_back(slo);

  std::string error;
  const auto parsed =
      parse_bench_artifact(bench_artifact_json(artifact), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_NEAR(parsed->series.at("cell.vtime").p999_s, 0.95, 1e-12);
  ASSERT_EQ(parsed->slos.size(), 1u);
  EXPECT_EQ(parsed->slos[0].name, "cell.p999");
  EXPECT_EQ(parsed->slos[0].percentile, "p999");
  EXPECT_EQ(parsed->slos[0].status, "pass");
  EXPECT_NEAR(parsed->slos[0].threshold_s, 1.0, 1e-12);
  EXPECT_EQ(parsed->slos[0].min_samples, 8u);
  EXPECT_EQ(parsed->slos[0].samples, 10u);

  // A v1 artifact (no p999_s column, no slos section) still parses:
  // p999_s falls back to p99_s, slos stay empty.
  const std::string v1 =
      "{\"schema_version\":1,\"bench\":\"old\",\"seed\":7,"
      "\"git_rev\":\"abc\",\"series\":{\"cell.vtime\":{\"count\":2,"
      "\"mean_s\":0.5,\"p50_s\":0.4,\"p99_s\":0.9,\"min_s\":0.1,"
      "\"max_s\":1.0,\"sum_s\":1.0,\"units\":\"s\",\"kind\":\"vtime\"}},"
      "\"profile_top\":[]}";
  const auto old = parse_bench_artifact(v1, &error);
  ASSERT_TRUE(old.has_value()) << error;
  EXPECT_EQ(old->schema_version, 1);
  EXPECT_NEAR(old->series.at("cell.vtime").p999_s, 0.9, 1e-12);
  EXPECT_TRUE(old->slos.empty());

  // A v2 artifact without the slos array is malformed...
  const std::string v2_missing =
      "{\"schema_version\":2,\"bench\":\"b\",\"seed\":1,\"git_rev\":\"x\","
      "\"series\":{},\"profile_top\":[]}";
  EXPECT_FALSE(parse_bench_artifact(v2_missing, &error).has_value());
  EXPECT_NE(error.find("slos"), std::string::npos) << error;

  // ...and an unknown verdict status is a schema violation.
  artifact.slos[0].status = "maybe";
  EXPECT_FALSE(parse_bench_artifact(bench_artifact_json(artifact), &error)
                   .has_value());
}

TEST(BenchReport, V3AttributionRoundTripsAndV2ArtifactsStillParse) {
  BenchArtifact artifact = sample_artifact();
  SeriesAttribution attr;
  attr.trace_id = "70733a74726163650000000000000001";
  attr.span_id = 42;
  attr.sample_s = 0.9;
  attr.attributed_s = 0.9;
  attr.segments.push_back(SegmentShare{"wire-transfer", 0.6, 3});
  attr.segments.push_back(SegmentShare{"client", 0.3, 1});
  artifact.series["cell.vtime"].attribution = attr;

  const std::string text = bench_artifact_json(artifact);
  EXPECT_NE(text.find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(text.find("\"attribution\":{\"trace_id\":"), std::string::npos);

  std::string error;
  const auto parsed = parse_bench_artifact(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto& got = parsed->series.at("cell.vtime").attribution;
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->trace_id, attr.trace_id);
  EXPECT_EQ(got->span_id, 42u);
  EXPECT_NEAR(got->sample_s, 0.9, 1e-12);
  EXPECT_NEAR(got->attributed_s, 0.9, 1e-12);
  ASSERT_EQ(got->segments.size(), 2u);
  EXPECT_EQ(got->segments[0].segment, "wire-transfer");
  EXPECT_NEAR(got->segments[0].vtime_s, 0.6, 1e-12);
  EXPECT_EQ(got->segments[0].spans, 3u);
  // Attribution is per-series: the others stay absent.
  EXPECT_FALSE(parsed->series.at("cell.wall").attribution.has_value());

  // Series diffing ignores the attribution block entirely (trace ids are
  // run-local): identical stats with different attributions still pass.
  BenchArtifact cand = sample_artifact();
  EXPECT_FALSE(diff_bench_artifacts(artifact, cand).failed);

  // A v2 artifact (p999 + slos but no attribution) still parses...
  const std::string v2 =
      "{\"schema_version\":2,\"bench\":\"old\",\"seed\":7,"
      "\"git_rev\":\"abc\",\"series\":{\"cell.vtime\":{\"count\":2,"
      "\"mean_s\":0.5,\"p50_s\":0.4,\"p99_s\":0.9,\"p999_s\":0.95,"
      "\"min_s\":0.1,\"max_s\":1.0,\"sum_s\":1.0,\"units\":\"s\","
      "\"kind\":\"vtime\"}},\"slos\":[],\"profile_top\":[]}";
  const auto old = parse_bench_artifact(v2, &error);
  ASSERT_TRUE(old.has_value()) << error;
  EXPECT_EQ(old->schema_version, 2);
  EXPECT_FALSE(old->series.at("cell.vtime").attribution.has_value());

  // ...and a malformed v3 attribution (bad trace id, empty segments) is a
  // schema violation, not silently accepted.
  BenchArtifact bad = sample_artifact();
  bad.series["cell.vtime"].attribution = attr;
  bad.series["cell.vtime"].attribution->trace_id = "short";
  EXPECT_FALSE(
      parse_bench_artifact(bench_artifact_json(bad), &error).has_value());
  bad.series["cell.vtime"].attribution = attr;
  bad.series["cell.vtime"].attribution->segments.clear();
  EXPECT_FALSE(
      parse_bench_artifact(bench_artifact_json(bad), &error).has_value());
}

TEST(BenchDiff, CandidateSloBreachFailsIndependentOfSeriesDrift) {
  const BenchArtifact base = sample_artifact();

  SloResult breach;
  breach.name = "cell.p99";
  breach.metric = "cell.vtime";
  breach.percentile = "p99";
  breach.threshold_s = 0.5;
  breach.status = "breach";
  breach.observed_s = 0.9;
  breach.samples = 10;

  // Identical series, but the candidate carries a breach: the gate fails.
  BenchArtifact cand = sample_artifact();
  cand.slos.push_back(breach);
  const DiffResult result = diff_bench_artifacts(base, cand);
  EXPECT_TRUE(result.failed);
  ASSERT_EQ(result.slo_breaches.size(), 1u);
  EXPECT_EQ(result.slo_breaches[0].name, "cell.p99");
  for (const SeriesDelta& delta : result.deltas) {
    EXPECT_EQ(delta.verdict, "ok") << delta.name;  // no series drift
  }

  // Pass and insufficient-data verdicts never fail the gate.
  BenchArtifact healthy = sample_artifact();
  SloResult pass = breach;
  pass.status = "pass";
  pass.observed_s = 0.3;
  SloResult scarce = breach;
  scarce.name = "cell.scarce";
  scarce.status = "insufficient_data";
  healthy.slos = {pass, scarce};
  EXPECT_FALSE(diff_bench_artifacts(base, healthy).failed);

  // A breach recorded in the BASELINE does not fail a clean candidate —
  // the gate judges the run under test, not history.
  BenchArtifact old_breach = sample_artifact();
  old_breach.slos.push_back(breach);
  EXPECT_FALSE(diff_bench_artifacts(old_breach, sample_artifact()).failed);
}

TEST(BenchReport, WriteAndReadArtifactFile) {
  const BenchArtifact artifact = sample_artifact();
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "ps_obs_artifact_test.json";
  ASSERT_TRUE(write_bench_artifact(path.string(), artifact));
  std::string error;
  const auto read = read_bench_artifact(path.string(), &error);
  ASSERT_TRUE(read.has_value()) << error;
  EXPECT_EQ(read->bench, artifact.bench);
  std::filesystem::remove(path);

  EXPECT_FALSE(read_bench_artifact("/no/such/dir/file.json", &error)
                   .has_value());
}

// ------------------------------------------- prometheus conformance --------

TEST(PrometheusExport, ConformsToTextExpositionFormat) {
  MetricsRegistry registry;
  registry.counter("conf.ops").inc(3);
  registry.gauge("conf.depth").set(2.5);
  auto& h = registry.histogram("conf.latency");
  h.observe(1e-6);
  h.observe(1e-3);
  h.observe(0.5);

  const std::string text = prometheus_text(registry);
  std::istringstream lines(text);
  std::string line;
  std::map<std::string, std::string> help;  // metric -> HELP line
  std::map<std::string, std::string> type;  // metric -> declared type
  std::vector<std::pair<double, std::uint64_t>> buckets;  // le -> count
  std::uint64_t inf_count = 0;
  bool saw_inf = false;
  while (std::getline(lines, line)) {
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      help[rest.substr(0, rest.find(' '))] = rest;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      const std::string name = rest.substr(0, space);
      type[name] = rest.substr(space + 1);
      // HELP must precede TYPE for the same metric family.
      EXPECT_TRUE(help.contains(name)) << name;
      continue;
    }
    if (line.rfind("ps_conf_latency_seconds_bucket{le=\"", 0) == 0) {
      const std::size_t open = line.find('"') + 1;
      const std::size_t close = line.find('"', open);
      const std::string le = line.substr(open, close - open);
      const std::uint64_t n =
          std::stoull(line.substr(line.rfind(' ') + 1));
      if (le == "+Inf") {
        saw_inf = true;
        inf_count = n;
      } else {
        buckets.emplace_back(std::stod(le), n);
      }
    }
  }

  // Counters carry _total; every family declares HELP + TYPE.
  EXPECT_TRUE(type.contains("ps_conf_ops_total"));
  EXPECT_EQ(type["ps_conf_ops_total"], "counter");
  EXPECT_EQ(type["ps_conf_depth"], "gauge");
  EXPECT_EQ(type["ps_conf_latency_seconds"], "histogram");
  for (const auto& [name, declared] : type) {
    EXPECT_TRUE(help.contains(name)) << name;
  }
  EXPECT_NE(text.find("ps_conf_ops_total 3\n"), std::string::npos);

  // Histogram buckets are cumulative (non-decreasing in le order) and end
  // with +Inf == observation count.
  ASSERT_TRUE(saw_inf);
  EXPECT_EQ(inf_count, 3u);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i].first, buckets[i - 1].first);
    EXPECT_GE(buckets[i].second, buckets[i - 1].second);
  }
  if (!buckets.empty()) {
    EXPECT_LE(buckets.back().second, inf_count);
  }
  EXPECT_NE(text.find("ps_conf_latency_seconds_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ps_conf_latency_seconds_sum "), std::string::npos);
}

TEST(PrometheusExport, SummaryQuantileFamilyConforms) {
  MetricsRegistry registry;
  auto& h = registry.histogram("conf.latency");
  for (int i = 1; i <= 1000; ++i) h.observe(i * 1e-4);

  const std::string text = prometheus_text(registry);
  // The quantile exposition is its own summary family (mixing quantile
  // labels into the histogram family would violate one-TYPE-per-family).
  EXPECT_NE(text.find("# TYPE ps_conf_latency_quantiles_seconds summary"),
            std::string::npos);
  const std::size_t help =
      text.find("# HELP ps_conf_latency_quantiles_seconds ");
  ASSERT_NE(help, std::string::npos);
  EXPECT_LT(help, text.find("# TYPE ps_conf_latency_quantiles_seconds"));

  const auto quantile_value = [&text](const std::string& q) {
    const std::string needle =
        "ps_conf_latency_quantiles_seconds{quantile=\"" + q + "\"} ";
    const std::size_t pos = text.find(needle);
    EXPECT_NE(pos, std::string::npos) << q;
    return std::stod(text.substr(pos + needle.size()));
  };
  const double p50 = quantile_value("0.5");
  const double p99 = quantile_value("0.99");
  const double p999 = quantile_value("0.999");
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_NEAR(p999, h.p999(), 1e-12);
  EXPECT_NE(text.find("ps_conf_latency_quantiles_seconds_count 1000\n"),
            std::string::npos);
  EXPECT_NE(text.find("ps_conf_latency_quantiles_seconds_sum "),
            std::string::npos);
}

// ------------------------------------------------------------ quantiles ----

TEST(HistogramQuantiles, P999AndQuantileTrackPercentileAndExportInJson) {
  MetricsRegistry registry;
  auto& h = registry.histogram("quant.lat");
  for (int i = 1; i <= 1000; ++i) h.observe(i * 1e-3);

  EXPECT_DOUBLE_EQ(h.p999(), h.percentile(99.9));
  EXPECT_DOUBLE_EQ(h.quantile(0.999), h.percentile(99.9));
  EXPECT_DOUBLE_EQ(h.quantile(0.5), h.percentile(50.0));
  // 1000 samples fit the reservoir, so the quantiles are exact.
  EXPECT_NEAR(h.p999(), 0.999, 2e-3);
  EXPECT_GE(h.p999(), h.percentile(99.0));

  const JsonValue root = JsonReader(registry.dump_json()).parse();
  const JsonValue& hist = root.at("histograms").at("quant.lat");
  ASSERT_TRUE(hist.has("p999_s"));
  EXPECT_NEAR(hist.at("p999_s").num(), h.p999(), 1e-9);
  EXPECT_GE(hist.at("p999_s").num(), hist.at("p99_s").num());
}

// ------------------------------------------------------------------- slo ----

TEST(Slo, DeclareValidatesReplacesAndRemoves) {
  SloRegistry slos;
  slos.declare({"a.p99", "metric.a", "p99", 0.1, 8});
  EXPECT_EQ(slos.size(), 1u);

  // Replacement is by name, not accumulation.
  slos.declare({"a.p99", "metric.a", "p999", 0.2, 8});
  ASSERT_EQ(slos.size(), 1u);
  EXPECT_EQ(slos.objectives()[0].percentile, "p999");
  EXPECT_DOUBLE_EQ(slos.objectives()[0].threshold_s, 0.2);

  EXPECT_THROW(slos.declare({"", "m", "p99", 0.1, 1}), Error);
  EXPECT_THROW(slos.declare({"n", "", "p99", 0.1, 1}), Error);
  EXPECT_THROW(slos.declare({"n", "m", "p95", 0.1, 1}), Error);
  EXPECT_THROW(slos.declare({"n", "m", "p99", 0.0, 1}), Error);
  EXPECT_EQ(slos.size(), 1u);

  EXPECT_TRUE(slos.remove("a.p99"));
  EXPECT_FALSE(slos.remove("a.p99"));
  EXPECT_EQ(slos.size(), 0u);

  EXPECT_TRUE(valid_slo_percentile("p50"));
  EXPECT_TRUE(valid_slo_percentile("p999"));
  EXPECT_FALSE(valid_slo_percentile("p95"));
}

TEST(Slo, EvaluateProducesPassBreachAndInsufficientVerdicts) {
  MetricsRegistry registry;
  for (int i = 0; i < 100; ++i) registry.histogram("slo.fast").observe(1e-3);
  for (int i = 0; i < 100; ++i) registry.histogram("slo.slow").observe(0.2);
  for (int i = 0; i < 3; ++i) registry.histogram("slo.scarce").observe(1e-3);

  SloRegistry slos;
  slos.declare({"fast.p99", "slo.fast", "p99", 0.010, 10});
  slos.declare({"slow.p99", "slo.slow", "p99", 0.010, 10});
  slos.declare({"scarce.p999", "slo.scarce", "p999", 0.010, 10});
  slos.declare({"absent.p50", "slo.absent", "p50", 0.010, 1});

  const SloReport report = slos.evaluate(registry);
  ASSERT_EQ(report.verdicts.size(), 4u);
  EXPECT_EQ(report.verdicts[0].status, SloStatus::kPass);
  EXPECT_NEAR(report.verdicts[0].observed_s, 1e-3, 1e-4);
  EXPECT_EQ(report.verdicts[0].samples, 100u);
  EXPECT_EQ(report.verdicts[1].status, SloStatus::kBreach);
  EXPECT_GT(report.verdicts[1].observed_s, 0.010);
  EXPECT_EQ(report.verdicts[2].status, SloStatus::kInsufficientData);
  EXPECT_EQ(report.verdicts[2].samples, 3u);
  EXPECT_EQ(report.verdicts[3].status, SloStatus::kInsufficientData);
  EXPECT_EQ(report.verdicts[3].samples, 0u);

  EXPECT_EQ(report.breaches(), 1u);
  EXPECT_EQ(report.insufficient(), 2u);
  EXPECT_FALSE(report.passed());

  const std::string table = report.table();
  EXPECT_NE(table.find("slow.p99"), std::string::npos);
  EXPECT_NE(table.find("breach"), std::string::npos);
  EXPECT_NE(table.find("insufficient"), std::string::npos);

  const JsonValue root = JsonReader(slo_report_json(report)).parse();
  EXPECT_EQ(root.at("breaches").num(), 1.0);
  EXPECT_EQ(root.at("passed").num(), 0.0);
  ASSERT_EQ(root.at("slos").arr().size(), 4u);
  EXPECT_EQ(std::get<std::string>(root.at("slos").arr()[1].at("status").v),
            "breach");
}

TEST(Slo, CollectEmbedsGlobalRegistryVerdictsInArtifact) {
  SloRegistry::global().clear();
  auto& h = MetricsRegistry::global().histogram("slo.collect.lat");
  for (int i = 0; i < 20; ++i) h.observe(1e-3);
  SloRegistry::global().declare(
      {"slo.collect.p99", "slo.collect.lat", "p99", 0.010, 10});

  const BenchArtifact artifact =
      collect_bench_artifact("slo_bench", 1, {}, 0);
  ASSERT_EQ(artifact.slos.size(), 1u);
  EXPECT_EQ(artifact.slos[0].name, "slo.collect.p99");
  EXPECT_EQ(artifact.slos[0].status, "pass");
  EXPECT_EQ(artifact.slos[0].samples, 20u);
  SloRegistry::global().clear();
}

// ------------------------------------------------- histogram exemplars -----

TEST(HistogramExemplars, RequireContextAndMaxValueWinsPerBucket) {
  Histogram h;
  // No active trace context: observations never mint exemplars, so the
  // histogram exports exactly as before the feature existed.
  h.observe(1e-3);
  h.observe(0.5);
  EXPECT_TRUE(h.exemplars().empty());
  EXPECT_FALSE(h.max_exemplar().valid());

  const TraceContext ctx = new_root_context();
  {
    ContextScope scope(ctx);
    h.observe(1.1e-3);  // same bucket as 1e-3
    h.observe(1.2e-3);  // larger: replaces
    h.observe(1.05e-3);  // smaller: rejected by the lock-free gate
    h.observe(0.7);      // a different bucket gets its own exemplar
  }
  const auto exemplars = h.exemplars();
  ASSERT_EQ(exemplars.size(), 2u);
  EXPECT_NEAR(exemplars[0].second.value_s, 1.2e-3, 1e-12);
  EXPECT_NEAR(exemplars[1].second.value_s, 0.7, 1e-12);
  for (const auto& [le, ex] : exemplars) {
    EXPECT_LE(ex.value_s, le);
    EXPECT_EQ(ex.trace_hi, ctx.trace_hi);
    EXPECT_EQ(ex.trace_lo, ctx.trace_lo);
    EXPECT_EQ(ex.span_id, ctx.span_id);
    EXPECT_EQ(ex.trace_id_hex().size(), 32u);
  }
  const Exemplar best = h.max_exemplar();
  ASSERT_TRUE(best.valid());
  EXPECT_NEAR(best.value_s, 0.7, 1e-12);

  h.reset();
  EXPECT_TRUE(h.exemplars().empty());
  EXPECT_FALSE(h.max_exemplar().valid());
}

TEST(HistogramExemplars, DumpJsonSchemaV3CarriesExemplars) {
  MetricsRegistry registry;
  auto& h = registry.histogram("ex.lat");
  {
    ContextScope scope(new_root_context());
    h.observe(2e-3);
  }
  const JsonValue root = JsonReader(registry.dump_json()).parse();
  EXPECT_EQ(root.at("schema_version").num(), 3.0);
  const JsonValue& hist = root.at("histograms").at("ex.lat");
  ASSERT_TRUE(hist.has("exemplars"));
  ASSERT_EQ(hist.at("exemplars").arr().size(), 1u);
  const JsonValue& ex = hist.at("exemplars").arr()[0];
  EXPECT_NEAR(ex.at("value_s").num(), 2e-3, 1e-12);
  EXPECT_EQ(std::get<std::string>(ex.at("trace_id").v).size(), 32u);
  EXPECT_GT(ex.at("span_id").num(), 0.0);

  // An exemplar-free histogram still emits the (empty) array.
  registry.histogram("ex.bare").observe(1e-3);
  const JsonValue root2 = JsonReader(registry.dump_json()).parse();
  EXPECT_TRUE(root2.at("histograms").at("ex.bare").at("exemplars")
                  .arr().empty());
}

TEST(PrometheusExport, ExemplarAnnotationsRideOnBucketLines) {
  MetricsRegistry registry;
  auto& h = registry.histogram("ex.lat");
  const TraceContext ctx = new_root_context();
  {
    ContextScope scope(ctx);
    h.observe(2e-3);
  }
  h.observe(0.9);  // no context: this bucket gets no annotation

  const std::string text = prometheus_text(registry);
  const std::string needle = "# {trace_id=\"" + ctx.trace_id_hex() +
                             "\",span_id=\"" + std::to_string(ctx.span_id) +
                             "\"} 0.002";
  EXPECT_NE(text.find(needle), std::string::npos) << text;
  // Exactly one bucket line is annotated — the context-free observation
  // must not grow one.
  std::size_t annotations = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find(" # {trace_id=") != std::string::npos) {
      ++annotations;
      EXPECT_NE(line.find("_bucket{le=\""), std::string::npos) << line;
    }
  }
  EXPECT_EQ(annotations, 1u);
}

TEST(PrometheusExport, LabelValuesEscapeBackslashQuoteNewline) {
  EXPECT_EQ(prom_label_escape("plain"), "plain");
  EXPECT_EQ(prom_label_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_label_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prom_label_escape("line\nbreak"), "line\\nbreak");

  // A hostile objective name must come out escaped in the SLO exposition
  // (and must not smuggle a raw newline into the middle of a sample line).
  MetricsRegistry registry;
  for (int i = 0; i < 20; ++i) registry.histogram("evil.lat").observe(1e-3);
  SloRegistry slos;
  slos.declare({"evil\"name\\with\nnewline", "evil.lat", "p99", 0.010, 10});
  const std::string text = slo_prometheus_text(slos.evaluate(registry));
  EXPECT_NE(
      text.find(
          "ps_slo_status{objective=\"evil\\\"name\\\\with\\nnewline\"} 0"),
      std::string::npos)
      << text;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Every sample line is complete: name{labels} value.
    EXPECT_NE(line.find("} "), std::string::npos) << line;
  }
}

// ---------------------------------------------------- critical path --------

SpanRecord make_span(const TraceContext& ctx, std::string name,
                     std::string kind, double start, double end) {
  SpanRecord span;
  span.ctx = ctx;
  span.name = std::move(name);
  span.kind = std::move(kind);
  span.process = "test";
  span.host = "host";
  span.site = "site";
  span.vtime_start = start;
  span.vtime_end = end;
  span.wall_start = start;
  span.wall_end = end;
  return span;
}

TEST(CriticalPath, SegmentKindExplicitThenNameFallback) {
  SpanRecord s = make_span(new_root_context(), "anything", "serde", 0, 1);
  EXPECT_EQ(segment_kind(s), "serde");  // explicit kind wins
  s.kind.clear();
  s.name = "connector.redis.get";
  EXPECT_EQ(segment_kind(s), "wire-transfer");
  s.name = "endpoint.forward";
  EXPECT_EQ(segment_kind(s), "wire-transfer");
  s.name = "store.deserialize";
  EXPECT_EQ(segment_kind(s), "serde");
  s.name = "store.cache.probe";
  EXPECT_EQ(segment_kind(s), "cache-probe");
  s.name = "stream.poll";
  EXPECT_EQ(segment_kind(s), "broker-poll");
  s.name = "async.executor.queue";
  EXPECT_EQ(segment_kind(s), "executor-queue");
  s.name = "faas.dispatch";
  EXPECT_EQ(segment_kind(s), "dispatch");
  s.name = "mystery";
  EXPECT_EQ(segment_kind(s), "other");
}

TEST(CriticalPath, SegmentsSumExactlyToRootWindow) {
  // root [0, 10] (client)
  //   wire  [1, 4]  (wire-transfer)
  //     queue [2, 3] (executor-queue)
  //   serde [5, 6]  (classified by name)
  const TraceContext root = new_root_context();
  const TraceContext wire = child_of(root);
  const TraceContext queue = child_of(wire);
  const TraceContext serde = child_of(root);
  const CriticalPath cp = CriticalPath::from_spans({
      make_span(root, "fleet.op", "client", 0.0, 10.0),
      make_span(wire, "connector.kv.get", "wire-transfer", 1.0, 4.0),
      make_span(queue, "async.executor.queue", "executor-queue", 2.0, 3.0),
      make_span(serde, "store.deserialize", "", 5.0, 6.0),
  });
  ASSERT_EQ(cp.reports().size(), 1u);
  const CriticalPathReport& report = cp.reports()[0];
  EXPECT_EQ(report.trace_id, root.trace_id_hex());
  EXPECT_EQ(report.root_name, "fleet.op");
  EXPECT_EQ(report.span_count, 4u);
  EXPECT_DOUBLE_EQ(report.vtime_s, 10.0);
  EXPECT_DOUBLE_EQ(report.attributed_s, 10.0);  // the exact-sum invariant

  std::map<std::string, double> shares;
  for (const SegmentShare& s : report.segments) {
    shares[s.segment] = s.vtime_s;
  }
  // client: gaps [0,1) + [4,5) + [6,10] = 6; wire: [1,2) + [3,4) = 2.
  EXPECT_DOUBLE_EQ(shares.at("client"), 6.0);
  EXPECT_DOUBLE_EQ(shares.at("wire-transfer"), 2.0);
  EXPECT_DOUBLE_EQ(shares.at("executor-queue"), 1.0);
  EXPECT_DOUBLE_EQ(shares.at("serde"), 1.0);
  // Largest share first.
  EXPECT_EQ(report.segments[0].segment, "client");

  // table() and json() render every segment.
  const std::string table = CriticalPath::table(cp.reports());
  EXPECT_NE(table.find("wire-transfer"), std::string::npos);
  const JsonValue parsed = JsonReader(CriticalPath::json(cp.top(5))).parse();
  ASSERT_EQ(parsed.at("critical_paths").arr().size(), 1u);
  EXPECT_DOUBLE_EQ(
      parsed.at("critical_paths").arr()[0].at("attributed_s").num(), 10.0);
}

TEST(CriticalPath, OverlappingChildrenClipAndForSpanRequiresRoot) {
  const TraceContext root = new_root_context();
  const TraceContext a = child_of(root);
  const TraceContext b = child_of(root);
  const CriticalPath cp = CriticalPath::from_spans({
      make_span(root, "root.op", "client", 0.0, 10.0),
      make_span(a, "connector.a.get", "wire-transfer", 1.0, 5.0),
      // Overlaps its sibling: only the [5, 8] remainder may be credited,
      // or the sum would exceed the window.
      make_span(b, "store.deserialize", "serde", 3.0, 8.0),
  });
  ASSERT_EQ(cp.reports().size(), 1u);
  const CriticalPathReport& report = cp.reports()[0];
  EXPECT_DOUBLE_EQ(report.attributed_s, 10.0);
  std::map<std::string, double> shares;
  for (const SegmentShare& s : report.segments) {
    shares[s.segment] = s.vtime_s;
  }
  EXPECT_DOUBLE_EQ(shares.at("wire-transfer"), 4.0);  // [1, 5]
  EXPECT_DOUBLE_EQ(shares.at("serde"), 3.0);          // clipped to [5, 8]
  EXPECT_DOUBLE_EQ(shares.at("client"), 3.0);         // [0,1) + [8,10]

  // for_span decomposes an inner hop on demand...
  const auto inner = cp.for_span(a.trace_hi, a.trace_lo, a.span_id);
  ASSERT_TRUE(inner.has_value());
  EXPECT_DOUBLE_EQ(inner->vtime_s, 4.0);
  // ...but not under require_root (the exemplar-attribution rule: only a
  // whole measured window may explain a series sample).
  EXPECT_FALSE(cp.for_span(a.trace_hi, a.trace_lo, a.span_id,
                           /*require_root=*/true)
                   .has_value());
  EXPECT_TRUE(cp.for_span(root.trace_hi, root.trace_lo, root.span_id,
                          /*require_root=*/true)
                  .has_value());
  EXPECT_FALSE(cp.for_span(root.trace_hi, root.trace_lo, 0xdead).has_value());
}

// ---------------------------------------------------- flight recorder ------

TEST(FlightRecorder, ByteBudgetEvictsOldestAndCountsDrops) {
  FlightRecorder flight;
  const TraceContext ctx = new_root_context();
  const SpanRecord span = make_span(ctx, "flight.span", "client", 0.0, 1.0);
  const std::size_t cost = approx_span_bytes(span);
  flight.set_budget(cost * 4);
  for (int i = 0; i < 10; ++i) flight.record(span);
  EXPECT_LE(flight.size(), 4u);
  EXPECT_LE(flight.bytes(), flight.budget());
  EXPECT_GE(flight.dropped(), 6u);
  const std::uint64_t dropped_before = flight.dropped();

  // Shrinking the budget evicts immediately but always keeps one record.
  flight.set_budget(1);
  EXPECT_EQ(flight.size(), 1u);
  EXPECT_GT(flight.dropped(), dropped_before);

  // clear() empties the ring; drop counters stay monotonic.
  flight.clear();
  EXPECT_EQ(flight.size(), 0u);
  EXPECT_GT(flight.dropped(), dropped_before);
}

TEST(FlightRecorder, SnapshotRetentionAndPerfettoLoadableDump) {
  FlightRecorder flight;
  const TraceContext ctx = new_root_context();
  flight.record(make_span(ctx, "flight.op", "client", 0.5, 2.5));
  EXPECT_FALSE(flight.has_snapshot());

  // latest_or_live falls back to a live capture without retaining it.
  EXPECT_EQ(flight.latest_or_live().reason, "live");
  EXPECT_FALSE(flight.has_snapshot());

  for (int i = 0; i < 6; ++i) {
    flight.snapshot("snap-" + std::to_string(i));
  }
  EXPECT_TRUE(flight.has_snapshot());
  const auto snaps = flight.snapshots();
  ASSERT_EQ(snaps.size(), FlightRecorder::kMaxSnapshots);
  EXPECT_EQ(snaps.front().reason, "snap-2");  // oldest rolled out
  EXPECT_EQ(snaps.back().reason, "snap-5");
  EXPECT_EQ(flight.latest_or_live().reason, "snap-5");

  // The dump is one JSON document: Chrome-trace traceEvents plus the
  // "flight" header, and it must re-parse.
  const FlightRecorder::Snapshot snap = flight.latest_or_live();
  const std::string dump = FlightRecorder::dump_json(snap);
  const JsonValue root = JsonReader(dump).parse();
  EXPECT_EQ(std::get<std::string>(root.at("flight").at("reason").v),
            "snap-5");
  EXPECT_EQ(root.at("flight").at("span_count").num(), 1.0);
  bool saw_complete_event = false;
  for (const JsonValue& event : root.at("traceEvents").arr()) {
    if (std::get<std::string>(event.at("ph").v) == "X") {
      saw_complete_event = true;
    }
  }
  EXPECT_TRUE(saw_complete_event);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "ps_obs_flight_test.json";
  ASSERT_TRUE(FlightRecorder::dump(path.string(), snap));
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), dump);
  std::filesystem::remove(path);
}

TEST(LatencyWatchdog, LatchedThresholdCrossingFreezesFlightRecorder) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.clear();
  LatencyWatchdog& watchdog = LatencyWatchdog::global();
  watchdog.clear();

  MetricsRegistry registry;
  auto& h = registry.histogram("dog.lat");
  h.observe(0.050);
  watchdog.watch("dog.lat", 0.100);
  watchdog.watch("dog.absent", 0.100);
  EXPECT_EQ(watchdog.size(), 2u);
  EXPECT_EQ(watchdog.check(registry), 0u);  // under threshold: no snapshot
  EXPECT_FALSE(flight.has_snapshot());

  h.observe(0.250);  // crosses
  EXPECT_EQ(watchdog.check(registry), 1u);
  ASSERT_TRUE(flight.has_snapshot());
  const std::string reason = flight.latest_or_live().reason;
  EXPECT_NE(reason.find("anomaly: dog.lat"), std::string::npos) << reason;

  // Latched: the same crossing never snapshots twice...
  EXPECT_EQ(watchdog.check(registry), 0u);
  // ...until the watch is re-armed.
  watchdog.watch("dog.lat", 0.100);
  EXPECT_EQ(watchdog.check(registry), 1u);

  watchdog.clear();
  EXPECT_EQ(watchdog.size(), 0u);
  flight.clear();
}

// ------------------------------------------------ trace capacity ceiling ---

TEST(TraceRecorder, CapacityCeilingEvictsOldestAndCountsDrops) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.capacity(), TraceRecorder::kDefaultCapacity);
  recorder.set_enabled(true);
  recorder.set_capacity(4);

  const TraceContext ctx = new_root_context();
  for (int i = 0; i < 10; ++i) {
    recorder.record_span(
        make_span(ctx, "cap.span." + std::to_string(i), "", 0.0, 1.0));
    recorder.record("cap.subject", "cap.event." + std::to_string(i));
  }
  EXPECT_EQ(recorder.span_count(), 4u);
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.dropped_spans(), 6u);
  EXPECT_EQ(recorder.dropped_events(), 6u);
  // The survivors are the newest records.
  EXPECT_EQ(recorder.spans().front().name, "cap.span.6");
  EXPECT_EQ(recorder.spans().back().name, "cap.span.9");

  // Shrinking the capacity evicts immediately and keeps counting.
  recorder.set_capacity(2);
  EXPECT_EQ(recorder.span_count(), 2u);
  EXPECT_EQ(recorder.dropped_spans(), 8u);
  EXPECT_EQ(recorder.dropped_events(), 8u);

  // clear() empties the buffers but never resets the drop counters.
  recorder.clear();
  EXPECT_EQ(recorder.dropped_spans(), 8u);

  // The drops are mirrored into the global metrics registry.
  EXPECT_GE(MetricsRegistry::global().counters().at("trace.dropped.spans"),
            8u);
}

TEST(TraceRecorder, TraceCapEnvOverridesDefaultCapacity) {
  ::setenv("PROXYSTORE_TRACE_CAP", "123", /*overwrite=*/1);
  const TraceRecorder capped;
  EXPECT_EQ(capped.capacity(), 123u);
  // Garbage and zero fall back to the default.
  ::setenv("PROXYSTORE_TRACE_CAP", "0", 1);
  const TraceRecorder zero;
  EXPECT_EQ(zero.capacity(), TraceRecorder::kDefaultCapacity);
  ::setenv("PROXYSTORE_TRACE_CAP", "junk", 1);
  const TraceRecorder junk;
  EXPECT_EQ(junk.capacity(), TraceRecorder::kDefaultCapacity);
  ::unsetenv("PROXYSTORE_TRACE_CAP");
}

// ------------------------------------------------- concurrent exports ------
// Exercises every reader (dump_json, prometheus_text, profiler aggregation)
// against concurrent writers; run under -DPS_SANITIZE=thread this is the
// tier-2 data-race gate for the observability paths.

TEST(ObsConcurrency, ExportersAndProfilerRaceRecordersSafely) {
  auto& registry = MetricsRegistry::global();
  TraceRecorder& recorder = TraceRecorder::global();
  FlightRecorder& flight = FlightRecorder::global();
  recorder.clear();
  flight.clear();
  recorder.set_enabled(true);
  // A tight span cap forces concurrent evictions, so the drop accounting
  // races the writers too.
  recorder.set_capacity(256);

  constexpr int kWriters = 4;
  constexpr int kIterations = 400;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kIterations; ++i) {
        registry.counter("race.ops").inc();
        registry.gauge("race.depth").set(static_cast<double>(i));
        registry.histogram("race.latency").observe(1e-6 * (i + 1));
        SpanScope outer("race.outer." + std::to_string(w));
        {
          SpanScope inner("race.inner");
          recorder.record("race.subject", "tick");
        }
      }
    });
  }

  // Readers hammer the export paths until every writer is done.
  std::vector<std::thread> readers;
  for (int r = 0; r < 5; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_dropped = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (r == 0) {
          (void)registry.dump_json();
        } else if (r == 1) {
          (void)prometheus_text(registry);
        } else if (r == 2) {
          const Profile profile = Profile::from_recorder(recorder);
          (void)profile.folded();
          (void)profile.top_nodes(4);
        } else if (r == 3) {
          // Flight snapshots + critical-path analysis race the recording
          // threads; no span may come out torn.
          const auto snap = flight.snapshot("race");
          for (const SpanRecord& span : snap.spans) {
            EXPECT_FALSE(span.name.empty());
            EXPECT_LE(span.vtime_start, span.vtime_end);
          }
          (void)CriticalPath::from_recorder(recorder);
        } else {
          // Drop counters must be monotonic under concurrent eviction.
          const std::uint64_t dropped = recorder.dropped_spans();
          EXPECT_GE(dropped, last_dropped);
          last_dropped = dropped;
        }
      }
    });
  }

  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  recorder.set_enabled(false);

  EXPECT_EQ(registry.counters().at("race.ops"),
            static_cast<std::uint64_t>(kWriters) * kIterations);
  const Profile profile = Profile::from_recorder(recorder);
  EXPECT_FALSE(profile.empty());
  // 4 writers x 400 iterations x 2 spans against a 256-span cap: evictions
  // definitely happened and were all counted.
  EXPECT_LE(recorder.span_count(), 256u);
  EXPECT_GE(recorder.dropped_spans(),
            static_cast<std::uint64_t>(kWriters) * kIterations * 2 - 256);
  recorder.set_capacity(TraceRecorder::kDefaultCapacity);
  recorder.clear();
  flight.clear();
}

}  // namespace
}  // namespace ps::obs
