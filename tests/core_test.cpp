#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "connectors/local.hpp"
#include "core/cache.hpp"
#include "core/instrumented.hpp"
#include "core/key.hpp"
#include "core/multi.hpp"
#include "core/proxy.hpp"
#include "core/store.hpp"
#include "proc/world.hpp"
#include "serde/serde.hpp"

namespace ps::core {
namespace {

using connectors::LocalConnector;

/// Fixture giving each test an isolated world with two processes
/// ("producer" on one host, "consumer" on another in a remote site).
class CoreTest : public ::testing::Test {
 protected:
  CoreTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("site-a", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().add_site("site-b", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().connect_sites("site-a", "site-b",
                                   net::wan_tcp(20e-3, 1e9));
    world_->fabric().add_host("host-a", "site-a");
    world_->fabric().add_host("host-b", "site-b");
    producer_ = &world_->spawn("producer", "host-a");
    consumer_ = &world_->spawn("consumer", "host-b");
  }

  std::shared_ptr<Store> make_store(const std::string& name) {
    proc::ProcessScope scope(*producer_);
    auto store = std::make_shared<Store>(name,
                                         std::make_shared<LocalConnector>());
    register_store(store);
    return store;
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* producer_ = nullptr;
  proc::Process* consumer_ = nullptr;
};

// ------------------------------------------------------------------ key ----

TEST(Key, CanonicalIncludesMeta) {
  Key a{.object_id = "x", .meta = {{"k", "v"}}};
  Key b{.object_id = "x", .meta = {}};
  EXPECT_NE(a.canonical(), b.canonical());
  EXPECT_EQ(a.canonical(), "x|k=v");
}

TEST(Key, FieldThrowsOnMissing) {
  Key k{.object_id = "x", .meta = {{"a", "1"}}};
  EXPECT_EQ(k.field("a"), "1");
  EXPECT_THROW(k.field("b"), ConnectorError);
}

TEST(Key, SerdeRoundTrip) {
  Key k{.object_id = "obj", .meta = {{"task", "t1"}, {"ep", "e2"}}};
  EXPECT_EQ(serde::from_bytes<Key>(serde::to_bytes(k)), k);
}

// ---------------------------------------------------------------- cache ----

TEST(Cache, PutGetTyped) {
  ObjectCache cache(4);
  cache.put<int>("a", std::make_shared<const int>(42));
  auto hit = cache.get<int>("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);
}

TEST(Cache, TypeMismatchMisses) {
  ObjectCache cache(4);
  cache.put<int>("a", std::make_shared<const int>(42));
  EXPECT_EQ(cache.get<std::string>("a"), nullptr);
}

TEST(Cache, LruEvictsOldest) {
  ObjectCache cache(2);
  cache.put<int>("a", std::make_shared<const int>(1));
  cache.put<int>("b", std::make_shared<const int>(2));
  cache.put<int>("c", std::make_shared<const int>(3));
  EXPECT_EQ(cache.get<int>("a"), nullptr);
  EXPECT_NE(cache.get<int>("b"), nullptr);
  EXPECT_NE(cache.get<int>("c"), nullptr);
}

TEST(Cache, AccessRefreshesLru) {
  ObjectCache cache(2);
  cache.put<int>("a", std::make_shared<const int>(1));
  cache.put<int>("b", std::make_shared<const int>(2));
  cache.get<int>("a");  // refresh a
  cache.put<int>("c", std::make_shared<const int>(3));
  EXPECT_NE(cache.get<int>("a"), nullptr);
  EXPECT_EQ(cache.get<int>("b"), nullptr);
}

TEST(Cache, ZeroCapacityDisables) {
  ObjectCache cache(0);
  cache.put<int>("a", std::make_shared<const int>(1));
  EXPECT_EQ(cache.get<int>("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, HitMissCounters) {
  ObjectCache cache(4);
  cache.put<int>("a", std::make_shared<const int>(1));
  cache.get<int>("a");
  cache.get<int>("zzz");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, EraseAndClear) {
  ObjectCache cache(4);
  cache.put<int>("a", std::make_shared<const int>(1));
  cache.erase("a");
  EXPECT_FALSE(cache.contains("a"));
  cache.put<int>("b", std::make_shared<const int>(2));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------- proxy ----

TEST(Proxy, LazyResolution) {
  int calls = 0;
  Proxy<std::string> p(Factory<std::string>([&calls] {
    ++calls;
    return std::string("hello");
  }));
  EXPECT_FALSE(p.resolved());
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(*p, "hello");
  EXPECT_TRUE(p.resolved());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(*p, "hello");  // cached
  EXPECT_EQ(calls, 1);
}

TEST(Proxy, TransparencyViaImplicitConversion) {
  Proxy<std::string> p(
      Factory<std::string>([] { return std::string("world"); }));
  // A function expecting const std::string& accepts the proxy unchanged.
  const auto takes_string = [](const std::string& s) { return s.size(); };
  EXPECT_EQ(takes_string(p), 5u);
}

TEST(Proxy, ArrowForwardsToTarget) {
  Proxy<std::vector<int>> p(
      Factory<std::vector<int>>([] { return std::vector<int>{1, 2, 3}; }));
  EXPECT_EQ(p->size(), 3u);
  EXPECT_EQ(p->at(1), 2);
}

TEST(Proxy, CopySharesResolutionState) {
  int calls = 0;
  Proxy<int> p(Factory<int>([&calls] {
    ++calls;
    return 7;
  }));
  Proxy<int> q = p;
  EXPECT_EQ(*q, 7);
  EXPECT_TRUE(p.resolved());  // resolving the copy resolved the original
  EXPECT_EQ(*p, 7);
  EXPECT_EQ(calls, 1);
}

TEST(Proxy, MutableTargetAffectsLocalCopyOnly) {
  Proxy<std::vector<int>> p(
      Factory<std::vector<int>>([] { return std::vector<int>{1}; }));
  p.mutable_target().push_back(2);
  EXPECT_EQ(p->size(), 2u);
}

TEST(Proxy, FactoryErrorPropagatesAndRetries) {
  int calls = 0;
  Proxy<int> p(Factory<int>([&calls]() -> int {
    if (++calls == 1) throw ProxyResolutionError("transient");
    return 9;
  }));
  EXPECT_THROW(p.resolve(), ProxyResolutionError);
  EXPECT_FALSE(p.resolved());
  EXPECT_EQ(*p, 9);  // second attempt succeeds
}

TEST(Proxy, EmptyFactoryRejectedAtConstruction) {
  EXPECT_THROW(Proxy<int>(Factory<int>()), ProxyResolutionError);
}

TEST(Proxy, AsyncResolveProducesSameValue) {
  Proxy<std::string> p(
      Factory<std::string>([] { return std::string("async"); }));
  p.resolve_async();
  EXPECT_EQ(*p, "async");
}

TEST(Proxy, AsyncResolveIsIdempotent) {
  std::atomic<int> calls{0};
  Proxy<int> p(Factory<int>([&calls] {
    ++calls;
    return 1;
  }));
  p.resolve_async();
  p.resolve_async();
  EXPECT_EQ(*p, 1);
  EXPECT_EQ(calls.load(), 1);
}

TEST(Proxy, AsyncOverlapsVirtualTime) {
  // A factory costing 1.0 virtual seconds overlapped with 1.0s of compute
  // should finish in ~1.0s, not 2.0s.
  sim::VtimeGuard guard;
  Proxy<int> p(Factory<int>([] {
    sim::vadvance(1.0);
    return 5;
  }));
  sim::VtimeScope scope;
  p.resolve_async();
  sim::vadvance(1.0);  // simulated computation
  EXPECT_EQ(*p, 5);
  EXPECT_NEAR(scope.elapsed(), 1.0, 1e-6);
}

TEST(Proxy, SequentialResolveCostsAdd) {
  sim::VtimeGuard guard;
  Proxy<int> p(Factory<int>([] {
    sim::vadvance(1.0);
    return 5;
  }));
  sim::VtimeScope scope;
  sim::vadvance(1.0);
  EXPECT_EQ(*p, 5);  // resolve after the compute, no overlap
  EXPECT_NEAR(scope.elapsed(), 2.0, 1e-6);
}

TEST(Proxy, ConcurrentResolversSeeOneValue) {
  Proxy<int> p(Factory<int>([] { return 42; }));
  std::vector<std::thread> threads;
  std::atomic<int> sum{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] { sum += *p; });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(), 8 * 42);
}

// ---------------------------------------------------------------- store ----

TEST_F(CoreTest, StorePutGetRoundTrip) {
  auto store = make_store("s1");
  proc::ProcessScope scope(*producer_);
  const Key key = store->put(std::string("value"));
  EXPECT_EQ(store->get<std::string>(key), "value");
  EXPECT_TRUE(store->exists(key));
}

TEST_F(CoreTest, StoreGetMissingReturnsNullopt) {
  auto store = make_store("s2");
  proc::ProcessScope scope(*producer_);
  EXPECT_EQ(store->get<int>(Key{.object_id = "ghost", .meta = {}}),
            std::nullopt);
}

TEST_F(CoreTest, StoreEvictRemoves) {
  auto store = make_store("s3");
  proc::ProcessScope scope(*producer_);
  Store::Options no_cache;
  no_cache.cache_size = 0;
  auto raw = std::make_shared<Store>("raw", std::make_shared<LocalConnector>(),
                                     no_cache);
  const Key key = raw->put(123);
  raw->evict(key);
  EXPECT_FALSE(raw->exists(key));
  EXPECT_EQ(raw->get<int>(key), std::nullopt);
}

TEST_F(CoreTest, StoreCachesDeserializedObjects) {
  auto store = make_store("s4");
  proc::ProcessScope scope(*producer_);
  const Key key = store->put(std::string("cached"));
  store->get<std::string>(key);
  store->get<std::string>(key);
  EXPECT_EQ(store->metrics().cache_hits, 1u);
  // Cached object survives connector eviction (local materialization).
  store->connector().evict(key);
  EXPECT_EQ(store->get<std::string>(key), "cached");
}

TEST_F(CoreTest, StoreCustomSerializer) {
  auto store = make_store("s5");
  proc::ProcessScope scope(*producer_);
  struct Custom {
    int v = 0;
  };
  store->register_serializer<Custom>(
      [](const Custom& c) { return serde::to_bytes(c.v); },
      [](BytesView b) { return Custom{serde::from_bytes<int>(b)}; });
  const Key key = store->put(Custom{99});
  EXPECT_EQ(store->get<Custom>(key)->v, 99);
}

TEST_F(CoreTest, StoreCloseRejectsFurtherOps) {
  auto store = make_store("s6");
  proc::ProcessScope scope(*producer_);
  store->close();
  EXPECT_TRUE(store->closed());
  EXPECT_THROW(store->put(1), ConnectorError);
  store->close();  // idempotent
}

TEST_F(CoreTest, StoreMetricsTrackBytes) {
  auto store = make_store("s7");
  proc::ProcessScope scope(*producer_);
  const Key key = store->put(pattern_bytes(1000));
  store->get<Bytes>(key);
  const auto m = store->metrics();
  EXPECT_EQ(m.puts, 1u);
  EXPECT_EQ(m.gets, 1u);
  EXPECT_GE(m.bytes_put, 1000u);
  EXPECT_GE(m.bytes_got, 1000u);
}

TEST_F(CoreTest, NullConnectorThrows) {
  EXPECT_THROW(Store("bad", nullptr), ConnectorError);
}

// ------------------------------------------------------------- registry ----

TEST_F(CoreTest, RegisterAndGetStore) {
  auto store = make_store("reg1");
  proc::ProcessScope scope(*producer_);
  EXPECT_EQ(get_store("reg1"), store);
  EXPECT_EQ(get_store("missing"), nullptr);
}

TEST_F(CoreTest, DuplicateRegistrationThrowsUnlessOverwrite) {
  auto store = make_store("reg2");
  proc::ProcessScope scope(*producer_);
  auto other =
      std::make_shared<Store>("reg2", std::make_shared<LocalConnector>());
  EXPECT_THROW(register_store(other), NotRegisteredError);
  register_store(store);  // same instance: fine
  register_store(other, /*overwrite=*/true);
  EXPECT_EQ(get_store("reg2"), other);
}

TEST_F(CoreTest, UnregisterStore) {
  auto store = make_store("reg3");
  proc::ProcessScope scope(*producer_);
  unregister_store("reg3");
  EXPECT_EQ(get_store("reg3"), nullptr);
  unregister_store("reg3");  // no-op
}

TEST_F(CoreTest, RegistryIsPerProcess) {
  auto store = make_store("reg4");
  proc::ProcessScope scope(*consumer_);
  EXPECT_EQ(get_store("reg4"), nullptr);
}

// ------------------------------------------------- proxies from a store ----

TEST_F(CoreTest, StoreProxyResolvesInSameProcess) {
  auto store = make_store("p1");
  proc::ProcessScope scope(*producer_);
  Proxy<std::string> p = store->proxy(std::string("data"));
  EXPECT_FALSE(p.resolved());
  EXPECT_EQ(*p, "data");
}

TEST_F(CoreTest, ProxySerializesToFactoryOnlyAndStaysSmall) {
  auto store = make_store("p2");
  proc::ProcessScope scope(*producer_);
  // A 10 MB object...
  Proxy<Bytes> p = store->proxy(pattern_bytes(10'000'000));
  const Bytes wire = serde::to_bytes(p);
  // ...travels as a few hundred bytes of factory descriptor.
  EXPECT_LT(wire.size(), 1000u);
}

TEST_F(CoreTest, ProxyResolvesInRemoteProcessAndRegistersStore) {
  auto store = make_store("p3");
  Bytes wire;
  {
    proc::ProcessScope scope(*producer_);
    Proxy<std::string> p = store->proxy(std::string("travels"));
    wire = serde::to_bytes(p);
  }
  {
    proc::ProcessScope scope(*consumer_);
    EXPECT_EQ(get_store("p3"), nullptr);  // not yet registered here
    auto p = serde::from_bytes<Proxy<std::string>>(wire);
    EXPECT_EQ(*p, "travels");
    // Resolution re-created and registered the store (paper section 3.5).
    ASSERT_NE(get_store("p3"), nullptr);
    EXPECT_EQ(get_store("p3")->name(), "p3");
  }
}

TEST_F(CoreTest, RemoteProcessReusesRegisteredStore) {
  auto store = make_store("p4");
  Bytes wire1, wire2;
  {
    proc::ProcessScope scope(*producer_);
    wire1 = serde::to_bytes(store->proxy(std::string("a")));
    wire2 = serde::to_bytes(store->proxy(std::string("b")));
  }
  {
    proc::ProcessScope scope(*consumer_);
    auto p1 = serde::from_bytes<Proxy<std::string>>(wire1);
    EXPECT_EQ(*p1, "a");
    std::shared_ptr<Store> first = get_store("p4");
    auto p2 = serde::from_bytes<Proxy<std::string>>(wire2);
    EXPECT_EQ(*p2, "b");
    EXPECT_EQ(get_store("p4"), first);  // same instance reused
  }
}

TEST_F(CoreTest, EvictFlagEvictsOnFirstResolve) {
  auto store = make_store("p5");
  proc::ProcessScope scope(*producer_);
  Proxy<std::string> p = store->proxy(std::string("once"), /*evict=*/true);
  const Key key = p.factory().descriptor()->key;
  EXPECT_TRUE(store->connector().exists(key));
  EXPECT_EQ(*p, "once");
  EXPECT_FALSE(store->connector().exists(key));
  EXPECT_EQ(*p, "once");  // local copy still cached in the proxy
}

TEST_F(CoreTest, NonEvictProxyLeavesObject) {
  auto store = make_store("p6");
  proc::ProcessScope scope(*producer_);
  Proxy<std::string> p = store->proxy(std::string("many"));
  p.resolve();
  EXPECT_TRUE(store->connector().exists(p.factory().descriptor()->key));
}

TEST_F(CoreTest, ProxyOfMissingObjectThrowsResolutionError) {
  auto store = make_store("p7");
  proc::ProcessScope scope(*producer_);
  Proxy<int> p =
      store->proxy_from_key<int>(Key{.object_id = "ghost", .meta = {}});
  EXPECT_THROW(p.resolve(), ProxyResolutionError);
}

TEST_F(CoreTest, ProxyBatchCreatesResolvableProxies) {
  auto store = make_store("p8");
  proc::ProcessScope scope(*producer_);
  std::vector<std::string> values{"x", "y", "z"};
  auto proxies = store->proxy_batch(values);
  ASSERT_EQ(proxies.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(*proxies[i], values[i]);
}

TEST_F(CoreTest, AdHocProxyIsNotSerializable) {
  Proxy<int> p(Factory<int>([] { return 1; }));
  EXPECT_THROW(serde::to_bytes(p), SerializationError);
}

TEST_F(CoreTest, NestedProxiesResolveLazily) {
  // A proxied struct containing another proxy: resolving the outer proxy
  // does not resolve the inner one (partial resolution of large objects).
  auto store = make_store("p9");
  proc::ProcessScope scope(*producer_);
  struct Wrapper {
    Proxy<Bytes> inner;
    explicit Wrapper(Proxy<Bytes> i) : inner(std::move(i)) {}
  };
  Proxy<Bytes> inner = store->proxy(pattern_bytes(1000, 1));
  Bytes inner_wire = serde::to_bytes(inner);
  auto restored = serde::from_bytes<Proxy<Bytes>>(inner_wire);
  EXPECT_FALSE(restored.resolved());
  EXPECT_TRUE(check_pattern(*restored, 1));
}

// ---------------------------------------------------------------- multi ----

class MultiTest : public CoreTest {
 protected:
  std::shared_ptr<MultiConnector> make_multi() {
    proc::ProcessScope scope(*producer_);
    auto small = std::make_shared<LocalConnector>();
    auto large = std::make_shared<LocalConnector>();
    small_ = small.get();
    large_ = large.get();
    Policy small_policy;
    small_policy.max_size = 1000;
    small_policy.tags = {"site-a"};
    small_policy.priority = 1;
    Policy large_policy;
    large_policy.min_size = 0;
    large_policy.tags = {"site-a", "site-b"};
    large_policy.priority = 0;
    return std::make_shared<MultiConnector>(std::vector<MultiConnector::Entry>{
        {"small", small, small_policy}, {"large", large, large_policy}});
  }

  LocalConnector* small_ = nullptr;
  LocalConnector* large_ = nullptr;
};

TEST_F(MultiTest, RoutesBySizePolicy) {
  auto multi = make_multi();
  proc::ProcessScope scope(*producer_);
  multi->put(pattern_bytes(100));
  EXPECT_EQ(small_->count(), 1u);
  EXPECT_EQ(large_->count(), 0u);
  multi->put(pattern_bytes(10000));
  EXPECT_EQ(large_->count(), 1u);
}

TEST_F(MultiTest, PriorityBreaksTies) {
  // 100-byte objects match both policies; "small" has higher priority.
  auto multi = make_multi();
  proc::ProcessScope scope(*producer_);
  const auto& chosen = multi->select(100, {});
  EXPECT_EQ(chosen.name, "small");
}

TEST_F(MultiTest, HintsRestrictToTaggedConnectors) {
  auto multi = make_multi();
  proc::ProcessScope scope(*producer_);
  PutHints hints;
  hints.required_tags = {"site-b"};
  // Small object would prefer "small", but it is not tagged for site-b.
  const Key key = multi->put_hinted(pattern_bytes(100), hints);
  EXPECT_EQ(key.field("multi_connector"), "large");
}

TEST_F(MultiTest, NoMatchThrows) {
  auto multi = make_multi();
  proc::ProcessScope scope(*producer_);
  PutHints hints;
  hints.required_tags = {"mars"};
  EXPECT_THROW(multi->put_hinted(pattern_bytes(10), hints),
               NoPolicyMatchError);
}

TEST_F(MultiTest, GetExistsEvictRouteToOwningChild) {
  auto multi = make_multi();
  proc::ProcessScope scope(*producer_);
  const Bytes data = pattern_bytes(100);
  const Key key = multi->put(data);
  EXPECT_EQ(multi->get(key), data);
  EXPECT_TRUE(multi->exists(key));
  multi->evict(key);
  EXPECT_FALSE(multi->exists(key));
  EXPECT_EQ(small_->count(), 0u);
}

TEST_F(MultiTest, UnknownChildInKeyThrows) {
  auto multi = make_multi();
  proc::ProcessScope scope(*producer_);
  Key forged{.object_id = "x", .meta = {{"multi_connector", "nope"}}};
  EXPECT_THROW(multi->get(forged), ConnectorError);
}

TEST_F(MultiTest, ConfigRoundTripsThroughRegistry) {
  auto multi = make_multi();
  proc::ProcessScope scope(*producer_);
  const Bytes data = pattern_bytes(100);
  const Key key = multi->put(data);
  auto rebuilt = ConnectorRegistry::instance().reconstruct(multi->config());
  EXPECT_EQ(rebuilt->type(), "multi");
  EXPECT_EQ(rebuilt->get(key), data);
}

TEST_F(MultiTest, ProxyThroughMultiStoreAcrossProcesses) {
  auto multi = make_multi();
  Bytes wire;
  {
    proc::ProcessScope scope(*producer_);
    auto store = std::make_shared<Store>("multi-store", multi);
    register_store(store);
    wire = serde::to_bytes(store->proxy(pattern_bytes(100, 3)));
  }
  {
    proc::ProcessScope scope(*consumer_);
    auto p = serde::from_bytes<Proxy<Bytes>>(wire);
    EXPECT_TRUE(check_pattern(*p, 3));
  }
}

TEST_F(MultiTest, EmptyEntriesRejected) {
  EXPECT_THROW(MultiConnector({}), ConnectorError);
}

TEST_F(MultiTest, DuplicateNamesRejected) {
  proc::ProcessScope scope(*producer_);
  auto c1 = std::make_shared<LocalConnector>();
  auto c2 = std::make_shared<LocalConnector>();
  EXPECT_THROW(
      MultiConnector(std::vector<MultiConnector::Entry>{{"x", c1, {}},
                                                        {"x", c2, {}}}),
      ConnectorError);
}

TEST(Policy, MatchingRules) {
  Policy p;
  p.min_size = 10;
  p.max_size = 100;
  p.tags = {"a", "b"};
  EXPECT_TRUE(p.matches(10, {}));
  EXPECT_TRUE(p.matches(100, {}));
  EXPECT_FALSE(p.matches(9, {}));
  EXPECT_FALSE(p.matches(101, {}));
  EXPECT_TRUE(p.matches(50, PutHints{.required_tags = {"a"}}));
  EXPECT_TRUE(p.matches(50, PutHints{.required_tags = {"a", "b"}}));
  EXPECT_FALSE(p.matches(50, PutHints{.required_tags = {"c"}}));
}

// Counts bulk vs one-by-one writes hitting a child connector, so tests can
// prove batches are forwarded as batches.
class BatchCountingConnector : public Connector {
 public:
  explicit BatchCountingConnector(std::string type_name)
      : type_(std::move(type_name)),
        inner_(std::make_shared<LocalConnector>()) {}

  std::string type() const override { return type_; }
  ConnectorConfig config() const override { return inner_->config(); }
  ConnectorTraits traits() const override { return inner_->traits(); }

  Key put(BytesView data) override {
    ++puts;
    return inner_->put(data);
  }
  std::vector<Key> put_batch(const std::vector<Bytes>& items) override {
    ++batch_calls;
    batch_items += items.size();
    return inner_->put_batch(items);
  }
  std::optional<Bytes> get(const Key& key) override {
    ++gets;
    return inner_->get(key);
  }
  std::vector<std::optional<Bytes>> get_batch(
      const std::vector<Key>& keys) override {
    ++get_batch_calls;
    get_batch_items += keys.size();
    return inner_->get_batch(keys);
  }
  bool exists(const Key& key) override { return inner_->exists(key); }
  void evict(const Key& key) override { inner_->evict(key); }

  int puts = 0;
  int batch_calls = 0;
  std::size_t batch_items = 0;
  int gets = 0;
  int get_batch_calls = 0;
  std::size_t get_batch_items = 0;

 private:
  std::string type_;
  std::shared_ptr<LocalConnector> inner_;
};

TEST_F(MultiTest, PutBatchPolicyRoutesPerItem) {
  auto multi = make_multi();
  proc::ProcessScope scope(*producer_);
  const std::vector<Bytes> items = {
      pattern_bytes(100, 0), pattern_bytes(5000, 1), pattern_bytes(200, 2),
      pattern_bytes(20000, 3), pattern_bytes(999, 4)};
  const std::vector<Key> keys = multi->put_batch(items);
  ASSERT_EQ(keys.size(), items.size());
  // Each item routed by its own size, results in submission order.
  EXPECT_EQ(keys[0].field("multi_connector"), "small");
  EXPECT_EQ(keys[1].field("multi_connector"), "large");
  EXPECT_EQ(keys[2].field("multi_connector"), "small");
  EXPECT_EQ(keys[3].field("multi_connector"), "large");
  EXPECT_EQ(keys[4].field("multi_connector"), "small");
  EXPECT_EQ(small_->count(), 3u);
  EXPECT_EQ(large_->count(), 2u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(multi->get(keys[i]), items[i]) << "item " << i;
  }
}

TEST_F(MultiTest, PutBatchForwardsGroupsAsBatches) {
  // Children must receive one put_batch per group — never the base class's
  // one-by-one fallback.
  proc::ProcessScope scope(*producer_);
  auto small = std::make_shared<BatchCountingConnector>("count-small");
  auto large = std::make_shared<BatchCountingConnector>("count-large");
  Policy small_policy;
  small_policy.max_size = 1000;
  small_policy.priority = 1;
  MultiConnector multi(std::vector<MultiConnector::Entry>{
      {"small", small, small_policy}, {"large", large, Policy{}}});
  const std::vector<Bytes> items = {
      pattern_bytes(10, 0), pattern_bytes(4000, 1), pattern_bytes(20, 2),
      pattern_bytes(8000, 3)};
  multi.put_batch(items);
  EXPECT_EQ(small->batch_calls, 1);
  EXPECT_EQ(small->batch_items, 2u);
  EXPECT_EQ(large->batch_calls, 1);
  EXPECT_EQ(large->batch_items, 2u);
  EXPECT_EQ(small->puts, 0);
  EXPECT_EQ(large->puts, 0);
}

TEST_F(MultiTest, GetBatchRoutesPerKeyToOwningChildren) {
  auto multi = make_multi();
  proc::ProcessScope scope(*producer_);
  const std::vector<Bytes> items = {
      pattern_bytes(100, 0), pattern_bytes(5000, 1), pattern_bytes(200, 2),
      pattern_bytes(20000, 3), pattern_bytes(999, 4)};
  const std::vector<Key> keys = multi->put_batch(items);
  // Batched read returns every value position-for-position even though the
  // keys interleave across the two children.
  const std::vector<std::optional<Bytes>> values = multi->get_batch(keys);
  ASSERT_EQ(values.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(values[i].has_value()) << "item " << i;
    EXPECT_EQ(*values[i], items[i]) << "item " << i;
  }
  // A missing key reads back as nullopt in place, not an error.
  std::vector<Key> with_missing = keys;
  multi->evict(with_missing[1]);
  const auto sparse = multi->get_batch(with_missing);
  EXPECT_FALSE(sparse[1].has_value());
  EXPECT_TRUE(sparse[0].has_value());
}

TEST_F(MultiTest, GetBatchForwardsGroupsAsBatches) {
  // Children must receive one get_batch per group — never the base class's
  // one-by-one fallback (mirrors PutBatchForwardsGroupsAsBatches).
  proc::ProcessScope scope(*producer_);
  auto small = std::make_shared<BatchCountingConnector>("count-small");
  auto large = std::make_shared<BatchCountingConnector>("count-large");
  Policy small_policy;
  small_policy.max_size = 1000;
  small_policy.priority = 1;
  MultiConnector multi(std::vector<MultiConnector::Entry>{
      {"small", small, small_policy}, {"large", large, Policy{}}});
  const std::vector<Bytes> items = {
      pattern_bytes(10, 0), pattern_bytes(4000, 1), pattern_bytes(20, 2),
      pattern_bytes(8000, 3)};
  const std::vector<Key> keys = multi.put_batch(items);
  const auto values = multi.get_batch(keys);
  ASSERT_EQ(values.size(), keys.size());
  EXPECT_EQ(small->get_batch_calls, 1);
  EXPECT_EQ(small->get_batch_items, 2u);
  EXPECT_EQ(large->get_batch_calls, 1);
  EXPECT_EQ(large->get_batch_items, 2u);
  EXPECT_EQ(small->gets, 0);
  EXPECT_EQ(large->gets, 0);
}

TEST(Instrumented, PutBatchRecordsBatchSizeMetricAndForwards) {
  obs::set_enabled(true);
  auto world = proc::World::make_local();
  proc::ProcessScope scope(world->spawn("p", "localhost"));
  auto counting = std::make_shared<BatchCountingConnector>("batch-metric");
  InstrumentedConnector instrumented(counting);
  const std::vector<Bytes> items = {pattern_bytes(10, 0), pattern_bytes(20, 1),
                                    pattern_bytes(30, 2)};
  instrumented.put_batch(items);
  // Forwarded as one bulk call, not unrolled through put().
  EXPECT_EQ(counting->batch_calls, 1);
  EXPECT_EQ(counting->puts, 0);
  auto& registry = obs::MetricsRegistry::global();
  EXPECT_EQ(registry.counter("connector.batch-metric.put_batch").value(), 1u);
  const obs::Histogram* items_hist =
      registry.find_histogram("connector.batch-metric.put_batch.items");
  ASSERT_NE(items_hist, nullptr);
  EXPECT_EQ(items_hist->count(), 1u);
  EXPECT_DOUBLE_EQ(items_hist->mean(), 3.0);
}

TEST(Instrumented, GetBatchRecordsBatchSizeMetricAndForwards) {
  obs::set_enabled(true);
  auto world = proc::World::make_local();
  proc::ProcessScope scope(world->spawn("p", "localhost"));
  auto counting = std::make_shared<BatchCountingConnector>("get-batch-metric");
  InstrumentedConnector instrumented(counting);
  const std::vector<Bytes> items = {pattern_bytes(10, 0), pattern_bytes(20, 1),
                                    pattern_bytes(30, 2)};
  const std::vector<Key> keys = instrumented.put_batch(items);
  const auto values = instrumented.get_batch(keys);
  ASSERT_EQ(values.size(), keys.size());
  // Forwarded as one bulk call, not unrolled through get().
  EXPECT_EQ(counting->get_batch_calls, 1);
  EXPECT_EQ(counting->gets, 0);
  auto& registry = obs::MetricsRegistry::global();
  EXPECT_EQ(registry.counter("connector.get-batch-metric.get_batch").value(),
            1u);
  const obs::Histogram* items_hist =
      registry.find_histogram("connector.get-batch-metric.get_batch.items");
  ASSERT_NE(items_hist, nullptr);
  EXPECT_EQ(items_hist->count(), 1u);
  EXPECT_DOUBLE_EQ(items_hist->mean(), 3.0);
}

// ------------------------------------------------- connector registry ----

TEST(Registry, UnknownTypeThrows) {
  ConnectorConfig cfg{.type = "warp-drive", .params = {}};
  EXPECT_THROW(ConnectorRegistry::instance().reconstruct(cfg),
               NotRegisteredError);
}

TEST(Registry, BuiltinTypesPresent) {
  auto& reg = ConnectorRegistry::instance();
  EXPECT_TRUE(reg.has_type("local"));
  EXPECT_TRUE(reg.has_type("file"));
  EXPECT_TRUE(reg.has_type("redis"));
  EXPECT_TRUE(reg.has_type("multi"));
  EXPECT_TRUE(reg.has_type("margo"));
  EXPECT_TRUE(reg.has_type("ucx"));
  EXPECT_TRUE(reg.has_type("zmq"));
  EXPECT_TRUE(reg.has_type("globus"));
  EXPECT_TRUE(reg.has_type("endpoint"));
  EXPECT_TRUE(reg.has_type("access"));
}

}  // namespace
}  // namespace ps::core
