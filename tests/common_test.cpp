#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "common/hex.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/uuid.hpp"

namespace ps {
namespace {

// ---------------------------------------------------------------- bytes ----

TEST(Bytes, PatternIsDeterministic) {
  EXPECT_EQ(pattern_bytes(100, 7), pattern_bytes(100, 7));
  EXPECT_NE(pattern_bytes(100, 7), pattern_bytes(100, 8));
}

TEST(Bytes, PatternCheckAcceptsMatchingPayload) {
  const Bytes data = pattern_bytes(1031, 42);
  EXPECT_TRUE(check_pattern(data, 42));
  EXPECT_FALSE(check_pattern(data, 43));
}

TEST(Bytes, PatternCheckRejectsCorruption) {
  Bytes data = pattern_bytes(64, 1);
  data[10] = static_cast<char>(data[10] + 1);
  EXPECT_FALSE(check_pattern(data, 1));
}

TEST(Bytes, PatternHandlesNonMultipleOfEightLengths) {
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u}) {
    EXPECT_EQ(pattern_bytes(n, 3).size(), n);
    EXPECT_TRUE(check_pattern(pattern_bytes(n, 3), 3));
  }
}

TEST(Bytes, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2 KiB");
  EXPECT_EQ(format_bytes(1024.0 * 1024 * 3), "3 MiB");
}

TEST(Bytes, ParseSize) {
  EXPECT_EQ(parse_size("10B"), 10u);
  EXPECT_EQ(parse_size("1KB"), 1000u);
  EXPECT_EQ(parse_size("100MB"), 100000000u);
  EXPECT_EQ(parse_size("1GB"), 1000000000u);
  EXPECT_EQ(parse_size("4KiB"), 4096u);
  EXPECT_EQ(parse_size("42"), 42u);
}

TEST(Bytes, ParseSizeRejectsJunk) {
  EXPECT_THROW(parse_size("abc"), std::invalid_argument);
  EXPECT_THROW(parse_size("10XB"), std::invalid_argument);
}

// ----------------------------------------------------------------- hash ----

TEST(Hash, Fnv1a64KnownValues) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, Sha256KnownVectors) {
  // FIPS 180-4 / NIST test vectors.
  EXPECT_EQ(
      Sha256::hex_digest(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      Sha256::hex_digest("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      Sha256::hex_digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                         "nopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Hash, Sha256IncrementalMatchesOneShot) {
  const Bytes data = pattern_bytes(100000, 5);
  Sha256 incremental;
  // Feed in awkward chunk sizes to cross block boundaries.
  std::size_t offset = 0;
  const std::size_t chunks[] = {1, 63, 64, 65, 1000, 31337};
  for (const std::size_t c : chunks) {
    incremental.update(BytesView(data).substr(offset, c));
    offset += c;
  }
  incremental.update(BytesView(data).substr(offset));
  EXPECT_EQ(incremental.finish(), Sha256::digest(data));
}

TEST(Hash, Sha256MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto digest = h.finish();
  EXPECT_EQ(
      to_hex(BytesView(reinterpret_cast<const char*>(digest.data()), 32)),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// ------------------------------------------------------------------ hex ----

TEST(Hex, RoundTrip) {
  const Bytes data = pattern_bytes(257, 9);
  EXPECT_EQ(from_hex(to_hex(data)), data);
}

TEST(Hex, KnownEncoding) {
  EXPECT_EQ(to_hex(Bytes("\x00\xff\x10", 3)), "00ff10");
  EXPECT_EQ(from_hex("00ff10"), Bytes("\x00\xff\x10", 3));
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

// ----------------------------------------------------------------- uuid ----

TEST(Uuid, RandomIsUnique) {
  std::set<Uuid> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(Uuid::random()).second);
  }
}

TEST(Uuid, RoundTripString) {
  for (int i = 0; i < 100; ++i) {
    const Uuid u = Uuid::random();
    EXPECT_EQ(Uuid::parse(u.str()), u);
  }
}

TEST(Uuid, StringFormat) {
  const Uuid u = Uuid::random();
  const std::string s = u.str();
  ASSERT_EQ(s.size(), 36u);
  EXPECT_EQ(s[8], '-');
  EXPECT_EQ(s[13], '-');
  EXPECT_EQ(s[18], '-');
  EXPECT_EQ(s[23], '-');
  EXPECT_EQ(s[14], '4');  // version nibble
}

TEST(Uuid, NilAndComparisons) {
  const Uuid nil;
  EXPECT_TRUE(nil.is_nil());
  EXPECT_FALSE(Uuid::random().is_nil());
  EXPECT_EQ(nil, Uuid(0, 0));
  EXPECT_LT(Uuid(0, 1), Uuid(1, 0));
}

TEST(Uuid, ParseRejectsMalformed) {
  EXPECT_THROW(Uuid::parse("not-a-uuid"), std::invalid_argument);
  EXPECT_THROW(Uuid::parse("00000000000000000000000000000000"),
               std::invalid_argument);
  EXPECT_THROW(Uuid::parse("0000000g-0000-4000-8000-000000000000"),
               std::invalid_argument);
}

TEST(Uuid, ThreadedGenerationIsUnique) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<Uuid>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&results, t] {
      for (int i = 0; i < kPerThread; ++i) {
        results[static_cast<std::size_t>(t)].push_back(Uuid::random());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<Uuid> all;
  for (const auto& batch : results) {
    for (const Uuid& u : batch) EXPECT_TRUE(all.insert(u).second);
  }
}

// ---------------------------------------------------------------- queue ----

TEST(Queue, FifoOrder) {
  Queue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(Queue, TryPopEmptyReturnsNullopt) {
  Queue<int> q;
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(Queue, CloseWakesConsumers) {
  Queue<int> q;
  std::thread consumer([&q] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  consumer.join();
}

TEST(Queue, CloseDrainsRemainingItems) {
  Queue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(Queue, BoundedCapacityTryPush) {
  Queue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(Queue, PopForTimesOut) {
  Queue<int> q;
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(10)), std::nullopt);
}

TEST(Queue, MpmcStress) {
  Queue<int> q(64);
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 5000;
  std::atomic<long> total{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kItemsEach; ++i) q.push(p * kItemsEach + i);
    });
  }
  std::atomic<int> consumed{0};
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      while (auto item = q.pop()) {
        total += *item;
        ++consumed;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();
  EXPECT_EQ(consumed.load(), kProducers * kItemsEach);
  const long expected =
      static_cast<long>(kProducers) * kItemsEach * (kProducers * kItemsEach - 1) / 2;
  EXPECT_EQ(total.load(), expected);
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, JitterHasUnitMedianScale) {
  Rng rng(7);
  int above = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (rng.jitter(0.3) > 1.0) ++above;
  }
  // Median of lognormal(0, sigma) is 1, so about half above.
  EXPECT_NEAR(static_cast<double>(above) / kN, 0.5, 0.05);
}

TEST(Rng, SampleIndicesDistinctSorted) {
  Rng rng(11);
  const auto idx = rng.sample_indices(100, 10);
  ASSERT_EQ(idx.size(), 10u);
  for (std::size_t i = 1; i < idx.size(); ++i) {
    EXPECT_LT(idx[i - 1], idx[i]);
    EXPECT_LT(idx[i], 100u);
  }
}

TEST(Rng, SampleIndicesClampedToN) {
  Rng rng(11);
  EXPECT_EQ(rng.sample_indices(3, 10).size(), 3u);
}

// ---------------------------------------------------------------- stats ----

TEST(Stats, MeanStdev) {
  Stats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stdev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, MedianAndPercentiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
}

TEST(Stats, EmptyIsSafe) {
  Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
}

TEST(Stats, SingleSampleStdevZero) {
  Stats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.5);
}

TEST(Stats, ReserveAndDoublingGrowthKeepSamples) {
  Stats s;
  s.reserve(1000);
  const double* data_before = s.samples().data();
  for (int i = 0; i < 1000; ++i) s.add(i);
  // Pre-sized accumulation never reallocated.
  EXPECT_EQ(s.samples().data(), data_before);
  EXPECT_EQ(s.count(), 1000u);
  // Growth past the reservation doubles rather than reallocating per add.
  for (int i = 1000; i < 5000; ++i) s.add(i);
  EXPECT_EQ(s.count(), 5000u);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 4999.0);
}

TEST(Stats, NamedPercentileShortcuts) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.p50(), s.percentile(50.0));
  EXPECT_DOUBLE_EQ(s.p95(), s.percentile(95.0));
  EXPECT_DOUBLE_EQ(s.p99(), s.percentile(99.0));
  EXPECT_NEAR(s.p99(), 99.01, 1e-9);
}

TEST(Stats, QuantileAndP999TrackPercentile) {
  Stats s;
  for (int i = 1; i <= 1000; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), s.percentile(50.0));
  EXPECT_DOUBLE_EQ(s.quantile(0.999), s.percentile(99.9));
  EXPECT_DOUBLE_EQ(s.p999(), s.percentile(99.9));
  EXPECT_NEAR(s.p999(), 999.0, 1.5);
  EXPECT_GE(s.p999(), s.p99());
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
}

TEST(Stats, FormatsMeanPmStdev) {
  Stats s;
  s.add(0.001);
  s.add(0.003);
  EXPECT_EQ(s.mean_pm_stdev(1000.0, 1), "2.0 ± 1.4");
}

TEST(Stats, BoundedReservoirKeepsExactMoments) {
  Stats s(64);
  for (int i = 1; i <= 10000; ++i) s.add(i);
  // The reservoir is bounded...
  EXPECT_EQ(s.samples().size(), 64u);
  // ...but count/sum/mean/stdev/min/max come from exact running
  // accumulators, unaffected by which samples were retained.
  EXPECT_EQ(s.count(), 10000u);
  EXPECT_DOUBLE_EQ(s.sum(), 50005000.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5000.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10000.0);
  EXPECT_NEAR(s.stdev(), 2886.9, 0.1);
  // Percentile estimates come from the uniform reservoir: coarse, but in
  // the right region.
  EXPECT_GT(s.p50(), 2000.0);
  EXPECT_LT(s.p50(), 8000.0);
}

TEST(Stats, ReservoirSamplingIsDeterministic) {
  // Same seed => identical reservoir contents and percentiles, run to run.
  Stats a(32);
  Stats b(32);
  Stats c(32, /*seed=*/0x1234);
  for (int i = 0; i < 5000; ++i) {
    const double x = static_cast<double>((i * 2654435761u) % 100000);
    a.add(x);
    b.add(x);
    c.add(x);
  }
  EXPECT_EQ(a.samples(), b.samples());
  EXPECT_DOUBLE_EQ(a.p50(), b.p50());
  EXPECT_DOUBLE_EQ(a.p95(), b.p95());
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
  // A different seed retains a different (still uniform) subset.
  EXPECT_NE(a.samples(), c.samples());
  // Exact accumulators agree regardless of the seed.
  EXPECT_DOUBLE_EQ(a.mean(), c.mean());
  EXPECT_DOUBLE_EQ(a.stdev(), c.stdev());
  EXPECT_EQ(a.count(), c.count());
}

TEST(Stats, ZeroReservoirCapRejected) {
  EXPECT_THROW(Stats(0), std::invalid_argument);
}

}  // namespace
}  // namespace ps
