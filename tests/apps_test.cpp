#include <gtest/gtest.h>

#include <filesystem>

#include "apps/defect.hpp"
#include "apps/fl.hpp"
#include "apps/moldesign.hpp"
#include "connectors/endpoint.hpp"
#include "connectors/file.hpp"
#include "connectors/local.hpp"
#include "connectors/redis.hpp"
#include "core/multi.hpp"
#include "endpoint/endpoint.hpp"
#include "kv/server.hpp"
#include "relay/relay.hpp"
#include "testbed/testbed.hpp"

namespace ps::apps {
namespace {

namespace fs = std::filesystem;

// ----------------------------------------------------------- defect app ----

class DefectTest : public ::testing::Test {
 protected:
  DefectTest() : tb_(testbed::build()) {
    client_ = &tb_.world->spawn("client", tb_.theta_login);
    endpoint_proc_ = &tb_.world->spawn("gc-endpoint", tb_.polaris_compute0);
    cloud_ = faas::CloudService::start(*tb_.world, tb_.cloud);
    endpoint_ = std::make_unique<faas::ComputeEndpoint>(cloud_, *endpoint_proc_);
  }

  ~DefectTest() override { endpoint_->stop(); }

  testbed::Testbed tb_;
  proc::Process* client_ = nullptr;
  proc::Process* endpoint_proc_ = nullptr;
  std::shared_ptr<faas::CloudService> cloud_;
  std::unique_ptr<faas::ComputeEndpoint> endpoint_;
};

TEST_F(DefectTest, SegmentationModelFindsSeededDefects) {
  Rng rng(1);
  const ml::Micrograph m = ml::micrograph(64, 64, 6, rng);
  ml::Model model = make_segmentation_model(64, rng);
  const Segmentation seg = segment(model, m.image);
  EXPECT_GT(seg.defect_pixels, 0u);
  // Most detected pixels coincide with the ground-truth mask.
  std::size_t overlap = 0;
  for (std::size_t i = 0; i < seg.mask.size(); ++i) {
    if (seg.mask[i] && m.defect_mask[i]) ++overlap;
  }
  EXPECT_GT(static_cast<double>(overlap),
            0.5 * static_cast<double>(seg.defect_pixels));
}

TEST_F(DefectTest, CleanImageYieldsFewDetections) {
  Rng rng(2);
  const ml::Micrograph clean = ml::micrograph(64, 64, 0, rng);
  ml::Model model = make_segmentation_model(64, rng);
  const Segmentation seg = segment(model, clean.image);
  EXPECT_LT(seg.defect_pixels, 20u);
}

TEST_F(DefectTest, BaselineRunsEndToEnd) {
  DefectConfig config;
  config.image_size = 64;
  config.tasks = 3;
  const DefectReport report =
      run_defect_analysis(*client_, *endpoint_, nullptr, config);
  EXPECT_EQ(report.round_trip.count(), 3u);
  EXPECT_GT(report.mean_defect_pixels, 0.0);
}

TEST_F(DefectTest, ProxiedInputsBeatBaselineFor1MbImages) {
  DefectConfig config;
  config.image_size = 512;  // ~1 MB float image, as in the paper
  config.tasks = 3;
  const DefectReport baseline =
      run_defect_analysis(*client_, *endpoint_, nullptr, config);

  config.mode = DefectMode::kProxyInputs;
  proc::ProcessScope scope(*client_);
  const fs::path dir =
      fs::temp_directory_path() / ("ps_defect_" + Uuid::random().str());
  auto store = std::make_shared<core::Store>(
      "defect-store", std::make_shared<connectors::FileConnector>(dir));
  const DefectReport proxied =
      run_defect_analysis(*client_, *endpoint_, store, config);

  // The paper reports >30% improvement; at minimum proxying must win.
  EXPECT_LT(proxied.round_trip.mean(), 0.8 * baseline.round_trip.mean());
  fs::remove_all(dir);
}

TEST_F(DefectTest, ProxyingOutputsImprovesFurther) {
  DefectConfig config;
  config.image_size = 256;
  config.tasks = 3;
  proc::ProcessScope scope(*client_);
  const fs::path dir =
      fs::temp_directory_path() / ("ps_defect2_" + Uuid::random().str());
  auto store = std::make_shared<core::Store>(
      "defect-store2", std::make_shared<connectors::FileConnector>(dir));
  config.mode = DefectMode::kProxyInputs;
  const DefectReport inputs_only =
      run_defect_analysis(*client_, *endpoint_, store, config);
  config.mode = DefectMode::kProxyBoth;
  const DefectReport both =
      run_defect_analysis(*client_, *endpoint_, store, config);
  EXPECT_LE(both.round_trip.mean(), inputs_only.round_trip.mean() * 1.05);
  fs::remove_all(dir);
}

TEST_F(DefectTest, ProxiedModeRequiresStore) {
  DefectConfig config;
  config.mode = DefectMode::kProxyInputs;
  EXPECT_THROW(run_defect_analysis(*client_, *endpoint_, nullptr, config),
               Error);
}

// --------------------------------------------------------------- FL app ----

class FlTest : public ::testing::Test {
 protected:
  FlTest() : tb_(testbed::build()) {
    aggregator_ = &tb_.world->spawn("aggregator", tb_.theta_login);
    cloud_ = faas::CloudService::start(*tb_.world, tb_.cloud);
    relay_ = relay::RelayServer::start(*tb_.world, tb_.relay_host, "relay");
    for (std::size_t d = 0; d < 2; ++d) {
      FlDevice device;
      device.process =
          &tb_.world->spawn("edge-proc-" + std::to_string(d),
                            tb_.edge_devices[d]);
      device.endpoint =
          std::make_unique<faas::ComputeEndpoint>(cloud_, *device.process);
      devices_.push_back(std::move(device));
    }
  }

  ~FlTest() override {
    for (auto& device : devices_) device.endpoint->stop();
  }

  /// EndpointStore spanning the aggregator and device PS-endpoints.
  std::shared_ptr<core::Store> make_endpoint_store() {
    std::vector<std::string> addresses;
    endpoint::Endpoint::start(*tb_.world, tb_.theta_login, "agg-ep",
                              "relay://" + tb_.relay_host + "/relay");
    addresses.push_back(endpoint::endpoint_address(tb_.theta_login, "agg-ep"));
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      const std::string name = "edge-ep-" + std::to_string(d);
      endpoint::Endpoint::start(*tb_.world, tb_.edge_devices[d], name,
                                "relay://" + tb_.relay_host + "/relay");
      addresses.push_back(
          endpoint::endpoint_address(tb_.edge_devices[d], name));
    }
    proc::ProcessScope scope(*aggregator_);
    return std::make_shared<core::Store>(
        "fl-store", std::make_shared<connectors::EndpointConnector>(addresses));
  }

  testbed::Testbed tb_;
  proc::Process* aggregator_ = nullptr;
  std::shared_ptr<faas::CloudService> cloud_;
  std::shared_ptr<relay::RelayServer> relay_;
  std::vector<FlDevice> devices_;
};

TEST_F(FlTest, ModelSizeScalesWithHiddenBlocks) {
  Rng rng(1);
  const std::size_t small =
      make_fl_model(2, 168, rng).serialize().size();
  const std::size_t large =
      make_fl_model(42, 168, rng).serialize().size();
  EXPECT_LT(small, 5'000'000u);
  EXPECT_GT(large, 5'000'000u);  // crosses the cloud payload limit
}

TEST_F(FlTest, BaselineRoundTrainsAndAverages) {
  FlConfig config;
  config.hidden_blocks = 1;
  config.devices = 2;
  config.local_steps = 1;
  config.samples_per_device = 32;
  const FlReport report =
      run_federated_learning(*aggregator_, devices_, nullptr, config);
  EXPECT_EQ(report.failed_rounds, 0u);
  EXPECT_EQ(report.transfer_time.count(), 2u);  // one per device
  EXPECT_GT(report.final_train_accuracy, 0.05);
}

TEST_F(FlTest, BaselineFailsAboveCloudLimit) {
  FlConfig config;
  config.hidden_blocks = 42;  // > 5 MB serialized
  config.devices = 2;
  config.local_steps = 1;
  const FlReport report =
      run_federated_learning(*aggregator_, devices_, nullptr, config);
  EXPECT_EQ(report.failed_rounds, 1u);
  EXPECT_EQ(report.transfer_time.count(), 0u);
}

TEST_F(FlTest, ProxyStoreHandlesLargeModelsAndIsFaster) {
  auto store = make_endpoint_store();

  FlConfig config;
  config.hidden_blocks = 8;
  config.devices = 2;
  config.local_steps = 1;
  config.samples_per_device = 32;
  const FlReport baseline =
      run_federated_learning(*aggregator_, devices_, nullptr, config);
  ASSERT_EQ(baseline.failed_rounds, 0u);

  config.use_proxystore = true;
  const FlReport proxied =
      run_federated_learning(*aggregator_, devices_, store, config);
  EXPECT_EQ(proxied.failed_rounds, 0u);
  EXPECT_LT(proxied.transfer_time.mean(), baseline.transfer_time.mean());

  // And the over-limit model now completes.
  config.hidden_blocks = 42;
  config.local_steps = 1;
  const FlReport big =
      run_federated_learning(*aggregator_, devices_, store, config);
  EXPECT_EQ(big.failed_rounds, 0u);
}

// -------------------------------------------------------- moldesign app ----

class MolDesignTest : public ::testing::Test {
 protected:
  MolDesignTest() : tb_(testbed::build()) {
    thinker_ = &tb_.world->spawn("thinker", tb_.theta_login);
    sim_proc_ = &tb_.world->spawn("sim-workers", tb_.theta_compute0);
    gpu_proc_ = &tb_.world->spawn("gpu-worker", tb_.remote_gpu);
  }

  MolDesignConfig small_config() {
    MolDesignConfig config;
    config.nodes = 8;
    config.worker_threads = 4;
    config.tasks_per_node = 2;
    config.sim_cost_s = 5.0;
    config.sim_result_bytes = 100'000;
    config.sim_input_bytes = 10'000;
    return config;
  }

  std::shared_ptr<core::Store> make_multi_store() {
    kv::KvServer::start(*tb_.world, tb_.theta_login, "mol-redis");
    relay::RelayServer::start(*tb_.world, tb_.relay_host, "mol-relay");
    endpoint::Endpoint::start(*tb_.world, tb_.theta_login, "mol-ep-theta",
                              "relay://" + tb_.relay_host + "/mol-relay");
    endpoint::Endpoint::start(*tb_.world, tb_.remote_gpu, "mol-ep-gpu",
                              "relay://" + tb_.relay_host + "/mol-relay");
    proc::ProcessScope scope(*thinker_);
    auto redis = std::make_shared<connectors::RedisConnector>(
        kv::kv_address(tb_.theta_login, "mol-redis"));
    auto ep = std::make_shared<connectors::EndpointConnector>(
        std::vector<std::string>{
            endpoint::endpoint_address(tb_.theta_login, "mol-ep-theta"),
            endpoint::endpoint_address(tb_.remote_gpu, "mol-ep-gpu")});
    core::Policy redis_policy;
    redis_policy.tags = {"theta"};
    redis_policy.priority = 1;
    core::Policy ep_policy;
    ep_policy.tags = {"theta", "gpu-lab"};
    ep_policy.priority = 0;
    auto multi = std::make_shared<core::MultiConnector>(
        std::vector<core::MultiConnector::Entry>{
            {"redis", redis, redis_policy}, {"endpoint", ep, ep_policy}});
    return std::make_shared<core::Store>("mol-store", multi);
  }

  testbed::Testbed tb_;
  proc::Process* thinker_ = nullptr;
  proc::Process* sim_proc_ = nullptr;
  proc::Process* gpu_proc_ = nullptr;
};

TEST_F(MolDesignTest, CampaignCompletesAndFindsBestIp) {
  proc::ProcessScope scope(*thinker_);
  const MolDesignConfig config = small_config();
  const MolDesignReport report =
      run_molecular_design(*sim_proc_, nullptr, config);
  EXPECT_EQ(report.simulations_completed, 16u);
  EXPECT_GT(report.best_ip, 0.0f);
  EXPECT_GT(report.node_utilization, 0.0);
  EXPECT_LE(report.node_utilization, 1.0 + 1e-9);
}

TEST_F(MolDesignTest, MlArmRunsTrainingAndInference) {
  proc::ProcessScope scope(*thinker_);
  MolDesignConfig config = small_config();
  config.retrain_every = 8;
  const MolDesignReport report =
      run_molecular_design(*sim_proc_, gpu_proc_, config);
  EXPECT_GE(report.ml_rounds, 1u);
}

TEST_F(MolDesignTest, ProxyStoreImprovesUtilizationAtScale) {
  proc::ProcessScope scope(*thinker_);
  MolDesignConfig config = small_config();
  // Scale chosen so the serial thinker is the bottleneck in the baseline:
  // 64 nodes finishing 5 s simulations -> 12.8 results/s arrival vs
  // ~3-6 results/s thinker throughput.
  config.nodes = 64;
  config.worker_threads = 8;
  config.tasks_per_node = 2;
  config.sim_result_bytes = 500'000;
  const MolDesignReport baseline =
      run_molecular_design(*sim_proc_, nullptr, config);

  MolDesignConfig proxied = config;
  proxied.store = make_multi_store();
  const MolDesignReport with_store =
      run_molecular_design(*sim_proc_, nullptr, proxied);

  EXPECT_GT(with_store.node_utilization, baseline.node_utilization);
  // Result processing drops too (paper: 267 ms -> 201 ms).
  EXPECT_LT(with_store.result_processing.mean(),
            baseline.result_processing.mean());
}

TEST_F(MolDesignTest, MlArmWithoutProcessThrows) {
  proc::ProcessScope scope(*thinker_);
  MolDesignConfig config = small_config();
  config.retrain_every = 4;
  EXPECT_THROW(run_molecular_design(*sim_proc_, nullptr, config), Error);
}

}  // namespace
}  // namespace ps::apps
