#include <gtest/gtest.h>

#include <filesystem>

#include "common/bytes.hpp"
#include "common/uuid.hpp"
#include "ipfs/ipfs.hpp"
#include "proc/world.hpp"
#include "sim/vtime.hpp"

namespace ps::ipfs {
namespace {

namespace fs = std::filesystem;

class IpfsTest : public ::testing::Test {
 protected:
  IpfsTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("uc", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().add_site("anl", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().connect_sites("uc", "anl", net::wan_tcp(6e-3, 1.25e9));
    world_->fabric().add_host("midway", "uc");
    world_->fabric().add_host("theta", "anl");
    process_ = &world_->spawn("p", "midway");
    base_ = fs::temp_directory_path() / ("ps_ipfs_" + Uuid::random().str());
    node_a_ = IpfsNode::start(*world_, "midway", "a", base_ / "a");
    node_b_ = IpfsNode::start(*world_, "theta", "b", base_ / "b");
    node_a_->connect(node_b_);
  }

  ~IpfsTest() override { fs::remove_all(base_); }

  std::unique_ptr<proc::World> world_;
  proc::Process* process_ = nullptr;
  fs::path base_;
  std::shared_ptr<IpfsNode> node_a_, node_b_;
};

TEST_F(IpfsTest, AddThenGetLocally) {
  proc::ProcessScope scope(*process_);
  const Bytes data = pattern_bytes(1000, 1);
  const Cid cid = node_a_->add(data);
  EXPECT_EQ(node_a_->get(cid), data);
  EXPECT_TRUE(node_a_->has_local(cid));
}

TEST_F(IpfsTest, ContentAddressingIsDeterministic) {
  proc::ProcessScope scope(*process_);
  const Bytes data = pattern_bytes(5000, 2);
  const Cid a = node_a_->add(data);
  const Cid b = node_b_->add(data);
  EXPECT_EQ(a, b);  // same content, same CID, regardless of node
  EXPECT_NE(node_a_->add(pattern_bytes(5000, 3)), a);
}

TEST_F(IpfsTest, MultiBlockContentRoundTrips) {
  proc::ProcessScope scope(*process_);
  IpfsOptions options;
  options.block_size = 1024;
  auto node = IpfsNode::start(*world_, "midway", "small-blocks",
                              base_ / "small", options);
  const Bytes data = pattern_bytes(10'000, 4);  // ~10 blocks
  const Cid cid = node->add(data);
  EXPECT_GT(node->block_count(), 9u);
  EXPECT_EQ(node->get(cid), data);
}

TEST_F(IpfsTest, PeerFetchAcrossSites) {
  proc::ProcessScope scope(*process_);
  const Bytes data = pattern_bytes(500'000, 5);
  const Cid cid = node_a_->add(data);
  EXPECT_FALSE(node_b_->has_local(cid));
  EXPECT_EQ(node_b_->get(cid), data);
  // Bitswap caches fetched blocks locally.
  EXPECT_TRUE(node_b_->has_local(cid));
}

TEST_F(IpfsTest, PeerFetchChargesWanTime) {
  proc::ProcessScope scope(*process_);
  sim::VtimeGuard guard;
  const Bytes data = pattern_bytes(10'000'000, 6);
  const Cid cid = node_a_->add(data);
  sim::VtimeScope vt;
  node_b_->get(cid);
  // At least the wire time across the 1.25 GB/s WAN.
  EXPECT_GT(vt.elapsed(), 10e6 / 1.25e9);
}

TEST_F(IpfsTest, GetUnknownCidReturnsNullopt) {
  proc::ProcessScope scope(*process_);
  EXPECT_EQ(node_a_->get(Cid{"deadbeef"}), std::nullopt);
}

TEST_F(IpfsTest, DisconnectedNodeCannotFetch) {
  proc::ProcessScope scope(*process_);
  auto loner = IpfsNode::start(*world_, "theta", "loner", base_ / "loner");
  const Cid cid = node_a_->add(pattern_bytes(100, 7));
  EXPECT_EQ(loner->get(cid), std::nullopt);
}

TEST_F(IpfsTest, RemoveLocalDropsBlocks) {
  proc::ProcessScope scope(*process_);
  const Cid cid = node_a_->add(pattern_bytes(1000, 8));
  node_a_->remove_local(cid);
  EXPECT_FALSE(node_a_->has_local(cid));
  EXPECT_EQ(node_a_->block_count(), 0u);
}

TEST_F(IpfsTest, RemovedContentRecoverableFromPeers) {
  proc::ProcessScope scope(*process_);
  const Bytes data = pattern_bytes(1000, 9);
  const Cid cid = node_a_->add(data);
  node_b_->get(cid);  // replicate to B
  node_a_->remove_local(cid);
  EXPECT_EQ(node_a_->get(cid), data);  // fetched back from B
}

TEST_F(IpfsTest, DeduplicatesIdenticalBlocks) {
  proc::ProcessScope scope(*process_);
  IpfsOptions options;
  options.block_size = 1000;
  auto node =
      IpfsNode::start(*world_, "midway", "dedup", base_ / "dedup", options);
  // Content = the same 1000-byte block repeated 10 times.
  Bytes block = pattern_bytes(1000, 10);
  Bytes data;
  for (int i = 0; i < 10; ++i) data += block;
  const Cid cid = node->add(data);
  // 1 unique data block + 1 manifest block.
  EXPECT_EQ(node->block_count(), 2u);
  EXPECT_EQ(node->get(cid), data);
}

TEST_F(IpfsTest, EmptyContentHasCid) {
  proc::ProcessScope scope(*process_);
  const Cid cid = node_a_->add("");
  const auto got = node_a_->get(cid);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

}  // namespace
}  // namespace ps::ipfs
