#include <gtest/gtest.h>

#include <memory>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "connectors/local.hpp"
#include "core/store.hpp"
#include "proc/world.hpp"
#include "sim/vtime.hpp"
#include "workflow/colmena.hpp"

namespace ps::workflow {
namespace {

class WorkflowTest : public ::testing::Test {
 protected:
  WorkflowTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("theta", net::hpc_interconnect(10e-6, 10e9));
    world_->fabric().add_host("node", "theta");
    thinker_ = &world_->spawn("thinker", "node");
    worker_ = &world_->spawn("worker", "node");
  }

  std::shared_ptr<core::Store> make_store(const std::string& name) {
    proc::ProcessScope scope(*thinker_);
    auto store = std::make_shared<core::Store>(
        name, std::make_shared<connectors::LocalConnector>());
    core::register_store(store);
    return store;
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* thinker_ = nullptr;
  proc::Process* worker_ = nullptr;
};

TEST_F(WorkflowTest, SubmitAndGetResult) {
  ColmenaApp app(*worker_);
  app.register_function("concat", [](const std::vector<Bytes>& inputs) {
    Bytes out;
    for (const Bytes& input : inputs) out += input;
    return out;
  });
  proc::ProcessScope scope(*thinker_);
  const Uuid id = app.submit("t", "concat", {"a", "b", "c"});
  const TaskResult result = app.get_result();
  EXPECT_EQ(result.task_id, id);
  EXPECT_EQ(result.bytes(), "abc");
  EXPECT_FALSE(result.failed());
  EXPECT_GT(result.round_trip_s, 0.0);
}

TEST_F(WorkflowTest, UnknownFunctionRejectedAtSubmit) {
  ColmenaApp app(*worker_);
  proc::ProcessScope scope(*thinker_);
  EXPECT_THROW(app.submit("t", "nope", {}), NotRegisteredError);
}

TEST_F(WorkflowTest, TaskErrorsReported) {
  ColmenaApp app(*worker_);
  app.register_function("boom", [](const std::vector<Bytes>&) -> Bytes {
    throw Error("kaput");
  });
  proc::ProcessScope scope(*thinker_);
  app.submit("t", "boom", {});
  const TaskResult result = app.get_result();
  EXPECT_TRUE(result.failed());
  EXPECT_NE(result.error.find("kaput"), std::string::npos);
}

TEST_F(WorkflowTest, OutstandingCountTracksLifecycle) {
  ColmenaApp app(*worker_);
  app.register_function("noop",
                        [](const std::vector<Bytes>&) { return Bytes(); });
  proc::ProcessScope scope(*thinker_);
  EXPECT_EQ(app.outstanding(), 0u);
  app.submit("t", "noop", {});
  app.submit("t", "noop", {});
  EXPECT_EQ(app.outstanding(), 2u);
  app.get_result();
  app.get_result();
  EXPECT_EQ(app.outstanding(), 0u);
}

TEST_F(WorkflowTest, LargeInputsAreProxiedAboveThreshold) {
  ColmenaApp app(*worker_);
  std::size_t observed_size = 0;
  app.register_function("measure",
                        [&](const std::vector<Bytes>& inputs) {
                          observed_size = inputs.at(0).size();
                          return Bytes();
                        });
  auto store = make_store("wf-store-1");
  app.register_store("t", store, /*threshold=*/1000);
  proc::ProcessScope scope(*thinker_);
  app.submit("t", "measure", {pattern_bytes(100'000, 1)});
  app.get_result();
  // The worker still saw the full input (resolved transparently)...
  EXPECT_EQ(observed_size, 100'000u);
  // ...and the store actually carried it.
  EXPECT_EQ(store->metrics().puts, 1u);
}

TEST_F(WorkflowTest, SmallInputsBypassTheStore) {
  ColmenaApp app(*worker_);
  app.register_function("noop",
                        [](const std::vector<Bytes>&) { return Bytes(); });
  auto store = make_store("wf-store-2");
  app.register_store("t", store, /*threshold=*/1000);
  proc::ProcessScope scope(*thinker_);
  app.submit("t", "noop", {pattern_bytes(10)});
  app.get_result();
  EXPECT_EQ(store->metrics().puts, 0u);
}

TEST_F(WorkflowTest, LargeResultsAreProxied) {
  ColmenaApp app(*worker_);
  app.register_function("produce", [](const std::vector<Bytes>&) {
    return pattern_bytes(50'000, 2);
  });
  auto store = make_store("wf-store-3");
  app.register_store("t", store, /*threshold=*/1000);
  proc::ProcessScope scope(*thinker_);
  app.submit("t", "produce", {});
  const TaskResult result = app.get_result();
  EXPECT_TRUE(check_pattern(result.bytes(), 2));
  EXPECT_TRUE(
      std::holds_alternative<core::Proxy<Bytes>>(result.value));  // lazy
  EXPECT_EQ(store->metrics().puts, 1u);  // the result went through the store
}

TEST_F(WorkflowTest, ProxyingLargeDataReducesRoundTrip) {
  // The Figure 7 effect, in miniature: 10 MB payloads round-trip faster
  // through the store than through the workflow pipeline.
  const Bytes payload = pattern_bytes(10'000'000, 3);
  double baseline_rt = 0.0;
  double proxy_rt = 0.0;
  {
    ColmenaApp app(*worker_);
    app.register_function("echo", [](const std::vector<Bytes>& inputs) {
      return inputs.at(0);
    });
    proc::ProcessScope scope(*thinker_);
    sim::VtimeGuard guard;
    app.submit("t", "echo", {payload});
    baseline_rt = app.get_result().round_trip_s;
  }
  {
    ColmenaApp app(*worker_);
    app.register_function("echo", [](const std::vector<Bytes>& inputs) {
      return inputs.at(0);
    });
    auto store = make_store("wf-store-4");
    app.register_store("t", store, /*threshold=*/10'000);
    proc::ProcessScope scope(*thinker_);
    sim::VtimeGuard guard;
    app.submit("t", "echo", {payload});
    proxy_rt = app.get_result().round_trip_s;
  }
  EXPECT_LT(proxy_rt, baseline_rt);
}

TEST_F(WorkflowTest, SmallDataGainsNothingFromProxies) {
  const Bytes payload = pattern_bytes(100, 4);
  double baseline_rt = 0.0;
  double proxy_rt = 0.0;
  {
    ColmenaApp app(*worker_);
    app.register_function("echo", [](const std::vector<Bytes>& inputs) {
      return inputs.at(0);
    });
    proc::ProcessScope scope(*thinker_);
    sim::VtimeGuard guard;
    app.submit("t", "echo", {payload});
    baseline_rt = app.get_result().round_trip_s;
  }
  {
    ColmenaApp app(*worker_);
    app.register_function("echo", [](const std::vector<Bytes>& inputs) {
      return inputs.at(0);
    });
    auto store = make_store("wf-store-5");
    app.register_store("t", store, /*threshold=*/10);  // proxy everything
    proc::ProcessScope scope(*thinker_);
    sim::VtimeGuard guard;
    app.submit("t", "echo", {payload});
    proxy_rt = app.get_result().round_trip_s;
  }
  // Proxying tiny objects adds I/O overhead that the pipeline saving does
  // not recoup (paper: improvements "largely negated" below 100 kB).
  EXPECT_GE(proxy_rt, baseline_rt * 0.5);
}

TEST_F(WorkflowTest, SubmitAfterCloseThrows) {
  ColmenaApp app(*worker_);
  app.register_function("noop",
                        [](const std::vector<Bytes>&) { return Bytes(); });
  app.close();
  proc::ProcessScope scope(*thinker_);
  EXPECT_THROW(app.submit("t", "noop", {}), Error);
}

TEST_F(WorkflowTest, MultipleWorkersProcessInParallel) {
  EngineOptions options;
  options.workers = 4;
  ColmenaApp app(*worker_, options);
  app.register_function("echo", [](const std::vector<Bytes>& inputs) {
    return inputs.at(0);
  });
  proc::ProcessScope scope(*thinker_);
  for (int i = 0; i < 20; ++i) {
    app.submit("t", "echo", {serde::to_bytes(i)});
  }
  std::set<int> seen;
  for (int i = 0; i < 20; ++i) {
    seen.insert(serde::from_bytes<int>(app.get_result().bytes()));
  }
  EXPECT_EQ(seen.size(), 20u);
}

}  // namespace
}  // namespace ps::workflow
