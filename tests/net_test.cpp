#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/fabric.hpp"
#include "net/link.hpp"

namespace ps::net {
namespace {

Fabric make_test_fabric() {
  Fabric f;
  f.add_site("alpha", hpc_interconnect(10e-6, 10e9));
  f.add_site("beta", hpc_interconnect(10e-6, 10e9));
  f.add_site("edge", wan_tcp(1e-3, 100e6), /*behind_nat=*/true);
  f.add_host("alpha-login", "alpha");
  f.add_host("alpha-compute", "alpha");
  f.add_host("beta-login", "beta");
  f.add_host("edge-device", "edge");
  f.connect_sites("alpha", "beta", wan_tcp(10e-3, 1.25e9));
  f.connect_sites("alpha", "edge", wan_tcp(25e-3, 12.5e6));
  return f;
}

// ----------------------------------------------------------------- link ----

TEST(LinkProfile, LanUsesFullBandwidth) {
  const LinkProfile p = hpc_interconnect(10e-6, 1e9);
  EXPECT_DOUBLE_EQ(p.effective_bandwidth(100), 1e9);
  EXPECT_DOUBLE_EQ(p.effective_bandwidth(1u << 30), 1e9);
}

TEST(LinkProfile, TcpRampPenalizesSmallTransfers) {
  const LinkProfile p = wan_tcp(10e-3, 1e9);
  // Small transfers finish inside slow start (far below peak bandwidth);
  // bulk transfers amortize the ramp and approach line rate.
  EXPECT_LT(p.effective_bandwidth(10'000), 0.05 * 1e9);
  EXPECT_GT(p.effective_bandwidth(100'000'000), 0.4 * 1e9);
  EXPECT_GT(p.effective_bandwidth(1'000'000'000), 0.8 * 1e9);
}

TEST(LinkProfile, ThrottleCapsBandwidth) {
  const LinkProfile p = wan_udp_throttled(10e-3, 1e9, /*throttle=*/10e6);
  EXPECT_LE(p.effective_bandwidth(1u << 30), 10e6);
}

TEST(LinkProfile, TransferTimeMonotonicInSize) {
  const LinkProfile p = wan_tcp(5e-3, 1e9);
  double prev = 0.0;
  for (std::size_t bytes = 1; bytes <= 100'000'000; bytes *= 10) {
    const double t = p.transfer_time(bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(LinkProfile, LatencyDominatesSmallTransfers) {
  const LinkProfile p = wan_tcp(50e-3, 1e9);
  EXPECT_NEAR(p.transfer_time(10), 50e-3, 5e-3);
}

TEST(LinkProfile, ThrottledThrowsOnBadArg) {
  EXPECT_THROW(wan_udp_throttled(1e-3, 1e9, 0.0), std::invalid_argument);
}

TEST(LinkProfile, CongestionNames) {
  EXPECT_EQ(to_string(Congestion::kLan), "lan");
  EXPECT_EQ(to_string(Congestion::kUdpThrottled), "udp-throttled");
}

// --------------------------------------------------------------- fabric ----

TEST(Fabric, LoopbackRouteIsCheapest) {
  const Fabric f = make_test_fabric();
  const double loop = f.transfer_time("alpha-login", "alpha-login", 1000);
  const double intra = f.transfer_time("alpha-login", "alpha-compute", 1000);
  const double inter = f.transfer_time("alpha-login", "beta-login", 1000);
  EXPECT_LT(loop, intra);
  EXPECT_LT(intra, inter);
}

TEST(Fabric, RouteIsSymmetricInTime) {
  const Fabric f = make_test_fabric();
  for (const std::size_t bytes : {10u, 100000u, 10000000u}) {
    EXPECT_DOUBLE_EQ(f.transfer_time("alpha-login", "beta-login", bytes),
                     f.transfer_time("beta-login", "alpha-login", bytes));
  }
}

TEST(Fabric, UnknownHostThrows) {
  const Fabric f = make_test_fabric();
  EXPECT_THROW(f.route("alpha-login", "nowhere"), ConnectorError);
  EXPECT_THROW(f.host("nowhere"), ConnectorError);
}

TEST(Fabric, TransitRoutesThroughCommonNeighbor) {
  const Fabric f = make_test_fabric();
  // beta <-> edge has no direct link but both connect to alpha.
  const Route r = f.route("beta-login", "edge-device");
  ASSERT_EQ(r.hops.size(), 2u);
  EXPECT_EQ(f.host(r.hops[0].to).site, "alpha");
  // Transit is never cheaper than the worse of its two legs.
  EXPECT_GE(r.rtt(), 2 * (10e-3 + 100e-6));
}

TEST(Fabric, TransitPicksLowestLatencyNeighbor) {
  Fabric f;
  f.add_site("a", loopback_profile());
  f.add_site("b", loopback_profile());
  f.add_site("slow-hub", loopback_profile());
  f.add_site("fast-hub", loopback_profile());
  f.add_host("ha", "a");
  f.add_host("hb", "b");
  f.add_host("h-slow", "slow-hub");
  f.add_host("h-fast", "fast-hub");
  f.connect_sites("a", "slow-hub", wan_tcp(50e-3, 1e9));
  f.connect_sites("slow-hub", "b", wan_tcp(50e-3, 1e9));
  f.connect_sites("a", "fast-hub", wan_tcp(5e-3, 1e9));
  f.connect_sites("fast-hub", "b", wan_tcp(5e-3, 1e9));
  const Route r = f.route("ha", "hb");
  ASSERT_EQ(r.hops.size(), 2u);
  EXPECT_EQ(r.hops[0].to, "h-fast");
}

TEST(Fabric, FullyDisconnectedSitesThrow) {
  Fabric f;
  f.add_site("a", loopback_profile());
  f.add_site("island", loopback_profile());
  f.add_host("ha", "a");
  f.add_host("hi", "island");
  EXPECT_THROW(f.route("ha", "hi"), ConnectorError);
}

TEST(Fabric, DuplicateSiteOrHostThrows) {
  Fabric f;
  f.add_site("s", loopback_profile());
  EXPECT_THROW(f.add_site("s", loopback_profile()), ConnectorError);
  f.add_host("h", "s");
  EXPECT_THROW(f.add_host("h", "s"), ConnectorError);
  EXPECT_THROW(f.add_host("h2", "missing"), ConnectorError);
}

TEST(Fabric, DirectConnectivityRespectsNat) {
  const Fabric f = make_test_fabric();
  // Same site: always direct.
  EXPECT_TRUE(f.can_connect_direct("alpha-login", "alpha-compute"));
  // Open site is reachable from the NAT'd edge (outbound).
  EXPECT_TRUE(f.can_connect_direct("edge-device", "alpha-login"));
  // NAT'd edge is not reachable inbound.
  EXPECT_FALSE(f.can_connect_direct("alpha-login", "edge-device"));
}

TEST(Fabric, NatTraversalFlaggedOnlyForDoubleNat) {
  Fabric f;
  f.add_site("n1", loopback_profile(), /*behind_nat=*/true);
  f.add_site("n2", loopback_profile(), /*behind_nat=*/true);
  f.add_host("h1", "n1");
  f.add_host("h2", "n2");
  f.connect_sites("n1", "n2", wan_tcp(20e-3, 1e9));
  EXPECT_TRUE(f.route("h1", "h2").requires_nat_traversal);

  const Fabric open = make_test_fabric();
  EXPECT_FALSE(open.route("alpha-login", "beta-login").requires_nat_traversal);
}

TEST(Fabric, HostsInSite) {
  const Fabric f = make_test_fabric();
  const auto hosts = f.hosts_in_site("alpha");
  EXPECT_EQ(hosts.size(), 2u);
}

TEST(Fabric, DiskAndMemCosts) {
  Fabric f;
  f.add_site("s", loopback_profile());
  Host traits;
  traits.disk_write_Bps = 1e9;
  traits.disk_read_Bps = 2e9;
  traits.file_latency_s = 1e-3;
  traits.mem_Bps = 10e9;
  f.add_host("h", "s", traits);
  EXPECT_DOUBLE_EQ(f.disk_write_time("h", 1'000'000'000), 1e-3 + 1.0);
  EXPECT_DOUBLE_EQ(f.disk_read_time("h", 1'000'000'000), 1e-3 + 0.5);
  EXPECT_DOUBLE_EQ(f.mem_copy_time("h", 1'000'000'000), 0.1);
}

TEST(Fabric, RouteRttCountsBothDirections) {
  const Fabric f = make_test_fabric();
  const Route r = f.route("alpha-login", "beta-login");
  EXPECT_NEAR(r.rtt(), 2 * (10e-3 + 100e-6), 1e-9);
}

TEST(Fabric, TransferTimeGrowsWithPayload) {
  const Fabric f = make_test_fabric();
  EXPECT_LT(f.transfer_time("alpha-login", "beta-login", 1000),
            f.transfer_time("alpha-login", "beta-login", 100'000'000));
}

// ------------------------------------------------------------ sshtunnel ----

TEST(SshTunnel, AddsOverheadOverPlainRoute) {
  const Fabric f = make_test_fabric();
  const SshTunnel tunnel;
  const double plain = f.transfer_time("alpha-login", "beta-login", 1000);
  const double tunneled =
      tunnel.transfer_time(f, "alpha-login", "beta-login", 1000);
  EXPECT_GT(tunneled, plain);
}

TEST(SshTunnel, StillDeliversHighBandwidthForBulk) {
  // The paper found Redis+SSH outperforms PS-endpoints at large sizes
  // because ssh/TCP is not UDP-throttled; verify bulk remains fast.
  const Fabric f = make_test_fabric();
  const SshTunnel tunnel;
  const std::size_t bytes = 100'000'000;
  const double t = tunnel.transfer_time(f, "alpha-login", "beta-login", bytes);
  // Effective bandwidth within 2x of the 1.25 GB/s link peak.
  EXPECT_LT(t, 2.0 * static_cast<double>(bytes) / 1.25e9 + 0.1);
}

}  // namespace
}  // namespace ps::net
