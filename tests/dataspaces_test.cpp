#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "dataspaces/dataspaces.hpp"
#include "proc/world.hpp"
#include "sim/vtime.hpp"

namespace ps::dataspaces {
namespace {

class DataSpacesTest : public ::testing::Test {
 protected:
  DataSpacesTest() {
    world_ = std::make_unique<proc::World>();
    world_->fabric().add_site("cluster", net::rdma_fabric(2e-6, 25e9));
    world_->fabric().add_host("node-0", "cluster");
    world_->fabric().add_host("node-1", "cluster");
    producer_ = &world_->spawn("producer", "node-0");
    consumer_ = &world_->spawn("consumer", "node-1");
    server_ = DataSpacesServer::start(*world_, "node-0", "space");
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* producer_ = nullptr;
  proc::Process* consumer_ = nullptr;
  std::shared_ptr<DataSpacesServer> server_;
};

TEST_F(DataSpacesTest, PutGetByNameAndVersion) {
  proc::ProcessScope scope(*producer_);
  DataSpacesClient client("node-0", "space");
  client.put("temperature", 1, "300K");
  EXPECT_EQ(client.get("temperature", 1), "300K");
  EXPECT_EQ(server_->object_count(), 1u);
}

TEST_F(DataSpacesTest, GetMissingReturnsNullopt) {
  proc::ProcessScope scope(*producer_);
  DataSpacesClient client("node-0", "space");
  EXPECT_EQ(client.get("nothing", 1), std::nullopt);
}

TEST_F(DataSpacesTest, VersionsAreIndependent) {
  proc::ProcessScope scope(*producer_);
  DataSpacesClient client("node-0", "space");
  client.put("field", 1, "v1");
  client.put("field", 2, "v2");
  EXPECT_EQ(client.get("field", 1), "v1");
  EXPECT_EQ(client.get("field", 2), "v2");
  EXPECT_EQ(client.latest_version("field"), 2u);
}

TEST_F(DataSpacesTest, LatestVersionOfUnknownNameIsNullopt) {
  proc::ProcessScope scope(*producer_);
  DataSpacesClient client("node-0", "space");
  EXPECT_EQ(client.latest_version("ghost"), std::nullopt);
}

TEST_F(DataSpacesTest, CrossNodeSharing) {
  {
    proc::ProcessScope scope(*producer_);
    DataSpacesClient client("node-0", "space");
    client.put("shared", 1, pattern_bytes(100'000, 1));
  }
  proc::ProcessScope scope(*consumer_);
  DataSpacesClient client("node-0", "space");
  const auto data = client.get("shared", 1);
  ASSERT_TRUE(data.has_value());
  EXPECT_TRUE(check_pattern(*data, 1));
}

TEST_F(DataSpacesTest, FirstOperationPaysStartupOverhead) {
  proc::ProcessScope scope(*producer_);
  sim::VtimeGuard guard;
  DataSpacesOptions options;
  options.client_startup_s = 0.5;
  DataSpacesClient client("node-0", "space", options);
  sim::VtimeScope first;
  client.put("a", 1, "x");
  const double first_cost = first.elapsed();
  sim::VtimeScope second;
  client.put("b", 1, "x");
  const double second_cost = second.elapsed();
  EXPECT_GE(first_cost, 0.5);
  EXPECT_LT(second_cost, 0.1);
}

TEST_F(DataSpacesTest, BinaryPayloadsSafe) {
  proc::ProcessScope scope(*producer_);
  DataSpacesClient client("node-0", "space");
  const Bytes blob = pattern_bytes(1'000'000, 2);
  client.put("blob", 7, blob);
  EXPECT_EQ(client.get("blob", 7), blob);
}

TEST_F(DataSpacesTest, OverwriteSameVersionReplaces) {
  proc::ProcessScope scope(*producer_);
  DataSpacesClient client("node-0", "space");
  client.put("k", 1, "old");
  client.put("k", 1, "new");
  EXPECT_EQ(client.get("k", 1), "new");
  EXPECT_EQ(server_->object_count(), 1u);
}

}  // namespace
}  // namespace ps::dataspaces
