#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "net/fabric.hpp"
#include "proc/world.hpp"
#include "rpc/peer_store.hpp"
#include "rpc/rpc.hpp"
#include "rpc/transport.hpp"
#include "serde/serde.hpp"
#include "sim/vtime.hpp"

namespace ps::rpc {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() {
    world_ = std::make_unique<proc::World>();
    // "hpc" models a Slingshot-like RDMA fabric, "cloud" a 40GbE cluster.
    world_->fabric().add_site("hpc", net::rdma_fabric(2e-6, 25e9));
    world_->fabric().add_site("cloud", net::hpc_interconnect(20e-6, 5e9));
    world_->fabric().add_host("hpc-0", "hpc");
    world_->fabric().add_host("hpc-1", "hpc");
    world_->fabric().add_host("cloud-0", "cloud");
    world_->fabric().add_host("cloud-1", "cloud");
    p_hpc0_ = &world_->spawn("p0", "hpc-0");
    p_hpc1_ = &world_->spawn("p1", "hpc-1");
    p_cloud0_ = &world_->spawn("c0", "cloud-0");
    p_cloud1_ = &world_->spawn("c1", "cloud-1");
  }

  std::unique_ptr<proc::World> world_;
  proc::Process* p_hpc0_ = nullptr;
  proc::Process* p_hpc1_ = nullptr;
  proc::Process* p_cloud0_ = nullptr;
  proc::Process* p_cloud1_ = nullptr;
};

// ------------------------------------------------------------ transport ----

TEST(Transport, LookupByName) {
  EXPECT_EQ(transport_by_name("margo").name, "margo");
  EXPECT_EQ(transport_by_name("ucx").name, "ucx");
  EXPECT_EQ(transport_by_name("zmq").name, "zmq");
  EXPECT_THROW(transport_by_name("tcp"), NotRegisteredError);
}

TEST_F(RpcTest, MargoAndUcxEquivalentOnRdmaFabric) {
  const std::size_t bytes = 100'000'000;
  const double margo = margo_transport().transfer_time(world_->fabric(),
                                                       "hpc-0", "hpc-1", bytes);
  const double ucx =
      ucx_transport().transfer_time(world_->fabric(), "hpc-0", "hpc-1", bytes);
  EXPECT_NEAR(margo, ucx, 0.1 * margo);
}

TEST_F(RpcTest, UcxDegradesOnCommodityLan) {
  // The Chameleon observation: UCX measurably worse than Margo on 40GbE.
  const std::size_t bytes = 100'000'000;
  const double margo = margo_transport().transfer_time(
      world_->fabric(), "cloud-0", "cloud-1", bytes);
  const double ucx = ucx_transport().transfer_time(world_->fabric(), "cloud-0",
                                                   "cloud-1", bytes);
  EXPECT_GT(ucx, 1.5 * margo);
}

TEST_F(RpcTest, ZmqSlowerThanMargoEverywhere) {
  for (const auto& [a, b] : std::vector<std::pair<std::string, std::string>>{
           {"hpc-0", "hpc-1"}, {"cloud-0", "cloud-1"}}) {
    const double margo =
        margo_transport().transfer_time(world_->fabric(), a, b, 10'000'000);
    const double zmq =
        zmq_transport().transfer_time(world_->fabric(), a, b, 10'000'000);
    EXPECT_GT(zmq, margo);
  }
}

// ------------------------------------------------------------------ rpc ----

TEST_F(RpcTest, CallInvokesHandler) {
  auto server = RpcServer::start(*world_, "hpc-0", "svc", margo_transport());
  server->register_handler("echo", [](BytesView request) {
    return Bytes(request) + "!";
  });
  proc::ProcessScope scope(*p_hpc1_);
  RpcClient client(rpc_address("margo", "hpc-0", "svc"));
  EXPECT_EQ(client.call("echo", "hello"), "hello!");
}

TEST_F(RpcTest, UnknownOpThrows) {
  RpcServer::start(*world_, "hpc-0", "svc", margo_transport());
  proc::ProcessScope scope(*p_hpc1_);
  RpcClient client(rpc_address("margo", "hpc-0", "svc"));
  EXPECT_THROW(client.call("nope", ""), ProtocolError);
}

TEST_F(RpcTest, CallChargesVirtualTime) {
  auto server = RpcServer::start(*world_, "hpc-0", "svc", margo_transport());
  server->register_handler("echo", [](BytesView r) { return Bytes(r); });
  proc::ProcessScope scope(*p_hpc1_);
  sim::VtimeGuard guard;
  RpcClient client(rpc_address("margo", "hpc-0", "svc"));
  sim::VtimeScope small_scope;
  client.call("echo", pattern_bytes(100));
  const double small = small_scope.elapsed();
  sim::VtimeScope big_scope;
  client.call("echo", pattern_bytes(50'000'000));
  const double big = big_scope.elapsed();
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, 50.0 * small);
}

TEST_F(RpcTest, ServerQueueSerializesRequests) {
  auto server = RpcServer::start(*world_, "hpc-0", "svc", margo_transport());
  server->register_handler("noop", [](BytesView) { return Bytes(); });
  const double s = server->service_time(1000);
  const double a = server->handle("noop", pattern_bytes(1000), 0.0).second;
  const double b = server->handle("noop", pattern_bytes(1000), 0.0).second;
  EXPECT_NEAR(b - a, s, 1e-9);
}

// ----------------------------------------------------------- peer store ----

TEST_F(RpcTest, PutLocalGetLocal) {
  proc::ProcessScope scope(*p_hpc0_);
  PeerStoreClient client("store-a", margo_transport());
  const std::string owner = client.put("obj", "data");
  EXPECT_EQ(owner, "hpc-0");
  EXPECT_EQ(client.get(owner, "obj"), "data");
  EXPECT_TRUE(client.exists(owner, "obj"));
}

TEST_F(RpcTest, RemoteGetAcrossNodes) {
  std::string owner;
  {
    proc::ProcessScope scope(*p_hpc0_);
    PeerStoreClient producer("store-b", margo_transport());
    owner = producer.put("obj", pattern_bytes(1000, 4));
  }
  {
    proc::ProcessScope scope(*p_hpc1_);
    PeerStoreClient consumer("store-b", margo_transport());
    const auto data = consumer.get(owner, "obj");
    ASSERT_TRUE(data.has_value());
    EXPECT_TRUE(check_pattern(*data, 4));
  }
}

TEST_F(RpcTest, ElasticServersSpawnPerNode) {
  {
    proc::ProcessScope scope(*p_hpc0_);
    PeerStoreClient a("store-c", margo_transport());
  }
  EXPECT_TRUE(world_->services().contains(
      PeerStoreServer::address("margo", "store-c", "hpc-0")));
  EXPECT_FALSE(world_->services().contains(
      PeerStoreServer::address("margo", "store-c", "hpc-1")));
  {
    proc::ProcessScope scope(*p_hpc1_);
    PeerStoreClient b("store-c", margo_transport());
  }
  EXPECT_TRUE(world_->services().contains(
      PeerStoreServer::address("margo", "store-c", "hpc-1")));
}

TEST_F(RpcTest, SameNodeClientsShareServer) {
  proc::ProcessScope scope(*p_hpc0_);
  PeerStoreClient a("store-d", margo_transport());
  const std::string owner = a.put("obj", "x");
  PeerStoreClient b("store-d", margo_transport());
  EXPECT_EQ(b.get(owner, "obj"), "x");
}

TEST_F(RpcTest, EvictRemovesEverywhere) {
  std::string owner;
  {
    proc::ProcessScope scope(*p_hpc0_);
    PeerStoreClient producer("store-e", margo_transport());
    owner = producer.put("obj", "x");
  }
  proc::ProcessScope scope(*p_hpc1_);
  PeerStoreClient consumer("store-e", margo_transport());
  consumer.evict(owner, "obj");
  EXPECT_FALSE(consumer.exists(owner, "obj"));
  EXPECT_EQ(consumer.get(owner, "obj"), std::nullopt);
}

TEST_F(RpcTest, MissingRemoteServerThrows) {
  proc::ProcessScope scope(*p_hpc0_);
  PeerStoreClient client("store-f", margo_transport());
  EXPECT_THROW(client.get("hpc-1", "obj"), ConnectorError);
}

TEST_F(RpcTest, DistinctStoreIdsAreIsolated) {
  proc::ProcessScope scope(*p_hpc0_);
  PeerStoreClient a("store-g", margo_transport());
  PeerStoreClient b("store-h", margo_transport());
  const std::string owner = a.put("obj", "x");
  EXPECT_FALSE(b.exists(owner, "obj"));
}

TEST_F(RpcTest, RemoteGetCostExceedsLocal) {
  sim::VtimeGuard guard;
  std::string owner;
  {
    proc::ProcessScope scope(*p_hpc0_);
    PeerStoreClient producer("store-i", margo_transport());
    owner = producer.put("obj", pattern_bytes(10'000'000));
    sim::VtimeScope local_scope;
    producer.get(owner, "obj");
    const double local = local_scope.elapsed();
    EXPECT_GT(local, 0.0);
  }
  proc::ProcessScope scope(*p_hpc1_);
  PeerStoreClient consumer("store-i", margo_transport());
  sim::VtimeScope remote_scope;
  consumer.get(owner, "obj");
  EXPECT_GT(remote_scope.elapsed(), 10'000'000.0 / 25e9);
}

}  // namespace
}  // namespace ps::rpc
