#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "sim/clock.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/vtime.hpp"

namespace ps::sim {
namespace {

// ---------------------------------------------------------------- clock ----

TEST(VirtualClock, StartsAtZero) {
  VirtualClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock c;
  c.advance(1.5);
  c.advance(0.5);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

TEST(VirtualClock, AdvanceToIsMonotonic) {
  VirtualClock c;
  c.advance_to(5.0);
  c.advance_to(3.0);  // must not go backwards
  EXPECT_DOUBLE_EQ(c.now(), 5.0);
}

TEST(VirtualClock, NegativeAdvanceThrows) {
  VirtualClock c;
  EXPECT_THROW(c.advance(-1.0), std::invalid_argument);
}

TEST(VirtualClock, ResetReturnsToZero) {
  VirtualClock c;
  c.advance(10.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(VirtualClock, ConcurrentAdvancesSum) {
  VirtualClock c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.advance(0.001);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_NEAR(c.now(), 8.0, 1e-6);
}

// ------------------------------------------------------------- resource ----

TEST(Resource, IdleServerStartsImmediately) {
  Resource r(1);
  EXPECT_DOUBLE_EQ(r.schedule(1.0, 0.5), 1.5);
}

TEST(Resource, BusyServerQueuesFifo) {
  Resource r(1);
  EXPECT_DOUBLE_EQ(r.schedule(0.0, 1.0), 1.0);
  // Arrives at 0.1 but must wait until 1.0.
  EXPECT_DOUBLE_EQ(r.schedule(0.1, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(r.schedule(0.2, 1.0), 3.0);
}

TEST(Resource, LinearScalingWithConcurrentClients) {
  // The Figure 8 effect: n clients issuing simultaneous identical requests
  // to a single-threaded server see mean response time ~ (n+1)/2 * service.
  for (const int n : {1, 2, 4, 8, 16}) {
    Resource r(1);
    const double service = 0.01;
    double total_response = 0.0;
    for (int i = 0; i < n; ++i) {
      total_response += r.schedule(0.0, service) - 0.0;
    }
    const double mean = total_response / n;
    EXPECT_NEAR(mean, (n + 1) / 2.0 * service, 1e-12);
  }
}

TEST(Resource, MultipleServersDrainBacklogFaster) {
  // Fluid model: backlog drains at `servers` service-seconds per second.
  Resource two(2);
  EXPECT_DOUBLE_EQ(two.schedule(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(two.schedule(0.0, 1.0), 1.5);  // 1.0 backlog / 2 servers
  EXPECT_DOUBLE_EQ(two.schedule(0.0, 1.0), 2.0);

  Resource one(1);
  one.schedule(0.0, 1.0);
  // One server with the same backlog queues twice as long.
  EXPECT_DOUBLE_EQ(one.schedule(0.0, 1.0), 2.0);
}

TEST(Resource, OutOfOrderArrivalsStayCausal) {
  // A request from an actor in the "virtual past" is not queued behind
  // work submitted from another actor's future.
  Resource r(1);
  r.schedule(100.0, 0.5);  // a late-timeline actor
  const double early = r.schedule(1.0, 0.5);
  EXPECT_LT(early, 3.0);  // not pushed to ~100
}

TEST(Resource, BacklogDrainsDuringIdleGaps) {
  Resource r(1);
  EXPECT_DOUBLE_EQ(r.schedule(0.0, 1.0), 1.0);
  // Arrives long after the backlog drained: no queueing.
  EXPECT_DOUBLE_EQ(r.schedule(10.0, 1.0), 11.0);
}

TEST(Resource, TracksBusyTimeAndCompleted) {
  Resource r(1);
  r.schedule(0.0, 0.25);
  r.schedule(0.0, 0.75);
  EXPECT_DOUBLE_EQ(r.busy_time(), 1.0);
  EXPECT_EQ(r.completed(), 2u);
  r.reset();
  EXPECT_DOUBLE_EQ(r.busy_time(), 0.0);
  EXPECT_EQ(r.completed(), 0u);
  EXPECT_DOUBLE_EQ(r.schedule(0.0, 0.1), 0.1);
}

TEST(Resource, ZeroServersThrows) {
  EXPECT_THROW(Resource(0), std::invalid_argument);
}

TEST(Resource, NegativeServiceThrows) {
  Resource r(1);
  EXPECT_THROW(r.schedule(0.0, -0.1), std::invalid_argument);
}

// ------------------------------------------------------------ scheduler ----

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(3.0, [&](SimTime) { order.push_back(3); });
  s.at(1.0, [&](SimTime) { order.push_back(1); });
  s.at(2.0, [&](SimTime) { order.push_back(2); });
  EXPECT_EQ(s.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TieBreaksByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(1.0, [&](SimTime) { order.push_back(1); });
  s.at(1.0, [&](SimTime) { order.push_back(2); });
  s.at(1.0, [&](SimTime) { order.push_back(3); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  std::vector<int> order;
  s.at(1.0, [&](SimTime) { order.push_back(1); });
  s.at(2.0, [&](SimTime) { order.push_back(2); });
  EXPECT_EQ(s.run_until(1.5), 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(s.next_event_time(), 2.0);
  EXPECT_EQ(s.run_until(2.0), 1u);  // inclusive boundary
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  std::vector<double> fired;
  s.at(1.0, [&](SimTime now) {
    fired.push_back(now);
    s.at(now + 1.0, [&](SimTime later) { fired.push_back(later); });
  });
  s.run_all();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
}

TEST(Scheduler, EmptyNextEventIsInfinity) {
  Scheduler s;
  EXPECT_EQ(s.next_event_time(), std::numeric_limits<SimTime>::infinity());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.run_all(), 0u);
}

TEST(Scheduler, CallbackReceivesScheduledTime) {
  Scheduler s;
  double seen = -1;
  s.at(4.25, [&](SimTime now) { seen = now; });
  s.run_all();
  EXPECT_DOUBLE_EQ(seen, 4.25);
}

// ---------------------------------------------------------------- vtime ----

TEST(Vtime, AdvanceAndMerge) {
  VtimeGuard guard;
  vset(0.0);
  vadvance(1.5);
  EXPECT_DOUBLE_EQ(vnow(), 1.5);
  vmerge(1.0);  // older timestamp: no effect
  EXPECT_DOUBLE_EQ(vnow(), 1.5);
  vmerge(3.0);  // newer message timestamp
  EXPECT_DOUBLE_EQ(vnow(), 3.0);
  EXPECT_THROW(vadvance(-1.0), std::invalid_argument);
}

TEST(Vtime, ScopeMeasuresElapsed) {
  VtimeGuard guard;
  vset(10.0);
  VtimeScope scope;
  vadvance(2.5);
  EXPECT_DOUBLE_EQ(scope.elapsed(), 2.5);
}

TEST(Vtime, GuardRestores) {
  vset(7.0);
  {
    VtimeGuard guard;
    vadvance(100.0);
  }
  EXPECT_DOUBLE_EQ(vnow(), 7.0);
}

TEST(Vtime, IsPerThread) {
  VtimeGuard guard;
  vset(5.0);
  double other = -1.0;
  std::thread t([&] {
    vset(1.0);
    vadvance(1.0);
    other = vnow();
  });
  t.join();
  EXPECT_DOUBLE_EQ(other, 2.0);
  EXPECT_DOUBLE_EQ(vnow(), 5.0);
}

}  // namespace
}  // namespace ps::sim
