// SwarmConnector + ChunkScheduler: chunked round trips, placement, and the
// failure paths the subsystem exists for — corrupt-chunk re-request,
// missing-chunk failover, slow-source timeout — all deterministic under
// virtual time. The ConcurrentReassembly cases race chunk completions into
// one reassembly buffer and are the tier-2 TSan targets.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "connectors/local.hpp"
#include "core/store.hpp"
#include "obs/metrics.hpp"
#include "proc/world.hpp"
#include "serde/serde.hpp"
#include "sim/vtime.hpp"
#include "swarm/chaos.hpp"
#include "swarm/manifest.hpp"
#include "swarm/swarm.hpp"

namespace ps::swarm {
namespace {

// Scheduler metrics land in the ambient (process-scoped) registry; each
// SwarmEnv spawns a fresh process, so counters start from zero per test.
std::uint64_t counter(const std::string& name) {
  return obs::MetricsRegistry::ambient().counter(name).value();
}

/// A private world with one site, four local backends behind fault
/// injectors, and a swarm connector chunking at 64 KB.
struct SwarmEnv {
  explicit SwarmEnv(std::uint32_t replication = 2,
                    std::size_t backend_count = 4) {
    obs::set_enabled(true);
    world = std::make_unique<proc::World>();
    world->fabric().add_site("site", net::hpc_interconnect(10e-6, 10e9));
    world->fabric().add_host("host", "site");
    process = &world->spawn("proc", "host");
    scope = std::make_unique<proc::ProcessScope>(*process);

    std::vector<Backend> backends;
    for (std::size_t b = 0; b < backend_count; ++b) {
      faults.push_back(std::make_shared<FaultInjectedConnector>(
          std::make_shared<connectors::LocalConnector>()));
      backends.push_back(Backend{"b" + std::to_string(b), faults.back()});
    }
    SwarmOptions options;
    options.chunk_size = 64 * 1024;
    options.chunk_threshold = 128 * 1024;
    options.replication = replication;
    options.pipeline_depth = 4;
    connector = std::make_shared<SwarmConnector>(backends, options);
  }

  /// The backend index the first wave will fetch `chunk` from: every
  /// source estimate and discovery frontier is identical in this world
  /// (local probes charge nothing), so assignment tie-breaks to the
  /// lowest-indexed holder.
  static std::uint32_t first_pick(const ChunkRef& chunk) {
    return *std::min_element(chunk.holders.begin(), chunk.holders.end());
  }

  std::unique_ptr<proc::World> world;
  proc::Process* process = nullptr;
  std::unique_ptr<proc::ProcessScope> scope;
  std::vector<std::shared_ptr<FaultInjectedConnector>> faults;
  std::shared_ptr<SwarmConnector> connector;
};

TEST(SwarmManifest, PlacementIsDeterministicAndReplicated) {
  const Bytes data = pattern_bytes(300'000, 5);
  const Manifest a = build_manifest(data, 64 * 1024, 4, 2, 0.0);
  const Manifest b = build_manifest(data, 64 * 1024, 4, 2, 0.0);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.chunks.size(), 5u);  // ceil(300000 / 65536)
  std::uint64_t offset = 0;
  for (const ChunkRef& chunk : a.chunks) {
    EXPECT_EQ(chunk.offset, offset);
    offset += chunk.size;
    ASSERT_EQ(chunk.holders.size(), 2u);
    EXPECT_NE(chunk.holders[0], chunk.holders[1]);
    for (const std::uint32_t holder : chunk.holders) {
      EXPECT_LT(holder, 4u);
    }
  }
  EXPECT_EQ(offset, data.size());
}

TEST(SwarmManifest, IdenticalChunksShareContentAddress) {
  const Bytes repeated(128 * 1024, 'z');  // two identical 64 KB chunks
  const Manifest m = build_manifest(repeated, 64 * 1024, 4, 2, 0.0);
  ASSERT_EQ(m.chunks.size(), 2u);
  EXPECT_EQ(m.chunks[0].hash, m.chunks[1].hash);
  EXPECT_EQ(chunk_key(m.chunks[0].hash), chunk_key(m.chunks[1].hash));
}

TEST(SwarmManifest, SerdeRoundTrips) {
  const Manifest m =
      build_manifest(pattern_bytes(200'000, 9), 64 * 1024, 3, 2, 0.0);
  EXPECT_EQ(serde::from_bytes<Manifest>(serde::to_bytes(m)), m);
}

TEST(SwarmConnector, ChunkedPutGetRoundTrips) {
  SwarmEnv env;
  const Bytes payload = pattern_bytes(1'000'000, 11);
  const core::Key key = env.connector->put(payload);
  EXPECT_TRUE(key.meta.contains(kManifestField));
  EXPECT_TRUE(env.connector->exists(key));
  EXPECT_EQ(env.connector->get(key), payload);
  // Every chunk fetched exactly once and every fetch hash-verified.
  const std::uint64_t chunks = counter("swarm.put.chunks");
  EXPECT_GT(chunks, 0u);
  EXPECT_EQ(counter("swarm.chunks.verified"), chunks);
  EXPECT_EQ(counter("swarm.chunks.fetched"), chunks);
  EXPECT_EQ(counter("swarm.chunks.corrupt"), 0u);
  EXPECT_EQ(counter("swarm.repairs"), 0u);
}

TEST(SwarmConnector, SmallPayloadPassesThrough) {
  SwarmEnv env;
  const Bytes payload = pattern_bytes(1000, 3);
  const core::Key key = env.connector->put(payload);
  EXPECT_FALSE(key.meta.contains(kManifestField));
  EXPECT_TRUE(key.meta.contains(kBackendField));
  EXPECT_EQ(env.connector->get(key), payload);
  EXPECT_TRUE(env.connector->exists(key));
  env.connector->evict(key);
  EXPECT_FALSE(env.connector->exists(key));
}

TEST(SwarmConnector, EvictRemovesManifestAndChunks) {
  SwarmEnv env;
  const core::Key key = env.connector->put(pattern_bytes(500'000, 21));
  ASSERT_TRUE(env.connector->exists(key));
  env.connector->evict(key);
  EXPECT_FALSE(env.connector->exists(key));
  EXPECT_EQ(env.connector->get(key), std::nullopt);
}

TEST(SwarmConnector, CorruptChunkIsReRequestedFromAnotherReplica) {
  SwarmEnv env;
  const Bytes payload = pattern_bytes(1'000'000, 13);
  const core::Key key = env.connector->put(payload);
  const auto manifest = env.connector->manifest(key);
  ASSERT_TRUE(manifest.has_value());
  // Flip a byte of chunk 0 on the replica the first wave will pick; the
  // scheduler must detect the hash mismatch and re-request from the other
  // holder — the resolve still returns intact bytes.
  const ChunkRef& chunk = manifest->chunks[0];
  env.faults[SwarmEnv::first_pick(chunk)]->corrupt(
      chunk_key(chunk.hash).object_id);
  EXPECT_EQ(env.connector->get(key), payload);
  EXPECT_GE(counter("swarm.chunks.corrupt"), 1u);
  EXPECT_GE(counter("swarm.repairs"), 1u);
  EXPECT_EQ(counter("swarm.chunks.unrecoverable"), 0u);
}

TEST(SwarmConnector, MissingChunkFailsOverToAnotherReplica) {
  SwarmEnv env;
  const Bytes payload = pattern_bytes(1'000'000, 17);
  const core::Key key = env.connector->put(payload);
  const auto manifest = env.connector->manifest(key);
  ASSERT_TRUE(manifest.has_value());
  const ChunkRef& chunk = manifest->chunks[0];
  env.faults[SwarmEnv::first_pick(chunk)]->drop(
      chunk_key(chunk.hash).object_id);
  EXPECT_EQ(env.connector->get(key), payload);
  EXPECT_GE(counter("swarm.chunks.missing"), 1u);
  EXPECT_GE(counter("swarm.repairs"), 1u);
}

TEST(SwarmConnector, AllReplicasLostIsUnrecoverable) {
  SwarmEnv env;
  const Bytes payload = pattern_bytes(1'000'000, 19);
  const core::Key key = env.connector->put(payload);
  const auto manifest = env.connector->manifest(key);
  ASSERT_TRUE(manifest.has_value());
  const ChunkRef& chunk = manifest->chunks[2];
  for (const std::uint32_t holder : chunk.holders) {
    env.faults[holder]->drop(chunk_key(chunk.hash).object_id);
  }
  EXPECT_EQ(env.connector->get(key), std::nullopt);
  EXPECT_GE(counter("swarm.chunks.unrecoverable"), 1u);
}

TEST(SwarmConnector, SlowSourceIsTimedOutAndRoutedAround) {
  SwarmEnv env;
  const Bytes payload = pattern_bytes(1'000'000, 23);
  const core::Key key = env.connector->put(payload);
  // Backend 0 develops 0.5 s of per-request latency. The deadline derives
  // from the healthy backends' observed per-byte rate, so its wave times
  // out and its chunks are re-requested elsewhere; the resolve must finish
  // far below the injected latency (the slow source's completion vtime is
  // discarded, never merged).
  env.faults[0]->set_get_delay(0.5);
  sim::VtimeGuard guard;
  sim::VtimeScope elapsed;
  EXPECT_EQ(env.connector->get(key), payload);
  EXPECT_LT(elapsed.elapsed(), 0.25);
  EXPECT_GE(counter("swarm.source.timeouts"), 1u);
  EXPECT_GE(counter("swarm.source.b0.timeouts"), 1u);
  EXPECT_GE(counter("swarm.repairs"), 1u);
}

TEST(SwarmConnector, ResolveVtimeIsDeterministic) {
  // Two structurally identical environments resolve the same payload in
  // exactly the same virtual time — the acceptance/repair/timeout machinery
  // is a pure function of deterministic vtimes, however threads interleave.
  std::vector<double> elapsed;
  for (int run = 0; run < 2; ++run) {
    SwarmEnv env;
    const Bytes payload = pattern_bytes(2'000'000, 29);
    sim::VtimeGuard guard;
    // Pin both runs to one absolute base so the comparison is bit-exact:
    // vtime arithmetic happens on absolute clocks, and (base + work) - base
    // only round-trips through double exactly when base is the same.
    sim::vset(1.0);
    const core::Key key = env.connector->put(payload);
    sim::VtimeScope scope;
    ASSERT_EQ(env.connector->get(key), payload);
    elapsed.push_back(scope.elapsed());
  }
  EXPECT_EQ(elapsed[0], elapsed[1]);
}

TEST(SwarmConnector, ProxyRoundTripsAcrossProcesses) {
  SwarmEnv env;
  auto store = std::make_shared<core::Store>("swarm-proxy-test",
                                             env.connector);
  core::register_store(store);
  const Bytes wire =
      serde::to_bytes(store->proxy(pattern_bytes(400'000, 31)));
  proc::Process& other = env.world->spawn("swarm-consumer", "host");
  proc::ProcessScope scope(other);
  auto proxy = serde::from_bytes<core::Proxy<Bytes>>(wire);
  EXPECT_TRUE(check_pattern(*proxy, 31));
}

TEST(SwarmConnector, ConfigReconstructsEquivalentConnector) {
  SwarmEnv env;
  const Bytes payload = pattern_bytes(600'000, 37);
  const core::Key key = env.connector->put(payload);
  auto rebuilt =
      core::ConnectorRegistry::instance().reconstruct(env.connector->config());
  EXPECT_EQ(rebuilt->type(), "swarm");
  EXPECT_EQ(rebuilt->get(key), payload);
}

// -- tier-2 concurrency targets ---------------------------------------------

TEST(SwarmConcurrency, ConcurrentChunkCompletionsShareOneBuffer) {
  // Many small chunks + a deep pipeline: chunk fetch jobs complete
  // concurrently on the private executor and memcpy into disjoint ranges
  // of one reassembly buffer. TSan must see no race.
  SwarmEnv env;
  std::vector<Backend> backends;
  for (std::size_t b = 0; b < env.faults.size(); ++b) {
    backends.push_back(Backend{"r" + std::to_string(b), env.faults[b]});
  }
  SwarmOptions options;
  options.chunk_size = 4 * 1024;
  options.chunk_threshold = 8 * 1024;
  options.replication = 2;
  options.pipeline_depth = 16;
  options.fetch_workers = 8;
  auto racy = std::make_shared<SwarmConnector>(backends, options);
  const Bytes payload = pattern_bytes(512 * 1024, 41);  // 128 chunks
  const core::Key key = racy->put(payload);
  EXPECT_EQ(racy->get(key), payload);
}

TEST(SwarmConcurrency, ParallelResolvesOfTheSameObjectAreSafe) {
  SwarmEnv env;
  const Bytes payload = pattern_bytes(768 * 1024, 43);
  const core::Key key = env.connector->put(payload);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      proc::ProcessScope scope(*env.process);
      const auto value = env.connector->get(key);
      if (!value || *value != payload) failures.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace ps::swarm
