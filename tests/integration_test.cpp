// Cross-substrate integration tests: proxies travelling through the FaaS
// fabric, across NATs via PS-endpoints, over Globus transfers, and through
// MultiConnector policies — plus failure injection at each layer.
#include <gtest/gtest.h>

#include <filesystem>

#include "connectors/endpoint.hpp"
#include "connectors/file.hpp"
#include "connectors/globus.hpp"
#include "connectors/redis.hpp"
#include "core/multi.hpp"
#include "core/store.hpp"
#include "endpoint/endpoint.hpp"
#include "faas/cloud.hpp"
#include "faas/executor.hpp"
#include "faas/registry.hpp"
#include "globus/transfer.hpp"
#include "kv/server.hpp"
#include "relay/relay.hpp"
#include "sim/vtime.hpp"
#include "testbed/testbed.hpp"

namespace ps {
namespace {

namespace fs = std::filesystem;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : tb_(testbed::build()) {}

  testbed::Testbed tb_;
};

// ---------------------------------------------------------- globus flows ----

TEST_F(IntegrationTest, ProxyAcrossSitesViaGlobus) {
  proc::Process& producer = tb_.world->spawn("producer", tb_.midway_login);
  proc::Process& consumer = tb_.world->spawn("consumer", tb_.theta_login);
  auto transfer = globus::TransferService::start(*tb_.world);
  const fs::path base = fs::temp_directory_path() /
                        ("ps_int_globus_" + Uuid::random().str());
  const Uuid ep_midway =
      transfer->register_endpoint(tb_.midway_login, base / "midway");
  const Uuid ep_theta =
      transfer->register_endpoint(tb_.theta_login, base / "theta");

  Bytes wire;
  {
    proc::ProcessScope scope(producer);
    auto store = std::make_shared<core::Store>(
        "globus-int",
        std::make_shared<connectors::GlobusConnector>(
            std::vector<connectors::GlobusEndpointSpec>{
                {"^midway2", ep_midway}, {"^theta", ep_theta}}));
    core::register_store(store);
    wire = serde::to_bytes(store->proxy(pattern_bytes(100'000, 5)));
  }
  {
    proc::ProcessScope scope(consumer);
    auto proxy = serde::from_bytes<core::Proxy<Bytes>>(wire);
    // Resolution waits for the Globus transfer task, then reads the file.
    sim::VtimeScope vt;
    EXPECT_TRUE(check_pattern(*proxy, 5));
    EXPECT_GE(vt.elapsed(), 2.0);  // the per-task SaaS overhead
  }
  fs::remove_all(base);
}

TEST_F(IntegrationTest, GlobusTransferFailureSurfacesThroughProxy) {
  proc::Process& producer = tb_.world->spawn("producer", tb_.midway_login);
  proc::Process& consumer = tb_.world->spawn("consumer", tb_.theta_login);
  auto transfer = globus::TransferService::start(*tb_.world);
  const fs::path base = fs::temp_directory_path() /
                        ("ps_int_globusfail_" + Uuid::random().str());
  const Uuid ep_midway =
      transfer->register_endpoint(tb_.midway_login, base / "midway");
  const Uuid ep_theta =
      transfer->register_endpoint(tb_.theta_login, base / "theta");
  transfer->set_endpoint_failing(ep_theta, true);

  Bytes wire;
  {
    proc::ProcessScope scope(producer);
    auto store = std::make_shared<core::Store>(
        "globus-fail",
        std::make_shared<connectors::GlobusConnector>(
            std::vector<connectors::GlobusEndpointSpec>{
                {"^midway2", ep_midway}, {"^theta", ep_theta}}));
    core::register_store(store);
    wire = serde::to_bytes(store->proxy(pattern_bytes(1000)));
  }
  {
    proc::ProcessScope scope(consumer);
    auto proxy = serde::from_bytes<core::Proxy<Bytes>>(wire);
    // "A proxy will ... raise an error if there is a Globus transfer
    // failure" (paper section 4.2.1).
    EXPECT_THROW(proxy.resolve(), TransferError);
  }
  fs::remove_all(base);
}

// --------------------------------------------------------- endpoint flows ----

TEST_F(IntegrationTest, ProxyAcrossDoubleNatViaEndpoints) {
  // Producer and consumer both behind NAT (edge sites): data can only flow
  // through hole-punched peer connections brokered by the relay.
  proc::Process& producer = tb_.world->spawn("producer", tb_.edge_devices[0]);
  proc::Process& consumer = tb_.world->spawn("consumer", tb_.edge_devices[1]);
  ASSERT_FALSE(tb_.world->fabric().can_connect_direct(tb_.edge_devices[0],
                                                      tb_.edge_devices[1]));
  relay::RelayServer::start(*tb_.world, tb_.relay_host, "int-relay");
  endpoint::Endpoint::start(*tb_.world, tb_.edge_devices[0], "int-ep-0",
                            "relay://" + tb_.relay_host + "/int-relay");
  endpoint::Endpoint::start(*tb_.world, tb_.edge_devices[1], "int-ep-1",
                            "relay://" + tb_.relay_host + "/int-relay");
  const std::vector<std::string> addresses = {
      endpoint::endpoint_address(tb_.edge_devices[0], "int-ep-0"),
      endpoint::endpoint_address(tb_.edge_devices[1], "int-ep-1")};

  Bytes wire;
  {
    proc::ProcessScope scope(producer);
    auto store = std::make_shared<core::Store>(
        "nat-store",
        std::make_shared<connectors::EndpointConnector>(addresses));
    core::register_store(store);
    wire = serde::to_bytes(store->proxy(pattern_bytes(50'000, 6)));
  }
  {
    proc::ProcessScope scope(consumer);
    auto proxy = serde::from_bytes<core::Proxy<Bytes>>(wire);
    EXPECT_TRUE(check_pattern(*proxy, 6));
  }
}

TEST_F(IntegrationTest, StoppedEndpointFailsResolution) {
  proc::Process& producer = tb_.world->spawn("producer", tb_.theta_login);
  proc::Process& consumer = tb_.world->spawn("consumer", tb_.midway_login);
  relay::RelayServer::start(*tb_.world, tb_.relay_host, "int-relay2");
  auto ep_theta = endpoint::Endpoint::start(
      *tb_.world, tb_.theta_login, "int2-theta",
      "relay://" + tb_.relay_host + "/int-relay2");
  endpoint::Endpoint::start(*tb_.world, tb_.midway_login, "int2-midway",
                            "relay://" + tb_.relay_host + "/int-relay2");
  const std::vector<std::string> addresses = {
      endpoint::endpoint_address(tb_.theta_login, "int2-theta"),
      endpoint::endpoint_address(tb_.midway_login, "int2-midway")};

  Bytes wire;
  {
    proc::ProcessScope scope(producer);
    auto store = std::make_shared<core::Store>(
        "dead-ep-store",
        std::make_shared<connectors::EndpointConnector>(addresses));
    core::register_store(store);
    wire = serde::to_bytes(store->proxy(pattern_bytes(1000)));
  }
  ep_theta->stop();  // the owner goes away
  {
    proc::ProcessScope scope(consumer);
    auto proxy = serde::from_bytes<core::Proxy<Bytes>>(wire);
    EXPECT_THROW(proxy.resolve(), ProtocolError);
  }
}

// ------------------------------------------------------------- faas flows ----

TEST_F(IntegrationTest, ProxyChainThroughTwoTasks) {
  // f() produces x on one machine; g(x) consumes it on another — the
  // paper's introduction scenario: x moves f -> g without the cloud.
  faas::FunctionRegistry::instance().register_function(
      "int-produce", [](BytesView) {
        auto store = core::get_store("chain-store");
        return serde::to_bytes(store->proxy(pattern_bytes(200'000, 7)));
      });
  faas::FunctionRegistry::instance().register_function(
      "int-consume", [](BytesView request) {
        auto proxy = serde::from_bytes<core::Proxy<Bytes>>(request);
        return serde::to_bytes(check_pattern(*proxy, 7));
      });

  proc::Process& client = tb_.world->spawn("client", tb_.midway_login);
  proc::Process& site_a = tb_.world->spawn("site-a", tb_.theta_compute0);
  proc::Process& site_b = tb_.world->spawn("site-b", tb_.theta_compute1);
  auto cloud = faas::CloudService::start(*tb_.world, tb_.cloud);
  faas::ComputeEndpoint ep_a(cloud, site_a);
  faas::ComputeEndpoint ep_b(cloud, site_b);

  kv::KvServer::start(*tb_.world, tb_.theta_login, "chain");
  std::shared_ptr<core::Store> store;
  {
    proc::ProcessScope scope(site_a);
    store = std::make_shared<core::Store>(
        "chain-store", std::make_shared<connectors::RedisConnector>(
                           kv::kv_address(tb_.theta_login, "chain")));
  }
  {
    proc::ProcessScope scope_a(site_a);
    core::register_store(store);
  }

  proc::ProcessScope scope(client);
  faas::Executor exec_a(cloud, ep_a.uuid());
  faas::Executor exec_b(cloud, ep_b.uuid());
  // The proxy produced by f() passes through the client untouched.
  const Bytes proxy_wire = exec_a.submit("int-produce", "").get();
  EXPECT_LT(proxy_wire.size(), 1000u);
  const Bytes verdict = exec_b.submit("int-consume", proxy_wire).get();
  EXPECT_TRUE(serde::from_bytes<bool>(verdict));
  ep_a.stop();
  ep_b.stop();
}

// ------------------------------------------------------------ multi flows ----

TEST_F(IntegrationTest, MultiConnectorRoutesAndResolvesAcrossSites) {
  proc::Process& producer = tb_.world->spawn("producer", tb_.theta_login);
  proc::Process& gpu = tb_.world->spawn("gpu", tb_.remote_gpu);
  kv::KvServer::start(*tb_.world, tb_.theta_login, "int-multi");
  relay::RelayServer::start(*tb_.world, tb_.relay_host, "int-relay3");
  endpoint::Endpoint::start(*tb_.world, tb_.theta_login, "int3-theta",
                            "relay://" + tb_.relay_host + "/int-relay3");
  endpoint::Endpoint::start(*tb_.world, tb_.remote_gpu, "int3-gpu",
                            "relay://" + tb_.relay_host + "/int-relay3");

  Bytes sim_wire, weights_wire;
  {
    proc::ProcessScope scope(producer);
    auto redis = std::make_shared<connectors::RedisConnector>(
        kv::kv_address(tb_.theta_login, "int-multi"));
    auto ep = std::make_shared<connectors::EndpointConnector>(
        std::vector<std::string>{
            endpoint::endpoint_address(tb_.theta_login, "int3-theta"),
            endpoint::endpoint_address(tb_.remote_gpu, "int3-gpu")});
    core::Policy redis_policy;
    redis_policy.tags = {"theta"};
    redis_policy.priority = 1;
    core::Policy ep_policy;
    ep_policy.tags = {"theta", "gpu-lab"};
    auto store = std::make_shared<core::Store>(
        "int-multi-store",
        std::make_shared<core::MultiConnector>(
            std::vector<core::MultiConnector::Entry>{
                {"redis", redis, redis_policy}, {"ep", ep, ep_policy}}));
    core::register_store(store);

    const core::Key sim_key = store->put(pattern_bytes(1000, 8));
    EXPECT_EQ(sim_key.field("multi_connector"), "redis");
    sim_wire = serde::to_bytes(store->proxy_from_key<Bytes>(sim_key));

    core::PutHints hints;
    hints.required_tags = {"gpu-lab"};
    const core::Key weights_key = store->put(pattern_bytes(2000, 9), hints);
    EXPECT_EQ(weights_key.field("multi_connector"), "ep");
    weights_wire = serde::to_bytes(store->proxy_from_key<Bytes>(weights_key));
  }
  {
    proc::ProcessScope scope(gpu);
    // The GPU can resolve the endpoint-routed object across the NAT...
    auto weights = serde::from_bytes<core::Proxy<Bytes>>(weights_wire);
    EXPECT_TRUE(check_pattern(*weights, 9));
  }
}

// ----------------------------------------------------------- store caching ----

TEST_F(IntegrationTest, RepeatedResolvesHitTheStoreCache) {
  // The molecular-design pattern: a static inference dataset proxied each
  // round resolves from the consumer's cache after the first round.
  proc::Process& producer = tb_.world->spawn("producer", tb_.theta_login);
  proc::Process& gpu = tb_.world->spawn("gpu", tb_.remote_gpu);
  relay::RelayServer::start(*tb_.world, tb_.relay_host, "int-relay4");
  endpoint::Endpoint::start(*tb_.world, tb_.theta_login, "int4-theta",
                            "relay://" + tb_.relay_host + "/int-relay4");
  endpoint::Endpoint::start(*tb_.world, tb_.remote_gpu, "int4-gpu",
                            "relay://" + tb_.relay_host + "/int-relay4");
  const std::vector<std::string> addresses = {
      endpoint::endpoint_address(tb_.theta_login, "int4-theta"),
      endpoint::endpoint_address(tb_.remote_gpu, "int4-gpu")};

  Bytes wire;
  {
    proc::ProcessScope scope(producer);
    auto store = std::make_shared<core::Store>(
        "cache-store",
        std::make_shared<connectors::EndpointConnector>(addresses));
    core::register_store(store);
    wire = serde::to_bytes(store->proxy(pattern_bytes(5'000'000, 10)));
  }
  proc::ProcessScope scope(gpu);
  auto first = serde::from_bytes<core::Proxy<Bytes>>(wire);
  sim::VtimeScope cold;
  first.resolve();
  const double cold_time = cold.elapsed();

  auto second = serde::from_bytes<core::Proxy<Bytes>>(wire);
  sim::VtimeScope warm;
  second.resolve();
  // Same key, same process: served from the deserialized-object cache.
  EXPECT_LT(warm.elapsed(), 0.05 * cold_time);
}

}  // namespace
}  // namespace ps
