#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/uuid.hpp"
#include "serde/serde.hpp"

namespace ps::serde {
namespace {

template <typename T>
void expect_round_trip(const T& value) {
  const Bytes encoded = to_bytes(value);
  EXPECT_EQ(from_bytes<T>(encoded), value);
}

TEST(Serde, Scalars) {
  expect_round_trip<std::int8_t>(-5);
  expect_round_trip<std::uint8_t>(200);
  expect_round_trip<std::int32_t>(-123456);
  expect_round_trip<std::uint64_t>(0xdeadbeefcafef00dULL);
  expect_round_trip<float>(3.25f);
  expect_round_trip<double>(-2.5e300);
  expect_round_trip<bool>(true);
  expect_round_trip<bool>(false);
}

enum class Color : std::uint8_t { kRed = 1, kGreen = 2, kBlue = 3 };

TEST(Serde, Enums) { expect_round_trip(Color::kGreen); }

TEST(Serde, Strings) {
  expect_round_trip(std::string{});
  expect_round_trip(std::string("hello"));
  expect_round_trip(pattern_bytes(10000, 3));  // binary-safe
  std::string embedded_null("a\0b", 3);
  expect_round_trip(embedded_null);
}

TEST(Serde, Uuid) {
  expect_round_trip(Uuid::random());
  expect_round_trip(Uuid{});
}

TEST(Serde, Durations) {
  expect_round_trip(std::chrono::milliseconds(1500));
  expect_round_trip(std::chrono::nanoseconds(-42));
}

TEST(Serde, Vectors) {
  expect_round_trip(std::vector<int>{});
  expect_round_trip(std::vector<int>{1, 2, 3});
  expect_round_trip(std::vector<std::string>{"a", "", "ccc"});
  expect_round_trip(std::vector<std::vector<double>>{{1.0}, {}, {2.0, 3.0}});
}

TEST(Serde, ArraysPairsTuples) {
  expect_round_trip(std::array<int, 3>{7, 8, 9});
  expect_round_trip(std::pair<int, std::string>{4, "four"});
  expect_round_trip(std::tuple<int, double, std::string>{1, 2.5, "x"});
  expect_round_trip(std::tuple<>{});
}

TEST(Serde, Maps) {
  expect_round_trip(std::map<std::string, int>{{"a", 1}, {"b", 2}});
  expect_round_trip(std::unordered_map<int, std::string>{{1, "x"}, {2, "y"}});
  expect_round_trip(std::set<int>{3, 1, 2});
}

TEST(Serde, UnorderedMapEncodingIsCanonical) {
  // Maps with the same content must serialize identically regardless of
  // internal bucket order, so content-addressed stores (IPFS) see one CID.
  std::unordered_map<std::string, int> a;
  std::unordered_map<std::string, int> b;
  for (int i = 0; i < 100; ++i) a.emplace("k" + std::to_string(i), i);
  for (int i = 99; i >= 0; --i) b.emplace("k" + std::to_string(i), i);
  EXPECT_EQ(to_bytes(a), to_bytes(b));
}

TEST(Serde, Optional) {
  expect_round_trip(std::optional<int>{});
  expect_round_trip(std::optional<int>{5});
  expect_round_trip(std::optional<std::string>{"text"});
}

TEST(Serde, Variant) {
  using V = std::variant<int, std::string, double>;
  expect_round_trip(V{42});
  expect_round_trip(V{std::string("s")});
  expect_round_trip(V{2.5});
}

TEST(Serde, VariantRejectsBadIndex) {
  using V = std::variant<int, double>;
  Writer w;
  w.write_scalar<std::uint32_t>(9);  // out-of-range alternative
  w.write_scalar<int>(0);
  EXPECT_THROW(from_bytes<V>(w.buffer()), SerializationError);
}

struct Point {
  double x = 0;
  double y = 0;
  auto serde_members() { return std::tie(x, y); }
  auto serde_members() const { return std::tie(x, y); }
  bool operator==(const Point&) const = default;
};

struct Record {
  std::string name;
  std::vector<Point> points;
  std::optional<int> tag;
  auto serde_members() { return std::tie(name, points, tag); }
  auto serde_members() const { return std::tie(name, points, tag); }
  bool operator==(const Record&) const = default;
};

TEST(Serde, AggregateViaSerdeMembers) {
  expect_round_trip(Point{1.5, -2.5});
  expect_round_trip(Record{"r", {{1, 2}, {3, 4}}, 7});
  expect_round_trip(Record{});
}

TEST(Serde, TruncatedBufferThrows) {
  const Bytes encoded = to_bytes(std::string("hello world"));
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_THROW(from_bytes<std::string>(BytesView(encoded).substr(0, cut)),
                 SerializationError)
        << "cut=" << cut;
  }
}

TEST(Serde, TrailingBytesThrow) {
  Bytes encoded = to_bytes(42);
  encoded.push_back('x');
  EXPECT_THROW(from_bytes<int>(encoded), SerializationError);
}

TEST(Serde, HugeLengthPrefixRejected) {
  Writer w;
  w.write_scalar<std::uint64_t>(~0ULL);  // absurd length
  EXPECT_THROW(from_bytes<std::string>(w.buffer()), SerializationError);
}

TEST(Serde, SerializableConcept) {
  static_assert(Serializable<int>);
  static_assert(Serializable<std::string>);
  static_assert(Serializable<std::vector<Point>>);
  static_assert(Serializable<Record>);
  struct NotSerializable {};
  static_assert(!Serializable<NotSerializable>);
}

// Property test: random nested value round trips, for many seeds.
class SerdePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SerdePropertyTest, RandomNestedValueRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  using Inner = std::map<std::string, std::vector<std::optional<std::int64_t>>>;
  Inner value;
  const int keys = static_cast<int>(rng.uniform_int(0, 8));
  for (int k = 0; k < keys; ++k) {
    std::vector<std::optional<std::int64_t>> vec;
    const int items = static_cast<int>(rng.uniform_int(0, 16));
    for (int i = 0; i < items; ++i) {
      if (rng.bernoulli(0.2)) {
        vec.push_back(std::nullopt);
      } else {
        vec.push_back(rng.uniform_int(INT64_MIN / 2, INT64_MAX / 2));
      }
    }
    value.emplace("key-" + std::to_string(rng.next_u64() % 1000),
                  std::move(vec));
  }
  expect_round_trip(value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdePropertyTest, ::testing::Range(0, 25));

// Property test: pattern payloads of many sizes round trip byte-exactly.
class SerdePayloadSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SerdePayloadSizeTest, BinaryPayloadRoundTrips) {
  const Bytes payload = pattern_bytes(GetParam(), GetParam());
  expect_round_trip(payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerdePayloadSizeTest,
                         ::testing::Values(0, 1, 2, 7, 8, 9, 63, 64, 65, 1000,
                                           4096, 65536, 1000000));

// Robustness: random corruption of a valid encoding must either decode to
// some value or throw SerializationError — never crash or hang.
class SerdeCorruptionTest : public ::testing::TestWithParam<int> {};

TEST_P(SerdeCorruptionTest, CorruptedBuffersFailSafely) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  using Payload =
      std::map<std::string, std::vector<std::optional<std::string>>>;
  Payload value;
  for (int k = 0; k < 4; ++k) {
    value.emplace("key" + std::to_string(k),
                  std::vector<std::optional<std::string>>{
                      std::nullopt, std::string("data-") + std::to_string(k)});
  }
  Bytes encoded = to_bytes(value);
  // Apply a handful of random byte flips / truncations.
  const int mutations = 1 + static_cast<int>(rng.uniform_int(0, 4));
  for (int m = 0; m < mutations; ++m) {
    if (encoded.empty()) break;
    if (rng.bernoulli(0.3)) {
      encoded.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(encoded.size()) - 1)));
    } else {
      const auto pos = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(encoded.size()) - 1));
      encoded[pos] = static_cast<char>(rng.uniform_int(0, 255));
    }
  }
  try {
    const Payload decoded = from_bytes<Payload>(encoded);
    (void)decoded;  // decoding to *something* is acceptable
  } catch (const SerializationError&) {
    // rejecting is acceptable
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeCorruptionTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace ps::serde
