// SwarmConnector: multi-source bulk payload resolution over N backends.
//
// The source paper's Fig. 5 lesson is that bulk transfers are bandwidth
// bound — whoever moves bytes better wins at large sizes. SwarmConnector
// layers over N existing connectors (kv-backed stores, endpoints, local
// channels, even Multi stacks) and turns a bulk put into content-addressed
// chunks scattered across the backends with a replicated manifest; get
// fetches the manifest and hands the chunk list to a ChunkScheduler that
// pulls from every replica in parallel, verifies each chunk's SHA-256,
// and routes around corrupt, missing or slow sources (swarm/scheduler.hpp).
// A Proxy<T> over a swarm-backed Store therefore resolves at aggregate
// bandwidth transparently — the proxy, key and deserialization path are
// unchanged.
//
// Payloads under the chunk threshold pass through untouched to a single
// backend chosen by content hash, with the backend recorded in the key
// (the same routing-field trick MultiConnector uses), so a swarm Store is
// usable for small objects without paying manifest overhead.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/async.hpp"
#include "core/connector.hpp"
#include "swarm/manifest.hpp"
#include "swarm/scheduler.hpp"

namespace ps::swarm {

class SwarmConnector : public core::Connector {
 public:
  /// All backends must support addressed writes (put_at) — chunk keys are
  /// content-derived, not backend-minted. Throws ConnectorError on an
  /// empty or duplicate-named backend list.
  explicit SwarmConnector(std::vector<Backend> backends,
                          SwarmOptions options = {});

  std::string type() const override { return "swarm"; }
  core::ConnectorConfig config() const override;
  core::ConnectorTraits traits() const override;

  core::Key put(BytesView data) override;
  std::optional<Bytes> get(const core::Key& key) override;
  bool exists(const core::Key& key) override;
  /// Evicts the manifest everywhere and each chunk from its holders. Note:
  /// chunks are content-addressed and therefore shared between identical
  /// payloads; evicting one payload evicts shared chunks too (a refcounting
  /// chunk store is future work — the trade is documented in DESIGN.md §13).
  void evict(const core::Key& key) override;
  void close() override;

  /// The decoded manifest behind a swarm key (first backend that still has
  /// it), or nullopt. Tools and tests use this to reach into placement.
  std::optional<Manifest> manifest(const core::Key& key) const;

  const std::vector<Backend>& backends() const { return backends_; }
  const SwarmOptions& options() const { return options_; }

 private:
  std::optional<Bytes> manifest_bytes(const core::Key& key) const;
  core::Key put_chunked(BytesView data);
  std::optional<Bytes> get_swarm(const core::Key& key);
  const Backend& backend_for(const core::Key& key) const;

  std::vector<Backend> backends_;
  SwarmOptions options_;
  /// Private pool for chunk waves: the default get_async adapter runs this
  /// connector's get on the *shared* executor, so scheduling waves there
  /// too could deadlock the pool against itself under concurrent resolves.
  std::unique_ptr<core::AsyncExecutor> executor_;
};

}  // namespace ps::swarm
