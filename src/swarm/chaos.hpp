// Fault injection decorator for swarm testing and negative CI gates.
//
// Wraps any Connector and perturbs the read path on demand: added per-call
// latency (a congested or degraded source), corrupted bytes for chosen
// object ids (bit rot / a bad NIC), or dropped objects (a replica that
// lost data). Writes and presence probes pass through untouched — the
// point is to exercise the swarm scheduler's verify/repair/timeout logic,
// whose discovery must keep seeing the replica as "present".
//
// Faults are process-local state: config() forwards the inner connector's
// recipe, so a proxy resolved elsewhere reconstructs the healthy channel.
#pragma once

#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "core/connector.hpp"

namespace ps::swarm {

class FaultInjectedConnector : public core::Connector {
 public:
  explicit FaultInjectedConnector(std::shared_ptr<core::Connector> inner);

  /// Adds `seconds` of virtual latency to every get/get_batch call.
  void set_get_delay(double seconds);
  /// Flips a byte of `object_id`'s value on every read (hash mismatch).
  void corrupt(const std::string& object_id);
  /// Makes `object_id` read as missing.
  void drop(const std::string& object_id);
  void clear_faults();

  std::string type() const override { return inner_->type(); }
  core::ConnectorConfig config() const override { return inner_->config(); }
  core::ConnectorTraits traits() const override { return inner_->traits(); }

  core::Key put(BytesView data) override { return inner_->put(data); }
  core::Key put_hinted(BytesView data,
                       const core::PutHints& hints) override {
    return inner_->put_hinted(data, hints);
  }
  bool put_at(const core::Key& key, BytesView data) override {
    return inner_->put_at(key, data);
  }
  core::Key reserve_key() override { return inner_->reserve_key(); }
  std::vector<core::Key> put_batch(const std::vector<Bytes>& items) override {
    return inner_->put_batch(items);
  }

  std::optional<Bytes> get(const core::Key& key) override;
  std::vector<std::optional<Bytes>> get_batch(
      const std::vector<core::Key>& keys) override;

  bool exists(const core::Key& key) override { return inner_->exists(key); }
  std::vector<bool> exists_batch(
      const std::vector<core::Key>& keys) override {
    return inner_->exists_batch(keys);
  }
  void evict(const core::Key& key) override { inner_->evict(key); }
  void close() override { inner_->close(); }

 private:
  void apply_delay();
  std::optional<Bytes> mutate(const core::Key& key,
                              std::optional<Bytes> value);

  std::shared_ptr<core::Connector> inner_;
  mutable std::mutex mu_;
  double get_delay_s_ = 0.0;
  std::set<std::string> corrupted_;
  std::set<std::string> dropped_;
};

}  // namespace ps::swarm
