#include "swarm/scheduler.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/hash.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "sim/vtime.hpp"

namespace ps::swarm {

namespace {

void count(const std::string& name, std::uint64_t n = 1) {
  if (obs::enabled()) obs::MetricsRegistry::ambient().counter(name).inc(n);
}

void observe(const std::string& name, double seconds) {
  if (obs::enabled()) {
    obs::MetricsRegistry::ambient().histogram(name).observe(seconds);
  }
}

/// Optimistic service-rate prior (1 GB/s) for sources with no measured
/// wave yet. Assignment cost is start + rate * (queued + size); with a
/// zero rate the queue term vanishes and every first-wave chunk would
/// tie-break onto one backend, serializing the very transfer the swarm
/// exists to parallelize. A shared positive prior makes the first wave
/// load-balance; real per-source estimates take over from wave two.
constexpr double kUnknownRatePrior = 1e-9;

}  // namespace

ChunkScheduler::ChunkScheduler(const std::vector<Backend>& backends,
                               const Manifest& manifest,
                               const SwarmOptions& options,
                               core::AsyncExecutor& executor,
                               std::string subject)
    : backends_(backends),
      manifest_(manifest),
      options_(options),
      executor_(executor),
      subject_(std::move(subject)) {
  sources_.resize(backends_.size());
  for (SourceState& source : sources_) {
    source.has.assign(manifest_.chunks.size(), false);
  }
  // Optimistic availability: the manifest's holder map is the truth until a
  // fetch contradicts it (then discover() probes the real replica map).
  for (std::size_t c = 0; c < manifest_.chunks.size(); ++c) {
    for (const std::uint32_t b : manifest_.chunks[c].holders) {
      if (b < sources_.size()) sources_[b].has[c] = true;
    }
  }
  chunks_.resize(manifest_.chunks.size());
}

bool ChunkScheduler::tried(const ChunkState& chunk,
                           std::uint32_t backend) const {
  return std::find(chunk.tried.begin(), chunk.tried.end(), backend) !=
         chunk.tried.end();
}

void ChunkScheduler::discover(double floor_vtime) {
  discovered_ = true;
  struct Probe {
    std::vector<std::size_t> chunk_idx;
    std::vector<core::Key> keys;
    std::vector<bool> present;
    double end_vtime = 0.0;
    bool failed = false;
  };
  std::vector<Probe> probes(backends_.size());
  for (std::size_t c = 0; c < manifest_.chunks.size(); ++c) {
    for (const std::uint32_t b : manifest_.chunks[c].holders) {
      probes[b].chunk_idx.push_back(c);
      probes[b].keys.push_back(chunk_key(manifest_.chunks[c].hash));
    }
  }
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    if (probes[b].keys.empty() || !sources_[b].alive) continue;
    {
      std::lock_guard lock(mu_);
      ++pending_;
    }
    executor_.submit([this, b, floor_vtime, &probes] {
      Probe& probe = probes[b];
      {
        // A probe exists because an anomaly triggered it; it cannot start
        // before that anomaly was known.
        sim::vmerge(floor_vtime);
        obs::SpanScope span("swarm.discover", subject_, "swarm-repair");
        try {
          probe.present = backends_[b].connector->exists_batch(probe.keys);
        } catch (...) {
          probe.failed = true;
        }
        probe.end_vtime = sim::vnow();
      }
      std::lock_guard lock(mu_);
      --pending_;
      done_cv_.notify_all();
    });
  }
  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  // Discovery advances each source's pipeline frontier (its connection was
  // busy answering the probe) but never the caller's clock directly — the
  // resolve completes on accepted data, not on control traffic.
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    const Probe& probe = probes[b];
    if (probe.keys.empty() || !sources_[b].alive) continue;
    if (probe.failed) {
      sources_[b].alive = false;
      count("swarm.source.errors");
      continue;
    }
    for (std::size_t i = 0; i < probe.chunk_idx.size(); ++i) {
      sources_[b].has[probe.chunk_idx[i]] = probe.present[i];
      if (!probe.present[i]) count("swarm.replicas.absent");
    }
    sources_[b].frontier_vtime =
        std::max(sources_[b].frontier_vtime, probe.end_vtime);
  }
}

std::vector<std::vector<std::size_t>> ChunkScheduler::assign(
    std::vector<std::size_t>& remaining) {
  std::vector<std::vector<std::size_t>> assignment(backends_.size());
  std::vector<std::uint64_t> load(backends_.size(), 0);
  std::vector<std::size_t> deferred;
  for (const std::size_t c : remaining) {
    const ChunkRef& ref = manifest_.chunks[c];
    int best = -1;
    bool best_slow = true;
    double best_finish = std::numeric_limits<double>::infinity();
    for (const std::uint32_t b : ref.holders) {
      const SourceState& src = sources_[b];
      if (!src.alive || !src.has[c] || tried(chunks_[c], b)) continue;
      if (assignment[b].size() >= options_.pipeline_depth) continue;
      // Prefer any non-slow holder over a slow one (a slow source is used
      // only as the replica of last resort); among peers pick the least
      // projected finish, ties to the lower backend index.
      const double start =
          std::max(src.frontier_vtime, chunks_[c].floor_vtime);
      const double rate =
          src.est_s_per_byte > 0.0 ? src.est_s_per_byte : kUnknownRatePrior;
      const double finish =
          start + rate * static_cast<double>(load[b] + ref.size);
      const bool better =
          best == -1 || (best_slow && !src.slow) ||
          (best_slow == src.slow &&
           (finish < best_finish ||
            (finish == best_finish && static_cast<int>(b) < best)));
      if (better) {
        best = static_cast<int>(b);
        best_slow = src.slow;
        best_finish = finish;
      }
    }
    if (best >= 0) {
      assignment[static_cast<std::size_t>(best)].push_back(c);
      load[static_cast<std::size_t>(best)] += ref.size;
      continue;
    }
    // No slot this wave: either every viable replica is at pipeline
    // capacity (retry next wave) or none is left at all (unrecoverable).
    bool capacity_limited = false;
    for (const std::uint32_t b : ref.holders) {
      const SourceState& src = sources_[b];
      if (src.alive && src.has[c] && !tried(chunks_[c], b)) {
        capacity_limited = true;
        break;
      }
    }
    if (capacity_limited) {
      deferred.push_back(c);
    } else {
      unrecoverable_ = true;
      count("swarm.chunks.unrecoverable");
    }
  }
  remaining = std::move(deferred);
  return assignment;
}

void ChunkScheduler::run_wave(
    const std::vector<std::vector<std::size_t>>& assignment, Bytes& buffer,
    std::vector<std::size_t>& repairs) {
  std::vector<WaveSlot> slots(backends_.size());
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    if (assignment[b].empty()) continue;
    WaveSlot& slot = slots[b];
    slot.chunks = assignment[b];
    bool repair_job = false;
    double floor = sources_[b].frontier_vtime;
    for (const std::size_t c : slot.chunks) {
      slot.bytes += manifest_.chunks[c].size;
      floor = std::max(floor, chunks_[c].floor_vtime);
      repair_job = repair_job || !chunks_[c].tried.empty();
    }
    {
      std::lock_guard lock(mu_);
      ++pending_;
    }
    executor_.submit([this, b, floor, repair_job, &slots, &buffer] {
      WaveSlot& slot = slots[b];
      {
        // A wave continues the backend's pipeline: it cannot start before
        // the previous wave's response drained, nor before the re-request
        // decision (floor) that triggered it.
        sim::vmerge(floor);
        slot.issue_vtime = sim::vnow();
        obs::SpanScope span(repair_job ? "swarm.repair.fetch" : "swarm.fetch",
                            subject_,
                            repair_job ? "swarm-repair" : "swarm-fetch");
        std::vector<core::Key> keys;
        keys.reserve(slot.chunks.size());
        for (const std::size_t c : slot.chunks) {
          keys.push_back(chunk_key(manifest_.chunks[c].hash));
        }
        std::vector<std::optional<Bytes>> values;
        try {
          // Completion-driven fetch: kv backends issue the batch onto their
          // pipelined channel and the wave merges that request's own
          // completion vtime (get() == wait + copy). Connectors without a
          // native override fall back to the executor adapter — either way
          // the wave's clock lands on the batch's wire completion.
          values = backends_[b].connector->get_batch_async(keys).get();
        } catch (...) {
          slot.failed = true;
        }
        slot.status.assign(slot.chunks.size(), ChunkStatus::kMissing);
        if (!slot.failed) {
          for (std::size_t i = 0; i < slot.chunks.size(); ++i) {
            const ChunkRef& ref = manifest_.chunks[slot.chunks[i]];
            if (!values[i].has_value()) continue;
            // Verification is real compute on the resolve path.
            if (options_.hash_Bps > 0) {
              sim::vadvance(static_cast<double>(values[i]->size()) /
                            options_.hash_Bps);
            }
            if (values[i]->size() != ref.size ||
                Sha256::hex_digest(*values[i]) != ref.hash) {
              slot.status[i] = ChunkStatus::kCorrupt;
              continue;
            }
            slot.status[i] = ChunkStatus::kOk;
            // Disjoint manifest offsets: concurrent completions reassemble
            // into the shared buffer without locking.
            std::memcpy(buffer.data() + ref.offset, values[i]->data(),
                        ref.size);
          }
        }
        slot.end_vtime = sim::vnow();
      }
      std::lock_guard lock(mu_);
      --pending_;
      done_cv_.notify_all();
    });
  }
  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  // Deadline reference: the best per-byte rate any backend demonstrated in
  // this wave. With fewer than two healthy participants there is nothing to
  // compare against (and nowhere to route around to), so no timeouts.
  double ref_per_byte = std::numeric_limits<double>::infinity();
  std::size_t active = 0;
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    const WaveSlot& slot = slots[b];
    if (slot.chunks.empty() || slot.failed) continue;
    ++active;
    if (slot.bytes > 0) {
      ref_per_byte =
          std::min(ref_per_byte, (slot.end_vtime - slot.issue_vtime) /
                                     static_cast<double>(slot.bytes));
    }
  }

  // Post-mortem in fixed backend order: acceptance, repair and timeout
  // decisions are a pure function of virtual times, so the outcome is
  // deterministic however the wall-clock scheduling interleaved.
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    WaveSlot& slot = slots[b];
    if (slot.chunks.empty()) continue;
    SourceState& src = sources_[b];
    count("swarm.chunks.fetched", slot.chunks.size());

    if (slot.failed) {
      src.alive = false;
      count("swarm.source.errors");
      for (const std::size_t c : slot.chunks) {
        ChunkState& chunk = chunks_[c];
        chunk.tried.push_back(static_cast<std::uint32_t>(b));
        chunk.floor_vtime = std::max(chunk.floor_vtime, slot.end_vtime);
        repairs.push_back(c);
        count("swarm.repairs");
      }
      continue;
    }

    const double duration = slot.end_vtime - slot.issue_vtime;
    const double per_byte =
        slot.bytes > 0 ? duration / static_cast<double>(slot.bytes) : 0.0;
    const double deadline =
        options_.slow_factor *
        std::max(ref_per_byte * static_cast<double>(slot.bytes),
                 options_.min_timeout_s);
    // A source already flagged slow only gets chunks as the replica of last
    // resort; re-flagging it would strand them, so accept what it sent.
    const bool timed_out = !src.slow && active >= 2 && duration > deadline;
    const double give_up = slot.issue_vtime + deadline;
    if (timed_out) {
      src.slow = true;
      count("swarm.source.timeouts");
      count("swarm.source." + backends_[b].name + ".timeouts");
    }
    src.frontier_vtime = std::max(src.frontier_vtime, slot.end_vtime);
    if (!timed_out && !src.slow && slot.bytes > 0) {
      src.est_s_per_byte = src.est_s_per_byte == 0.0
                               ? per_byte
                               : 0.5 * src.est_s_per_byte + 0.5 * per_byte;
    }

    for (std::size_t i = 0; i < slot.chunks.size(); ++i) {
      const std::size_t c = slot.chunks[i];
      const ChunkRef& ref = manifest_.chunks[c];
      ChunkState& chunk = chunks_[c];
      chunk.tried.push_back(static_cast<std::uint32_t>(b));
      bool has_alternative = false;
      for (const std::uint32_t h : ref.holders) {
        if (h == b) continue;
        if (sources_[h].alive && sources_[h].has[c] && !tried(chunk, h)) {
          has_alternative = true;
          break;
        }
      }
      if (timed_out && has_alternative) {
        // Route around the slow source: discard even a verified chunk —
        // the client stopped waiting at the deadline, and accepting it
        // would merge the straggler's vtime into the resolve after all.
        chunk.floor_vtime = std::max(chunk.floor_vtime, give_up);
        repairs.push_back(c);
        count("swarm.repairs");
        continue;
      }
      switch (slot.status[i]) {
        case ChunkStatus::kOk:
          chunk.done = true;
          max_accept_vtime_ = std::max(max_accept_vtime_, slot.end_vtime);
          count("swarm.chunks.verified");
          if (timed_out) count("swarm.chunks.accepted_late");
          count("swarm.source." + backends_[b].name + ".chunks");
          count("swarm.source." + backends_[b].name + ".bytes", ref.size);
          observe("swarm.chunk.vtime",
                  per_byte * static_cast<double>(ref.size));
          break;
        case ChunkStatus::kCorrupt:
        case ChunkStatus::kMissing: {
          count(slot.status[i] == ChunkStatus::kCorrupt
                    ? "swarm.chunks.corrupt"
                    : "swarm.chunks.missing");
          if (has_alternative) {
            // The failure was discovered when the response drained.
            chunk.floor_vtime = std::max(chunk.floor_vtime, slot.end_vtime);
            repairs.push_back(c);
            count("swarm.repairs");
          } else {
            unrecoverable_ = true;
            count("swarm.chunks.unrecoverable");
          }
          break;
        }
      }
    }
  }
}

std::optional<Bytes> ChunkScheduler::run() {
  Bytes buffer(manifest_.total_size, '\0');
  std::vector<std::size_t> remaining;
  remaining.reserve(manifest_.chunks.size());
  for (std::size_t c = 0; c < manifest_.chunks.size(); ++c) {
    remaining.push_back(c);
  }
  while (!remaining.empty() && !unrecoverable_) {
    const std::vector<std::vector<std::size_t>> assignment = assign(remaining);
    bool any = false;
    for (const auto& list : assignment) any = any || !list.empty();
    if (!any) break;  // assign() marked the stragglers unrecoverable
    std::vector<std::size_t> repairs;
    run_wave(assignment, buffer, repairs);
    if (!repairs.empty() && !discovered_) {
      // First anomaly: replace the optimistic holder map with probed truth
      // before deciding where the re-requests go. The probes cannot start
      // before the earliest moment any of this wave's anomalies was known.
      double floor = chunks_[repairs.front()].floor_vtime;
      for (const std::size_t c : repairs) {
        floor = std::min(floor, chunks_[c].floor_vtime);
      }
      discover(floor);
    }
    remaining.insert(remaining.end(), repairs.begin(), repairs.end());
    std::sort(remaining.begin(), remaining.end());
  }
  if (unrecoverable_) return std::nullopt;
  // The payload is whole only once its slowest accepted chunk landed.
  sim::vmerge(max_accept_vtime_);
  return buffer;
}

}  // namespace ps::swarm
