#include "swarm/swarm.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <mutex>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/hex.hpp"
#include "common/uuid.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "serde/serde.hpp"
#include "sim/vtime.hpp"

namespace ps::swarm {

namespace {

std::string fmt_param(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void count(const std::string& name, std::uint64_t n = 1) {
  if (obs::enabled()) obs::MetricsRegistry::ambient().counter(name).inc(n);
}

}  // namespace

SwarmConnector::SwarmConnector(std::vector<Backend> backends,
                               SwarmOptions options)
    : backends_(std::move(backends)), options_(options) {
  if (backends_.empty()) {
    throw ConnectorError("swarm: no backends configured");
  }
  for (const Backend& backend : backends_) {
    if (!backend.connector) {
      throw ConnectorError("swarm: null connector for '" + backend.name +
                           "'");
    }
    const auto count_name = std::count_if(
        backends_.begin(), backends_.end(),
        [&](const Backend& b) { return b.name == backend.name; });
    if (count_name != 1) {
      throw ConnectorError("swarm: duplicate backend name '" + backend.name +
                           "'");
    }
  }
  if (options_.chunk_size == 0) {
    throw ConnectorError("swarm: chunk_size must be positive");
  }
  options_.replication = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(options_.replication,
                                 static_cast<std::uint32_t>(
                                     backends_.size())));
  options_.pipeline_depth = std::max<std::uint32_t>(1, options_.pipeline_depth);
  executor_ = std::make_unique<core::AsyncExecutor>(core::AsyncExecutor::Options{
      .workers = std::max<std::size_t>(1, options_.fetch_workers),
      .max_queue = 1024});
}

core::ConnectorConfig SwarmConnector::config() const {
  core::ConnectorConfig cfg{.type = "swarm", .params = {}};
  cfg.params["count"] = std::to_string(backends_.size());
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    const std::string idx = std::to_string(i);
    cfg.params["name_" + idx] = backends_[i].name;
    cfg.params["connector_" + idx] =
        to_hex(serde::to_bytes(backends_[i].connector->config()));
  }
  cfg.params["chunk_size"] = std::to_string(options_.chunk_size);
  cfg.params["chunk_threshold"] = std::to_string(options_.chunk_threshold);
  cfg.params["replication"] = std::to_string(options_.replication);
  cfg.params["pipeline_depth"] = std::to_string(options_.pipeline_depth);
  cfg.params["slow_factor"] = fmt_param(options_.slow_factor);
  cfg.params["min_timeout_s"] = fmt_param(options_.min_timeout_s);
  cfg.params["hash_Bps"] = fmt_param(options_.hash_Bps);
  cfg.params["fetch_workers"] = std::to_string(options_.fetch_workers);
  return cfg;
}

core::ConnectorTraits SwarmConnector::traits() const {
  core::ConnectorTraits t{.storage = "mixed",
                          .intra_site = false,
                          .inter_site = false,
                          .persistent = true};
  for (const Backend& backend : backends_) {
    const core::ConnectorTraits child = backend.connector->traits();
    t.intra_site = t.intra_site || child.intra_site;
    t.inter_site = t.inter_site || child.inter_site;
    t.persistent = t.persistent && child.persistent;
  }
  return t;
}

const Backend& SwarmConnector::backend_for(const core::Key& key) const {
  const std::string& name = key.field(kBackendField);
  for (const Backend& backend : backends_) {
    if (backend.name == name) return backend;
  }
  throw ConnectorError("swarm: key routed to unknown backend '" + name + "'");
}

core::Key SwarmConnector::put(BytesView data) {
  if (data.size() >= options_.chunk_threshold && backends_.size() > 0) {
    return put_chunked(data);
  }
  // Small object: pass through to one backend picked by content hash
  // (deterministic, directory-free), route gets back via the key.
  const std::size_t b = fnv1a64(data) % backends_.size();
  core::Key key = backends_[b].connector->put(data);
  key.meta[kBackendField] = backends_[b].name;
  return key;
}

core::Key SwarmConnector::put_chunked(BytesView data) {
  obs::SpanScope span("swarm.put", "", "swarm-fetch");
  const Manifest manifest = build_manifest(
      data, options_.chunk_size,
      static_cast<std::uint32_t>(backends_.size()), options_.replication,
      options_.hash_Bps);
  const Bytes manifest_bytes = serde::to_bytes(manifest);
  const core::Key manifest_key{
      .object_id = kManifestPrefix + Uuid::random().str(), .meta = {}};

  // Chunk lists per backend, from the manifest's placement.
  std::vector<std::vector<std::size_t>> placed(backends_.size());
  for (std::size_t c = 0; c < manifest.chunks.size(); ++c) {
    for (const std::uint32_t b : manifest.chunks[c].holders) {
      placed[b].push_back(c);
    }
  }

  // One placement job per backend: its chunk replicas plus a manifest
  // copy, written with addressed puts so every holder shares the
  // content-derived chunk keys. Futures are waited (merging completion
  // vtimes): a put is durable only once every replica landed.
  std::vector<core::Future<bool>> jobs;
  jobs.reserve(backends_.size());
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    jobs.push_back(executor_->run<bool>([this, b, data, &placed, &manifest,
                                         &manifest_bytes, &manifest_key] {
      for (const std::size_t c : placed[b]) {
        const ChunkRef& ref = manifest.chunks[c];
        if (!backends_[b].connector->put_at(
                chunk_key(ref.hash), data.substr(ref.offset, ref.size))) {
          return false;
        }
      }
      return backends_[b].connector->put_at(manifest_key, manifest_bytes);
    }));
  }
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    if (!jobs[b].wait()) {
      throw ConnectorError("swarm: backend '" + backends_[b].name +
                           "' does not support addressed writes (put_at)");
    }
  }

  count("swarm.put.bytes", data.size());
  count("swarm.put.chunks", manifest.chunks.size());
  core::Key key = manifest_key;
  key.meta[kManifestField] = "1";
  return key;
}

std::optional<Bytes> SwarmConnector::manifest_bytes(
    const core::Key& key) const {
  const core::Key bare{.object_id = key.object_id, .meta = {}};
  // The manifest is replicated to every backend precisely so no single
  // replica gates the resolve: race all backends in vtime-parallel and
  // merge only the earliest successful completion into the caller's clock —
  // a slow or dead replica's manifest copy is simply outrun. (A sequential
  // probe here would hand a degraded backend the whole resolve's latency
  // before chunk scheduling could route around it.) The waiter joins on a
  // latch, not Future::wait, so losers' vtimes are never merged.
  struct Probe {
    double end_vtime = 0.0;
    std::optional<Bytes> value;
  };
  std::vector<Probe> probes(backends_.size());
  std::mutex mu;
  std::condition_variable done;
  std::size_t pending = backends_.size();
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    executor_->submit([this, b, &bare, &probes, &mu, &done, &pending] {
      try {
        probes[b].value = backends_[b].connector->get(bare);
      } catch (const Error&) {
        // Unreachable backend: another replica serves the manifest.
      }
      probes[b].end_vtime = sim::vnow();
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) done.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    done.wait(lock, [&] { return pending == 0; });
  }
  std::size_t winner = backends_.size();
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    if (!probes[b].value) continue;
    if (winner == backends_.size() ||
        probes[b].end_vtime < probes[winner].end_vtime) {
      winner = b;
    }
  }
  if (winner == backends_.size()) {
    // Absent everywhere: knowing that costs waiting for every response.
    double worst = 0.0;
    for (const Probe& probe : probes) worst = std::max(worst, probe.end_vtime);
    sim::vmerge(worst);
    return std::nullopt;
  }
  sim::vmerge(probes[winner].end_vtime);
  return probes[winner].value;
}

std::optional<Manifest> SwarmConnector::manifest(const core::Key& key) const {
  const std::optional<Bytes> raw = manifest_bytes(key);
  if (!raw) return std::nullopt;
  return serde::from_bytes<Manifest>(*raw);
}

std::optional<Bytes> SwarmConnector::get_swarm(const core::Key& key) {
  obs::SpanScope span("swarm.get", key.object_id);
  sim::VtimeScope elapsed;
  const std::optional<Bytes> raw = manifest_bytes(key);
  if (!raw) return std::nullopt;
  const Manifest decoded = serde::from_bytes<Manifest>(*raw);
  ChunkScheduler scheduler(backends_, decoded, options_, *executor_,
                           key.object_id);
  std::optional<Bytes> payload = scheduler.run();
  if (payload) {
    count("swarm.get.bytes", payload->size());
    if (obs::enabled()) {
      obs::MetricsRegistry::ambient()
          .histogram("swarm.get.vtime")
          .observe(elapsed.elapsed());
    }
  }
  return payload;
}

std::optional<Bytes> SwarmConnector::get(const core::Key& key) {
  if (key.meta.contains(kManifestField)) return get_swarm(key);
  if (key.meta.contains(kBackendField)) {
    return backend_for(key).connector->get(key);
  }
  // Foreign key (no swarm routing metadata): try every backend.
  for (const Backend& backend : backends_) {
    std::optional<Bytes> value = backend.connector->get(key);
    if (value) return value;
  }
  return std::nullopt;
}

bool SwarmConnector::exists(const core::Key& key) {
  if (key.meta.contains(kManifestField)) {
    const core::Key bare{.object_id = key.object_id, .meta = {}};
    for (const Backend& backend : backends_) {
      try {
        if (backend.connector->exists(bare)) return true;
      } catch (const Error&) {
      }
    }
    return false;
  }
  if (key.meta.contains(kBackendField)) {
    return backend_for(key).connector->exists(key);
  }
  for (const Backend& backend : backends_) {
    if (backend.connector->exists(key)) return true;
  }
  return false;
}

void SwarmConnector::evict(const core::Key& key) {
  if (key.meta.contains(kManifestField)) {
    const std::optional<Manifest> decoded_opt = manifest(key);
    const core::Key bare{.object_id = key.object_id, .meta = {}};
    if (decoded_opt) {
      // Manifest cleanup: group every chunk replica by holding backend and
      // issue one pipelined evict_batch per backend instead of one round
      // trip per (chunk, holder).
      const Manifest& decoded = *decoded_opt;
      std::vector<std::vector<core::Key>> per_backend(backends_.size());
      for (const ChunkRef& ref : decoded.chunks) {
        for (const std::uint32_t b : ref.holders) {
          per_backend[b].push_back(chunk_key(ref.hash));
        }
      }
      for (std::size_t b = 0; b < per_backend.size(); ++b) {
        if (per_backend[b].empty()) continue;
        backends_[b].connector->evict_batch(per_backend[b]);
      }
    }
    for (const Backend& backend : backends_) backend.connector->evict(bare);
    return;
  }
  if (key.meta.contains(kBackendField)) {
    backend_for(key).connector->evict(key);
    return;
  }
  for (const Backend& backend : backends_) backend.connector->evict(key);
}

void SwarmConnector::close() {
  for (const Backend& backend : backends_) backend.connector->close();
}

namespace {

std::shared_ptr<core::Connector> reconstruct_swarm(
    const core::ConnectorConfig& cfg) {
  const std::size_t count = std::stoul(cfg.param("count"));
  std::vector<Backend> backends;
  backends.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string idx = std::to_string(i);
    auto child_cfg = serde::from_bytes<core::ConnectorConfig>(
        from_hex(cfg.param("connector_" + idx)));
    backends.push_back(Backend{
        cfg.param("name_" + idx),
        core::ConnectorRegistry::instance().reconstruct(child_cfg)});
  }
  SwarmOptions options;
  options.chunk_size = std::stoull(cfg.param("chunk_size"));
  options.chunk_threshold = std::stoull(cfg.param("chunk_threshold"));
  options.replication =
      static_cast<std::uint32_t>(std::stoul(cfg.param("replication")));
  options.pipeline_depth =
      static_cast<std::uint32_t>(std::stoul(cfg.param("pipeline_depth")));
  options.slow_factor = std::stod(cfg.param("slow_factor"));
  options.min_timeout_s = std::stod(cfg.param("min_timeout_s"));
  options.hash_Bps = std::stod(cfg.param("hash_Bps"));
  options.fetch_workers = std::stoul(cfg.param("fetch_workers"));
  return std::make_shared<SwarmConnector>(std::move(backends), options);
}

const core::ConnectorRegistration kRegisterSwarm("swarm", &reconstruct_swarm);

}  // namespace

}  // namespace ps::swarm
