// The swarm chunk scheduler: multi-source fetch with verify and repair.
//
// Given a Manifest and N backends, the scheduler resolves every chunk in
// waves. Each wave assigns up to pipeline_depth chunks per backend (greedy
// least-projected-finish over the observed per-byte service estimates) and
// issues one pipelined get_batch per backend as a job on the connector's
// private AsyncExecutor — the per-backend transfers overlap in virtual
// time exactly like independent actors. The first wave trusts the
// manifest's holder map outright (optimistic: on WAN-like fabrics a
// blocking pre-flight presence probe costs a full round trip on the
// critical path); exists_batch discovery runs only after the first
// anomaly, to ground re-request decisions in the true replica map. Every
// fetched chunk is re-hashed before acceptance; a wave's post-mortem walks
// backends in fixed index order (determinism under virtual time) and:
//
//   * accepts verified chunks, advancing the backend's pipeline frontier;
//   * re-requests a corrupt or missing chunk from another untried replica;
//   * declares a backend slow when its wave ran past slow_factor x the best
//     per-byte rate observed in the same wave, DISCARDS its chunks without
//     merging its completion vtime (the whole point: the client stopped
//     waiting at the deadline, so the slow source must not drag the clock),
//     and re-requests them elsewhere — unless a chunk has no other live
//     replica, in which case the late arrival is accepted and counted.
//
// A chunk whose every replica has been tried and failed makes the payload
// unrecoverable (run() returns nullopt). Completed chunks are memcpy'd
// into one preallocated reassembly buffer at their manifest offsets —
// concurrent completions write disjoint ranges (the tier-2 TSan test races
// this on purpose).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "core/async.hpp"
#include "core/connector.hpp"
#include "swarm/manifest.hpp"

namespace ps::swarm {

/// One replica source under the swarm: a stable name (used in keys, metrics
/// and psctl tables) plus the connector that reaches it.
struct Backend {
  std::string name;
  std::shared_ptr<core::Connector> connector;
};

struct SwarmOptions {
  /// Chunk payload size; the last chunk of an object may be shorter.
  std::uint64_t chunk_size = 4ull << 20;
  /// Payloads at or above this size are chunked; smaller ones pass through
  /// to a single backend untouched.
  std::uint64_t chunk_threshold = 8ull << 20;
  /// Replicas per chunk (clamped to the backend count).
  std::uint32_t replication = 2;
  /// Chunks fetched per backend per wave (one pipelined get_batch each).
  std::uint32_t pipeline_depth = 4;
  /// A backend is slow when its wave exceeds slow_factor x the deadline
  /// reference (best per-byte rate seen in the same wave x its bytes).
  double slow_factor = 4.0;
  /// Deadline floor, so tiny waves don't flag jitter as slowness.
  double min_timeout_s = 2e-3;
  /// Modeled SHA-256 throughput used to charge verification (and manifest
  /// construction) virtual time.
  double hash_Bps = 4e9;
  /// Worker threads on the connector's private executor.
  std::size_t fetch_workers = 4;
};

class ChunkScheduler {
 public:
  ChunkScheduler(const std::vector<Backend>& backends, const Manifest& manifest,
                 const SwarmOptions& options, core::AsyncExecutor& executor,
                 std::string subject);

  /// Fetches, verifies, repairs and reassembles every chunk. Returns the
  /// payload bytes, or nullopt when some chunk has no live intact replica.
  /// Merges the slowest *accepted* completion into the caller's clock.
  std::optional<Bytes> run();

 private:
  /// Per-chunk fetch outcome inside one wave job.
  enum class ChunkStatus { kOk, kMissing, kCorrupt };

  /// What one per-backend wave job reports back to the scheduler.
  struct WaveSlot {
    std::vector<std::size_t> chunks;  // assigned chunk indices
    std::uint64_t bytes = 0;
    double issue_vtime = 0.0;  // job start after frontier/floor merge
    double end_vtime = 0.0;    // job's vnow after fetch + verification
    std::vector<ChunkStatus> status;
    bool failed = false;  // the backend threw; treat as all-missing + dead
  };

  struct SourceState {
    double frontier_vtime = 0.0;   // pipeline frontier: last wave's end
    double est_s_per_byte = 0.0;   // EWMA of observed service rate
    bool alive = true;             // false after a thrown backend op
    bool slow = false;             // excluded from assignment once flagged
    /// Per-chunk availability: the manifest's holder map until discovery
    /// replaces it with probed truth (holders optimistically start true).
    std::vector<bool> has;
  };

  struct ChunkState {
    bool done = false;
    double floor_vtime = 0.0;      // earliest vtime a re-request may start
    std::vector<std::uint32_t> tried;
  };

  /// Probes every backend for its placed chunks (one pipelined
  /// exists_batch per backend, in parallel) and replaces the optimistic
  /// SourceState::has with probed truth. Runs at most once per resolve,
  /// triggered by the first repair; `floor_vtime` is the earliest vtime the
  /// triggering anomaly was known, so probes cannot start before it.
  void discover(double floor_vtime);

  /// Greedy assignment of `remaining` chunks onto non-slow live holders for
  /// one wave. Returns per-backend chunk lists; chunks that fit no backend
  /// this wave stay in `remaining`. Throws nothing; a chunk with no viable
  /// holder at all sets unrecoverable_.
  std::vector<std::vector<std::size_t>> assign(
      std::vector<std::size_t>& remaining);

  /// Issues one pipelined get_batch per assigned backend (each job spans
  /// "swarm.fetch", or "swarm.repair.fetch" when it carries a re-request),
  /// joins them, and runs the deterministic post-mortem. Chunks to
  /// re-request are appended to `repairs`.
  void run_wave(const std::vector<std::vector<std::size_t>>& assignment,
                Bytes& buffer, std::vector<std::size_t>& repairs);

  bool tried(const ChunkState& chunk, std::uint32_t backend) const;

  const std::vector<Backend>& backends_;
  const Manifest& manifest_;
  const SwarmOptions& options_;
  core::AsyncExecutor& executor_;
  std::string subject_;

  std::vector<SourceState> sources_;
  std::vector<ChunkState> chunks_;
  double max_accept_vtime_ = 0.0;
  bool unrecoverable_ = false;
  bool discovered_ = false;

  // Wave join latch (the scheduler never Future::wait()s a wave job — that
  // would merge a discarded slow backend's vtime into the caller's clock).
  std::mutex mu_;
  std::condition_variable done_cv_;
  std::size_t pending_ = 0;
};

}  // namespace ps::swarm
