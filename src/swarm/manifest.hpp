// Swarm manifests: the content-addressed inventory of one chunked payload.
//
// A bulk put splits the payload into fixed-size chunks, names each chunk by
// the SHA-256 of its bytes, and records the chunk list — hash, size, byte
// offset, and which backends hold a replica — in a Manifest. The manifest
// itself is small (a few hundred bytes per GB of payload), so it is
// replicated to every backend; chunks are scattered by rendezvous placement
// on the chunk hash, which is deterministic, balanced in expectation, and
// free of any placement directory. Content addressing buys verification
// (every fetched chunk is re-hashed before acceptance) and deduplication
// (identical chunks share one key) at once.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/bytes.hpp"
#include "core/key.hpp"
#include "serde/serde.hpp"

namespace ps::swarm {

/// Key-space prefixes. Chunk ids embed the content hash; manifest ids are
/// random UUIDs (two puts of the same payload share chunks, not manifests).
inline constexpr const char* kManifestPrefix = "ps.swarm.manifest/";
inline constexpr const char* kChunkPrefix = "ps.swarm.chunk/";

/// Key meta fields stamped by SwarmConnector: kManifestField marks a key
/// whose object is a serialized Manifest (the swarm resolve path);
/// kBackendField routes a small pass-through object back to the backend
/// that stored it (mirrors MultiConnector's child routing field).
inline constexpr const char* kManifestField = "swarm";
inline constexpr const char* kBackendField = "swarm_backend";

/// One chunk of a chunked payload.
struct ChunkRef {
  std::string hash;           // lowercase sha256 hex of the chunk bytes
  std::uint64_t size = 0;     // bytes in this chunk (last may be short)
  std::uint64_t offset = 0;   // byte offset in the reassembled payload
  /// Backend indices (into the connector's backend list) holding a replica.
  std::vector<std::uint32_t> holders;

  bool operator==(const ChunkRef&) const = default;

  auto serde_members() { return std::tie(hash, size, offset, holders); }
  auto serde_members() const { return std::tie(hash, size, offset, holders); }
};

struct Manifest {
  std::uint64_t total_size = 0;
  std::uint64_t chunk_size = 0;
  std::vector<ChunkRef> chunks;

  bool operator==(const Manifest&) const = default;

  auto serde_members() { return std::tie(total_size, chunk_size, chunks); }
  auto serde_members() const {
    return std::tie(total_size, chunk_size, chunks);
  }
};

/// The content-addressed key a chunk is stored under on every holder.
core::Key chunk_key(const std::string& hash);

/// Splits `data` into `chunk_size` pieces, hashes each (charging the caller
/// `size / hash_Bps` virtual seconds per chunk — hashing is real compute on
/// the critical path), and assigns `replication` distinct holders per chunk
/// by rendezvous on the chunk hash across `backend_count` backends.
Manifest build_manifest(BytesView data, std::uint64_t chunk_size,
                        std::uint32_t backend_count, std::uint32_t replication,
                        double hash_Bps);

}  // namespace ps::swarm
