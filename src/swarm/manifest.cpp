#include "swarm/manifest.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "sim/vtime.hpp"

namespace ps::swarm {

core::Key chunk_key(const std::string& hash) {
  return core::Key{.object_id = kChunkPrefix + hash, .meta = {}};
}

Manifest build_manifest(BytesView data, std::uint64_t chunk_size,
                        std::uint32_t backend_count, std::uint32_t replication,
                        double hash_Bps) {
  if (chunk_size == 0) throw Error("swarm: chunk_size must be positive");
  if (backend_count == 0) throw Error("swarm: no backends to place onto");
  replication = std::min(replication, backend_count);
  replication = std::max<std::uint32_t>(replication, 1);

  Manifest manifest;
  manifest.total_size = data.size();
  manifest.chunk_size = chunk_size;
  manifest.chunks.reserve((data.size() + chunk_size - 1) / chunk_size);
  for (std::uint64_t offset = 0; offset < data.size(); offset += chunk_size) {
    const std::uint64_t size = std::min<std::uint64_t>(
        chunk_size, data.size() - offset);
    const BytesView piece = data.substr(offset, size);
    if (hash_Bps > 0) {
      sim::vadvance(static_cast<double>(size) / hash_Bps);
    }
    ChunkRef chunk{.hash = Sha256::hex_digest(piece),
                   .size = size,
                   .offset = offset,
                   .holders = {}};
    // Rendezvous placement: consecutive backends starting at a hash-derived
    // index. Deterministic per chunk, balanced across the key space.
    const std::uint64_t base = fnv1a64(chunk.hash);
    chunk.holders.reserve(replication);
    for (std::uint32_t r = 0; r < replication; ++r) {
      chunk.holders.push_back(
          static_cast<std::uint32_t>((base + r) % backend_count));
    }
    manifest.chunks.push_back(std::move(chunk));
  }
  return manifest;
}

}  // namespace ps::swarm
