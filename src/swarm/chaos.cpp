#include "swarm/chaos.hpp"

#include "sim/vtime.hpp"

namespace ps::swarm {

FaultInjectedConnector::FaultInjectedConnector(
    std::shared_ptr<core::Connector> inner)
    : inner_(std::move(inner)) {}

void FaultInjectedConnector::set_get_delay(double seconds) {
  std::lock_guard lock(mu_);
  get_delay_s_ = seconds;
}

void FaultInjectedConnector::corrupt(const std::string& object_id) {
  std::lock_guard lock(mu_);
  corrupted_.insert(object_id);
}

void FaultInjectedConnector::drop(const std::string& object_id) {
  std::lock_guard lock(mu_);
  dropped_.insert(object_id);
}

void FaultInjectedConnector::clear_faults() {
  std::lock_guard lock(mu_);
  get_delay_s_ = 0.0;
  corrupted_.clear();
  dropped_.clear();
}

void FaultInjectedConnector::apply_delay() {
  double delay = 0.0;
  {
    std::lock_guard lock(mu_);
    delay = get_delay_s_;
  }
  if (delay > 0.0) sim::vadvance(delay);
}

std::optional<Bytes> FaultInjectedConnector::mutate(
    const core::Key& key, std::optional<Bytes> value) {
  std::lock_guard lock(mu_);
  if (dropped_.contains(key.object_id)) return std::nullopt;
  if (value && corrupted_.contains(key.object_id)) {
    if (value->empty()) {
      value->push_back('\1');
    } else {
      (*value)[0] = static_cast<char>((*value)[0] ^ 0x01);
    }
  }
  return value;
}

std::optional<Bytes> FaultInjectedConnector::get(const core::Key& key) {
  apply_delay();
  return mutate(key, inner_->get(key));
}

std::vector<std::optional<Bytes>> FaultInjectedConnector::get_batch(
    const std::vector<core::Key>& keys) {
  // One injected delay per call: the model is a degraded link, and a batch
  // is one pipelined round trip on it.
  apply_delay();
  std::vector<std::optional<Bytes>> values = inner_->get_batch(keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    values[i] = mutate(keys[i], std::move(values[i]));
  }
  return values;
}

}  // namespace ps::swarm
