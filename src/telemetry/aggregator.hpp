// Federation aggregator: the scraping side of the telemetry plane.
//
// A TelemetryAggregator dials N per-site TelemetryAgents over the rpc
// fabric (so scrapes cost virtual time like any other cross-site call),
// collects one obs::SiteSnapshot per site, and keeps one
// obs::TelemetryWindows ring per site fed with the cumulative snapshots —
// the state behind `psctl top` (per-site trailing rates/percentiles) and
// SloRegistry::evaluate_burn (fast/slow burn-rate windows).
//
// Snapshots are cached by site: latest() and the federated exports read the
// most recent scrape of every site even if a given round only reached some
// of them.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace ps::telemetry {

class TelemetryAggregator {
 public:
  /// Ring capacity per site (windows retained for trailing-window math).
  explicit TelemetryAggregator(std::size_t window_capacity = 64);

  /// Registers an agent endpoint to scrape (rpc address from
  /// TelemetryAgent::address()).
  void add_agent(const std::string& address);
  std::size_t agents() const { return addresses_.size(); }

  /// Scrapes every registered agent once, updating the per-site cache and
  /// feeding each site's window ring. Returns the snapshots gathered this
  /// round, keyed by site. Scrapes charge the calling process's virtual
  /// time (they ride the same rpc fabric as the workload).
  std::map<std::string, obs::SiteSnapshot> scrape_all();

  /// Feeds one snapshot obtained out-of-band (in-process agent, KV pull,
  /// tests) into the cache and the site's window ring.
  void ingest(const obs::SiteSnapshot& snapshot);

  /// Latest snapshot per site (cumulative).
  const std::map<std::string, obs::SiteSnapshot>& latest() const {
    return latest_;
  }

  /// Latest cumulative registry per site — the shape the federated
  /// exporters (obs::federated_metrics_json / federated_prometheus_text)
  /// consume.
  std::map<std::string, obs::RegistrySnapshot> registries_by_site() const;

  /// Cross-site merge of the latest snapshots (counters sum, histograms
  /// merge, gauges per their GaugeAgg hint).
  obs::RegistrySnapshot aggregate() const;

  /// Per-site window ring; nullptr until that site has been scraped.
  const obs::TelemetryWindows* windows(const std::string& site) const;
  std::vector<std::string> sites() const;

 private:
  std::size_t window_capacity_;
  std::vector<std::string> addresses_;
  std::map<std::string, obs::SiteSnapshot> latest_;
  std::map<std::string, std::unique_ptr<obs::TelemetryWindows>> windows_;
};

}  // namespace ps::telemetry
