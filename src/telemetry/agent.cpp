#include "telemetry/agent.hpp"

#include <utility>
#include <vector>

#include "kv/client.hpp"
#include "net/fabric.hpp"
#include "serde/serde.hpp"
#include "sim/vtime.hpp"

namespace ps::telemetry {

std::string telemetry_kv_key(const std::string& site) {
  return "ps.telemetry/" + site;
}

TelemetryAgent::TelemetryAgent(proc::World& world, std::string host,
                               std::string site)
    : world_(&world), host_(std::move(host)), site_(std::move(site)) {}

std::shared_ptr<TelemetryAgent> TelemetryAgent::start(
    proc::World& world, const std::string& host,
    rpc::TransportProfile transport) {
  const std::string site = world.fabric().host(host).site;
  auto agent = std::shared_ptr<TelemetryAgent>(
      new TelemetryAgent(world, host, site));
  agent->server_ = rpc::RpcServer::start(world, host, "telemetry", transport);
  agent->address_ = rpc::rpc_address(transport.name, host, "telemetry");
  // The service directory keeps the RpcServer (and its handlers) alive past
  // the agent — capture weakly so a late scrape of a dead agent returns an
  // empty payload instead of dangling.
  agent->server_->register_handler(
      kScrapeOp, [weak = std::weak_ptr<TelemetryAgent>(agent)](BytesView) {
        auto self = weak.lock();
        if (!self) return Bytes{};
        return serde::to_bytes(self->snapshot());
      });
  return agent;
}

obs::SiteSnapshot TelemetryAgent::snapshot() const {
  obs::SiteSnapshot snap;
  snap.site = site_;
  snap.host = host_;
  const double now = sim::vnow();
  std::vector<obs::RegistrySnapshot> registries;
  for (proc::Process* process : world_->processes()) {
    std::string site;
    try {
      site = world_->fabric().host(process->host()).site;
    } catch (...) {
      continue;
    }
    if (site != site_) continue;
    obs::MetricsRegistry* metrics = process->try_metrics();
    if (metrics == nullptr) continue;  // never recorded anything
    registries.push_back(metrics->take_snapshot(now));
    ++snap.processes;
  }
  snap.registry = obs::merge_registry_snapshots(registries);
  snap.registry.vtime_s = now;  // stamp even when the site is idle
  return snap;
}

void TelemetryAgent::push_to(kv::KvClient& client) const {
  const Bytes payload = serde::to_bytes(snapshot());
  client.set(telemetry_kv_key(site_), payload);
}

}  // namespace ps::telemetry
