// Per-site telemetry agent: the scraped side of the federation plane.
//
// One TelemetryAgent runs per simulated site. It binds an RpcServer on a
// host of that site and serves the "telemetry.scrape" op: on each request
// it walks the world's processes, keeps those pinned to hosts of its own
// site, merges their per-process MetricsRegistry snapshots (counters sum,
// histograms merge, gauges per their GaugeAgg hint), and returns one
// serialized obs::SiteSnapshot. The agent is stateless between scrapes —
// snapshots are cumulative, and windowing belongs to the consumer
// (obs::TelemetryWindows), exactly like a Prometheus exporter.
//
// Agents can also *push*: push_to() writes the same SiteSnapshot under
// "ps.telemetry/<site>" through a KV client, so a fleet without an
// aggregator in the loop still leaves its latest per-site state readable.
#pragma once

#include <memory>
#include <string>

#include "obs/telemetry.hpp"
#include "proc/world.hpp"
#include "rpc/rpc.hpp"
#include "rpc/transport.hpp"

namespace ps::kv {
class KvClient;
}  // namespace ps::kv

namespace ps::telemetry {

/// The rpc op agents serve and aggregators call.
inline constexpr const char* kScrapeOp = "telemetry.scrape";

/// KV key prefix for pushed snapshots ("ps.telemetry/<site>").
std::string telemetry_kv_key(const std::string& site);

class TelemetryAgent {
 public:
  /// Starts an agent for the site that `host` belongs to, bound at
  /// rpc://<transport>/<host>/telemetry.
  static std::shared_ptr<TelemetryAgent> start(
      proc::World& world, const std::string& host,
      rpc::TransportProfile transport = rpc::margo_transport());

  const std::string& site() const { return site_; }
  const std::string& host() const { return host_; }
  /// The rpc address aggregators dial.
  const std::string& address() const { return address_; }

  /// Builds the site snapshot directly (no wire) — the scrape handler's
  /// body, also used by in-process consumers and tests. Merges the
  /// per-process registries of every process of this site; processes that
  /// never created one contribute nothing. Stamped with sim::vnow().
  obs::SiteSnapshot snapshot() const;

  /// Serializes snapshot() under telemetry_kv_key(site()) via `client`.
  void push_to(kv::KvClient& client) const;

 private:
  TelemetryAgent(proc::World& world, std::string host, std::string site);

  proc::World* world_;
  std::string host_;
  std::string site_;
  std::string address_;
  std::shared_ptr<rpc::RpcServer> server_;
};

}  // namespace ps::telemetry
