#include "telemetry/aggregator.hpp"

#include "rpc/rpc.hpp"
#include "serde/serde.hpp"
#include "telemetry/agent.hpp"

namespace ps::telemetry {

TelemetryAggregator::TelemetryAggregator(std::size_t window_capacity)
    : window_capacity_(window_capacity) {}

void TelemetryAggregator::add_agent(const std::string& address) {
  for (const std::string& existing : addresses_) {
    if (existing == address) return;
  }
  addresses_.push_back(address);
}

std::map<std::string, obs::SiteSnapshot> TelemetryAggregator::scrape_all() {
  std::map<std::string, obs::SiteSnapshot> round;
  for (const std::string& address : addresses_) {
    rpc::RpcClient client(address);
    const Bytes payload = client.call(kScrapeOp, BytesView{});
    if (payload.empty()) continue;  // agent gone
    obs::SiteSnapshot snap = serde::from_bytes<obs::SiteSnapshot>(payload);
    round[snap.site] = snap;
    ingest(snap);
  }
  return round;
}

void TelemetryAggregator::ingest(const obs::SiteSnapshot& snapshot) {
  latest_[snapshot.site] = snapshot;
  auto& ring = windows_[snapshot.site];
  if (!ring) ring = std::make_unique<obs::TelemetryWindows>(window_capacity_);
  ring->feed(snapshot.registry);
}

std::map<std::string, obs::RegistrySnapshot>
TelemetryAggregator::registries_by_site() const {
  std::map<std::string, obs::RegistrySnapshot> out;
  for (const auto& [site, snap] : latest_) out[site] = snap.registry;
  return out;
}

obs::RegistrySnapshot TelemetryAggregator::aggregate() const {
  std::vector<obs::RegistrySnapshot> all;
  all.reserve(latest_.size());
  for (const auto& [site, snap] : latest_) all.push_back(snap.registry);
  return obs::merge_registry_snapshots(all);
}

const obs::TelemetryWindows* TelemetryAggregator::windows(
    const std::string& site) const {
  const auto it = windows_.find(site);
  return it == windows_.end() ? nullptr : it->second.get();
}

std::vector<std::string> TelemetryAggregator::sites() const {
  std::vector<std::string> out;
  out.reserve(latest_.size());
  for (const auto& [site, snap] : latest_) out.push_back(site);
  return out;
}

}  // namespace ps::telemetry
