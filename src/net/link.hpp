// Link performance profiles.
//
// Each link in the federated fabric carries a latency / bandwidth /
// congestion-control profile. Congestion control matters to the paper:
// Section 5.3.2 attributes the PS-endpoint bandwidth gap to computing
// centers throttling UDP and to aiortc's congestion control being slower
// than BBR — we model both effects so Figure 9's shape reproduces.
#pragma once

#include <cstddef>
#include <string>

namespace ps::net {

/// Congestion / transport behaviour of a link.
enum class Congestion {
  kLan,           // full bandwidth immediately (HPC interconnect)
  kRdma,          // near-zero per-message cost, full bandwidth
  kTcpWan,        // TCP with slow-start ramp over the WAN
  kBbrWan,        // BBR-like: faster ramp, higher sustained utilization
  kUdpThrottled,  // UDP throttled by site policy (the aiortc 80 Mbps case)
};

std::string to_string(Congestion c);

struct LinkProfile {
  /// One-way propagation + protocol latency per message (seconds).
  double latency_s = 0.0;
  /// Peak sustainable bandwidth (bytes/second).
  double bandwidth_Bps = 1e9;
  /// Fixed software overhead per message (seconds).
  double per_msg_overhead_s = 0.0;
  Congestion congestion = Congestion::kLan;
  /// Initial congestion window for ramping protocols (bytes). The classic
  /// slow-start model: the window doubles each RTT from this value until
  /// it covers the bandwidth-delay product. Ignored for kLan / kRdma.
  double init_window_bytes = 14.6e3;  // 10 MSS
  /// Multiplier on the slow-start RTT count: <1 for fast-ramping BBR-like
  /// stacks, >1 for slow congestion control (the aiortc case).
  double ramp_rtt_factor = 1.0;
  /// Hard throughput cap applied after congestion effects (bytes/second);
  /// 0 disables. Models site UDP policers.
  double throttle_Bps = 0.0;

  /// Effective achieved bandwidth for a transfer of `bytes`
  /// (bytes / payload time, excluding fixed per-message costs).
  double effective_bandwidth(std::size_t bytes) const;

  /// One-way time to move `bytes` across this link as a single message:
  /// fixed overhead + propagation + slow-start ramp RTTs + payload time at
  /// the (possibly throttled) link bandwidth.
  double transfer_time(std::size_t bytes) const;
};

/// Convenience profile constructors used by the testbed descriptions.
LinkProfile loopback_profile();
LinkProfile hpc_interconnect(double latency_s, double bandwidth_Bps);
LinkProfile rdma_fabric(double latency_s, double bandwidth_Bps);
LinkProfile wan_tcp(double latency_s, double bandwidth_Bps,
                    double ramp_rtt_factor = 1.0);
LinkProfile wan_bbr(double latency_s, double bandwidth_Bps,
                    double ramp_rtt_factor = 0.4);
LinkProfile wan_udp_throttled(double latency_s, double bandwidth_Bps,
                              double throttle_Bps);

}  // namespace ps::net
