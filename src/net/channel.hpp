// Completion-driven wire channel with per-request pipelining.
//
// A PipelinedChannel models one connection between a client actor and a
// server: a request lane, the server's service, and a response lane. Each
// lane is a frontier (the virtual time at which the lane is next free), so N
// outstanding requests overlap — the ladder costs ~max-of-pipeline, not
// sum-of-round-trips. This is the wire model behind RpcClient::call_async
// and the KvClient async ops: the caller's clock never advances at issue,
// and each request's completion virtual time is computed inline and stamped
// into its Future individually.
//
// One transact() == one request/response exchange:
//
//   send_start  = max(issue, request-lane frontier)
//   arrival     = send_start + request_cost          (request fully received)
//   served      = serve(arrival).first               (server FIFO completion)
//   completion  = max(served, response-lane frontier) + response_cost
//
// The whole exchange happens under one channel mutex, so concurrent
// submitters see FIFO lane order and strictly increasing completion times.
// Handlers run inside transact(); a handler must never re-enter the channel
// it is being served on (client->server->same-client recursion would
// self-deadlock).
//
// Channels are scoped per (actor thread, process, peer) — see
// ChannelRegistry. The simulator gives every thread its own virtual clock,
// and two unsynchronized actors must not couple through a shared frontier
// (an actor in the virtual past would queue behind requests its peer issued
// from the future — cross-site contention is already modeled by the
// server's sim::Resource). Two consequences keep every pre-pipelining
// baseline bit-exact:
//
//   * A sequential caller (issue >= previous completion) collapses both
//     maxes: the exchange degenerates to exactly the synchronous round
//     trip of the pre-pipelining wire, bit for bit.
//   * A caller whose clock moved backward (a bench rep isolated by
//     sim::VtimeGuard, an executor worker reseeded for a new job) starts a
//     new virtual era: the channel resets to idle, because everything
//     previously issued on it has already completed in real time. The
//     outcome of a transact therefore never depends on which pool thread
//     ran the previous job.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <map>
#include <utility>

namespace ps::net {

/// Per-request wire timings produced by PipelinedChannel::transact.
struct WireSample {
  double issue = 0.0;       ///< caller's virtual time at issue
  double send_start = 0.0;  ///< request lane acquired
  double arrival = 0.0;     ///< request fully received by the server
  double served = 0.0;      ///< server service (FIFO queue) completion
  double completion = 0.0;  ///< response fully received by the caller
  std::size_t depth = 0;    ///< in-flight requests on the channel, incl. this
};

class PipelinedChannel {
 public:
  /// Runs the server side of one exchange: given the request's arrival time,
  /// returns {service completion time, response transfer cost}.
  using Serve = std::function<std::pair<double, double>(double arrival)>;

  /// One request/response exchange. `issue` is the caller's virtual time,
  /// `request_cost` the request transfer time on this channel's link.
  /// Serializes against concurrent exchanges on the same channel; records
  /// the in-flight depth into the `rpc.inflight` / `rpc.pipeline.depth`
  /// metric family on the ambient registry.
  WireSample transact(double issue, double request_cost, const Serve& serve);

  /// Completion time of the most recent exchange (0 before any).
  double last_completion() const;

  /// Total exchanges carried by this channel.
  std::uint64_t requests() const;

 private:
  mutable std::mutex mu_;
  double last_issue_ = 0.0;     // era detection: clock regression resets
  double req_frontier_ = 0.0;   // request lane next free
  double resp_frontier_ = 0.0;  // response lane next free
  double last_completion_ = 0.0;
  std::uint64_t requests_ = 0;
  // Completion vtimes of requests still in flight relative to the latest
  // issue; pruned at issue time (entries <= issue have completed).
  std::deque<double> inflight_;
};

/// Unique, never-reused id for the calling thread (the simulator's actor).
/// Thread ids recycle; these do not, so channel state can never leak from a
/// dead actor to a new one that happens to reuse its thread.
std::uint64_t current_actor();

/// One channel per (actor, peer) for a single process. Stored
/// process-locally (proc::Process::local<ChannelRegistry>()) and keyed by
/// the calling actor, so unsynchronized virtual clocks never couple through
/// a shared frontier. The registry holds a strong reference to the peer so
/// a recycled allocation can never alias two peers onto one channel.
class ChannelRegistry {
 public:
  /// The calling actor's channel to `peer`, created on first use.
  PipelinedChannel& channel_for(const std::shared_ptr<void>& peer);

 private:
  struct Entry {
    std::shared_ptr<void> peer;  // pins the address
    std::unique_ptr<PipelinedChannel> channel;
  };
  std::mutex mu_;
  std::map<std::pair<std::uint64_t, const void*>, Entry> entries_;
};

}  // namespace ps::net
