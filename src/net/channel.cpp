#include "net/channel.hpp"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hpp"

namespace ps::net {

WireSample PipelinedChannel::transact(double issue, double request_cost,
                                      const Serve& serve) {
  std::lock_guard lock(mu_);

  if (issue < last_issue_) {
    // The actor's clock moved backward — a new virtual era (VtimeGuard rep
    // isolation, a pool worker reseeded for a new job). Everything issued
    // before has completed in real time; the channel is idle.
    req_frontier_ = 0.0;
    resp_frontier_ = 0.0;
    inflight_.clear();
  }
  last_issue_ = issue;

  // Anything that completed at or before this issue is no longer in flight.
  while (!inflight_.empty() && inflight_.front() <= issue) {
    inflight_.pop_front();
  }

  WireSample sample;
  sample.issue = issue;
  sample.send_start = std::max(issue, req_frontier_);
  sample.arrival = sample.send_start + request_cost;
  req_frontier_ = sample.arrival;

  const auto [served, response_cost] = serve(sample.arrival);
  sample.served = served;
  sample.completion = std::max(served, resp_frontier_) + response_cost;
  resp_frontier_ = sample.completion;

  inflight_.push_back(sample.completion);
  sample.depth = inflight_.size();
  last_completion_ = sample.completion;
  ++requests_;

  obs::MetricsRegistry& reg = obs::MetricsRegistry::ambient();
  reg.gauge("rpc.inflight", obs::GaugeAgg::kMax)
      .set(static_cast<double>(sample.depth));
  reg.histogram("rpc.pipeline.depth")
      .observe(static_cast<double>(sample.depth));
  reg.counter("rpc.requests").inc();
  return sample;
}

double PipelinedChannel::last_completion() const {
  std::lock_guard lock(mu_);
  return last_completion_;
}

std::uint64_t PipelinedChannel::requests() const {
  std::lock_guard lock(mu_);
  return requests_;
}

std::uint64_t current_actor() {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

PipelinedChannel& ChannelRegistry::channel_for(
    const std::shared_ptr<void>& peer) {
  std::lock_guard lock(mu_);
  Entry& entry = entries_[{current_actor(), peer.get()}];
  if (!entry.channel) {
    entry.peer = peer;
    entry.channel = std::make_unique<PipelinedChannel>();
  }
  return *entry.channel;
}

}  // namespace ps::net
