#include "net/link.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ps::net {

std::string to_string(Congestion c) {
  switch (c) {
    case Congestion::kLan:
      return "lan";
    case Congestion::kRdma:
      return "rdma";
    case Congestion::kTcpWan:
      return "tcp-wan";
    case Congestion::kBbrWan:
      return "bbr-wan";
    case Congestion::kUdpThrottled:
      return "udp-throttled";
  }
  return "?";
}

namespace {

/// Extra round trips a ramping protocol spends opening its window before
/// the flow runs at line rate: the window doubles from init_window each
/// RTT until it covers min(transfer size, bandwidth-delay product).
double ramp_rtts(const LinkProfile& p, double bytes, double bw) {
  switch (p.congestion) {
    case Congestion::kLan:
    case Congestion::kRdma:
      return 0.0;
    case Congestion::kTcpWan:
    case Congestion::kBbrWan:
    case Congestion::kUdpThrottled:
      break;
  }
  const double bdp = std::max(p.init_window_bytes, bw * p.latency_s);
  const double target = std::min(bytes, bdp);
  const double doublings =
      std::log2(1.0 + target / std::max(p.init_window_bytes, 1.0));
  return doublings * p.ramp_rtt_factor;
}

}  // namespace

double LinkProfile::transfer_time(std::size_t bytes) const {
  double bw = std::max(bandwidth_Bps, 1.0);
  if (throttle_Bps > 0.0) bw = std::min(bw, throttle_Bps);
  return per_msg_overhead_s + latency_s +
         latency_s * ramp_rtts(*this, static_cast<double>(bytes), bw) +
         static_cast<double>(bytes) / bw;
}

double LinkProfile::effective_bandwidth(std::size_t bytes) const {
  if (bytes == 0) return std::max(bandwidth_Bps, 1.0);
  double bw = std::max(bandwidth_Bps, 1.0);
  if (throttle_Bps > 0.0) bw = std::min(bw, throttle_Bps);
  const double payload_time =
      latency_s * ramp_rtts(*this, static_cast<double>(bytes), bw) +
      static_cast<double>(bytes) / bw;
  return static_cast<double>(bytes) / std::max(payload_time, 1e-12);
}

LinkProfile loopback_profile() {
  return LinkProfile{.latency_s = 2e-6,
                     .bandwidth_Bps = 20e9,
                     .per_msg_overhead_s = 1e-6,
                     .congestion = Congestion::kLan};
}

LinkProfile hpc_interconnect(double latency_s, double bandwidth_Bps) {
  return LinkProfile{.latency_s = latency_s,
                     .bandwidth_Bps = bandwidth_Bps,
                     .per_msg_overhead_s = 5e-6,
                     .congestion = Congestion::kLan};
}

LinkProfile rdma_fabric(double latency_s, double bandwidth_Bps) {
  return LinkProfile{.latency_s = latency_s,
                     .bandwidth_Bps = bandwidth_Bps,
                     .per_msg_overhead_s = 1e-6,
                     .congestion = Congestion::kRdma};
}

LinkProfile wan_tcp(double latency_s, double bandwidth_Bps,
                    double ramp_rtt_factor) {
  return LinkProfile{.latency_s = latency_s,
                     .bandwidth_Bps = bandwidth_Bps,
                     .per_msg_overhead_s = 100e-6,
                     .congestion = Congestion::kTcpWan,
                     .ramp_rtt_factor = ramp_rtt_factor};
}

LinkProfile wan_bbr(double latency_s, double bandwidth_Bps,
                    double ramp_rtt_factor) {
  return LinkProfile{.latency_s = latency_s,
                     .bandwidth_Bps = bandwidth_Bps,
                     .per_msg_overhead_s = 100e-6,
                     .congestion = Congestion::kBbrWan,
                     .ramp_rtt_factor = ramp_rtt_factor};
}

LinkProfile wan_udp_throttled(double latency_s, double bandwidth_Bps,
                              double throttle_Bps) {
  if (throttle_Bps <= 0.0) {
    throw std::invalid_argument("wan_udp_throttled: throttle must be > 0");
  }
  return LinkProfile{.latency_s = latency_s,
                     .bandwidth_Bps = bandwidth_Bps,
                     .per_msg_overhead_s = 200e-6,
                     .congestion = Congestion::kUdpThrottled,
                     // aiortc's congestion control ramps slower than BBR.
                     .ramp_rtt_factor = 2.0,
                     .throttle_Bps = throttle_Bps};
}

}  // namespace ps::net
