// Federated network fabric.
//
// Models the multi-site testbed of the paper: sites (Theta, Polaris,
// Midway2, Frontera, ...), hosts within sites (login nodes, compute nodes,
// edge devices), intra-site interconnects, inter-site WAN links, and NAT
// placement. Substrates query the fabric for the virtual-time cost of moving
// bytes between hosts and for reachability (whether a direct connection is
// possible or a relay/hole-punch is required).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "net/link.hpp"
#include "sim/clock.hpp"

namespace ps::net {

struct Site {
  std::string name;
  /// Sites behind NAT cannot accept unsolicited inbound connections
  /// (Section 2: "NAT and firewalls often prohibit outside access").
  bool behind_nat = false;
  /// Intra-site interconnect between hosts of this site.
  LinkProfile interconnect;
};

struct Host {
  std::string name;
  std::string site;
  /// Shared/parallel file system characteristics (FileConnector costs).
  double disk_write_Bps = 1e9;
  double disk_read_Bps = 2e9;
  double file_latency_s = 1e-3;  // metadata / open() cost per file op
  /// In-memory copy bandwidth (serialization, local staging).
  double mem_Bps = 8e9;
};

/// One hop of a resolved route.
struct Hop {
  std::string from;
  std::string to;
  LinkProfile profile;
};

struct Route {
  std::vector<Hop> hops;
  /// True when the two ends sit behind distinct NATs, so a direct
  /// connection requires relay-assisted hole punching.
  bool requires_nat_traversal = false;

  /// Total one-way time for `bytes` over the whole route (store-and-forward
  /// per hop, which upper-bounds cut-through and matches mediated channels).
  double transfer_time(std::size_t bytes) const;

  /// Propagation-only round-trip latency of the route (no payload).
  double rtt() const;
};

class Fabric {
 public:
  Fabric();

  // -- topology construction ------------------------------------------------

  Site& add_site(std::string name, LinkProfile interconnect,
                 bool behind_nat = false);
  Host& add_host(std::string name, const std::string& site);
  Host& add_host(std::string name, const std::string& site, Host traits);

  /// Declares a bidirectional WAN link between two sites.
  void connect_sites(const std::string& a, const std::string& b,
                     LinkProfile profile);

  // -- queries ---------------------------------------------------------------

  const Site& site(const std::string& name) const;
  const Host& host(const std::string& name) const;
  bool has_host(const std::string& name) const;
  std::vector<std::string> hosts_in_site(const std::string& site) const;

  /// Resolves the route between two hosts: loopback, intra-site,
  /// inter-site WAN, or — when no direct link exists — a two-hop transit
  /// route through a common neighbor site (lowest-latency transit wins).
  /// Throws ConnectorError when no route exists at all.
  Route route(const std::string& from, const std::string& to) const;

  /// One-way virtual-time cost of moving `bytes` from host to host.
  double transfer_time(const std::string& from, const std::string& to,
                       std::size_t bytes) const;

  /// True when `from` can open a connection directly to `to` (i.e. `to`'s
  /// site is not behind a NAT, or both are in the same site).
  bool can_connect_direct(const std::string& from,
                          const std::string& to) const;

  /// Disk write/read virtual-time costs on a host's file system.
  double disk_write_time(const std::string& host, std::size_t bytes) const;
  double disk_read_time(const std::string& host, std::size_t bytes) const;
  /// In-memory copy cost (serialization staging) on a host.
  double mem_copy_time(const std::string& host, std::size_t bytes) const;

  sim::VirtualClock& clock() { return *clock_; }
  const sim::VirtualClock& clock() const { return *clock_; }

 private:
  const LinkProfile& wan_link(const std::string& site_a,
                              const std::string& site_b) const;

  std::map<std::string, Site> sites_;
  std::map<std::string, Host> hosts_;
  std::map<std::pair<std::string, std::string>, LinkProfile> wan_links_;
  LinkProfile loopback_;
  std::unique_ptr<sim::VirtualClock> clock_;
};

/// SSH tunnel cost wrapper (the Figure 9 baseline): traffic to a remote
/// Redis through a manually created tunnel. Adds per-message encryption
/// overhead and a TCP WAN profile on the tunneled hop.
struct SshTunnel {
  /// Extra fixed cost per message for ssh framing + encryption.
  double per_msg_overhead_s = 300e-6;

  /// One-way cost of sending `bytes` from `from` to `to` through the tunnel.
  double transfer_time(const Fabric& fabric, const std::string& from,
                       const std::string& to, std::size_t bytes) const;
};

}  // namespace ps::net
