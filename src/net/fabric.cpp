#include "net/fabric.hpp"

#include <algorithm>

namespace ps::net {

double Route::transfer_time(std::size_t bytes) const {
  double total = 0.0;
  for (const Hop& hop : hops) total += hop.profile.transfer_time(bytes);
  return total;
}

double Route::rtt() const {
  double one_way = 0.0;
  for (const Hop& hop : hops) {
    one_way += hop.profile.latency_s + hop.profile.per_msg_overhead_s;
  }
  return 2.0 * one_way;
}

Fabric::Fabric()
    : loopback_(loopback_profile()),
      clock_(std::make_unique<sim::VirtualClock>()) {}

Site& Fabric::add_site(std::string name, LinkProfile interconnect,
                       bool behind_nat) {
  auto [it, inserted] = sites_.emplace(
      name, Site{.name = name, .behind_nat = behind_nat,
                 .interconnect = interconnect});
  if (!inserted) throw ConnectorError("Fabric: duplicate site " + name);
  return it->second;
}

Host& Fabric::add_host(std::string name, const std::string& site) {
  return add_host(std::move(name), site, Host{});
}

Host& Fabric::add_host(std::string name, const std::string& site,
                       Host traits) {
  if (!sites_.contains(site)) {
    throw ConnectorError("Fabric: unknown site " + site);
  }
  traits.name = name;
  traits.site = site;
  auto [it, inserted] = hosts_.emplace(name, std::move(traits));
  if (!inserted) throw ConnectorError("Fabric: duplicate host " + name);
  return it->second;
}

void Fabric::connect_sites(const std::string& a, const std::string& b,
                           LinkProfile profile) {
  if (!sites_.contains(a) || !sites_.contains(b)) {
    throw ConnectorError("Fabric: connect_sites with unknown site");
  }
  wan_links_[{std::min(a, b), std::max(a, b)}] = profile;
}

const Site& Fabric::site(const std::string& name) const {
  const auto it = sites_.find(name);
  if (it == sites_.end()) throw ConnectorError("Fabric: unknown site " + name);
  return it->second;
}

const Host& Fabric::host(const std::string& name) const {
  const auto it = hosts_.find(name);
  if (it == hosts_.end()) throw ConnectorError("Fabric: unknown host " + name);
  return it->second;
}

bool Fabric::has_host(const std::string& name) const {
  return hosts_.contains(name);
}

std::vector<std::string> Fabric::hosts_in_site(const std::string& site) const {
  std::vector<std::string> out;
  for (const auto& [name, h] : hosts_) {
    if (h.site == site) out.push_back(name);
  }
  return out;
}

const LinkProfile& Fabric::wan_link(const std::string& site_a,
                                    const std::string& site_b) const {
  const auto it =
      wan_links_.find({std::min(site_a, site_b), std::max(site_a, site_b)});
  if (it == wan_links_.end()) {
    throw ConnectorError("Fabric: no WAN link between " + site_a + " and " +
                         site_b);
  }
  return it->second;
}

Route Fabric::route(const std::string& from, const std::string& to) const {
  const Host& src = host(from);
  const Host& dst = host(to);
  Route r;
  if (from == to) {
    r.hops.push_back(Hop{from, to, loopback_});
    return r;
  }
  if (src.site == dst.site) {
    r.hops.push_back(Hop{from, to, site(src.site).interconnect});
    return r;
  }
  r.requires_nat_traversal =
      site(src.site).behind_nat && site(dst.site).behind_nat;

  const auto direct =
      wan_links_.find({std::min(src.site, dst.site),
                       std::max(src.site, dst.site)});
  if (direct != wan_links_.end()) {
    r.hops.push_back(Hop{from, to, direct->second});
    return r;
  }

  // No direct link: transit through the common neighbor with the lowest
  // combined latency (packets ride the provider backbone via that site).
  const auto leg = [&](const std::string& a,
                       const std::string& b) -> const LinkProfile* {
    const auto it = wan_links_.find({std::min(a, b), std::max(a, b)});
    return it == wan_links_.end() ? nullptr : &it->second;
  };
  const std::string* best_site = nullptr;
  double best_latency = 0.0;
  const LinkProfile* best_first = nullptr;
  const LinkProfile* best_second = nullptr;
  for (const auto& [name, transit] : sites_) {
    if (name == src.site || name == dst.site) continue;
    const LinkProfile* first = leg(src.site, name);
    const LinkProfile* second = leg(name, dst.site);
    if (!first || !second) continue;
    const double latency = first->latency_s + second->latency_s;
    if (!best_site || latency < best_latency) {
      best_site = &name;
      best_latency = latency;
      best_first = first;
      best_second = second;
    }
  }
  if (!best_site) {
    throw ConnectorError("Fabric: no route between " + src.site + " and " +
                         dst.site);
  }
  // Represent the transit point with any host of the transit site.
  const auto transit_hosts = hosts_in_site(*best_site);
  const std::string via =
      transit_hosts.empty() ? *best_site + "(transit)" : transit_hosts.front();
  r.hops.push_back(Hop{from, via, *best_first});
  r.hops.push_back(Hop{via, to, *best_second});
  return r;
}

double Fabric::transfer_time(const std::string& from, const std::string& to,
                             std::size_t bytes) const {
  return route(from, to).transfer_time(bytes);
}

bool Fabric::can_connect_direct(const std::string& from,
                                const std::string& to) const {
  const Host& src = host(from);
  const Host& dst = host(to);
  if (src.site == dst.site) return true;
  // Inbound to a NAT'd site requires traversal; outbound from NAT is fine.
  return !site(dst.site).behind_nat;
}

double Fabric::disk_write_time(const std::string& host_name,
                               std::size_t bytes) const {
  const Host& h = host(host_name);
  return h.file_latency_s + static_cast<double>(bytes) / h.disk_write_Bps;
}

double Fabric::disk_read_time(const std::string& host_name,
                              std::size_t bytes) const {
  const Host& h = host(host_name);
  return h.file_latency_s + static_cast<double>(bytes) / h.disk_read_Bps;
}

double Fabric::mem_copy_time(const std::string& host_name,
                             std::size_t bytes) const {
  return static_cast<double>(bytes) / host(host_name).mem_Bps;
}

double SshTunnel::transfer_time(const Fabric& fabric, const std::string& from,
                                const std::string& to,
                                std::size_t bytes) const {
  Route r = fabric.route(from, to);
  double total = 0.0;
  for (Hop& hop : r.hops) {
    // The tunnel pins the connection to TCP semantics regardless of the
    // underlying link and adds per-message crypto/framing cost.
    LinkProfile p = hop.profile;
    if (p.congestion == Congestion::kRdma || p.congestion == Congestion::kLan) {
      // Intra-site ssh still runs over TCP but the LAN has no meaningful ramp.
      p.per_msg_overhead_s += per_msg_overhead_s;
    } else {
      p.congestion = Congestion::kBbrWan;  // well-tuned TCP stack (BBR)
      p.per_msg_overhead_s += per_msg_overhead_s;
    }
    total += p.transfer_time(bytes);
  }
  return total;
}

}  // namespace ps::net
