// MultiConnector (paper section 4.3).
//
// Routes operations across multiple managed connectors according to
// per-connector policies: object-size operating ranges, site tags, host
// patterns, and priorities for tie-breaking. An application uses a single
// Store while objects transparently flow to the appropriate channel; a put
// that matches no policy raises NoPolicyMatchError.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/connector.hpp"

namespace ps::core {

/// Per-connector usage policy.
struct Policy {
  /// Ideal operating range for object sizes, inclusive.
  std::uint64_t min_size = 0;
  std::uint64_t max_size = std::numeric_limits<std::uint64_t>::max();
  /// Tags denoting where/how the connector is accessible.
  std::set<std::string> tags;
  /// Higher priority wins among multiple matches.
  int priority = 0;

  /// True when an object of `size` with `hints` may use this connector.
  bool matches(std::uint64_t size, const PutHints& hints) const;

  bool operator==(const Policy&) const = default;

  auto serde_members() { return std::tie(min_size, max_size, tags, priority); }
  auto serde_members() const {
    return std::tie(min_size, max_size, tags, priority);
  }
};

class MultiConnector : public Connector {
 public:
  struct Entry {
    /// Stable name used in keys to route gets back to the right child.
    std::string name;
    std::shared_ptr<Connector> connector;
    Policy policy;
  };

  explicit MultiConnector(std::vector<Entry> entries);

  std::string type() const override { return "multi"; }
  ConnectorConfig config() const override;
  ConnectorTraits traits() const override;

  Key put(BytesView data) override;
  /// Policy-routed put with caller constraints.
  Key put_hinted(BytesView data, const PutHints& hints) override;
  std::vector<Key> put_batch(const std::vector<Bytes>& items) override;

  std::optional<Bytes> get(const Key& key) override;
  /// Routes each key to its owning child (by the routing field stamped at
  /// put time) and forwards per-child groups as batches, so bulk-capable
  /// children keep their one-round-trip pipelining.
  std::vector<std::optional<Bytes>> get_batch(
      const std::vector<Key>& keys) override;
  bool exists(const Key& key) override;
  /// Routes each key to its owning child and forwards per-child groups as
  /// exists_batch calls, so pipelined children keep one-round-trip probes.
  std::vector<bool> exists_batch(const std::vector<Key>& keys) override;
  void evict(const Key& key) override;
  /// Routes each key to its owning child and forwards per-child groups as
  /// evict_batch calls, so pipelined children keep one-round-trip cleanup.
  void evict_batch(const std::vector<Key>& keys) override;
  void close() override;

  // Async ops route to the owning child's native implementation (an
  // executor hop only where the child itself falls back to the adapter).
  Future<std::optional<Bytes>> get_async(const Key& key) override;
  Future<bool> exists_async(const Key& key) override;
  Future<Unit> evict_async(const Key& key) override;
  /// Single-child batches forward to the child's native get_batch_async;
  /// cross-child batches fall back to the sync grouped get_batch through
  /// the executor adapter.
  Future<std::vector<std::optional<Bytes>>> get_batch_async(
      const std::vector<Key>& keys) override;

  /// The child connector a put of `size` bytes with `hints` would route to.
  /// Throws NoPolicyMatchError when nothing matches.
  const Entry& select(std::uint64_t size, const PutHints& hints) const;

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  const Entry& child_for(const Key& key) const;

  std::vector<Entry> entries_;
};

}  // namespace ps::core
