#include "core/refcount.hpp"

#include "proc/process.hpp"
#include "proc/world.hpp"

namespace ps::core {

namespace {
std::mutex g_bind_mu;
}  // namespace

std::shared_ptr<RefCountRegistry> RefCountRegistry::for_store(
    const std::string& store_name) {
  proc::World& world = proc::current_process().world();
  const std::string address = "refcounts://" + store_name;
  std::lock_guard lock(g_bind_mu);
  if (auto existing =
          world.services().try_resolve<RefCountRegistry>(address)) {
    return existing;
  }
  auto registry = std::make_shared<RefCountRegistry>();
  world.services().bind<RefCountRegistry>(address, registry);
  return registry;
}

void RefCountRegistry::set(const std::string& key, std::uint32_t count) {
  std::lock_guard lock(mu_);
  counts_[key] = count;
}

std::uint32_t RefCountRegistry::decrement(const std::string& key) {
  std::lock_guard lock(mu_);
  const auto it = counts_.find(key);
  if (it == counts_.end()) return 0;
  if (--it->second == 0) {
    counts_.erase(it);
    return 0;
  }
  return it->second;
}

std::optional<std::uint32_t> RefCountRegistry::remaining(
    const std::string& key) const {
  std::lock_guard lock(mu_);
  const auto it = counts_.find(key);
  if (it == counts_.end()) return std::nullopt;
  return it->second;
}

std::uint32_t refcount_decrement(const std::string& store_name,
                                 const std::string& canonical_key) {
  return RefCountRegistry::for_store(store_name)->decrement(canonical_key);
}

}  // namespace ps::core
