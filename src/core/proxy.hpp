// Transparent, lazy object proxies (paper section 3.3).
//
// A Proxy<T> behaves like a T wherever a `const T&` is accepted — the
// implicit conversion operator forwards consumer code to the resolved
// target with no shims, which is the transparency property the paper's
// programming model rests on. Resolution is lazy (first access), cached,
// thread-safe, and can be overlapped with computation via resolve_async
// (used by the paper's 1 s-sleep experiments).
//
// Resolution is single-flight: however many threads race resolve() /
// resolve_async(), exactly one invokes the factory; the others wait on a
// shared core::Future and merge the resolver's virtual completion time, so
// every observer's clock reflects the communication cost. Async resolution
// runs on the shared bounded AsyncExecutor — no detached or per-proxy
// threads anywhere in the resolve path.
//
// Copying a proxy shares the resolution state (like Python references);
// serializing a proxy writes only its factory descriptor, never the target,
// so proxies stay small on the wire and remain resolvable after crossing a
// process boundary. The serde codec lives in store.hpp, which binds
// descriptors back to stores.
#pragma once

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "core/async.hpp"
#include "core/factory.hpp"
#include "core/future.hpp"
#include "sim/vtime.hpp"

namespace ps::core {

template <typename T>
class Proxy {
 public:
  /// Creates an unresolved proxy over `factory`.
  explicit Proxy(Factory<T> factory)
      : state_(std::make_shared<State>(std::move(factory))) {
    if (!state_->factory.valid()) {
      throw ProxyResolutionError("Proxy: factory is empty");
    }
  }

  // -- transparency ----------------------------------------------------------

  /// Implicit conversion: pass a Proxy<T> anywhere a const T& is expected.
  operator const T&() const { return resolve(); }  // NOLINT(google-explicit-*)

  const T& operator*() const { return resolve(); }
  const T* operator->() const { return &resolve(); }

  // -- resolution ------------------------------------------------------------

  /// Resolves (if needed) and returns the cached target.
  const T& resolve() const {
    ensure_resolved();
    return *state_->target;
  }

  /// True once the target has been materialized locally.
  bool resolved() const {
    std::lock_guard lock(state_->mu);
    return state_->target.has_value();
  }

  /// Begins resolving on the shared bounded AsyncExecutor; returns
  /// immediately. Idempotent (and a no-op while any resolve is already in
  /// flight). The eventual wait (resolve()/await_async()) merges the
  /// resolver's virtual time so communication overlaps computation.
  void resolve_async() const {
    Promise<Unit> promise;
    {
      std::lock_guard lock(state_->mu);
      if (state_->target.has_value() || state_->pending.valid()) return;
      state_->pending = promise.future();
    }
    auto state = state_;
    AsyncExecutor::shared().submit(
        [state, promise] { State::run_factory(*state, promise); });
  }

  /// Waits for a pending async resolve (or resolves inline).
  const T& await_async() const { return resolve(); }

  /// Mutable access to the *local copy* of the target. Mutations affect
  /// only this process's materialized copy — pass-by-value semantics for
  /// the eventual consumer, as in the paper.
  T& mutable_target() {
    ensure_resolved();
    return *state_->target;
  }

  /// The factory backing this proxy.
  const Factory<T>& factory() const { return state_->factory; }

 private:
  struct State {
    explicit State(Factory<T> f) : factory(std::move(f)) {}

    /// Invokes the factory (without holding `mu` during the possibly-slow
    /// call), publishes the target, and completes `promise` — with the
    /// error instead if the factory throws, so every waiter rethrows.
    static void run_factory(State& state, const Promise<Unit>& promise) {
      try {
        T value = state.factory();
        {
          std::lock_guard lock(state.mu);
          if (!state.target.has_value()) state.target.emplace(std::move(value));
          // Stamped before the promise completes so the fast path below
          // (target published, pending already cleared) can still charge
          // late observers the transfer's virtual cost.
          state.resolved_vtime = std::max(state.resolved_vtime, sim::vnow());
        }
        promise.set_value(Unit{});
      } catch (...) {
        promise.set_error(std::current_exception());
      }
    }

    Factory<T> factory;
    mutable std::mutex mu;
    std::optional<T> target;
    /// Virtual time at which the target was published; merged by every
    /// observer so none sees the value "for free" (causality: you cannot
    /// read an object before its transfer finished).
    sim::SimTime resolved_vtime = 0;
    /// Valid while a resolve (sync or async) is in flight; all concurrent
    /// resolvers wait on it, making the factory invocation single-flight.
    Future<Unit> pending;
  };

  void ensure_resolved() const {
    Promise<Unit> promise;
    Future<Unit> in_flight;
    bool resolver = false;
    {
      std::lock_guard lock(state_->mu);
      if (state_->target.has_value() && !state_->pending.valid()) {
        const sim::SimTime resolved = state_->resolved_vtime;
        sim::vmerge(resolved);
        return;
      }
      if (state_->pending.valid()) {
        in_flight = state_->pending;
      } else {
        in_flight = promise.future();
        state_->pending = in_flight;
        resolver = true;
      }
    }
    if (resolver) State::run_factory(*state_, promise);
    try {
      in_flight.wait();  // merges the resolver's vtime; rethrows errors
    } catch (...) {
      clear_pending(in_flight);
      throw;
    }
    clear_pending(in_flight);
  }

  /// Drops the in-flight marker once the wait completed, so a failed
  /// resolve can be retried (only if no newer resolve replaced it).
  void clear_pending(const Future<Unit>& finished) const {
    std::lock_guard lock(state_->mu);
    if (state_->pending.valid() && state_->pending.same_state(finished)) {
      state_->pending = Future<Unit>();
    }
  }

  std::shared_ptr<State> state_;
};

}  // namespace ps::core
