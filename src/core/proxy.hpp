// Transparent, lazy object proxies (paper section 3.3).
//
// A Proxy<T> behaves like a T wherever a `const T&` is accepted — the
// implicit conversion operator forwards consumer code to the resolved
// target with no shims, which is the transparency property the paper's
// programming model rests on. Resolution is lazy (first access), cached,
// thread-safe, and can be overlapped with computation via resolve_async
// (used by the paper's 1 s-sleep experiments).
//
// Copying a proxy shares the resolution state (like Python references);
// serializing a proxy writes only its factory descriptor, never the target,
// so proxies stay small on the wire and remain resolvable after crossing a
// process boundary. The serde codec lives in store.hpp, which binds
// descriptors back to stores.
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <optional>

#include "common/error.hpp"
#include "core/factory.hpp"
#include "proc/process.hpp"
#include "sim/vtime.hpp"

namespace ps::core {

template <typename T>
class Proxy {
 public:
  /// Creates an unresolved proxy over `factory`.
  explicit Proxy(Factory<T> factory)
      : state_(std::make_shared<State>(std::move(factory))) {
    if (!state_->factory.valid()) {
      throw ProxyResolutionError("Proxy: factory is empty");
    }
  }

  // -- transparency ----------------------------------------------------------

  /// Implicit conversion: pass a Proxy<T> anywhere a const T& is expected.
  operator const T&() const { return resolve(); }  // NOLINT(google-explicit-*)

  const T& operator*() const { return resolve(); }
  const T* operator->() const { return &resolve(); }

  // -- resolution ------------------------------------------------------------

  /// Resolves (if needed) and returns the cached target.
  const T& resolve() const {
    ensure_resolved();
    return *state_->target;
  }

  /// True once the target has been materialized locally.
  bool resolved() const {
    std::lock_guard lock(state_->mu);
    return state_->target.has_value();
  }

  /// Begins resolving on a background thread; returns immediately.
  /// Idempotent. The eventual wait (resolve()/await_async()) merges the
  /// resolver's virtual time so communication overlaps computation.
  void resolve_async() const {
    std::lock_guard lock(state_->mu);
    if (state_->target.has_value() || state_->async.valid()) return;
    auto state = state_;
    const sim::SimTime start_vtime = sim::vnow();
    proc::Process* process = &proc::current_process();
    state_->async =
        std::async(std::launch::async, [state, start_vtime, process] {
          proc::ProcessScope scope(*process);
          sim::vset(start_vtime);
          state->resolve_locked_free();
          std::lock_guard lock(state->mu);
          state->async_done_vtime = sim::vnow();
        }).share();
  }

  /// Waits for a pending async resolve (or resolves inline).
  const T& await_async() const { return resolve(); }

  /// Mutable access to the *local copy* of the target. Mutations affect
  /// only this process's materialized copy — pass-by-value semantics for
  /// the eventual consumer, as in the paper.
  T& mutable_target() {
    ensure_resolved();
    return *state_->target;
  }

  /// The factory backing this proxy.
  const Factory<T>& factory() const { return state_->factory; }

 private:
  struct State {
    explicit State(Factory<T> f) : factory(std::move(f)) {}

    /// Resolves without holding `mu` during the (possibly slow) factory
    /// call; publishes under the lock. Concurrent resolvers may both invoke
    /// the factory; first publish wins — acceptable because factories are
    /// pure reads of write-once objects (paper assumption 3).
    void resolve_locked_free() {
      {
        std::lock_guard lock(mu);
        if (target.has_value()) return;
      }
      T value = factory();
      std::lock_guard lock(mu);
      if (!target.has_value()) target.emplace(std::move(value));
    }

    Factory<T> factory;
    mutable std::mutex mu;
    std::optional<T> target;
    std::shared_future<void> async;
    sim::SimTime async_done_vtime = 0.0;
  };

  void ensure_resolved() const {
    std::shared_future<void> pending;
    {
      std::lock_guard lock(state_->mu);
      if (state_->target.has_value() && !state_->async.valid()) return;
      pending = state_->async;
    }
    if (pending.valid()) {
      pending.get();  // rethrows factory errors
      std::lock_guard lock(state_->mu);
      sim::vmerge(state_->async_done_vtime);
      state_->async = {};
      return;
    }
    state_->resolve_locked_free();
  }

  std::shared_ptr<State> state_;
};

}  // namespace ps::core
