#include "core/async.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace ps::core {

namespace {

std::size_t default_workers() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(1, std::min<std::size_t>(4, hw ? hw : 1));
}

}  // namespace

AsyncExecutor::AsyncExecutor(Options options)
    : options_(options),
      submitted_(obs::MetricsRegistry::global().counter(
          "async.executor.submitted")),
      completed_(obs::MetricsRegistry::global().counter(
          "async.executor.completed")),
      saturated_(obs::MetricsRegistry::global().counter(
          "async.executor.saturated")),
      depth_gauge_(obs::MetricsRegistry::global().gauge(
          "async.executor.queue_depth", obs::GaugeAgg::kSum)),
      workers_gauge_(obs::MetricsRegistry::global().gauge(
          "async.executor.workers", obs::GaugeAgg::kSum)),
      queue_wait_wall_(obs::MetricsRegistry::global().histogram(
          "async.executor.queue_wait.wall")),
      service_wall_(obs::MetricsRegistry::global().histogram(
          "async.executor.service.wall")),
      service_vtime_(obs::MetricsRegistry::global().histogram(
          "async.executor.service.vtime")) {
  if (options_.workers == 0) options_.workers = default_workers();
  if (options_.max_queue == 0) options_.max_queue = 1;
  threads_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
  workers_gauge_.set(static_cast<double>(options_.workers));
}

AsyncExecutor::~AsyncExecutor() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

AsyncExecutor& AsyncExecutor::shared() {
  static AsyncExecutor* executor = new AsyncExecutor();
  return *executor;
}

void AsyncExecutor::submit(std::function<void()> fn) {
  Job job{std::move(fn), &proc::current_process(), sim::vnow(),
          std::chrono::steady_clock::now(), obs::current_context()};
  {
    std::unique_lock lock(mu_);
    if (queue_.size() >= options_.max_queue) {
      saturated_.inc();
      not_full_.wait(lock, [&] {
        return stopping_ || queue_.size() < options_.max_queue;
      });
    }
    if (stopping_) {
      throw Error("AsyncExecutor: submit after shutdown");
    }
    queue_.push_back(std::move(job));
    depth_gauge_.set(static_cast<double>(queue_.size()));
  }
  submitted_.inc();
  not_empty_.notify_one();
}

std::size_t AsyncExecutor::queue_depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

void AsyncExecutor::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      depth_gauge_.set(static_cast<double>(queue_.size()));
    }
    not_full_.notify_one();
    const auto started = std::chrono::steady_clock::now();
    const double wait_s =
        std::chrono::duration<double>(started - job.enqueued).count();
    queue_wait_wall_.observe(wait_s);
    // Run inside the submitter's simulated process, clock seeded from its
    // submission-time "now": costs the job charges continue the submitter's
    // timeline, and the result future's wait() merges them back.
    proc::ProcessScope scope(*job.process);
    sim::vset(job.submit_vtime);
    obs::ContextScope adopt(job.ctx);
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled() && job.ctx.valid()) {
      // Queue wait is pure wall time on the deterministic simulator (the
      // submitter's virtual clock does not advance while the job sits in
      // the queue), so the span is a zero-width vtime interval positioned
      // at the submission vtime — the critical-path analyzer still counts
      // it toward the "executor-queue" segment.
      obs::SpanRecord wait_span;
      wait_span.ctx = obs::child_of(job.ctx);
      wait_span.name = "async.executor.queue";
      wait_span.kind = "executor-queue";
      obs::SpanLocality locality = obs::current_locality();
      wait_span.process = std::move(locality.process);
      wait_span.host = std::move(locality.host);
      wait_span.site = std::move(locality.site);
      wait_span.wall_end = recorder.wall_now();
      wait_span.wall_start = wait_span.wall_end - wait_s;
      wait_span.vtime_start = job.submit_vtime;
      wait_span.vtime_end = job.submit_vtime;
      recorder.record_span(std::move(wait_span));
    }
    job.fn();
    service_vtime_.observe(sim::vnow() - job.submit_vtime);
    service_wall_.observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - started)
                              .count());
    completed_.inc();
  }
}

}  // namespace ps::core
