// The Store (paper section 3.5).
//
// High-level, object-typed interface over a Connector: serializes objects
// with the serde framework (or registered custom serializers), caches
// deserialized objects in an LRU cache, and mints proxies whose factories
// are self-contained and serializable. Stores are registered globally
// *within a process* by name; a proxy resolved in a process without the
// store re-creates and registers it from the factory descriptor — the
// cross-process re-registration mechanism of section 3.5.
#pragma once

#include <any>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/uuid.hpp"
#include "core/cache.hpp"
#include "core/connector.hpp"
#include "core/factory.hpp"
#include "core/future.hpp"
#include "core/key.hpp"
#include "core/proxy.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "proc/process.hpp"
#include "serde/serde.hpp"

namespace ps::core {

/// Trace subject naming a (store, key) pair; every lifecycle event of a
/// proxy over that object records under this subject.
inline std::string trace_subject(const std::string& store_name,
                                 const Key& key) {
  return store_name + "/" + key.canonical();
}

class Store : public std::enable_shared_from_this<Store> {
 public:
  struct Options {
    /// LRU capacity of the deserialized-object cache (0 disables).
    std::size_t cache_size = 16;

    bool operator==(const Options&) const = default;
  };

  struct Metrics {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t exists_calls = 0;
    std::uint64_t cache_hits = 0;
    /// Explicit evict() calls against this store.
    std::uint64_t evicts = 0;
    /// LRU evictions inside the deserialized-object cache.
    std::uint64_t cache_evictions = 0;
    std::uint64_t bytes_put = 0;
    std::uint64_t bytes_got = 0;
  };

  Store(std::string name, std::shared_ptr<Connector> connector,
        Options options);

  Store(std::string name, std::shared_ptr<Connector> connector)
      : Store(std::move(name), std::move(connector), Options{}) {}

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  const std::string& name() const { return name_; }
  Connector& connector() { return *connector_; }
  const Connector& connector() const { return *connector_; }
  const Options& options() const { return options_; }
  ObjectCache& cache() { return cache_; }

  // -- object operations ------------------------------------------------

  /// Serializes and stores `value`; returns the connector key.
  template <typename T>
  Key put(const T& value) {
    check_open();
    obs::Timer timer(&put_metrics().vtime, &put_metrics().wall);
    const Bytes data = serialize_value(value);
    metrics_bytes_put_ += data.size();
    ++metrics_puts_;
    count_event("store.puts");
    return connector_->put(data);
  }

  /// put with routing constraints (honored by policy-routing connectors
  /// such as MultiConnector; ignored otherwise — paper section 4.3).
  template <typename T>
  Key put(const T& value, const PutHints& hints) {
    check_open();
    obs::Timer timer(&put_metrics().vtime, &put_metrics().wall);
    const Bytes data = serialize_value(value);
    metrics_bytes_put_ += data.size();
    ++metrics_puts_;
    count_event("store.puts");
    return connector_->put_hinted(data, hints);
  }

  /// Serializes and stores a batch in one connector round trip.
  template <typename T>
  std::vector<Key> put_batch(const std::vector<T>& values) {
    check_open();
    std::vector<Bytes> blobs;
    blobs.reserve(values.size());
    for (const T& value : values) {
      blobs.push_back(serialize_value(value));
      metrics_bytes_put_ += blobs.back().size();
      ++metrics_puts_;
      count_event("store.puts");
    }
    return connector_->put_batch(blobs);
  }

  /// Stores pre-serialized blobs in one connector round trip. Callers that
  /// buffer serialized objects (the stream producer's flush path, which
  /// needs true wire sizes for its byte threshold) use this so bulk
  /// transfer still goes through Connector::put_batch.
  std::vector<Key> put_bytes_batch(const std::vector<Bytes>& blobs) {
    check_open();
    for (const Bytes& blob : blobs) {
      metrics_bytes_put_ += blob.size();
      ++metrics_puts_;
      count_event("store.puts");
    }
    return connector_->put_batch(blobs);
  }

  /// Serializes `value` exactly as put() would — registered custom
  /// serializer first, serde codec otherwise — without storing it.
  template <typename T>
  Bytes serialize(const T& value) {
    return serialize_value(value);
  }

  /// Retrieves and deserializes the object, consulting the cache first.
  /// Returns nullopt when the object does not exist. With tracing enabled,
  /// emits the get-side lifecycle events (connector.get -> deserialize ->
  /// cache.insert, or cache.hit) under the (store, key) trace subject.
  template <typename T>
  std::optional<T> get(const Key& key) {
    check_open();
    ++metrics_gets_;
    count_event("store.gets");
    obs::Timer timer(&get_metrics().vtime, &get_metrics().wall);
    obs::TraceRecorder& tracer = obs::TraceRecorder::global();
    const bool tracing = tracer.enabled();
    const std::string cache_key = key.canonical();
    {
      obs::SpanScope probe("store.cache.probe",
                           tracing ? trace_subject(name_, key)
                                   : std::string{},
                           "cache-probe");
      if (auto cached = cache_.get<T>(cache_key)) {
        ++metrics_cache_hits_;
        count_event("store.cache.hits");
        if (tracing) tracer.record(trace_subject(name_, key), "cache.hit");
        return *cached;
      }
    }
    count_event("store.cache.misses");
    std::optional<Bytes> data = connector_->get(key);
    if (tracing) tracer.record(trace_subject(name_, key), "connector.get");
    if (!data) return std::nullopt;
    metrics_bytes_got_ += data->size();
    std::shared_ptr<const T> value;
    {
      obs::SpanScope serde("store.deserialize",
                           tracing ? trace_subject(name_, key)
                                   : std::string{},
                           "serde");
      value = std::make_shared<const T>(deserialize_value<T>(*data));
    }
    if (tracing) tracer.record(trace_subject(name_, key), "deserialize");
    cache_.put<T>(cache_key, value);
    if (tracing) tracer.record(trace_subject(name_, key), "cache.insert");
    return *value;
  }

  // -- asynchronous operations -------------------------------------------
  //
  // Futures-based twins of get, built on the connector's async protocol.
  // Fetches are single-flight per (key, type): concurrent get_async /
  // resolve_batch callers for the same object share one connector fetch and
  // one deserialization — the deserialized-object cache is filled exactly
  // once, and every waiter merges the fetch's virtual completion time.
  // Lifetime: the store must outlive any future it returned.

  /// Begins retrieving and deserializing the object. Cache hits complete
  /// inline; misses ride Connector::get_async and deserialize on the
  /// completing thread.
  template <typename T>
  ps::core::Future<std::optional<T>> get_async(const Key& key) {
    check_open();
    ++metrics_gets_;
    count_event("store.gets");
    const std::string cache_key = key.canonical();
    if (auto cached = cache_.get<T>(cache_key)) {
      ++metrics_cache_hits_;
      count_event("store.cache.hits");
      return make_ready_future(std::optional<T>(*cached));
    }
    const InFlightKey in_flight_key{cache_key, std::type_index(typeid(T))};
    Promise<std::optional<T>> promise;
    {
      std::lock_guard lock(inflight_mu_);
      const auto it = inflight_.find(in_flight_key);
      if (it != inflight_.end()) {
      count_event("store.cache.misses");
        return std::any_cast<ps::core::Future<std::optional<T>>>(it->second);
      }
      // A fetch may have finished between the unlocked cache probe above and
      // taking this lock. Fetchers fill the cache *before* erasing their
      // in-flight entry (which requires this lock), so re-probing here keeps
      // the exactly-one-deserialization-per-key guarantee airtight.
      if (auto cached = cache_.get<T>(cache_key)) {
        ++metrics_cache_hits_;
        count_event("store.cache.hits");
        return make_ready_future(std::optional<T>(*cached));
      }
      count_event("store.cache.misses");
      inflight_.emplace(in_flight_key, std::any(promise.future()));
    }
    ps::core::Future<std::optional<Bytes>> raw = connector_->get_async(key);
    const auto complete = [this, cache_key, in_flight_key, promise, raw] {
      try {
        const std::optional<Bytes>& data = raw.wait();  // ready: no blocking
        if (!data) {
          inflight_erase(in_flight_key);
          promise.set_value(std::nullopt);
          return;
        }
        metrics_bytes_got_ += data->size();
        std::shared_ptr<const T> value;
        {
          obs::SpanScope serde("store.deserialize", cache_key, "serde");
          value = std::make_shared<const T>(deserialize_value<T>(*data));
        }
        cache_.put<T>(cache_key, value);
        inflight_erase(in_flight_key);
        promise.set_value(std::optional<T>(*value));
      } catch (...) {
        inflight_erase(in_flight_key);
        promise.set_error(std::current_exception());
      }
    };
    if (raw.ready()) {
      // Completion-driven connectors (kv, endpoint) return an already-ready
      // future stamped at the request's pipelined completion vtime. Run the
      // continuation at that time — not the issuing clock — so the fetch's
      // cost lands in the derived future and the caller keeps overlapping.
      const sim::SimTime resume = sim::vnow();
      sim::vset(raw.done_vtime());
      complete();
      sim::vset(resume);
    } else {
      raw.on_ready(complete);
    }
    return promise.future();
  }

  /// Retrieves many objects in one pipelined connector round trip
  /// (Connector::get_batch), position-for-position. Batch-internal
  /// duplicates and fetches already in flight are deduplicated; each
  /// missing object yields nullopt.
  template <typename T>
  std::vector<std::optional<T>> resolve_batch(const std::vector<Key>& keys) {
    check_open();
    std::vector<std::optional<T>> out(keys.size());
    struct Miss {
      std::size_t index;
      Key key;
      std::string cache_key;
      Promise<std::optional<T>> promise;
    };
    std::vector<Miss> misses;
    std::vector<std::pair<std::size_t, ps::core::Future<std::optional<T>>>>
        joined;
    std::vector<std::pair<std::size_t, std::size_t>> aliases;  // i → miss pos
    std::unordered_map<std::string, std::size_t> first_miss;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ++metrics_gets_;
      count_event("store.gets");
      const std::string cache_key = keys[i].canonical();
      if (auto cached = cache_.get<T>(cache_key)) {
        ++metrics_cache_hits_;
        count_event("store.cache.hits");
        out[i] = *cached;
        continue;
      }
      if (const auto dup = first_miss.find(cache_key);
          dup != first_miss.end()) {
          count_event("store.cache.misses");
        aliases.emplace_back(i, dup->second);
        continue;
      }
      const InFlightKey in_flight_key{cache_key, std::type_index(typeid(T))};
      std::lock_guard lock(inflight_mu_);
      if (const auto it = inflight_.find(in_flight_key);
          it != inflight_.end()) {
          count_event("store.cache.misses");
        joined.emplace_back(
            i, std::any_cast<ps::core::Future<std::optional<T>>>(it->second));
        continue;
      }
      // Same completed-between-probe-and-lock re-check as get_async.
      if (auto cached = cache_.get<T>(cache_key)) {
        ++metrics_cache_hits_;
        count_event("store.cache.hits");
        out[i] = *cached;
        continue;
      }
      count_event("store.cache.misses");
      Miss miss{i, keys[i], cache_key, {}};
      inflight_.emplace(in_flight_key, std::any(miss.promise.future()));
      first_miss.emplace(cache_key, misses.size());
      misses.push_back(std::move(miss));
    }
    if (!misses.empty()) {
      std::vector<Key> miss_keys;
      miss_keys.reserve(misses.size());
      for (const Miss& miss : misses) miss_keys.push_back(miss.key);
      std::size_t done = 0;
      try {
        // One pipelined round trip, charged to the calling thread — this is
        // where batched resolve beats N sequential gets.
        const std::vector<std::optional<Bytes>> results =
            connector_->get_batch(miss_keys);
        for (; done < misses.size(); ++done) {
          Miss& miss = misses[done];
          const InFlightKey in_flight_key{miss.cache_key,
                                          std::type_index(typeid(T))};
          if (!results[done]) {
            inflight_erase(in_flight_key);
            miss.promise.set_value(std::nullopt);
            continue;
          }
          metrics_bytes_got_ += results[done]->size();
          std::shared_ptr<const T> value;
          {
            obs::SpanScope serde("store.deserialize", miss.cache_key,
                                 "serde");
            value = std::make_shared<const T>(
                deserialize_value<T>(*results[done]));
          }
          cache_.put<T>(miss.cache_key, value);
          out[miss.index] = *value;
          inflight_erase(in_flight_key);
          miss.promise.set_value(std::optional<T>(*value));
        }
      } catch (...) {
        // Fail every promise not yet fulfilled so joined waiters unblock.
        for (; done < misses.size(); ++done) {
          inflight_erase(InFlightKey{misses[done].cache_key,
                                     std::type_index(typeid(T))});
          misses[done].promise.set_error(std::current_exception());
        }
        throw;
      }
    }
    for (const auto& [i, miss_pos] : aliases) {
      out[i] = out[misses[miss_pos].index];
    }
    for (auto& [i, future] : joined) {
      out[i] = future.get();  // merges the fetching thread's vtime
    }
    return out;
  }

  /// Starts background fetches warming the deserialized-object cache for
  /// `keys` (skipping ones already cached). Advisory: completion is not
  /// awaited and the transfer's virtual cost is merged only by waiters
  /// that join the in-flight fetch before it finishes.
  template <typename T>
  void prefetch(const std::vector<Key>& keys) {
    check_open();
    for (const Key& key : keys) {
      if (cache_.contains(key.canonical())) continue;
      (void)get_async<T>(key);
    }
  }

  /// True when the object is cached locally or present in the channel.
  bool exists(const Key& key) {
    check_open();
    ++metrics_exists_;
    return cache_.contains(key.canonical()) || connector_->exists(key);
  }

  /// Removes the object from the channel and the local cache.
  void evict(const Key& key) {
    check_open();
    ++metrics_evicts_;
    cache_.erase(key.canonical());
    connector_->evict(key);
  }

  /// Removes many objects in one pipelined connector round trip
  /// (Connector::evict_batch) — the cleanup dual of resolve_batch. Stream
  /// payload eviction and swarm manifest cleanup use this so a whole batch
  /// costs one wire exchange on kv-backed channels.
  void evict_batch(const std::vector<Key>& keys) {
    check_open();
    for (const Key& key : keys) {
      ++metrics_evicts_;
      cache_.erase(key.canonical());
    }
    connector_->evict_batch(keys);
  }

  // -- proxies ------------------------------------------------------------

  /// Stores `value` and returns a lazy transparent proxy for it.
  /// With `evict` set, the object is removed from the channel when the
  /// proxy is first resolved (single-consumer intermediate values).
  template <typename T>
  Proxy<T> proxy(const T& value, bool evict = false) {
    return proxy_from_key<T>(put(value), evict);
  }

  /// proxy with routing constraints on where the object is stored.
  template <typename T>
  Proxy<T> proxy(const T& value, bool evict, const PutHints& hints) {
    return proxy_from_key<T>(put(value, hints), evict);
  }

  /// Proxies a batch via a single bulk transfer (GlobusConnector turns this
  /// into one transfer task — paper section 4.2.1).
  template <typename T>
  std::vector<Proxy<T>> proxy_batch(const std::vector<T>& values,
                                    bool evict = false) {
    const std::vector<Key> keys = put_batch(values);
    std::vector<Proxy<T>> proxies;
    proxies.reserve(keys.size());
    for (const Key& key : keys) {
      proxies.push_back(proxy_from_key<T>(key, evict));
    }
    return proxies;
  }

  /// Builds a proxy for an object already stored under `key`.
  template <typename T>
  Proxy<T> proxy_from_key(const Key& key, bool evict = false) {
    check_open();
    obs::MetricsRegistry::ambient().counter("store.proxies").inc();
    obs::SpanScope span("store.proxy", trace_subject(name_, key));
    obs::TraceRecorder& tracer = obs::TraceRecorder::global();
    if (tracer.enabled()) {
      tracer.record(trace_subject(name_, key), "proxy.created");
    }
    FactoryDescriptor descriptor{name_, key, connector_->config(), evict};
    descriptor.trace = span.context();
    return Proxy<T>(make_factory<T>(std::move(descriptor)));
  }

  // -- data-flow proxies (paper section 6 future work: "readers of an
  //    object block until the object is written, as in Id") ----------------

  /// A handle to an object that has not been produced yet.
  template <typename T>
  struct Future {
    /// Where the producer must write the object (see fulfill()).
    Key key;
    /// A proxy consumers can hold now; resolving blocks (polling in
    /// virtual time) until the object is written or the poll budget runs
    /// out (then ProxyResolutionError).
    Proxy<T> proxy;
  };

  /// Creates a data-flow proxy. Requires a connector with addressed
  /// writes (put_at): Local, File, Redis, Endpoint.
  template <typename T>
  Future<T> make_future(double poll_interval_s = 0.01,
                        std::uint32_t max_polls = 1000) {
    check_open();
    Key key = connector_->reserve_key();
    obs::SpanScope span("store.future", trace_subject(name_, key));
    FactoryDescriptor descriptor{name_, key, connector_->config(),
                                 /*evict=*/false, poll_interval_s, max_polls};
    descriptor.trace = span.context();
    return Future<T>{key, Proxy<T>(make_factory<T>(std::move(descriptor)))};
  }

  /// Fulfils a data-flow proxy: writes `value` at the future's key.
  template <typename T>
  void fulfill(const Key& key, const T& value) {
    check_open();
    const Bytes data = serialize_value(value);
    metrics_bytes_put_ += data.size();
    ++metrics_puts_;
    count_event("store.puts");
    if (!connector_->put_at(key, data)) {
      throw ConnectorError("Store '" + name_ +
                           "': connector does not support addressed writes");
    }
  }

  // -- custom serialization (paper: "custom (de)serialize functions can be
  //    registered with the Store if needed") --------------------------------

  template <typename T>
  void register_serializer(std::function<Bytes(const T&)> serializer,
                           std::function<T(BytesView)> deserializer) {
    std::lock_guard lock(serializers_mu_);
    serializers_[std::type_index(typeid(T))] =
        SerializerEntry{std::move(serializer), std::move(deserializer)};
  }

  // -- lifecycle ---------------------------------------------------------

  /// Closes the store and its connector. Subsequent operations throw.
  void close();
  bool closed() const { return closed_.load(); }

  Metrics metrics() const;

 private:
  struct SerializerEntry {
    std::any serializer;    // std::function<Bytes(const T&)>
    std::any deserializer;  // std::function<T(BytesView)>
  };

  void check_open() const {
    if (closed_.load()) {
      throw ConnectorError("Store '" + name_ + "' is closed");
    }
  }

  template <typename T>
  const SerializerEntry* find_serializer() const {
    std::lock_guard lock(serializers_mu_);
    const auto it = serializers_.find(std::type_index(typeid(T)));
    return it == serializers_.end() ? nullptr : &it->second;
  }

  template <typename T>
  Bytes serialize_value(const T& value) {
    if (const SerializerEntry* entry = find_serializer<T>()) {
      const auto& fn =
          std::any_cast<const std::function<Bytes(const T&)>&>(
              entry->serializer);
      return fn(value);
    }
    if constexpr (serde::Serializable<T>) {
      return serde::to_bytes(value);
    } else {
      throw SerializationError(
          "Store: type has no serde codec and no registered serializer");
    }
  }

  template <typename T>
  T deserialize_value(BytesView data) {
    if (const SerializerEntry* entry = find_serializer<T>()) {
      const auto& fn = std::any_cast<const std::function<T(BytesView)>&>(
          entry->deserializer);
      return fn(data);
    }
    if constexpr (serde::Serializable<T>) {
      return serde::from_bytes<T>(data);
    } else {
      throw SerializationError(
          "Store: type has no serde codec and no registered serializer");
    }
  }

  template <typename T>
  Factory<T> make_factory(FactoryDescriptor descriptor);

  /// Single-flight table for async fetches: (canonical key, value type) →
  /// std::any holding the ps::core::Future<std::optional<T>> every
  /// concurrent getter of that object shares.
  using InFlightKey = std::pair<std::string, std::type_index>;

  void inflight_erase(const InFlightKey& key) {
    std::lock_guard lock(inflight_mu_);
    inflight_.erase(key);
  }

  /// Op histograms shared across stores, resolved in the ambient registry
  /// per call so per-process metrics scoping attributes them to the
  /// simulated site doing the work (the global registry when scoping is
  /// off — the historical behavior).
  struct OpHistograms {
    obs::Histogram& vtime;
    obs::Histogram& wall;
  };
  static OpHistograms put_metrics() {
    obs::MetricsRegistry& ambient = obs::MetricsRegistry::ambient();
    return OpHistograms{ambient.histogram("store.put.vtime"),
                        ambient.histogram("store.put.wall")};
  }
  static OpHistograms get_metrics() {
    obs::MetricsRegistry& ambient = obs::MetricsRegistry::ambient();
    return OpHistograms{ambient.histogram("store.get.vtime"),
                        ambient.histogram("store.get.wall")};
  }
  /// Ambient-registry event counter: the telemetry plane's view of store
  /// activity (the per-store atomics below feed Store::metrics()).
  static void count_event(const char* name) {
    obs::MetricsRegistry::ambient().counter(name).inc();
  }

  std::string name_;
  std::shared_ptr<Connector> connector_;
  Options options_;
  ObjectCache cache_;
  mutable std::mutex serializers_mu_;
  std::unordered_map<std::type_index, SerializerEntry> serializers_;
  mutable std::mutex inflight_mu_;
  std::map<InFlightKey, std::any> inflight_;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> metrics_puts_{0};
  std::atomic<std::uint64_t> metrics_gets_{0};
  std::atomic<std::uint64_t> metrics_exists_{0};
  std::atomic<std::uint64_t> metrics_cache_hits_{0};
  std::atomic<std::uint64_t> metrics_evicts_{0};
  std::atomic<std::uint64_t> metrics_bytes_put_{0};
  std::atomic<std::uint64_t> metrics_bytes_got_{0};
};

// ---------------------------------------------------------------------------
// Per-process store registry (paper section 3.5: "Store instances are
// registered globally within a process by name").
// ---------------------------------------------------------------------------

/// Registers `store` in the current process under its name.
/// Throws NotRegisteredError if a different store already holds the name
/// (unless `overwrite`).
void register_store(std::shared_ptr<Store> store, bool overwrite = false);

/// Looks up a store by name in the current process; nullptr if absent.
std::shared_ptr<Store> get_store(const std::string& name);

/// Removes a store binding from the current process. No-op if absent.
void unregister_store(const std::string& name);

/// Resolution path used by factories: returns the process-registered store
/// named in the descriptor, or re-creates (and registers) it from the
/// descriptor's connector config.
std::shared_ptr<Store> get_or_register_store(
    const FactoryDescriptor& descriptor);

// ---------------------------------------------------------------------------
// Descriptor-backed factory construction.
// ---------------------------------------------------------------------------

/// Hook implemented in refcount.hpp's registry: decrements the shared
/// count for (store, key) and returns the remaining references.
std::uint32_t refcount_decrement(const std::string& store_name,
                                 const std::string& canonical_key);

template <typename T>
Factory<T> make_descriptor_factory(FactoryDescriptor descriptor) {
  auto fn = [descriptor]() -> T {
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("proxy.resolves").inc();
    obs::Timer timer(&registry.histogram("proxy.resolve.vtime"),
                     &registry.histogram("proxy.resolve.wall"));
    obs::TraceRecorder& tracer = obs::TraceRecorder::global();
    const bool tracing = tracer.enabled();
    const std::string subject =
        trace_subject(descriptor.store_name, descriptor.key);
    // The descriptor carries the creating hop's context: adopt it so the
    // resolve span parents to the proxy-creation span even when this code
    // runs in a different simulated process/site.
    obs::ContextScope adopt(descriptor.trace);
    obs::SpanScope span("proxy.resolve", subject);
    if (tracing) tracer.record(subject, "resolve.start");
    std::shared_ptr<Store> store = get_or_register_store(descriptor);
    std::optional<T> value = store->get<T>(descriptor.key);
    // Data-flow proxies poll until the producer writes the object.
    for (std::uint32_t poll = 0; !value && poll < descriptor.max_polls;
         ++poll) {
      sim::vadvance(descriptor.poll_interval_s);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      value = store->get<T>(descriptor.key);
    }
    if (!value) {
      registry.counter("proxy.resolve_failures").inc();
      throw ProxyResolutionError("proxy target '" +
                                 descriptor.key.canonical() +
                                 "' not found in store '" +
                                 descriptor.store_name + "'");
    }
    if (descriptor.evict) store->evict(descriptor.key);
    if (descriptor.ref_counted &&
        refcount_decrement(descriptor.store_name,
                           descriptor.key.canonical()) == 0) {
      store->evict(descriptor.key);
    }
    if (tracing) tracer.record(subject, "resolve.done");
    return std::move(*value);
  };
  return Factory<T>(std::move(fn), std::move(descriptor));
}

template <typename T>
Factory<T> Store::make_factory(FactoryDescriptor descriptor) {
  return make_descriptor_factory<T>(std::move(descriptor));
}

}  // namespace ps::core

// ---------------------------------------------------------------------------
// Proxy serialization: factory descriptor only, never the target
// (paper: "Proxy modifies its own pickling behavior to include only the
// factory, not the target").
// ---------------------------------------------------------------------------

namespace ps::serde {

template <typename T>
struct Codec<ps::core::Proxy<T>> {
  static void encode(Writer& w, const ps::core::Proxy<T>& proxy) {
    const auto& descriptor = proxy.factory().descriptor();
    if (!descriptor) {
      throw SerializationError(
          "Proxy: only store-backed proxies are serializable");
    }
    auto& tracer = ps::obs::TraceRecorder::global();
    if (tracer.enabled()) {
      tracer.record(
          ps::core::trace_subject(descriptor->store_name, descriptor->key),
          "factory.serialized");
    }
    serde::encode(w, *descriptor);
  }

  static ps::core::Proxy<T> decode(Reader& r) {
    auto descriptor = serde::decode<ps::core::FactoryDescriptor>(r);
    auto& tracer = ps::obs::TraceRecorder::global();
    if (tracer.enabled()) {
      tracer.record(
          ps::core::trace_subject(descriptor.store_name, descriptor.key),
          "factory.deserialized");
    }
    return ps::core::Proxy<T>(
        ps::core::make_descriptor_factory<T>(std::move(descriptor)));
  }
};

}  // namespace ps::serde
