// Wide-area reference counting for object eviction (paper section 6
// future work).
//
// A producer that knows how many consumers will resolve an object can mint
// reference-counted proxies: every resolve decrements a shared counter, and
// the final resolve evicts the object from its channel — ephemeral
// intermediates clean themselves up without a single-consumer assumption
// (the evict flag) or out-of-band bookkeeping.
//
// The counters live in a world-level registry (the stand-in for a small
// metadata service colocated with the mediated channel); the ref_counted
// flag travels inside the factory descriptor, so a proxy keeps its
// semantics after crossing process boundaries.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/store.hpp"

namespace ps::core {

/// Shared reference-count table for one store, addressable world-wide.
class RefCountRegistry {
 public:
  /// Returns the registry for `store_name` in the current world, creating
  /// and binding it on first use.
  static std::shared_ptr<RefCountRegistry> for_store(
      const std::string& store_name);

  void set(const std::string& key, std::uint32_t count);

  /// Decrements and returns the remaining count. Unknown or exhausted keys
  /// return 0 (and stay at 0). The zeroed entry is removed.
  std::uint32_t decrement(const std::string& key);

  std::optional<std::uint32_t> remaining(const std::string& key) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint32_t> counts_;
};

/// Stores `value` and returns a proxy whose target is evicted from the
/// channel after exactly `consumers` resolutions across any processes
/// (each consumer resolving its own deserialized copy once; re-reads hit
/// the proxy's locally cached target).
template <typename T>
Proxy<T> proxy_with_refs(Store& store, const T& value,
                         std::uint32_t consumers) {
  if (consumers == 0) {
    throw ProxyResolutionError("proxy_with_refs: zero consumers");
  }
  const Key key = store.put(value);
  RefCountRegistry::for_store(store.name())->set(key.canonical(), consumers);
  FactoryDescriptor descriptor{store.name(), key, store.connector().config(),
                               /*evict=*/false};
  descriptor.ref_counted = true;
  return Proxy<T>(make_descriptor_factory<T>(std::move(descriptor)));
}

}  // namespace ps::core
