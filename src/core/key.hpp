// Object keys.
//
// A Connector's put returns "a uniquely identifying key (a tuple of
// metadata)" (paper section 3.4). Keys carry an object id plus
// connector-specific metadata — e.g. the GlobusConnector's (object_id,
// transfer_task_id) or the EndpointConnector's (object_id, endpoint_id).
#pragma once

#include <map>
#include <string>
#include <tuple>

#include "serde/serde.hpp"

namespace ps::core {

struct Key {
  /// Unique object identifier (typically a UUID string).
  std::string object_id;
  /// Connector-specific metadata fields.
  std::map<std::string, std::string> meta;

  /// Stable string used for cache indexing and logging.
  std::string canonical() const;

  /// Metadata accessor that throws ConnectorError on missing fields,
  /// producing a clearer error than map::at.
  const std::string& field(const std::string& name) const;

  bool operator==(const Key&) const = default;
  auto operator<=>(const Key&) const = default;

  auto serde_members() { return std::tie(object_id, meta); }
  auto serde_members() const { return std::tie(object_id, meta); }
};

}  // namespace ps::core
