// The Connector protocol (paper section 3.4).
//
// A Connector is a low-level interface to a mediated communication channel
// operating on byte strings and keys. Implementations must provide evict,
// exists, get, and put; a serializable ConnectorConfig allows a factory that
// travels to another process to reconstruct an equivalent connector there
// (the Store re-registration mechanism of section 3.5). Third-party
// connectors plug in through the ConnectorRegistry.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "core/future.hpp"
#include "core/key.hpp"
#include "serde/serde.hpp"

namespace ps::core {

/// Serializable description sufficient to reconstruct a connector in
/// another process (addresses, paths, policies — never live handles).
struct ConnectorConfig {
  std::string type;
  std::map<std::string, std::string> params;

  bool operator==(const ConnectorConfig&) const = default;

  auto serde_members() { return std::tie(type, params); }
  auto serde_members() const { return std::tie(type, params); }

  const std::string& param(const std::string& name) const;
  std::string param_or(const std::string& name, std::string fallback) const;
};

/// Constraints a producer attaches to an individual put/proxy call.
/// Interpreted by policy-routing connectors (MultiConnector); plain
/// connectors ignore them.
struct PutHints {
  /// Tags the chosen channel must carry (e.g. sites that must be able to
  /// access the object: {"theta", "remote-gpu"}).
  std::set<std::string> required_tags;

  bool operator==(const PutHints&) const = default;

  auto serde_members() { return std::tie(required_tags); }
  auto serde_members() const { return std::tie(required_tags); }
};

/// Capability summary used for Table 1 and MultiConnector policies.
struct ConnectorTraits {
  std::string storage;     // "disk", "memory", "hybrid"
  bool intra_site = false;
  bool inter_site = false;
  bool persistent = false;
};

class Connector {
 public:
  virtual ~Connector() = default;

  /// Connector type name (e.g. "file", "redis", "endpoint").
  virtual std::string type() const = 0;

  /// Serializable reconstruction recipe for this connector.
  virtual ConnectorConfig config() const = 0;

  virtual ConnectorTraits traits() const = 0;

  /// Stores `data`, returning a key that any process can later resolve.
  virtual Key put(BytesView data) = 0;

  /// Stores `data` with routing constraints. Connectors without policy
  /// routing ignore the hints.
  virtual Key put_hinted(BytesView data, const PutHints& hints) {
    (void)hints;
    return put(data);
  }

  /// Stores `data` under a caller-chosen key (required for data-flow
  /// proxies, where consumers hold keys to objects produced later).
  /// Returns false when the connector does not support addressed writes.
  virtual bool put_at(const Key& key, BytesView data) {
    (void)key;
    (void)data;
    return false;
  }

  /// A fresh key an object could later be stored under with put_at.
  /// Only meaningful for connectors where put_at returns true.
  virtual Key reserve_key() {
    throw ConnectorError(type() + ": addressed writes not supported");
  }

  /// Stores many objects. The default loops over put; connectors with bulk
  /// transfer support (Globus) override this to batch.
  virtual std::vector<Key> put_batch(const std::vector<Bytes>& items);

  /// Retrieves the object, or nullopt if it does not exist (evicted, never
  /// stored, or expired).
  virtual std::optional<Bytes> get(const Key& key) = 0;

  /// Retrieves many objects, position-for-position (nullopt per missing
  /// key). The default loops over get; connectors with a pipelined wire
  /// protocol (kv, endpoint) override this so a whole batch costs one
  /// round trip (mirrors put_batch).
  virtual std::vector<std::optional<Bytes>> get_batch(
      const std::vector<Key>& keys);

  virtual bool exists(const Key& key) = 0;

  /// Presence check for many keys, position-for-position. The default loops
  /// over exists; connectors with a pipelined wire protocol (kv) override
  /// this so a whole probe batch costs one round trip — swarm chunk
  /// discovery issues one of these per backend.
  virtual std::vector<bool> exists_batch(const std::vector<Key>& keys);

  /// Removes the object. Eviction of a missing key is a no-op.
  virtual void evict(const Key& key) = 0;

  /// Removes many objects. The default loops over evict; connectors with a
  /// pipelined wire protocol (kv) override this so a whole eviction batch
  /// costs one round trip (the cleanup dual of exists_batch) — stream
  /// payload eviction and swarm manifest cleanup issue one per backend.
  virtual void evict_batch(const std::vector<Key>& keys);

  // -- asynchronous protocol ------------------------------------------------
  //
  // Every sync operation has a futures-based twin. The defaults adapt the
  // sync op through the shared bounded AsyncExecutor — existing connectors
  // work unchanged — while natively non-blocking channels override them to
  // pipeline without an executor hop (LocalConnector completes inline).
  // Contract: the connector must outlive any future it returned; waiting a
  // future merges the operation's virtual completion time (core/future.hpp).

  /// Begins retrieving the object; the future completes with the value or
  /// nullopt.
  virtual Future<std::optional<Bytes>> get_async(const Key& key);

  /// Begins storing `data` (copied into the background op); the future
  /// completes with the minted key.
  virtual Future<Key> put_async(BytesView data);

  virtual Future<bool> exists_async(const Key& key);

  virtual Future<Unit> evict_async(const Key& key);

  /// Begins retrieving many objects; the future completes with the batch,
  /// position-for-position. The default adapts get_batch through the
  /// executor; completion-driven connectors (kv, endpoint) override it to
  /// issue the batch onto the wire with no worker held.
  virtual Future<std::vector<std::optional<Bytes>>> get_batch_async(
      const std::vector<Key>& keys);

  /// Releases resources. Further operations may throw ConnectorError.
  virtual void close() {}
};

/// Global registry mapping connector type names to reconstruction functions.
/// Mirrors Python's import-time registration: the registry is process-wide
/// (code, not data), while connector *instances* live per simulated process.
class ConnectorRegistry {
 public:
  using FactoryFn =
      std::function<std::shared_ptr<Connector>(const ConnectorConfig&)>;

  static ConnectorRegistry& instance();

  /// Registers `fn` for connector type `type`. Re-registration replaces.
  void register_type(const std::string& type, FactoryFn fn);

  /// Reconstructs a connector from its config in the current process.
  /// Throws NotRegisteredError for unknown types.
  std::shared_ptr<Connector> reconstruct(const ConnectorConfig& config) const;

  bool has_type(const std::string& type) const;
  std::vector<std::string> types() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, FactoryFn> factories_;
};

/// Helper for static registration:
///   namespace { const ConnectorRegistration reg("file", &make_file); }
struct ConnectorRegistration {
  ConnectorRegistration(const std::string& type,
                        ConnectorRegistry::FactoryFn fn) {
    ConnectorRegistry::instance().register_type(type, std::move(fn));
  }
};

}  // namespace ps::core
