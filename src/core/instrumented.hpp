// InstrumentedConnector: metrics decorator over any Connector.
//
// Wraps a connector and times put/get/exists/evict/put_batch per connector
// *type* into the process-wide MetricsRegistry — counters
// "connector.<type>.<op>" plus latency histograms ".vtime" (virtual seconds,
// deterministic) and ".wall" (real seconds). Everything else — config,
// traits, hints, addressed writes — passes through untouched, so a wrapped
// connector is substitutable anywhere the raw one is: proxies minted against
// it reconstruct the *raw* connector type from config() in other processes.
// Metric references are resolved once at construction; per-op overhead when
// the global obs switch is off is a single relaxed load.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/connector.hpp"
#include "obs/metrics.hpp"

namespace ps::core {

class InstrumentedConnector : public Connector {
 public:
  explicit InstrumentedConnector(std::shared_ptr<Connector> inner);

  /// Wraps `inner` unless it is already instrumented (idempotent).
  static std::shared_ptr<Connector> wrap(std::shared_ptr<Connector> inner);

  std::string type() const override { return inner_->type(); }
  ConnectorConfig config() const override { return inner_->config(); }
  ConnectorTraits traits() const override { return inner_->traits(); }

  Key put(BytesView data) override;
  Key put_hinted(BytesView data, const PutHints& hints) override;
  bool put_at(const Key& key, BytesView data) override;
  Key reserve_key() override;
  std::vector<Key> put_batch(const std::vector<Bytes>& items) override;
  std::optional<Bytes> get(const Key& key) override;
  std::vector<std::optional<Bytes>> get_batch(
      const std::vector<Key>& keys) override;
  bool exists(const Key& key) override;
  void evict(const Key& key) override;
  void evict_batch(const std::vector<Key>& keys) override;
  void close() override;

  // Async ops forward to the inner connector's async path and record
  // end-to-end latency (submit → completion) via an on_ready continuation.
  // The queue-wait vs service-time split for adapter-backed ops lives in
  // the async.executor.* histograms, where both sides of the hand-off are
  // visible.
  Future<std::optional<Bytes>> get_async(const Key& key) override;
  Future<Key> put_async(BytesView data) override;
  Future<bool> exists_async(const Key& key) override;
  Future<Unit> evict_async(const Key& key) override;
  Future<std::vector<std::optional<Bytes>>> get_batch_async(
      const std::vector<Key>& keys) override;

  Connector& inner() { return *inner_; }
  const Connector& inner() const { return *inner_; }

 private:
  /// Metric handles for one operation, resolved once.
  struct Op {
    obs::Counter& count;
    obs::Histogram& vtime;
    obs::Histogram& wall;
    /// "connector.<type>.<op>", reused as the trace span name.
    std::string span_name;
  };

  static Op make_op(const std::string& type, const char* op);

  /// Counts the op and observes end-to-end latency when `future` completes.
  template <typename T>
  Future<T> record_async(const Op& op, Future<T> future);

  std::shared_ptr<Connector> inner_;
  Op put_;
  Op get_;
  Op exists_;
  Op evict_;
  Op put_batch_;
  Op get_batch_;
  Op get_async_;
  Op put_async_;
  Op exists_async_;
  Op evict_async_;
  Op evict_batch_;
  Op get_batch_async_;
  /// Items per put_batch call ("connector.<type>.put_batch.items") — makes
  /// batching visible: many small batches vs few large ones read directly
  /// off count/mean.
  obs::Histogram& put_batch_items_;
  /// Items per get_batch call ("connector.<type>.get_batch.items").
  obs::Histogram& get_batch_items_;
  /// Items per evict_batch call ("connector.<type>.evict_batch.items").
  obs::Histogram& evict_batch_items_;
};

}  // namespace ps::core
