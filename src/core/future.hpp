// Completion-callback promise/future for the asynchronous operation core.
//
// ps::core::Future<T> is the result handle every *_async Connector/Store
// operation returns. Unlike std::future it is built for the simulation's
// virtual-time model: the completing thread stamps its virtual "now" into
// the shared state, and every waiter merges that stamp into its own clock
// (`sim::vmerge`) — so communication started in the background overlaps
// computation, and the eventual wait observes max(compute, transfer), the
// paper's §5.3 async-resolve semantics. Completion callbacks (`on_ready`,
// `then`) run on the completing thread, which keeps continuation costs
// charged to the operation that caused them; no thread is ever spawned
// here (see core/async.hpp for the bounded executor that runs the work).
//
// Futures are copyable; copies share one state, and any number of threads
// may wait on it (each merges the completion vtime). Values are returned
// by const reference from wait() — callers copy only when they need to.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/vtime.hpp"

namespace ps::core {

/// Unit result for async operations with nothing to return (evict).
struct Unit {
  bool operator==(const Unit&) const = default;
};

namespace detail {

template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<T> value;
  std::exception_ptr error;
  bool ready = false;
  /// Virtual time of the completing thread at completion; merged by every
  /// waiter so the operation's cost reaches whoever consumes the result.
  sim::SimTime done_vtime = 0.0;
  /// Continuations registered before completion; run (then released) on
  /// the completing thread immediately after the state becomes ready.
  std::vector<std::function<void()>> callbacks;
};

template <typename T>
void complete(const std::shared_ptr<FutureState<T>>& state,
              std::optional<T> value, std::exception_ptr error) {
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard lock(state->mu);
    if (state->ready) {
      throw Error("Promise: already completed");
    }
    state->value = std::move(value);
    state->error = error;
    state->done_vtime = sim::vnow();
    state->ready = true;
    callbacks.swap(state->callbacks);
  }
  state->cv.notify_all();
  for (auto& callback : callbacks) callback();
}

}  // namespace detail

template <typename T>
class Promise;

template <typename T>
class Future {
 public:
  using value_type = T;

  /// An invalid (default-constructed) future; valid() is false.
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  bool ready() const {
    check_valid();
    std::lock_guard lock(state_->mu);
    return state_->ready;
  }

  /// Blocks (real time) for completion, merges the completing thread's
  /// virtual time into the caller's clock, rethrows the operation's error,
  /// and returns the stored value by reference. Safe to call from many
  /// threads; each one merges. The reference lives only as long as some
  /// Future/Promise holds the shared state — on a temporary future
  /// (`f().wait()`), use get() instead of binding the reference.
  const T& wait() const {
    check_valid();
    std::unique_lock lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->ready; });
    const sim::SimTime done = state_->done_vtime;
    lock.unlock();
    sim::vmerge(done);
    if (state_->error) std::rethrow_exception(state_->error);
    return *state_->value;
  }

  /// wait() returning a copy of the value (futures are shared; the stored
  /// value stays in place for other holders).
  T get() const { return wait(); }

  /// Virtual completion time. Only meaningful once ready().
  sim::SimTime done_vtime() const {
    check_valid();
    std::lock_guard lock(state_->mu);
    return state_->done_vtime;
  }

  /// Registers `fn` to run when the future completes — on the completing
  /// thread, after the value/error is published. If the future is already
  /// complete, runs `fn` inline on the caller. `fn` must not throw.
  void on_ready(std::function<void()> fn) const {
    check_valid();
    {
      std::lock_guard lock(state_->mu);
      if (!state_->ready) {
        state_->callbacks.push_back(std::move(fn));
        return;
      }
    }
    fn();
  }

  /// Derived future: applies `fn` to the value on the completing thread
  /// (so continuation cost is charged where the operation finished) and
  /// completes the returned future with the result. Errors pass through;
  /// a throwing `fn` fails the derived future.
  template <typename F>
  auto then(F fn) const -> Future<std::invoke_result_t<F, const T&>> {
    using R = std::invoke_result_t<F, const T&>;
    check_valid();
    Promise<R> promise;
    Future<R> derived = promise.future();
    auto state = state_;
    on_ready([state, promise, fn = std::move(fn)]() mutable {
      if (state->error) {
        promise.set_error(state->error);
        return;
      }
      try {
        promise.set_value(fn(*state->value));
      } catch (...) {
        promise.set_error(std::current_exception());
      }
    });
    return derived;
  }

  /// True when `other` shares this future's state (same operation).
  bool same_state(const Future& other) const {
    return state_ == other.state_;
  }

 private:
  friend class Promise<T>;

  explicit Future(std::shared_ptr<detail::FutureState<T>> state)
      : state_(std::move(state)) {}

  void check_valid() const {
    if (!state_) throw Error("Future: invalid (default-constructed)");
  }

  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Completion side of a Future. Copyable (copies share the state); exactly
/// one set_value/set_error call is allowed across all copies.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::FutureState<T>>()) {}

  Future<T> future() const { return Future<T>(state_); }

  /// Publishes the value, stamps the calling thread's virtual time as the
  /// completion time, wakes waiters, and runs registered callbacks.
  void set_value(T value) const {
    detail::complete(state_, std::optional<T>(std::move(value)), nullptr);
  }

  void set_error(std::exception_ptr error) const {
    detail::complete<T>(state_, std::nullopt, error);
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// A future already completed with `value` at the caller's current virtual
/// time — what natively-synchronous fast paths (in-memory connectors, cache
/// hits) return so async callers pay no executor round trip.
template <typename T>
Future<T> make_ready_future(T value) {
  Promise<T> promise;
  promise.set_value(std::move(value));
  return promise.future();
}

/// Completes `promise` as if the completing thread's clock read `done`:
/// temporarily sets the caller's virtual time to `done`, publishes the value
/// (stamping done_vtime = `done` and running continuations at that time),
/// then restores the caller's clock. This is how completion-driven wire
/// paths (net::PipelinedChannel) stamp each in-flight request's own
/// completion vtime without advancing the issuing thread.
template <typename T>
void complete_at(const Promise<T>& promise, T value, sim::SimTime done) {
  const sim::SimTime saved = sim::vnow();
  sim::vset(done);
  promise.set_value(std::move(value));
  sim::vset(saved);
}

}  // namespace ps::core
