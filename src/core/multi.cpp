#include "core/multi.hpp"

#include <algorithm>

#include "common/hex.hpp"
#include "serde/serde.hpp"

namespace ps::core {

namespace {
constexpr const char* kChildField = "multi_connector";
}  // namespace

bool Policy::matches(std::uint64_t size, const PutHints& hints) const {
  if (size < min_size || size > max_size) return false;
  return std::includes(tags.begin(), tags.end(), hints.required_tags.begin(),
                       hints.required_tags.end());
}

MultiConnector::MultiConnector(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  if (entries_.empty()) {
    throw ConnectorError("MultiConnector: no connectors configured");
  }
  for (const Entry& entry : entries_) {
    if (!entry.connector) {
      throw ConnectorError("MultiConnector: null connector for '" +
                           entry.name + "'");
    }
    const auto count = std::count_if(
        entries_.begin(), entries_.end(),
        [&](const Entry& e) { return e.name == entry.name; });
    if (count != 1) {
      throw ConnectorError("MultiConnector: duplicate entry name '" +
                           entry.name + "'");
    }
  }
}

ConnectorConfig MultiConnector::config() const {
  ConnectorConfig cfg{.type = "multi", .params = {}};
  cfg.params["count"] = std::to_string(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const std::string idx = std::to_string(i);
    cfg.params["name_" + idx] = entries_[i].name;
    cfg.params["connector_" + idx] =
        to_hex(serde::to_bytes(entries_[i].connector->config()));
    cfg.params["policy_" + idx] = to_hex(serde::to_bytes(entries_[i].policy));
  }
  return cfg;
}

ConnectorTraits MultiConnector::traits() const {
  ConnectorTraits t{.storage = "mixed",
                    .intra_site = false,
                    .inter_site = false,
                    .persistent = true};
  for (const Entry& entry : entries_) {
    const ConnectorTraits child = entry.connector->traits();
    t.intra_site = t.intra_site || child.intra_site;
    t.inter_site = t.inter_site || child.inter_site;
    // The aggregate persists only if every routable channel persists.
    t.persistent = t.persistent && child.persistent;
  }
  return t;
}

const MultiConnector::Entry& MultiConnector::select(
    std::uint64_t size, const PutHints& hints) const {
  const Entry* best = nullptr;
  for (const Entry& entry : entries_) {
    if (!entry.policy.matches(size, hints)) continue;
    // Strictly-greater keeps the earliest entry on priority ties.
    if (best == nullptr || entry.policy.priority > best->policy.priority) {
      best = &entry;
    }
  }
  if (best == nullptr) {
    throw NoPolicyMatchError(
        "MultiConnector: no policy matches object of size " +
        std::to_string(size));
  }
  return *best;
}

Key MultiConnector::put(BytesView data) { return put_hinted(data, {}); }

Key MultiConnector::put_hinted(BytesView data, const PutHints& hints) {
  const Entry& entry = select(data.size(), hints);
  Key key = entry.connector->put(data);
  key.meta[kChildField] = entry.name;
  return key;
}

std::vector<Key> MultiConnector::put_batch(const std::vector<Bytes>& items) {
  // Group items per selected child so bulk-capable children still batch.
  std::vector<Key> keys(items.size());
  std::vector<std::size_t> order(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return &select(items[a].size(), {}) < &select(items[b].size(), {});
  });
  std::size_t start = 0;
  while (start < order.size()) {
    const Entry& entry = select(items[order[start]].size(), {});
    std::size_t end = start;
    std::vector<Bytes> group;
    while (end < order.size() &&
           &select(items[order[end]].size(), {}) == &entry) {
      group.push_back(items[order[end]]);
      ++end;
    }
    std::vector<Key> group_keys = entry.connector->put_batch(group);
    for (std::size_t j = 0; j < group_keys.size(); ++j) {
      group_keys[j].meta[kChildField] = entry.name;
      keys[order[start + j]] = std::move(group_keys[j]);
    }
    start = end;
  }
  return keys;
}

const MultiConnector::Entry& MultiConnector::child_for(const Key& key) const {
  const std::string& name = key.field(kChildField);
  for (const Entry& entry : entries_) {
    if (entry.name == name) return entry;
  }
  throw ConnectorError("MultiConnector: key routed to unknown child '" + name +
                       "'");
}

std::optional<Bytes> MultiConnector::get(const Key& key) {
  return child_for(key).connector->get(key);
}

std::vector<std::optional<Bytes>> MultiConnector::get_batch(
    const std::vector<Key>& keys) {
  // Group keys per owning child so bulk-capable children still batch
  // (mirrors put_batch's per-child grouping on the read side).
  std::vector<std::optional<Bytes>> out(keys.size());
  std::vector<std::size_t> order(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return &child_for(keys[a]) < &child_for(keys[b]);
                   });
  std::size_t start = 0;
  while (start < order.size()) {
    const Entry& entry = child_for(keys[order[start]]);
    std::size_t end = start;
    std::vector<Key> group;
    while (end < order.size() && &child_for(keys[order[end]]) == &entry) {
      group.push_back(keys[order[end]]);
      ++end;
    }
    std::vector<std::optional<Bytes>> group_out =
        entry.connector->get_batch(group);
    for (std::size_t j = 0; j < group_out.size(); ++j) {
      out[order[start + j]] = std::move(group_out[j]);
    }
    start = end;
  }
  return out;
}

Future<std::optional<Bytes>> MultiConnector::get_async(const Key& key) {
  return child_for(key).connector->get_async(key);
}

Future<bool> MultiConnector::exists_async(const Key& key) {
  return child_for(key).connector->exists_async(key);
}

Future<Unit> MultiConnector::evict_async(const Key& key) {
  return child_for(key).connector->evict_async(key);
}

bool MultiConnector::exists(const Key& key) {
  return child_for(key).connector->exists(key);
}

std::vector<bool> MultiConnector::exists_batch(const std::vector<Key>& keys) {
  // Same per-child grouping as get_batch, on the presence-probe side.
  std::vector<bool> out(keys.size());
  std::vector<std::size_t> order(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return &child_for(keys[a]) < &child_for(keys[b]);
                   });
  std::size_t start = 0;
  while (start < order.size()) {
    const Entry& entry = child_for(keys[order[start]]);
    std::size_t end = start;
    std::vector<Key> group;
    while (end < order.size() && &child_for(keys[order[end]]) == &entry) {
      group.push_back(keys[order[end]]);
      ++end;
    }
    const std::vector<bool> group_out = entry.connector->exists_batch(group);
    for (std::size_t j = 0; j < group_out.size(); ++j) {
      out[order[start + j]] = group_out[j];
    }
    start = end;
  }
  return out;
}

void MultiConnector::evict(const Key& key) {
  child_for(key).connector->evict(key);
}

void MultiConnector::evict_batch(const std::vector<Key>& keys) {
  // Same per-child grouping as get_batch, on the cleanup side.
  std::vector<std::size_t> order(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return &child_for(keys[a]) < &child_for(keys[b]);
                   });
  std::size_t start = 0;
  while (start < order.size()) {
    const Entry& entry = child_for(keys[order[start]]);
    std::size_t end = start;
    std::vector<Key> group;
    while (end < order.size() && &child_for(keys[order[end]]) == &entry) {
      group.push_back(keys[order[end]]);
      ++end;
    }
    entry.connector->evict_batch(group);
    start = end;
  }
}

Future<std::vector<std::optional<Bytes>>> MultiConnector::get_batch_async(
    const std::vector<Key>& keys) {
  if (!keys.empty()) {
    const Entry& first = child_for(keys.front());
    bool single_child = true;
    for (const Key& key : keys) {
      if (&child_for(key) != &first) {
        single_child = false;
        break;
      }
    }
    if (single_child) return first.connector->get_batch_async(keys);
  }
  return Connector::get_batch_async(keys);
}

void MultiConnector::close() {
  for (const Entry& entry : entries_) entry.connector->close();
}

namespace {

std::shared_ptr<Connector> reconstruct_multi(const ConnectorConfig& cfg) {
  const std::size_t count = std::stoul(cfg.param("count"));
  std::vector<MultiConnector::Entry> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string idx = std::to_string(i);
    auto child_cfg = serde::from_bytes<ConnectorConfig>(
        from_hex(cfg.param("connector_" + idx)));
    auto policy =
        serde::from_bytes<Policy>(from_hex(cfg.param("policy_" + idx)));
    entries.push_back(MultiConnector::Entry{
        cfg.param("name_" + idx),
        ConnectorRegistry::instance().reconstruct(child_cfg), policy});
  }
  return std::make_shared<MultiConnector>(std::move(entries));
}

const ConnectorRegistration kRegisterMulti("multi", &reconstruct_multi);

}  // namespace

}  // namespace ps::core
