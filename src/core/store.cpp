#include "core/store.hpp"

#include <map>

namespace ps::core {

Store::Store(std::string name, std::shared_ptr<Connector> connector,
             Options options)
    : name_(std::move(name)),
      connector_(std::move(connector)),
      options_(options),
      cache_(options.cache_size) {
  if (!connector_) {
    throw ConnectorError("Store '" + name_ + "': null connector");
  }
}

void Store::close() {
  bool expected = false;
  if (closed_.compare_exchange_strong(expected, true)) {
    connector_->close();
  }
}

Store::Metrics Store::metrics() const {
  Metrics m;
  m.puts = metrics_puts_.load();
  m.gets = metrics_gets_.load();
  m.exists_calls = metrics_exists_.load();
  m.cache_hits = metrics_cache_hits_.load();
  m.evicts = metrics_evicts_.load();
  m.cache_evictions = cache_.evictions();
  m.bytes_put = metrics_bytes_put_.load();
  m.bytes_got = metrics_bytes_got_.load();
  return m;
}

namespace {

/// The per-process registry slot type (see Process::local).
struct StoreRegistry {
  std::mutex mu;
  std::map<std::string, std::shared_ptr<Store>> stores;
};

StoreRegistry& registry() {
  return proc::current_process().local<StoreRegistry>();
}

}  // namespace

void register_store(std::shared_ptr<Store> store, bool overwrite) {
  if (!store) throw NotRegisteredError("register_store: null store");
  StoreRegistry& reg = registry();
  std::lock_guard lock(reg.mu);
  const auto it = reg.stores.find(store->name());
  if (it != reg.stores.end() && it->second != store && !overwrite) {
    throw NotRegisteredError("store '" + store->name() +
                             "' already registered in this process");
  }
  reg.stores[store->name()] = std::move(store);
}

std::shared_ptr<Store> get_store(const std::string& name) {
  StoreRegistry& reg = registry();
  std::lock_guard lock(reg.mu);
  const auto it = reg.stores.find(name);
  return it == reg.stores.end() ? nullptr : it->second;
}

void unregister_store(const std::string& name) {
  StoreRegistry& reg = registry();
  std::lock_guard lock(reg.mu);
  reg.stores.erase(name);
}

std::shared_ptr<Store> get_or_register_store(
    const FactoryDescriptor& descriptor) {
  StoreRegistry& reg = registry();
  std::lock_guard lock(reg.mu);
  const auto it = reg.stores.find(descriptor.store_name);
  if (it != reg.stores.end()) return it->second;
  // Re-create the store in this process from the self-contained descriptor
  // (paper section 3.5: "p will initialize and register a new Store
  // instance ... with the appropriate Connector when p is resolved").
  auto connector = ConnectorRegistry::instance().reconstruct(
      descriptor.connector);
  auto store = std::make_shared<Store>(descriptor.store_name,
                                       std::move(connector));
  reg.stores[descriptor.store_name] = store;
  return store;
}

}  // namespace ps::core
