// AsyncExecutor: the bounded worker pool behind every *_async operation.
//
// Replaces the unbounded thread-per-op std::async pattern: all background
// work in the resolve path — connector sync-op adapters, async proxy
// resolution, prefetch — runs on one shared pool with a bounded submission
// queue (submit() blocks when full, back-pressuring producers instead of
// growing without limit).
//
// Jobs carry their submitter's context: the worker enters the submitting
// thread's simulated process (ProcessScope) and seeds its virtual clock
// from the submitter's "now" before running, so virtual-time costs charged
// by the job accumulate exactly as if the submitter had run it — the
// overlap with the submitter's own subsequent compute is realized when the
// result future's wait() merges the job's completion vtime.
//
// Observability (process-wide registry):
//   async.executor.submitted / completed / saturated   counters
//   async.executor.queue_depth / workers               gauges
//   async.executor.queue_wait.wall                     histogram
//   async.executor.service.wall / service.vtime        histograms
// The queue-wait vs service-time split is measured here, where both sides
// of the hand-off are visible; per-op latency histograms live in
// InstrumentedConnector.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/future.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "proc/process.hpp"

namespace ps::core {

class AsyncExecutor {
 public:
  struct Options {
    /// Worker threads; 0 picks min(4, hardware_concurrency).
    std::size_t workers = 0;
    /// Maximum queued (not yet running) jobs; submit() blocks beyond this.
    std::size_t max_queue = 256;
  };

  AsyncExecutor() : AsyncExecutor(Options()) {}
  explicit AsyncExecutor(Options options);
  ~AsyncExecutor();

  AsyncExecutor(const AsyncExecutor&) = delete;
  AsyncExecutor& operator=(const AsyncExecutor&) = delete;

  /// The process-wide shared pool (intentionally leaked, like the metric
  /// and connector registries, so jobs in flight at exit never race static
  /// destruction).
  static AsyncExecutor& shared();

  /// Enqueues `fn` to run on a worker inside the submitting thread's
  /// simulated process with its virtual clock seeded from the submitter's
  /// vnow. Blocks while the queue is at capacity (bounded back-pressure);
  /// counts such submissions in async.executor.saturated.
  void submit(std::function<void()> fn);

  /// Runs `op` asynchronously and returns a future of its result; errors
  /// thrown by `op` fail the future. This is the sync→async adapter the
  /// default Connector::*_async implementations use.
  template <typename T, typename F>
  Future<T> run(F op) {
    Promise<T> promise;
    Future<T> future = promise.future();
    submit([promise, op = std::move(op)]() mutable {
      try {
        promise.set_value(op());
      } catch (...) {
        promise.set_error(std::current_exception());
      }
    });
    return future;
  }

  std::size_t workers() const { return threads_.size(); }
  std::size_t queue_depth() const;

 private:
  struct Job {
    std::function<void()> fn;
    proc::Process* process;
    sim::SimTime submit_vtime;
    std::chrono::steady_clock::time_point enqueued;
    /// Submitter's trace context: the worker adopts it so spans opened by
    /// the job parent correctly, and the measured queue wait is recorded as
    /// an "executor-queue" segment on the submitter's critical path.
    obs::TraceContext ctx;
  };

  void worker_loop();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;

  obs::Counter& submitted_;
  obs::Counter& completed_;
  obs::Counter& saturated_;
  obs::Gauge& depth_gauge_;
  obs::Gauge& workers_gauge_;
  obs::Histogram& queue_wait_wall_;
  obs::Histogram& service_wall_;
  obs::Histogram& service_vtime_;
};

}  // namespace ps::core
