#include "core/connector.hpp"

#include "core/async.hpp"

namespace ps::core {

const std::string& ConnectorConfig::param(const std::string& name) const {
  const auto it = params.find(name);
  if (it == params.end()) {
    throw ConnectorError("ConnectorConfig(" + type + ") missing param '" +
                         name + "'");
  }
  return it->second;
}

std::string ConnectorConfig::param_or(const std::string& name,
                                      std::string fallback) const {
  const auto it = params.find(name);
  return it == params.end() ? std::move(fallback) : it->second;
}

std::vector<Key> Connector::put_batch(const std::vector<Bytes>& items) {
  std::vector<Key> keys;
  keys.reserve(items.size());
  for (const Bytes& item : items) keys.push_back(put(item));
  return keys;
}

std::vector<std::optional<Bytes>> Connector::get_batch(
    const std::vector<Key>& keys) {
  std::vector<std::optional<Bytes>> out;
  out.reserve(keys.size());
  for (const Key& key : keys) out.push_back(get(key));
  return out;
}

std::vector<bool> Connector::exists_batch(const std::vector<Key>& keys) {
  std::vector<bool> out;
  out.reserve(keys.size());
  for (const Key& key : keys) out.push_back(exists(key));
  return out;
}

void Connector::evict_batch(const std::vector<Key>& keys) {
  for (const Key& key : keys) evict(key);
}

// Sync→async adapters: run the blocking op on the shared bounded pool. The
// job is charged at the submitter's virtual time; waiting the future merges
// the op's completion time (overlap realized at the merge point).

Future<std::optional<Bytes>> Connector::get_async(const Key& key) {
  return AsyncExecutor::shared().run<std::optional<Bytes>>(
      [this, key] { return get(key); });
}

Future<Key> Connector::put_async(BytesView data) {
  return AsyncExecutor::shared().run<Key>(
      [this, copy = Bytes(data)] { return put(copy); });
}

Future<bool> Connector::exists_async(const Key& key) {
  return AsyncExecutor::shared().run<bool>(
      [this, key] { return exists(key); });
}

Future<Unit> Connector::evict_async(const Key& key) {
  return AsyncExecutor::shared().run<Unit>([this, key] {
    evict(key);
    return Unit{};
  });
}

Future<std::vector<std::optional<Bytes>>> Connector::get_batch_async(
    const std::vector<Key>& keys) {
  return AsyncExecutor::shared().run<std::vector<std::optional<Bytes>>>(
      [this, keys] { return get_batch(keys); });
}

ConnectorRegistry& ConnectorRegistry::instance() {
  static ConnectorRegistry* registry = new ConnectorRegistry();
  return *registry;
}

void ConnectorRegistry::register_type(const std::string& type, FactoryFn fn) {
  std::lock_guard lock(mu_);
  factories_[type] = std::move(fn);
}

std::shared_ptr<Connector> ConnectorRegistry::reconstruct(
    const ConnectorConfig& config) const {
  FactoryFn fn;
  {
    std::lock_guard lock(mu_);
    const auto it = factories_.find(config.type);
    if (it == factories_.end()) {
      throw NotRegisteredError("no connector type registered as '" +
                               config.type + "'");
    }
    fn = it->second;
  }
  return fn(config);
}

bool ConnectorRegistry::has_type(const std::string& type) const {
  std::lock_guard lock(mu_);
  return factories_.contains(type);
}

std::vector<std::string> ConnectorRegistry::types() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [type, fn] : factories_) out.push_back(type);
  return out;
}

}  // namespace ps::core
