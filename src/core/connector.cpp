#include "core/connector.hpp"

namespace ps::core {

const std::string& ConnectorConfig::param(const std::string& name) const {
  const auto it = params.find(name);
  if (it == params.end()) {
    throw ConnectorError("ConnectorConfig(" + type + ") missing param '" +
                         name + "'");
  }
  return it->second;
}

std::string ConnectorConfig::param_or(const std::string& name,
                                      std::string fallback) const {
  const auto it = params.find(name);
  return it == params.end() ? std::move(fallback) : it->second;
}

std::vector<Key> Connector::put_batch(const std::vector<Bytes>& items) {
  std::vector<Key> keys;
  keys.reserve(items.size());
  for (const Bytes& item : items) keys.push_back(put(item));
  return keys;
}

ConnectorRegistry& ConnectorRegistry::instance() {
  static ConnectorRegistry* registry = new ConnectorRegistry();
  return *registry;
}

void ConnectorRegistry::register_type(const std::string& type, FactoryFn fn) {
  std::lock_guard lock(mu_);
  factories_[type] = std::move(fn);
}

std::shared_ptr<Connector> ConnectorRegistry::reconstruct(
    const ConnectorConfig& config) const {
  FactoryFn fn;
  {
    std::lock_guard lock(mu_);
    const auto it = factories_.find(config.type);
    if (it == factories_.end()) {
      throw NotRegisteredError("no connector type registered as '" +
                               config.type + "'");
    }
    fn = it->second;
  }
  return fn(config);
}

bool ConnectorRegistry::has_type(const std::string& type) const {
  std::lock_guard lock(mu_);
  return factories_.contains(type);
}

std::vector<std::string> ConnectorRegistry::types() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [type, fn] : factories_) out.push_back(type);
  return out;
}

}  // namespace ps::core
