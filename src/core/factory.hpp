// Factories (paper section 3.3).
//
// A factory is a callable that returns the proxy's target object. Factories
// created by a Store are *self-contained*: their serializable descriptor
// carries the store name, the object key, and the connector config, so a
// proxy shipped to another process can re-create the store and connector
// there and resolve the target without any out-of-band state.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <tuple>

#include "core/connector.hpp"
#include "core/key.hpp"
#include "obs/context.hpp"
#include "serde/serde.hpp"

namespace ps::core {

/// Serializable payload of a store-backed factory. This is the entirety of
/// what crosses process boundaries when a proxy is communicated.
struct FactoryDescriptor {
  std::string store_name;
  Key key;
  ConnectorConfig connector;
  /// Evict the object from the channel after the first resolve
  /// (Store.proxy(evict=True) semantics).
  bool evict = false;
  /// Data-flow semantics (I-structures, paper section 6): when > 0, a
  /// resolve of a not-yet-written object polls every `poll_interval_s`
  /// virtual seconds, up to `max_polls` times, instead of failing.
  double poll_interval_s = 0.0;
  std::uint32_t max_polls = 0;
  /// Wide-area reference counting (paper section 6): each resolve
  /// decrements the store's shared counter for this key; the final
  /// reference evicts the object from the channel.
  bool ref_counted = false;
  /// Trace context of the hop that minted this descriptor (invalid when
  /// tracing was off). A remote resolve adopts it so its span is a child
  /// of the proxy-creation span even across process/site boundaries.
  obs::TraceContext trace{};

  bool operator==(const FactoryDescriptor&) const = default;

  auto serde_members() {
    return std::tie(store_name, key, connector, evict, poll_interval_s,
                    max_polls, ref_counted, trace);
  }
  auto serde_members() const {
    return std::tie(store_name, key, connector, evict, poll_interval_s,
                    max_polls, ref_counted, trace);
  }
};

/// A lazy producer of T. Factories are copyable; store-backed factories
/// additionally carry their descriptor and therefore serialize.
template <typename T>
class Factory {
 public:
  Factory() = default;

  /// Ad-hoc factory from any callable (not serializable).
  explicit Factory(std::function<T()> fn) : fn_(std::move(fn)) {}

  /// Store-backed factory: callable plus its serializable descriptor.
  Factory(std::function<T()> fn, FactoryDescriptor descriptor)
      : fn_(std::move(fn)), descriptor_(std::move(descriptor)) {}

  /// Resolves the target object.
  T operator()() const {
    if (!fn_) {
      throw ProxyResolutionError("Factory: empty factory invoked");
    }
    return fn_();
  }

  bool valid() const { return static_cast<bool>(fn_); }

  /// Present only for store-backed factories.
  const std::optional<FactoryDescriptor>& descriptor() const {
    return descriptor_;
  }

 private:
  std::function<T()> fn_;
  std::optional<FactoryDescriptor> descriptor_;
};

}  // namespace ps::core
