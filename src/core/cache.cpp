#include "core/cache.hpp"

namespace ps::core {

ObjectCache::ObjectCache(std::size_t capacity) : capacity_(capacity) {}

void ObjectCache::insert(const std::string& key, std::type_index type,
                         std::shared_ptr<const void> value) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, type, std::move(value)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::pair<std::type_index, std::shared_ptr<const void>> ObjectCache::lookup(
    const std::string& key) {
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return {std::type_index(typeid(void)), nullptr};
  }
  ++hits_;
  // Refresh LRU position.
  lru_.splice(lru_.begin(), lru_, it->second);
  return {it->second->type, it->second->value};
}

bool ObjectCache::contains(const std::string& key) const {
  std::lock_guard lock(mu_);
  return index_.contains(key);
}

void ObjectCache::erase(const std::string& key) {
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

void ObjectCache::clear() {
  std::lock_guard lock(mu_);
  lru_.clear();
  index_.clear();
}

std::size_t ObjectCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

std::size_t ObjectCache::hits() const {
  std::lock_guard lock(mu_);
  return hits_;
}

std::size_t ObjectCache::misses() const {
  std::lock_guard lock(mu_);
  return misses_;
}

std::size_t ObjectCache::evictions() const {
  std::lock_guard lock(mu_);
  return evictions_;
}

}  // namespace ps::core
