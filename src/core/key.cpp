#include "core/key.hpp"

#include "common/error.hpp"

namespace ps::core {

std::string Key::canonical() const {
  std::string out = object_id;
  for (const auto& [k, v] : meta) {
    out += '|';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

const std::string& Key::field(const std::string& name) const {
  const auto it = meta.find(name);
  if (it == meta.end()) {
    throw ConnectorError("Key '" + object_id + "' missing metadata field '" +
                         name + "'");
  }
  return it->second;
}

}  // namespace ps::core
