// LRU cache of deserialized objects.
//
// The Store caches *after* deserialization "to avoid duplicate
// deserializations" (paper section 3.5). Values are type-erased shared
// pointers tagged with their type so a mistyped lookup misses rather than
// aliasing.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <unordered_map>

namespace ps::core {

class ObjectCache {
 public:
  /// `capacity` = maximum number of cached objects (LRU eviction).
  /// Zero disables caching entirely.
  explicit ObjectCache(std::size_t capacity = 16);

  /// Inserts (or refreshes) `value` under `key`.
  template <typename T>
  void put(const std::string& key, std::shared_ptr<const T> value) {
    insert(key, std::type_index(typeid(T)), std::move(value));
  }

  /// Returns the cached object if present *and* of type T; refreshes LRU.
  template <typename T>
  std::shared_ptr<const T> get(const std::string& key) {
    auto [type, value] = lookup(key);
    if (!value || type != std::type_index(typeid(T))) return nullptr;
    return std::static_pointer_cast<const T>(value);
  }

  bool contains(const std::string& key) const;
  void erase(const std::string& key);
  void clear();
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  std::size_t hits() const;
  std::size_t misses() const;

  /// Entries dropped by LRU capacity pressure (never counts erase/clear).
  std::size_t evictions() const;

 private:
  struct Entry {
    std::string key;
    std::type_index type;
    std::shared_ptr<const void> value;
  };

  void insert(const std::string& key, std::type_index type,
              std::shared_ptr<const void> value);
  std::pair<std::type_index, std::shared_ptr<const void>> lookup(
      const std::string& key);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace ps::core
