#include "core/instrumented.hpp"

#include <chrono>

#include "obs/context.hpp"
#include "obs/timer.hpp"
#include "sim/vtime.hpp"

namespace ps::core {

namespace {

/// Resolved metric handles for one recording. When the calling thread's
/// ambient registry is the global one (scoping off — the common case) the
/// construction-time handles are used untouched; under per-process scoping
/// the same names are resolved in the ambient registry so the op lands in
/// the simulated site doing the work.
struct Handles {
  obs::Counter* count;
  obs::Histogram* vtime;
  obs::Histogram* wall;
};

Handles resolve(obs::Counter& count, obs::Histogram& vtime,
                obs::Histogram& wall, const std::string& base) {
  obs::MetricsRegistry& ambient = obs::MetricsRegistry::ambient();
  if (&ambient == &obs::MetricsRegistry::global()) {
    return Handles{&count, &vtime, &wall};
  }
  return Handles{&ambient.counter(base), &ambient.histogram(base + ".vtime"),
                 &ambient.histogram(base + ".wall")};
}

obs::Histogram& resolve_histogram(obs::Histogram& cached,
                                  const std::string& name) {
  obs::MetricsRegistry& ambient = obs::MetricsRegistry::ambient();
  if (&ambient == &obs::MetricsRegistry::global()) return cached;
  return ambient.histogram(name);
}

}  // namespace

InstrumentedConnector::Op InstrumentedConnector::make_op(
    const std::string& type, const char* op) {
  auto& registry = obs::MetricsRegistry::global();
  const std::string base = "connector." + type + "." + op;
  return Op{registry.counter(base), registry.histogram(base + ".vtime"),
            registry.histogram(base + ".wall"), base};
}

InstrumentedConnector::InstrumentedConnector(std::shared_ptr<Connector> inner)
    : inner_(std::move(inner)),
      put_(make_op(inner_->type(), "put")),
      get_(make_op(inner_->type(), "get")),
      exists_(make_op(inner_->type(), "exists")),
      evict_(make_op(inner_->type(), "evict")),
      put_batch_(make_op(inner_->type(), "put_batch")),
      get_batch_(make_op(inner_->type(), "get_batch")),
      get_async_(make_op(inner_->type(), "get_async")),
      put_async_(make_op(inner_->type(), "put_async")),
      exists_async_(make_op(inner_->type(), "exists_async")),
      evict_async_(make_op(inner_->type(), "evict_async")),
      evict_batch_(make_op(inner_->type(), "evict_batch")),
      get_batch_async_(make_op(inner_->type(), "get_batch_async")),
      put_batch_items_(obs::MetricsRegistry::global().histogram(
          "connector." + inner_->type() + ".put_batch.items")),
      get_batch_items_(obs::MetricsRegistry::global().histogram(
          "connector." + inner_->type() + ".get_batch.items")),
      evict_batch_items_(obs::MetricsRegistry::global().histogram(
          "connector." + inner_->type() + ".evict_batch.items")) {}

std::shared_ptr<Connector> InstrumentedConnector::wrap(
    std::shared_ptr<Connector> inner) {
  if (std::dynamic_pointer_cast<InstrumentedConnector>(inner)) return inner;
  return std::make_shared<InstrumentedConnector>(std::move(inner));
}

Key InstrumentedConnector::put(BytesView data) {
  obs::SpanScope span(put_.span_name, {}, "wire-transfer");
  if (!obs::enabled()) return inner_->put(data);
  const Handles h = resolve(put_.count, put_.vtime, put_.wall,
                            put_.span_name);
  h.count->inc();
  obs::Timer timer(h.vtime, h.wall);
  return inner_->put(data);
}

Key InstrumentedConnector::put_hinted(BytesView data, const PutHints& hints) {
  obs::SpanScope span(put_.span_name, {}, "wire-transfer");
  if (!obs::enabled()) return inner_->put_hinted(data, hints);
  const Handles h = resolve(put_.count, put_.vtime, put_.wall,
                            put_.span_name);
  h.count->inc();
  obs::Timer timer(h.vtime, h.wall);
  return inner_->put_hinted(data, hints);
}

bool InstrumentedConnector::put_at(const Key& key, BytesView data) {
  obs::SpanScope span(put_.span_name, {}, "wire-transfer");
  if (!obs::enabled()) return inner_->put_at(key, data);
  const Handles h = resolve(put_.count, put_.vtime, put_.wall,
                            put_.span_name);
  h.count->inc();
  obs::Timer timer(h.vtime, h.wall);
  return inner_->put_at(key, data);
}

Key InstrumentedConnector::reserve_key() { return inner_->reserve_key(); }

std::vector<Key> InstrumentedConnector::put_batch(
    const std::vector<Bytes>& items) {
  obs::SpanScope span(put_batch_.span_name, {}, "wire-transfer");
  if (!obs::enabled()) return inner_->put_batch(items);
  const Handles h = resolve(put_batch_.count, put_batch_.vtime, put_batch_.wall,
                            put_batch_.span_name);
  h.count->inc();
  resolve_histogram(put_batch_items_, put_batch_.span_name + ".items")
      .observe(static_cast<double>(items.size()));
  obs::Timer timer(h.vtime, h.wall);
  return inner_->put_batch(items);
}

std::optional<Bytes> InstrumentedConnector::get(const Key& key) {
  obs::SpanScope span(get_.span_name, {}, "wire-transfer");
  if (!obs::enabled()) return inner_->get(key);
  const Handles h = resolve(get_.count, get_.vtime, get_.wall,
                            get_.span_name);
  h.count->inc();
  obs::Timer timer(h.vtime, h.wall);
  return inner_->get(key);
}

std::vector<std::optional<Bytes>> InstrumentedConnector::get_batch(
    const std::vector<Key>& keys) {
  obs::SpanScope span(get_batch_.span_name, {}, "wire-transfer");
  if (!obs::enabled()) return inner_->get_batch(keys);
  const Handles h = resolve(get_batch_.count, get_batch_.vtime, get_batch_.wall,
                            get_batch_.span_name);
  h.count->inc();
  resolve_histogram(get_batch_items_, get_batch_.span_name + ".items")
      .observe(static_cast<double>(keys.size()));
  obs::Timer timer(h.vtime, h.wall);
  return inner_->get_batch(keys);
}

template <typename T>
Future<T> InstrumentedConnector::record_async(const Op& op, Future<T> future) {
  if (!obs::enabled()) return future;
  // Resolve at submit time: the completion may run on another thread (the
  // async executor), whose ambient registry is not the submitter's site.
  const Handles h = resolve(op.count, op.vtime, op.wall, op.span_name);
  h.count->inc();
  const double submit_vtime = sim::vnow();
  const auto submit_wall = std::chrono::steady_clock::now();
  obs::Histogram* vtime = h.vtime;
  obs::Histogram* wall = h.wall;
  future.on_ready([future, submit_vtime, submit_wall, vtime, wall] {
    vtime->observe(future.done_vtime() - submit_vtime);
    wall->observe(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - submit_wall)
                      .count());
  });
  return future;
}

Future<std::optional<Bytes>> InstrumentedConnector::get_async(const Key& key) {
  return record_async(get_async_, inner_->get_async(key));
}

Future<Key> InstrumentedConnector::put_async(BytesView data) {
  return record_async(put_async_, inner_->put_async(data));
}

Future<bool> InstrumentedConnector::exists_async(const Key& key) {
  return record_async(exists_async_, inner_->exists_async(key));
}

Future<Unit> InstrumentedConnector::evict_async(const Key& key) {
  return record_async(evict_async_, inner_->evict_async(key));
}

bool InstrumentedConnector::exists(const Key& key) {
  obs::SpanScope span(exists_.span_name, {}, "wire-transfer");
  if (!obs::enabled()) return inner_->exists(key);
  const Handles h = resolve(exists_.count, exists_.vtime, exists_.wall,
                            exists_.span_name);
  h.count->inc();
  obs::Timer timer(h.vtime, h.wall);
  return inner_->exists(key);
}

void InstrumentedConnector::evict(const Key& key) {
  obs::SpanScope span(evict_.span_name, {}, "wire-transfer");
  if (!obs::enabled()) return inner_->evict(key);
  const Handles h = resolve(evict_.count, evict_.vtime, evict_.wall,
                            evict_.span_name);
  h.count->inc();
  obs::Timer timer(h.vtime, h.wall);
  inner_->evict(key);
}

void InstrumentedConnector::evict_batch(const std::vector<Key>& keys) {
  obs::SpanScope span(evict_batch_.span_name, {}, "wire-transfer");
  if (!obs::enabled()) return inner_->evict_batch(keys);
  const Handles h = resolve(evict_batch_.count, evict_batch_.vtime,
                            evict_batch_.wall, evict_batch_.span_name);
  h.count->inc();
  resolve_histogram(evict_batch_items_, evict_batch_.span_name + ".items")
      .observe(static_cast<double>(keys.size()));
  obs::Timer timer(h.vtime, h.wall);
  inner_->evict_batch(keys);
}

Future<std::vector<std::optional<Bytes>>>
InstrumentedConnector::get_batch_async(const std::vector<Key>& keys) {
  return record_async(get_batch_async_, inner_->get_batch_async(keys));
}

void InstrumentedConnector::close() { inner_->close(); }

}  // namespace ps::core
