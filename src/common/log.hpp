// Minimal leveled, thread-safe logger. Off (warn-level) by default so tests
// and benchmarks stay quiet; substrates log connection events at debug level.
#pragma once

#include <sstream>
#include <string>

namespace ps {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line ("[level] component: message") to stderr under a lock.
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

namespace detail {
inline void format_into(std::ostringstream&) {}

template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const std::string& component, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(level, component, os.str());
}

template <typename... Args>
void log_debug(const std::string& component, const Args&... args) {
  log(LogLevel::kDebug, component, args...);
}

template <typename... Args>
void log_info(const std::string& component, const Args&... args) {
  log(LogLevel::kInfo, component, args...);
}

template <typename... Args>
void log_warn(const std::string& component, const Args&... args) {
  log(LogLevel::kWarn, component, args...);
}

template <typename... Args>
void log_error(const std::string& component, const Args&... args) {
  log(LogLevel::kError, component, args...);
}

}  // namespace ps
