#include "common/error.hpp"

// The hierarchy is header-only; this TU anchors the vtables so typeinfo is
// emitted exactly once.
namespace ps {
namespace {
[[maybe_unused]] void anchor() {
  (void)sizeof(Error);
}
}  // namespace
}  // namespace ps
