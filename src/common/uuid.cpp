#include "common/uuid.hpp"

#include <atomic>
#include <cstdio>
#include <random>
#include <stdexcept>

namespace ps {

namespace {

std::uint64_t random_u64() {
  // A process-global counter mixed with random_device seeding gives unique,
  // cheap identifiers without locking a shared engine.
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t seed = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  std::uint64_t z = seed + counter.fetch_add(0x9e3779b97f4a7c15ULL,
                                             std::memory_order_relaxed);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("Uuid::parse: bad digit");
}

}  // namespace

Uuid Uuid::random() {
  std::uint64_t hi = random_u64();
  std::uint64_t lo = random_u64();
  // Stamp version 4 / variant 1 bits for plausibility.
  hi = (hi & ~0xf000ULL) | 0x4000ULL;
  lo = (lo & ~(0xc0ULL << 56)) | (0x80ULL << 56);
  return Uuid(hi, lo);
}

std::string Uuid::str() const {
  char buf[37];
  std::snprintf(buf, sizeof(buf), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<unsigned>(hi_ >> 32),
                static_cast<unsigned>((hi_ >> 16) & 0xffff),
                static_cast<unsigned>(hi_ & 0xffff),
                static_cast<unsigned>(lo_ >> 48),
                static_cast<unsigned long long>(lo_ & 0xffffffffffffULL));
  return buf;
}

Uuid Uuid::parse(std::string_view text) {
  if (text.size() != 36 || text[8] != '-' || text[13] != '-' ||
      text[18] != '-' || text[23] != '-') {
    throw std::invalid_argument("Uuid::parse: malformed UUID");
  }
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  int count = 0;
  for (const char c : text) {
    if (c == '-') continue;
    const std::uint64_t n = static_cast<std::uint64_t>(nibble(c));
    if (count < 16) {
      hi = (hi << 4) | n;
    } else {
      lo = (lo << 4) | n;
    }
    ++count;
  }
  return Uuid(hi, lo);
}

}  // namespace ps
