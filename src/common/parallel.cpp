#include "common/parallel.hpp"

#include <algorithm>

namespace ps {

std::size_t parallel_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

void parallel_for_blocks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t grain = std::max<std::size_t>(min_grain, 1);
  const std::size_t max_blocks = (n + grain - 1) / grain;
  const std::size_t workers = std::min(parallel_workers(), max_blocks);

  if (workers <= 1) {
    body(begin, end);
    return;
  }

  std::vector<std::thread> threads;
  threads.reserve(workers);
  std::exception_ptr first_error;
  std::mutex error_mu;
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([&, lo, hi] {
      try {
        body(lo, hi);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_grain) {
  parallel_for_blocks(
      begin, end,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      min_grain);
}

}  // namespace ps
