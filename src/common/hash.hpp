// Hashing utilities: FNV-1a (fast fingerprints) and SHA-256 (content
// addressing in the IPFS substrate).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace ps {

/// 64-bit FNV-1a over a byte string. Fast, non-cryptographic.
std::uint64_t fnv1a64(BytesView data);

/// Incremental SHA-256 (FIPS 180-4). Used for IPFS-style content IDs.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `data` into the running digest.
  void update(BytesView data);

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// updated after finalization.
  std::array<std::uint8_t, 32> finish();

  /// One-shot digest of `data`.
  static std::array<std::uint8_t, 32> digest(BytesView data);

  /// One-shot digest rendered as lowercase hex.
  static std::string hex_digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace ps
