#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace ps {

namespace {

/// Startup threshold: PROXYSTORE_LOG=debug|info|warn|error|off, matched
/// case-insensitively (read once; set_log_level still overrides at
/// runtime). Unset or unrecognized values keep the quiet default; an
/// unrecognized value warns once on stderr.
LogLevel level_from_env() {
  const char* env = std::getenv("PROXYSTORE_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  std::string value(env);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "debug") return LogLevel::kDebug;
  if (value == "info") return LogLevel::kInfo;
  if (value == "warn") return LogLevel::kWarn;
  if (value == "error") return LogLevel::kError;
  if (value == "off") return LogLevel::kOff;
  std::fprintf(stderr,
               "[warn] log: unrecognized PROXYSTORE_LOG value '%s' "
               "(expected debug|info|warn|error|off)\n",
               env);
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  std::lock_guard lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace ps
