#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ps {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  std::lock_guard lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace ps
