// Streaming statistics accumulator used by the benchmark harnesses to report
// mean ± stdev / median rows matching the paper's tables and error bars.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ps {

class Stats {
 public:
  void add(double x);

  /// Pre-sizes the sample buffer (add() also grows it in doubling chunks,
  /// so tight accumulation loops never reallocate per sample).
  void reserve(std::size_t n);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stdev() const;  // sample standard deviation
  double min() const;
  double max() const;
  double median() const;
  double percentile(double p) const;  // p in [0, 100]
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }
  double sum() const;

  /// "123.4 ± 5.6" formatted with the given unit scale (e.g. 1e3 for ms
  /// when samples are seconds).
  std::string mean_pm_stdev(double scale = 1.0, int precision = 1) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> sorted() const;
  std::vector<double> samples_;
};

}  // namespace ps
