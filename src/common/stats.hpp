// Streaming statistics accumulator used by the benchmark harnesses to report
// mean ± stdev / median rows matching the paper's tables and error bars.
//
// Two modes:
//   * unbounded (default): every sample is retained, so all statistics —
//     including percentiles — are exact;
//   * bounded reservoir: Stats(reservoir_cap) keeps at most reservoir_cap
//     samples via Vitter's Algorithm R while count/sum/mean/stdev/min/max
//     remain exact running accumulators; percentiles are estimated over the
//     reservoir. The sampling RNG is explicitly seeded (kDefaultSeed unless
//     overridden), so reservoir contents — and therefore reported
//     percentiles — are identical run-to-run on the deterministic simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ps {

class Stats {
 public:
  /// Seed of the reservoir-sampling RNG when none is supplied; matches
  /// ps::Rng's default so all deterministic components share one root seed.
  static constexpr std::uint64_t kDefaultSeed = 0x5eedULL;

  /// Unbounded: retains every sample, all statistics exact.
  Stats() = default;

  /// Bounded: retains at most `reservoir_cap` samples (uniformly chosen via
  /// reservoir sampling with the given seed). `reservoir_cap` must be > 0.
  explicit Stats(std::size_t reservoir_cap,
                 std::uint64_t seed = kDefaultSeed);

  void add(double x);

  /// Pre-sizes the sample buffer (add() also grows it in doubling chunks,
  /// so tight accumulation loops never reallocate per sample).
  void reserve(std::size_t n);

  /// Total observations (not the retained-sample count; see samples()).
  std::size_t count() const { return count_; }
  double mean() const;
  double stdev() const;  // sample standard deviation
  double min() const;
  double max() const;
  double median() const;
  double percentile(double p) const;  // p in [0, 100]
  /// quantile(q) == percentile(100 q); q in [0, 1]. The form SLO
  /// objectives and the Prometheus summary exposition speak.
  double quantile(double q) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }
  double p999() const { return percentile(99.9); }
  double sum() const { return sum_; }

  /// "123.4 ± 5.6" formatted with the given unit scale (e.g. 1e3 for ms
  /// when samples are seconds).
  std::string mean_pm_stdev(double scale = 1.0, int precision = 1) const;

  /// Retained samples: all of them in unbounded mode, the reservoir in
  /// bounded mode (insertion order, not uniform order).
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> sorted() const;

  std::vector<double> samples_;
  std::size_t reservoir_cap_ = 0;  // 0 => unbounded
  Rng rng_;
  // Exact running accumulators (Welford for the variance).
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double welford_mean_ = 0.0;
  double welford_m2_ = 0.0;
};

}  // namespace ps
