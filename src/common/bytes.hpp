// Byte-string type and helpers.
//
// ProxyStore connectors operate on opaque byte strings (paper section 3.4).
// We model byte strings as std::string for cheap copy-on-write-free moves,
// ubiquitous library support, and easy embedding of binary data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ps {

/// Opaque binary payload exchanged with connectors.
using Bytes = std::string;

/// View over a binary payload (non-owning).
using BytesView = std::string_view;

/// Creates a payload of `n` bytes filled with a deterministic pattern derived
/// from `seed`. Used by tests and benchmark workload generators so payload
/// contents are reproducible and verifiable after a round trip.
Bytes pattern_bytes(std::size_t n, std::uint64_t seed = 0);

/// Returns true if `data` matches the pattern produced by
/// `pattern_bytes(data.size(), seed)`.
bool check_pattern(BytesView data, std::uint64_t seed = 0);

/// Formats a byte count with binary units ("1.5 MiB").
std::string format_bytes(double n);

/// Parses strings like "10B", "1KB", "100MB", "1GB" (decimal powers,
/// matching the payload axes used in the paper's figures).
std::size_t parse_size(std::string_view text);

}  // namespace ps
