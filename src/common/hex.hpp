// Hex encoding helpers.
#pragma once

#include <string>

#include "common/bytes.hpp"

namespace ps {

/// Lowercase hex encoding of a byte string.
std::string to_hex(BytesView data);

/// Inverse of to_hex. Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

}  // namespace ps
