// Exception hierarchy for ProxyStore-C++.
//
// Recoverable absence (a key not found on get/exists) is reported through
// std::optional / bool returns; exceptional failures (protocol violations,
// transfer failures, misconfiguration) are reported through this hierarchy,
// mirroring the Python implementation's error surface.
#pragma once

#include <stdexcept>
#include <string>

namespace ps {

/// Root of all ProxyStore-C++ errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialization / deserialization failure (corrupt payload, type mismatch).
class SerializationError : public Error {
 public:
  using Error::Error;
};

/// A connector operation failed (backend unreachable, bad key, closed store).
class ConnectorError : public Error {
 public:
  using Error::Error;
};

/// A bulk transfer task failed or was cancelled (GlobusConnector semantics:
/// "a proxy will ... raise an error if there is a Globus transfer failure").
class TransferError : public ConnectorError {
 public:
  using ConnectorError::ConnectorError;
};

/// MultiConnector found no connector policy matching the put constraints
/// (paper section 4.3: "If no match is found then an error is raised").
class NoPolicyMatchError : public ConnectorError {
 public:
  using ConnectorError::ConnectorError;
};

/// A proxy could not be resolved (missing object, dead factory).
class ProxyResolutionError : public Error {
 public:
  using Error::Error;
};

/// Peer / relay protocol violation (endpoint substrate).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// An operation exceeded its deadline.
class TimeoutError : public Error {
 public:
  using Error::Error;
};

/// FaaS task payload exceeded the cloud service limit (the paper's 5 MB
/// Globus Compute payload ceiling).
class PayloadTooLargeError : public Error {
 public:
  using Error::Error;
};

/// A named service/store/endpoint was not found in a registry.
class NotRegisteredError : public Error {
 public:
  using Error::Error;
};

}  // namespace ps
