// Shared-memory parallel loops.
//
// A small fork-join helper in the OpenMP `parallel for` idiom for the
// compute-heavy inner loops (convolutions, batch training in ps_ml).
// Static block scheduling, one task per worker; falls back to serial
// execution for small ranges where thread startup would dominate.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ps {

/// Number of workers parallel_for uses by default.
std::size_t parallel_workers();

/// Applies `body(i)` for every i in [begin, end), splitting the range into
/// contiguous blocks across threads. `body` must be safe to call
/// concurrently for distinct indices. Exceptions from any block are
/// rethrown (first one wins) after all threads join.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_grain = 1);

/// Block variant: `body(block_begin, block_end)` per worker — lets hot
/// loops keep per-block state without per-index call overhead.
void parallel_for_blocks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_grain = 1);

}  // namespace ps
