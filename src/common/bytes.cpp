#include "common/bytes.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ps {

namespace {

// splitmix64: tiny deterministic generator for pattern fills.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Bytes pattern_bytes(std::size_t n, std::uint64_t seed) {
  Bytes out;
  out.resize(n);
  std::uint64_t state = seed ^ 0xa5a5a5a5deadbeefULL;
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t word = splitmix64(state);
    for (int b = 0; b < 8; ++b) {
      out[i + static_cast<std::size_t>(b)] =
          static_cast<char>((word >> (8 * b)) & 0xff);
    }
    i += 8;
  }
  if (i < n) {
    const std::uint64_t word = splitmix64(state);
    for (int b = 0; i < n; ++i, ++b) {
      out[i] = static_cast<char>((word >> (8 * b)) & 0xff);
    }
  }
  return out;
}

bool check_pattern(BytesView data, std::uint64_t seed) {
  return Bytes(data) == pattern_bytes(data.size(), seed);
}

std::string format_bytes(double n) {
  static constexpr std::array<const char*, 6> kUnits = {"B",   "KiB", "MiB",
                                                        "GiB", "TiB", "PiB"};
  std::size_t unit = 0;
  while (n >= 1024.0 && unit + 1 < kUnits.size()) {
    n /= 1024.0;
    ++unit;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3g %s", n, kUnits[unit]);
  return buf;
}

std::size_t parse_size(std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) ||
          text[pos] == '.')) {
    ++pos;
  }
  if (pos == 0) throw std::invalid_argument("parse_size: no digits");
  const double value = std::stod(std::string(text.substr(0, pos)));
  std::string suffix(text.substr(pos));
  while (!suffix.empty() && suffix.front() == ' ') suffix.erase(0, 1);
  double mult = 1;
  if (suffix.empty() || suffix == "B") {
    mult = 1;
  } else if (suffix == "KB" || suffix == "K" || suffix == "kB") {
    mult = 1e3;
  } else if (suffix == "MB" || suffix == "M") {
    mult = 1e6;
  } else if (suffix == "GB" || suffix == "G") {
    mult = 1e9;
  } else if (suffix == "KiB") {
    mult = 1024;
  } else if (suffix == "MiB") {
    mult = 1024.0 * 1024;
  } else if (suffix == "GiB") {
    mult = 1024.0 * 1024 * 1024;
  } else {
    throw std::invalid_argument("parse_size: bad suffix '" + suffix + "'");
  }
  return static_cast<std::size_t>(std::llround(value * mult));
}

}  // namespace ps
