#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace ps {

void Stats::add(double x) {
  if (samples_.size() == samples_.capacity()) {
    samples_.reserve(samples_.empty() ? 64 : samples_.capacity() * 2);
  }
  samples_.push_back(x);
}

void Stats::reserve(std::size_t n) { samples_.reserve(n); }

double Stats::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Stats::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double Stats::stdev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

std::vector<double> Stats::sorted() const {
  std::vector<double> s = samples_;
  std::sort(s.begin(), s.end());
  return s;
}

double Stats::median() const { return percentile(50.0); }

double Stats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  const auto s = sorted();
  const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, s.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

std::string Stats::mean_pm_stdev(double scale, int precision) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f ± %.*f", precision, mean() * scale,
                precision, stdev() * scale);
  return buf;
}

}  // namespace ps
