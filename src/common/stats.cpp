#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ps {

Stats::Stats(std::size_t reservoir_cap, std::uint64_t seed)
    : reservoir_cap_(reservoir_cap), rng_(seed) {
  if (reservoir_cap == 0) {
    throw std::invalid_argument("Stats: reservoir capacity must be > 0");
  }
  samples_.reserve(reservoir_cap);
}

void Stats::add(double x) {
  // Exact accumulators first: they never depend on what the reservoir keeps.
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - welford_mean_;
  welford_mean_ += delta / static_cast<double>(count_);
  welford_m2_ += delta * (x - welford_mean_);

  if (reservoir_cap_ == 0 || samples_.size() < reservoir_cap_) {
    if (samples_.size() == samples_.capacity()) {
      samples_.reserve(samples_.empty() ? 64 : samples_.capacity() * 2);
    }
    samples_.push_back(x);
    return;
  }
  // Algorithm R: the n-th observation replaces a random slot with
  // probability cap/n, keeping every observation equally likely to survive.
  const auto slot = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(count_) - 1));
  if (slot < reservoir_cap_) samples_[slot] = x;
}

void Stats::reserve(std::size_t n) {
  samples_.reserve(reservoir_cap_ == 0 ? n : std::min(n, reservoir_cap_));
}

double Stats::mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double Stats::stdev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(welford_m2_ / static_cast<double>(count_ - 1));
}

double Stats::min() const { return count_ == 0 ? 0.0 : min_; }

double Stats::max() const { return count_ == 0 ? 0.0 : max_; }

std::vector<double> Stats::sorted() const {
  std::vector<double> s = samples_;
  std::sort(s.begin(), s.end());
  return s;
}

double Stats::median() const { return percentile(50.0); }

double Stats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  const auto s = sorted();
  const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, s.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double Stats::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile range");
  return percentile(q * 100.0);
}

std::string Stats::mean_pm_stdev(double scale, int precision) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f ± %.*f", precision, mean() * scale,
                precision, stdev() * scale);
  return buf;
}

}  // namespace ps
