// Deterministic seeded RNG used across workload generators and the testbed
// simulator so every experiment in EXPERIMENTS.md is bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ps {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  double normal(double mean, double stdev) {
    return std::normal_distribution<double>(mean, stdev)(engine_);
  }

  /// Log-normal jitter multiplier with unit median; sigma controls spread.
  /// Used to model run-to-run variance in network/service times.
  double jitter(double sigma) {
    return std::exp(std::normal_distribution<double>(0.0, sigma)(engine_));
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Samples k distinct indices from [0, n).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ps
