// Thread-safe MPMC queue with close semantics.
//
// Used as the mailbox primitive throughout the substrates: FaaS endpoint task
// queues, the PS-endpoint event loop inbox, Parsl worker queues, and the relay
// server message pump. Closing wakes all waiters; pop on a closed, drained
// queue returns nullopt so consumer loops terminate cleanly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>

#include "common/error.hpp"

namespace ps {

template <typename T>
class Queue {
 public:
  explicit Queue(std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : capacity_(capacity) {}

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  /// Pushes an item, blocking while the queue is full.
  /// Returns false (and drops the item) if the queue has been closed.
  bool push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Pushes without blocking. Returns false if full or closed.
  bool try_push(T item) {
    std::lock_guard lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Waits up to `timeout`; nullopt on timeout or closed-and-drained.
  std::optional<T> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: pushes fail, waiters wake, remaining items drain.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace ps
