// 128-bit UUIDs for object keys, endpoints, and transfer tasks.
//
// PS-endpoints, Globus endpoints, and object keys are all identified by
// UUIDs in the paper; we generate random (version-4-style) identifiers from
// an internally seeded generator so runs can be made deterministic.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace ps {

class Uuid {
 public:
  /// The nil UUID (all zero).
  constexpr Uuid() = default;

  constexpr Uuid(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

  /// Generates a fresh random UUID (thread-safe).
  static Uuid random();

  /// Parses the canonical 8-4-4-4-12 representation.
  /// Throws std::invalid_argument on malformed input.
  static Uuid parse(std::string_view text);

  /// Canonical lowercase 8-4-4-4-12 representation.
  std::string str() const;

  constexpr bool is_nil() const { return hi_ == 0 && lo_ == 0; }
  constexpr std::uint64_t hi() const { return hi_; }
  constexpr std::uint64_t lo() const { return lo_; }

  friend constexpr auto operator<=>(const Uuid&, const Uuid&) = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

}  // namespace ps

template <>
struct std::hash<ps::Uuid> {
  std::size_t operator()(const ps::Uuid& u) const noexcept {
    return static_cast<std::size_t>(u.hi() ^ (u.lo() * 0x9e3779b97f4a7c15ULL));
  }
};
