#include "common/rng.hpp"

#include <algorithm>
#include <numeric>

namespace ps {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  std::shuffle(all.begin(), all.end(), engine_);
  all.resize(std::min(n, k));
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace ps
