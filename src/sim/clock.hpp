// Virtual time.
//
// Benchmarks run the real data path through the in-process substrates but
// account time on a virtual clock driven by the network/service cost models.
// This makes every figure in EXPERIMENTS.md deterministic and independent of
// the machine the reproduction runs on.
#pragma once

#include <atomic>
#include <mutex>

namespace ps::sim {

/// Virtual time in seconds.
using SimTime = double;

/// Monotonic virtual clock. Thread-safe: substrates running on different
/// service threads charge costs concurrently.
class VirtualClock {
 public:
  SimTime now() const {
    std::lock_guard lock(mu_);
    return now_;
  }

  /// Advances the clock by `dt` seconds and returns the new time.
  SimTime advance(SimTime dt);

  /// Moves the clock forward to `t` if `t` is later than now.
  void advance_to(SimTime t);

  void reset() {
    std::lock_guard lock(mu_);
    now_ = 0.0;
  }

 private:
  mutable std::mutex mu_;
  SimTime now_ = 0.0;
};

}  // namespace ps::sim
