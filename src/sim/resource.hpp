// FIFO queueing resources for the virtual-time model.
//
// A Resource models a server pool that processes requests with bounded
// concurrency: the PS-endpoint's single asyncio thread, the cloud service's
// task ingestion, a Redis event loop. Requests arriving while the server is
// busy queue up — this is exactly the effect behind Figure 8, where
// per-request time grows linearly with the number of concurrent clients
// hitting one single-threaded endpoint.
//
// The queue uses a fluid (work-conserving) model: it tracks outstanding
// backlog that drains at `servers` units per virtual second. A request
// arriving at time t with service s completes at t + backlog/servers + s.
// Unlike a per-server next-free-time model, this stays causally sane when
// callers on different actor timelines schedule requests out of virtual
// order (a caller in the "virtual past" is never queued behind work that
// was submitted from its future).
#pragma once

#include <cstddef>
#include <mutex>

#include "sim/clock.hpp"

namespace ps::sim {

class Resource {
 public:
  /// `servers` = number of requests the resource can process concurrently
  /// (1 for the single-threaded endpoint).
  explicit Resource(std::size_t servers = 1);

  /// Schedules a request arriving at virtual time `arrival` needing
  /// `service` seconds of work. Returns the virtual completion time.
  SimTime schedule(SimTime arrival, SimTime service);

  /// Total busy time accumulated across all servers.
  SimTime busy_time() const;

  /// Completed request count.
  std::size_t completed() const;

  void reset();

 private:
  mutable std::mutex mu_;
  std::size_t servers_;
  SimTime backlog_ = 0.0;       // outstanding work (service-seconds)
  SimTime last_arrival_ = 0.0;  // latest arrival seen (drain reference)
  SimTime busy_ = 0.0;
  std::size_t completed_ = 0;
};

}  // namespace ps::sim
