#include "sim/scheduler.hpp"

#include <limits>

namespace ps::sim {

void Scheduler::at(SimTime when, Callback fn) {
  std::lock_guard lock(mu_);
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

std::size_t Scheduler::run_until(SimTime until) {
  std::size_t fired = 0;
  for (;;) {
    Callback fn;
    SimTime when;
    {
      std::lock_guard lock(mu_);
      if (events_.empty() || events_.top().when > until) break;
      when = events_.top().when;
      fn = events_.top().fn;
      events_.pop();
    }
    fn(when);
    ++fired;
  }
  return fired;
}

std::size_t Scheduler::run_all() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

SimTime Scheduler::next_event_time() const {
  std::lock_guard lock(mu_);
  if (events_.empty()) return std::numeric_limits<SimTime>::infinity();
  return events_.top().when;
}

bool Scheduler::empty() const {
  std::lock_guard lock(mu_);
  return events_.empty();
}

}  // namespace ps::sim
