#include "sim/clock.hpp"

#include <algorithm>
#include <stdexcept>

namespace ps::sim {

SimTime VirtualClock::advance(SimTime dt) {
  if (dt < 0.0) throw std::invalid_argument("VirtualClock: negative advance");
  std::lock_guard lock(mu_);
  now_ += dt;
  return now_;
}

void VirtualClock::advance_to(SimTime t) {
  std::lock_guard lock(mu_);
  now_ = std::max(now_, t);
}

}  // namespace ps::sim
