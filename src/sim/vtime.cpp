#include "sim/vtime.hpp"

#include <algorithm>
#include <stdexcept>

namespace ps::sim {

namespace {
thread_local SimTime t_vnow = 0.0;
}  // namespace

SimTime vnow() { return t_vnow; }

void vset(SimTime t) { t_vnow = t; }

void vadvance(SimTime dt) {
  if (dt < 0.0) throw std::invalid_argument("vadvance: negative dt");
  t_vnow += dt;
}

void vmerge(SimTime t) { t_vnow = std::max(t_vnow, t); }

VtimeScope::VtimeScope() : start_(t_vnow) {}

SimTime VtimeScope::elapsed() const { return t_vnow - start_; }

VtimeGuard::VtimeGuard() : saved_(t_vnow) {}

VtimeGuard::~VtimeGuard() { t_vnow = saved_; }

}  // namespace ps::sim
