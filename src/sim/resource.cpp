#include "sim/resource.hpp"

#include <algorithm>
#include <stdexcept>

namespace ps::sim {

Resource::Resource(std::size_t servers) : servers_(servers) {
  if (servers == 0) throw std::invalid_argument("Resource: zero servers");
}

SimTime Resource::schedule(SimTime arrival, SimTime service) {
  if (service < 0.0) throw std::invalid_argument("Resource: negative service");
  std::lock_guard lock(mu_);
  // Backlog drains at `servers` service-seconds per second between
  // arrivals. Out-of-(virtual-)order arrivals see the backlog as-is.
  if (arrival > last_arrival_) {
    backlog_ = std::max(
        0.0, backlog_ - (arrival - last_arrival_) *
                            static_cast<SimTime>(servers_));
    last_arrival_ = arrival;
  }
  const SimTime wait = backlog_ / static_cast<SimTime>(servers_);
  backlog_ += service;
  busy_ += service;
  ++completed_;
  return arrival + wait + service;
}

SimTime Resource::busy_time() const {
  std::lock_guard lock(mu_);
  return busy_;
}

std::size_t Resource::completed() const {
  std::lock_guard lock(mu_);
  return completed_;
}

void Resource::reset() {
  std::lock_guard lock(mu_);
  backlog_ = 0.0;
  last_arrival_ = 0.0;
  busy_ = 0.0;
  completed_ = 0;
}

}  // namespace ps::sim
