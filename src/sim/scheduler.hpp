// Deterministic discrete-event scheduler.
//
// Used by substrates that model asynchronous background progress in virtual
// time — e.g. Globus transfer tasks moving through QUEUED → ACTIVE →
// SUCCEEDED, or relay-server message hops during the peer handshake. Events
// fire in (time, insertion-order) order, so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

#include "sim/clock.hpp"

namespace ps::sim {

class Scheduler {
 public:
  using Callback = std::function<void(SimTime now)>;

  /// Schedules `fn` to fire at absolute virtual time `when`.
  void at(SimTime when, Callback fn);

  /// Runs all events with time <= `until`, advancing an internal cursor.
  /// Returns the number of events fired. Events may schedule further events.
  std::size_t run_until(SimTime until);

  /// Runs everything currently scheduled (and anything it schedules).
  std::size_t run_all();

  /// Time of the next pending event, or +inf when empty.
  SimTime next_event_time() const;

  bool empty() const;

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  mutable std::mutex mu_;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ps::sim
