// Per-actor virtual time.
//
// Every thread simulates an actor with its own virtual "now". Costs charged
// by the substrates (network transfer, disk I/O, service queueing) advance
// the calling thread's virtual time; when actors exchange messages, the
// receiver merges the sender's timestamp (`vmerge`). Benchmarks measure an
// operation's virtual duration with VtimeScope. This gives deterministic,
// machine-independent timings while the real data path still executes.
#pragma once

#include "sim/clock.hpp"

namespace ps::sim {

/// The calling thread's current virtual time (seconds).
SimTime vnow();

/// Sets the calling thread's virtual time.
void vset(SimTime t);

/// Advances the calling thread's virtual time by `dt` (>= 0).
void vadvance(SimTime dt);

/// Merges an incoming message timestamp: vnow = max(vnow, t).
void vmerge(SimTime t);

/// Measures virtual time elapsed on this thread since construction.
class VtimeScope {
 public:
  VtimeScope();
  /// Virtual seconds elapsed since construction.
  SimTime elapsed() const;

 private:
  SimTime start_;
};

/// RAII: saves the thread's virtual time and restores it on destruction.
/// Benchmarks use this to isolate repetitions.
class VtimeGuard {
 public:
  VtimeGuard();
  ~VtimeGuard();
  VtimeGuard(const VtimeGuard&) = delete;
  VtimeGuard& operator=(const VtimeGuard&) = delete;

 private:
  SimTime saved_;
};

}  // namespace ps::sim
