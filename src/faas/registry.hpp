// Function registry for the FaaS substrate.
//
// Globus Compute ships function code to endpoints; in this in-process
// reproduction, functions are registered by name process-wide (registration
// is code, like Python imports) and referenced by name in task submissions.
// Functions map request bytes to response bytes; typed helpers wrap the
// serde framework.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <type_traits>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "core/proxy.hpp"
#include "serde/serde.hpp"

namespace ps::faas {

using TaskFunction = std::function<Bytes(BytesView)>;

namespace detail {
template <typename U>
struct is_proxy : std::false_type {};
template <typename U>
struct is_proxy<core::Proxy<U>> : std::true_type {};
}  // namespace detail

class FunctionRegistry {
 public:
  static FunctionRegistry& instance();

  /// Registers `fn` under `name`. Re-registration replaces.
  void register_function(const std::string& name, TaskFunction fn);

  /// Typed registration: deserializes the argument, serializes the result.
  template <typename Ret, typename Arg>
  void register_typed(const std::string& name,
                      std::function<Ret(const Arg&)> fn) {
    register_function(name, [fn = std::move(fn)](BytesView request) {
      const Arg arg = serde::from_bytes<Arg>(request);
      if constexpr (detail::is_proxy<Arg>::value) {
        // Resolve-ahead: start the payload transfer on the shared executor
        // before dispatching, so it overlaps the function's leading compute
        // and the eventual access observes max(compute, transfer).
        arg.resolve_async();
      }
      return serde::to_bytes(fn(arg));
    });
  }

  /// Throws NotRegisteredError for unknown functions.
  TaskFunction lookup(const std::string& name) const;

  bool contains(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TaskFunction> functions_;
};

}  // namespace ps::faas
