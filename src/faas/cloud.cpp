#include "faas/cloud.hpp"

#include "common/error.hpp"
#include "faas/registry.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "proc/process.hpp"
#include "sim/vtime.hpp"

namespace ps::faas {

namespace {
constexpr const char* kAddress = "faas://cloud";
}  // namespace

std::shared_ptr<CloudService> CloudService::start(proc::World& world,
                                                  const std::string& host,
                                                  CloudServiceOptions options) {
  auto service = std::make_shared<CloudService>(world, host, options);
  world.services().bind<CloudService>(kAddress, service);
  return service;
}

std::shared_ptr<CloudService> CloudService::connect() {
  return proc::current_process().world().services().resolve<CloudService>(
      kAddress);
}

CloudService::CloudService(proc::World& world, std::string host,
                           CloudServiceOptions options)
    : world_(world),
      host_(std::move(host)),
      options_(options),
      ingest_queue_(options.ingest_servers) {
  world_.fabric().host(host_);  // validate
}

Uuid CloudService::register_endpoint(const std::string& host) {
  world_.fabric().host(host);  // validate
  const Uuid id = Uuid::random();
  std::lock_guard lock(mu_);
  endpoints_[id] =
      EndpointEntry{host, std::make_shared<Queue<TaskRecord>>()};
  return id;
}

const std::string& CloudService::endpoint_host(const Uuid& endpoint) const {
  std::lock_guard lock(mu_);
  const auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) {
    throw NotRegisteredError("CloudService: unknown endpoint " +
                             endpoint.str());
  }
  return it->second.host;
}

double CloudService::ingest(double arrival, std::size_t bytes) {
  return ingest_queue_.schedule(
      arrival, options_.base_latency_s +
                   static_cast<double>(bytes) / options_.storage_Bps);
}

Uuid CloudService::submit(const Uuid& endpoint, const std::string& function,
                          Bytes payload) {
  auto& registry = obs::MetricsRegistry::ambient();
  obs::Histogram& submit_vtime = registry.histogram("faas.submit.vtime");
  obs::Histogram& submit_wall = registry.histogram("faas.submit.wall");
  obs::Counter& rejections = registry.counter("faas.payload_rejections");
  obs::Timer timer(&submit_vtime, &submit_wall);
  if (payload.size() > options_.max_payload_bytes) {
    if (obs::enabled()) rejections.inc();
    throw PayloadTooLargeError(
        "task payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(options_.max_payload_bytes) +
        "-byte cloud limit");
  }
  std::shared_ptr<Queue<TaskRecord>> queue;
  {
    std::lock_guard lock(mu_);
    const auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) {
      throw NotRegisteredError("CloudService: unknown endpoint " +
                               endpoint.str());
    }
    queue = it->second.tasks;
  }
  // Client -> cloud leg plus cloud-side storage ingest.
  const std::string& client_host = proc::current_process().host();
  const double arrival =
      sim::vnow() +
      world_.fabric().transfer_time(client_host, host_, payload.size());
  const double ready = ingest(arrival, payload.size());
  sim::vmerge(ready);  // the submit API returns after the upload is durable

  TaskRecord record;
  const Uuid task_id = Uuid::random();
  record.id = task_id;
  record.function = function;
  record.payload = std::move(payload);
  record.ready_stamp = ready;
  record.trace = obs::current_context();
  queue->push(std::move(record));
  return task_id;
}

std::optional<TaskRecord> CloudService::next_task(const Uuid& endpoint) {
  std::shared_ptr<Queue<TaskRecord>> queue;
  {
    std::lock_guard lock(mu_);
    const auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) return std::nullopt;
    queue = it->second.tasks;
  }
  return queue->pop();
}

void CloudService::post_result(const Uuid& endpoint, const Uuid& task,
                               Bytes data, std::string error) {
  if (error.empty() && data.size() > options_.max_payload_bytes) {
    data.clear();
    error = "task result exceeds the cloud payload limit";
  }
  const std::string& ep_host = endpoint_host(endpoint);
  const double arrival =
      sim::vnow() + world_.fabric().transfer_time(ep_host, host_, data.size());
  TaskResult result;
  result.stamp = ingest(arrival, data.size());
  result.data = std::move(data);
  result.error = std::move(error);
  {
    std::lock_guard lock(mu_);
    results_[task] = std::move(result);
  }
  results_cv_.notify_all();
}

TaskResult CloudService::retrieve(const Uuid& task) {
  TaskResult result;
  {
    std::unique_lock lock(mu_);
    results_cv_.wait(lock, [&] { return results_.contains(task); });
    result = std::move(results_.at(task));
    results_.erase(task);
  }
  // Cloud -> client leg.
  const std::string& client_host = proc::current_process().host();
  sim::vmerge(result.stamp);
  sim::vadvance(
      world_.fabric().transfer_time(host_, client_host, result.data.size()));
  return result;
}

void CloudService::deregister_endpoint(const Uuid& endpoint) {
  std::shared_ptr<Queue<TaskRecord>> queue;
  {
    std::lock_guard lock(mu_);
    const auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) return;
    queue = it->second.tasks;
    endpoints_.erase(it);
  }
  queue->close();
}

ComputeEndpoint::ComputeEndpoint(std::shared_ptr<CloudService> cloud,
                                 proc::Process& process, std::size_t workers)
    : cloud_(std::move(cloud)), process_(process) {
  uuid_ = cloud_->register_endpoint(process_.host());
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ComputeEndpoint::~ComputeEndpoint() { stop(); }

void ComputeEndpoint::stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  cloud_->deregister_endpoint(uuid_);
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

void ComputeEndpoint::worker_loop() {
  proc::ProcessScope scope(process_);
  double last_done = 0.0;  // this worker serves tasks one at a time
  while (auto task = cloud_->next_task(uuid_)) {
    // Cloud -> endpoint leg: the task (with its payload) arrives here.
    const double arrival =
        task->ready_stamp +
        process_.world().fabric().transfer_time(cloud_->host(),
                                                process_.host(),
                                                task->payload.size());
    sim::vset(std::max(arrival, last_done));
    auto& registry = obs::MetricsRegistry::ambient();
    obs::Histogram& exec_vtime = registry.histogram("faas.task.exec.vtime");
    obs::Histogram& exec_wall = registry.histogram("faas.task.exec.wall");
    obs::Counter& executed = registry.counter("faas.tasks.executed");
    obs::Counter& errored = registry.counter("faas.tasks.errored");
    Bytes output;
    std::string error;
    {
      // The worker runs on its own thread: stitch into the submitter's
      // trace via the context carried in the task record.
      obs::ContextScope adopt(task->trace);
      obs::SpanScope dispatch("faas.dispatch", task->function, "dispatch");
      obs::Timer timer(&exec_vtime, &exec_wall);
      try {
        const TaskFunction fn = FunctionRegistry::instance().lookup(
            task->function);
        output = fn(task->payload);
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    if (obs::enabled()) (error.empty() ? executed : errored).inc();
    cloud_->post_result(uuid_, task->id, std::move(output), std::move(error));
  }
}

}  // namespace ps::faas
