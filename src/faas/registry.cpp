#include "faas/registry.hpp"

namespace ps::faas {

FunctionRegistry& FunctionRegistry::instance() {
  static FunctionRegistry* registry = new FunctionRegistry();
  return *registry;
}

void FunctionRegistry::register_function(const std::string& name,
                                         TaskFunction fn) {
  std::lock_guard lock(mu_);
  functions_[name] = std::move(fn);
}

TaskFunction FunctionRegistry::lookup(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = functions_.find(name);
  if (it == functions_.end()) {
    throw NotRegisteredError("no function registered as '" + name + "'");
  }
  return it->second;
}

bool FunctionRegistry::contains(const std::string& name) const {
  std::lock_guard lock(mu_);
  return functions_.contains(name);
}

}  // namespace ps::faas
