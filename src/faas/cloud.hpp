// Globus Compute-like federated FaaS substrate (paper section 2).
//
// The cloud service routes each client task to a target compute endpoint
// and stores inputs and results in cloud storage until retrieved — even
// when client and endpoint share a site. That mandatory cloud round trip
// plus the 5 MB payload ceiling is the baseline every ProxyStore experiment
// compares against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/queue.hpp"
#include "common/uuid.hpp"
#include "obs/context.hpp"
#include "proc/world.hpp"
#include "sim/resource.hpp"

namespace ps::faas {

struct CloudServiceOptions {
  /// The task payload ceiling ("Globus Compute enforces a 5 MB task
  /// payload size limit"). Applies to inputs and results.
  std::size_t max_payload_bytes = 5'000'000;
  /// Cloud API processing latency per leg (auth, routing, storage I/O).
  double base_latency_s = 0.18;
  /// Cloud-side payload handling bandwidth. Deliberately low: task
  /// payloads are JSON/base64-encoded, stored in hosted Redis, and polled
  /// over websockets, which the paper's Figure 5 baseline shows costs on
  /// the order of seconds per few MB.
  double storage_Bps = 1e6;
  /// Concurrency of the cloud ingestion path.
  std::size_t ingest_servers = 8;
};

struct TaskRecord {
  Uuid id;
  std::string function;
  Bytes payload;
  /// Virtual time the task becomes available to the endpoint.
  double ready_stamp = 0.0;
  /// Submitter's trace context: the worker adopts it so the dispatch span
  /// parents to the submit span across the cloud hop (a thread boundary
  /// thread-local context cannot cross).
  obs::TraceContext trace{};
};

struct TaskResult {
  Bytes data;
  std::string error;  // non-empty => task raised
  double stamp = 0.0;  // virtual completion time at the cloud
  bool failed() const { return !error.empty(); }
};

class CloudService {
 public:
  static std::shared_ptr<CloudService> start(proc::World& world,
                                             const std::string& host,
                                             CloudServiceOptions options = {});

  /// Resolves the cloud service of the current world.
  static std::shared_ptr<CloudService> connect();

  CloudService(proc::World& world, std::string host,
               CloudServiceOptions options);

  /// Registers a compute endpoint; returns its UUID and task queue.
  Uuid register_endpoint(const std::string& host);

  /// Client-side task submission at the caller's virtual time: enforces
  /// the payload limit, charges client->cloud + cloud ingest, and enqueues
  /// the task for the endpoint. Returns the task id.
  Uuid submit(const Uuid& endpoint, const std::string& function,
              Bytes payload);

  /// Endpoint-side: blocking pop of the next task (real time); nullopt
  /// when the endpoint is deregistered/shutting down.
  std::optional<TaskRecord> next_task(const Uuid& endpoint);

  /// Endpoint-side: stores a result, charging endpoint->cloud + ingest.
  /// Oversized results are converted into task failures (the baseline's
  /// result-size ceiling).
  void post_result(const Uuid& endpoint, const Uuid& task, Bytes data,
                   std::string error);

  /// Client-side: blocks (real time) for the result, charges cloud->client
  /// and merges virtual completion time. The result is removed from cloud
  /// storage once retrieved.
  TaskResult retrieve(const Uuid& task);

  /// Stops an endpoint's queue (drains to the workers as nullopt).
  void deregister_endpoint(const Uuid& endpoint);

  const std::string& host() const { return host_; }
  const CloudServiceOptions& options() const { return options_; }
  const std::string& endpoint_host(const Uuid& endpoint) const;

 private:
  struct EndpointEntry {
    std::string host;
    std::shared_ptr<Queue<TaskRecord>> tasks;
  };

  double ingest(double arrival, std::size_t bytes);

  proc::World& world_;
  std::string host_;
  CloudServiceOptions options_;
  sim::Resource ingest_queue_;
  mutable std::mutex mu_;
  std::condition_variable results_cv_;
  std::map<Uuid, EndpointEntry> endpoints_;
  std::map<Uuid, TaskResult> results_;
};

/// A compute endpoint: worker threads that pop tasks from the cloud queue,
/// execute the registered function inside the endpoint's simulated process,
/// and post results back to the cloud.
class ComputeEndpoint {
 public:
  /// Spawns `workers` worker threads on `process` (which determines the
  /// fabric host and the store registry tasks resolve proxies against).
  ComputeEndpoint(std::shared_ptr<CloudService> cloud, proc::Process& process,
                  std::size_t workers = 1);
  ~ComputeEndpoint();

  ComputeEndpoint(const ComputeEndpoint&) = delete;
  ComputeEndpoint& operator=(const ComputeEndpoint&) = delete;

  const Uuid& uuid() const { return uuid_; }

  /// Stops the workers (drains in-flight tasks).
  void stop();

 private:
  void worker_loop();

  std::shared_ptr<CloudService> cloud_;
  proc::Process& process_;
  Uuid uuid_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace ps::faas
