#include "faas/executor.hpp"

// Header-only templates; TU anchors the library.
namespace ps::faas {
namespace {
[[maybe_unused]] constexpr int kAnchor = 0;
}
}  // namespace ps::faas
