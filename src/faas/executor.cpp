#include "faas/executor.hpp"

namespace ps::faas::detail {

// Resolved in the ambient registry per call: under per-process metrics
// scoping the submitting site owns these series; without scoping ambient()
// is the global registry and behavior is unchanged.

obs::Counter& submits_counter() {
  return obs::MetricsRegistry::ambient().counter("faas.submits");
}

obs::Counter& failures_counter() {
  return obs::MetricsRegistry::ambient().counter("faas.task_failures");
}

obs::Histogram& rtt_vtime_histogram() {
  return obs::MetricsRegistry::ambient().histogram("faas.rtt.vtime");
}

}  // namespace ps::faas::detail
