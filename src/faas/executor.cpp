#include "faas/executor.hpp"

namespace ps::faas::detail {

// Resolved once; the registry owns the metrics for the process lifetime.

obs::Counter& submits_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("faas.submits");
  return counter;
}

obs::Counter& failures_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("faas.task_failures");
  return counter;
}

obs::Histogram& rtt_vtime_histogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram("faas.rtt.vtime");
  return histogram;
}

}  // namespace ps::faas::detail
