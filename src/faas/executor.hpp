// Client-side executor for the FaaS substrate (the Globus Compute SDK's
// Executor in Listing 2).
//
// submit() ships a task through the cloud service and returns a future;
// typed helpers serialize arguments and results with the serde framework,
// so proxies passed as task inputs travel as factory descriptors exactly
// like the paper's Listing 2 workflow.
#pragma once

#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/uuid.hpp"
#include "faas/cloud.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "serde/serde.hpp"
#include "sim/vtime.hpp"

namespace ps::faas {

namespace detail {
/// Executor-path metric handles (defined in executor.cpp).
obs::Counter& submits_counter();
obs::Counter& failures_counter();
obs::Histogram& rtt_vtime_histogram();
}  // namespace detail

/// Handle to a submitted task's eventual result.
class TaskFuture {
 public:
  /// `submit_vtime` is the submitter's virtual time just before submission
  /// (negative to skip round-trip accounting).
  TaskFuture(std::shared_ptr<CloudService> cloud, Uuid task,
             double submit_vtime = -1.0)
      : cloud_(std::move(cloud)), task_(task), submit_vtime_(submit_vtime) {}

  /// Blocks for the result, merges its virtual completion time, and
  /// rethrows remote task errors as ps::Error. Records the task's
  /// submit-to-result round trip into "faas.rtt.vtime".
  Bytes get() {
    obs::SpanScope span("faas.result");
    TaskResult result = cloud_->retrieve(task_);
    if (submit_vtime_ >= 0.0 && obs::enabled()) {
      detail::rtt_vtime_histogram().observe(sim::vnow() - submit_vtime_);
    }
    if (result.failed()) {
      detail::failures_counter().inc();
      throw Error("task failed remotely: " + result.error);
    }
    return std::move(result.data);
  }

  /// Typed result retrieval.
  template <typename T>
  T get_as() {
    return serde::from_bytes<T>(get());
  }

  const Uuid& task_id() const { return task_; }

 private:
  std::shared_ptr<CloudService> cloud_;
  Uuid task_;
  double submit_vtime_ = -1.0;
};

class Executor {
 public:
  /// Executor bound to one compute endpoint through the world's cloud
  /// service (resolved from the current process).
  explicit Executor(Uuid endpoint)
      : cloud_(CloudService::connect()), endpoint_(endpoint) {}

  Executor(std::shared_ptr<CloudService> cloud, Uuid endpoint)
      : cloud_(std::move(cloud)), endpoint_(endpoint) {}

  /// Byte-level submission.
  TaskFuture submit(const std::string& function, Bytes payload) {
    if (obs::enabled()) detail::submits_counter().inc();
    const double submit_vtime = sim::vnow();
    // The span is the thread's current context while cloud_->submit runs,
    // so the task record carries it to the remote worker.
    obs::SpanScope span("faas.submit", function, "wire-transfer");
    return TaskFuture(cloud_,
                      cloud_->submit(endpoint_, function, std::move(payload)),
                      submit_vtime);
  }

  /// Typed submission: the argument is serialized into the task payload.
  template <typename Arg>
  TaskFuture submit_typed(const std::string& function, const Arg& arg) {
    return submit(function, serde::to_bytes(arg));
  }

  const Uuid& endpoint() const { return endpoint_; }
  CloudService& cloud() { return *cloud_; }

 private:
  std::shared_ptr<CloudService> cloud_;
  Uuid endpoint_;
};

}  // namespace ps::faas
