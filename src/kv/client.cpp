#include "kv/client.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "proc/process.hpp"
#include "sim/vtime.hpp"

namespace ps::kv {

KvClient::KvClient(const std::string& address)
    : address_(address),
      server_(proc::current_process().world().services().resolve<KvServer>(
          address)) {}

net::PipelinedChannel& KvClient::channel() const {
  return proc::current_process()
      .local<net::ChannelRegistry>()
      .channel_for(server_);
}

net::WireSample KvClient::wire(std::size_t request_bytes,
                               std::size_t response_bytes) {
  proc::World& world = proc::current_process().world();
  const std::string& client_host = proc::current_process().host();
  const std::string& server_host = server_->host();

  // Request travels to the server on the channel's request lane...
  const double request_cost =
      world.fabric().transfer_time(client_host, server_host, request_bytes);
  return channel().transact(sim::vnow(), request_cost, [&](double arrival) {
    // ...queues behind other requests on the single-threaded server...
    const double payload =
        static_cast<double>(std::max(request_bytes, response_bytes));
    const double service =
        server_->service_time(static_cast<std::size_t>(payload));
    const double done = server_->queue().schedule(arrival, service);
    // Time spent behind other requests — the client-observed server backlog.
    // Gauge (not histogram): psctl top reads it as a point-in-time depth
    // signal; kMax makes the cross-site aggregate the worst backlog.
    if (obs::enabled()) {
      obs::MetricsRegistry::ambient()
          .gauge("kv.client.queue_wait_s", obs::GaugeAgg::kMax)
          .set(std::max(0.0, done - arrival - service));
    }
    // ...and the response travels back on the response lane.
    const double response_cost = world.fabric().transfer_time(
        server_host, client_host, response_bytes);
    return std::pair<double, double>{done, response_cost};
  });
}

double KvClient::round_trip(std::size_t request_bytes,
                            std::size_t response_bytes) {
  const net::WireSample sample = wire(request_bytes, response_bytes);
  sim::vset(sample.completion);
  return sample.arrival;
}

void KvClient::set(const std::string& key, BytesView value,
                   std::optional<std::chrono::milliseconds> ttl) {
  const double arrival = round_trip(value.size() + key.size(), 8);
  server_->set(key, value, ttl, arrival);
}

void KvClient::set_many(
    const std::vector<std::pair<std::string, Bytes>>& pairs) {
  std::size_t total = 0;
  for (const auto& [key, value] : pairs) total += key.size() + value.size();
  const double arrival = round_trip(total, 8 * std::max<std::size_t>(
                                               pairs.size(), 1));
  for (const auto& [key, value] : pairs) {
    server_->set(key, value, std::nullopt, arrival);
  }
}

std::optional<Bytes> KvClient::get(const std::string& key) {
  // Peek the size for response cost accounting; the server lock is cheap.
  const double probe_now = sim::vnow();
  std::optional<Bytes> value = server_->get(key, probe_now);
  const std::size_t response_bytes = value ? value->size() : 8;
  const double arrival = round_trip(key.size(), response_bytes);
  // Re-read at the arrival time so TTL expiry is judged server-side.
  return server_->get(key, arrival);
}

std::vector<std::optional<Bytes>> KvClient::get_many(
    const std::vector<std::string>& keys) {
  // Peek sizes for response cost accounting (as in get()).
  const double probe_now = sim::vnow();
  std::size_t request_bytes = 0;
  std::size_t response_bytes = 0;
  for (const std::string& key : keys) {
    request_bytes += key.size();
    const std::optional<Bytes> value = server_->get(key, probe_now);
    response_bytes += value ? value->size() : 8;
  }
  const double arrival =
      round_trip(request_bytes, std::max<std::size_t>(response_bytes, 8));
  // Re-read at the arrival time so TTL expiry is judged server-side.
  std::vector<std::optional<Bytes>> out;
  out.reserve(keys.size());
  for (const std::string& key : keys) {
    out.push_back(server_->get(key, arrival));
  }
  return out;
}

bool KvClient::exists(const std::string& key) {
  const double arrival = round_trip(key.size(), 8);
  return server_->exists(key, arrival);
}

std::vector<bool> KvClient::exists_many(const std::vector<std::string>& keys) {
  std::size_t request_bytes = 0;
  for (const std::string& key : keys) request_bytes += key.size();
  const double arrival = round_trip(
      request_bytes, 8 * std::max<std::size_t>(keys.size(), 1));
  std::vector<bool> out;
  out.reserve(keys.size());
  for (const std::string& key : keys) {
    out.push_back(server_->exists(key, arrival));
  }
  return out;
}

bool KvClient::del(const std::string& key) {
  round_trip(key.size(), 8);
  return server_->del(key);
}

std::vector<bool> KvClient::del_many(const std::vector<std::string>& keys) {
  std::size_t request_bytes = 0;
  for (const std::string& key : keys) request_bytes += key.size();
  wire(request_bytes, 8 * std::max<std::size_t>(keys.size(), 1));
  std::vector<bool> out;
  out.reserve(keys.size());
  for (const std::string& key : keys) {
    out.push_back(server_->del(key));
  }
  return out;
}

core::Future<core::Unit> KvClient::set_async(
    const std::string& key, BytesView value,
    std::optional<std::chrono::milliseconds> ttl) {
  const net::WireSample sample = wire(value.size() + key.size(), 8);
  server_->set(key, value, ttl, sample.arrival);
  core::Promise<core::Unit> promise;
  core::complete_at(promise, core::Unit{}, sample.completion);
  return promise.future();
}

core::Future<std::optional<Bytes>> KvClient::get_async(
    const std::string& key) {
  const double probe_now = sim::vnow();
  const std::optional<Bytes> peek = server_->get(key, probe_now);
  const std::size_t response_bytes = peek ? peek->size() : 8;
  const net::WireSample sample = wire(key.size(), response_bytes);
  // Re-read at the arrival time so TTL expiry is judged server-side.
  std::optional<Bytes> value = server_->get(key, sample.arrival);
  core::Promise<std::optional<Bytes>> promise;
  core::complete_at(promise, std::move(value), sample.completion);
  return promise.future();
}

core::Future<bool> KvClient::exists_async(const std::string& key) {
  const net::WireSample sample = wire(key.size(), 8);
  const bool present = server_->exists(key, sample.arrival);
  core::Promise<bool> promise;
  core::complete_at(promise, present, sample.completion);
  return promise.future();
}

core::Future<bool> KvClient::del_async(const std::string& key) {
  const net::WireSample sample = wire(key.size(), 8);
  const bool removed = server_->del(key);
  core::Promise<bool> promise;
  core::complete_at(promise, removed, sample.completion);
  return promise.future();
}

core::Future<std::vector<std::optional<Bytes>>> KvClient::get_many_async(
    const std::vector<std::string>& keys) {
  const double probe_now = sim::vnow();
  std::size_t request_bytes = 0;
  std::size_t response_bytes = 0;
  for (const std::string& key : keys) {
    request_bytes += key.size();
    const std::optional<Bytes> value = server_->get(key, probe_now);
    response_bytes += value ? value->size() : 8;
  }
  const net::WireSample sample =
      wire(request_bytes, std::max<std::size_t>(response_bytes, 8));
  std::vector<std::optional<Bytes>> out;
  out.reserve(keys.size());
  for (const std::string& key : keys) {
    out.push_back(server_->get(key, sample.arrival));
  }
  core::Promise<std::vector<std::optional<Bytes>>> promise;
  core::complete_at(promise, std::move(out), sample.completion);
  return promise.future();
}

core::Future<core::Unit> KvClient::set_many_async(
    const std::vector<std::pair<std::string, Bytes>>& pairs) {
  std::size_t total = 0;
  for (const auto& [key, value] : pairs) total += key.size() + value.size();
  const net::WireSample sample =
      wire(total, 8 * std::max<std::size_t>(pairs.size(), 1));
  for (const auto& [key, value] : pairs) {
    server_->set(key, value, std::nullopt, sample.arrival);
  }
  core::Promise<core::Unit> promise;
  core::complete_at(promise, core::Unit{}, sample.completion);
  return promise.future();
}

}  // namespace ps::kv
