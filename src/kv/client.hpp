// Client side of the Redis-like KV substrate.
//
// A KvClient resolves a server address through the world's service
// directory and issues requests. Each request charges the caller's virtual
// time with: request transfer to the server host, FIFO queueing + service
// on the server (single-threaded Redis event loop), and the response
// transfer back — the full client-observed round trip.
//
// All requests ride the calling process's net::PipelinedChannel to the
// server. Synchronous ops advance the caller's clock to the round trip's
// completion (identical to the pre-pipelining model for sequential
// callers); the *_async ops issue onto the channel without advancing the
// caller's clock and return a Future stamped at that request's own
// pipelined completion vtime — N outstanding requests overlap transfer and
// FIFO service, and no thread is held while a request is in flight.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "core/future.hpp"
#include "kv/server.hpp"
#include "net/channel.hpp"

namespace ps::kv {

class KvClient {
 public:
  /// Connects to the server bound at `address` in the current world.
  explicit KvClient(const std::string& address);

  void set(const std::string& key, BytesView value,
           std::optional<std::chrono::milliseconds> ttl = std::nullopt);

  /// Pipelined MSET: all pairs travel in one request/response round trip
  /// (one network RTT instead of one per key).
  void set_many(const std::vector<std::pair<std::string, Bytes>>& pairs);

  std::optional<Bytes> get(const std::string& key);

  /// Pipelined MGET: all keys travel in one request and all values return
  /// in one response (one network RTT instead of one per key; the dual of
  /// set_many). Missing keys yield nullopt, position-for-position.
  std::vector<std::optional<Bytes>> get_many(
      const std::vector<std::string>& keys);

  bool exists(const std::string& key);

  /// Pipelined EXISTS: all keys probed in one request/response round trip
  /// (the presence-check dual of get_many). Position-for-position results.
  std::vector<bool> exists_many(const std::vector<std::string>& keys);

  bool del(const std::string& key);

  /// Pipelined DEL: all keys removed in one request/response round trip
  /// (the eviction dual of exists_many). Position-for-position "was
  /// present" results.
  std::vector<bool> del_many(const std::vector<std::string>& keys);

  // Completion-driven ops: issue onto the channel, return immediately with
  // a ready future stamped at the request's pipelined completion vtime.
  // The caller's clock does not advance and no executor worker is held.
  core::Future<core::Unit> set_async(
      const std::string& key, BytesView value,
      std::optional<std::chrono::milliseconds> ttl = std::nullopt);
  core::Future<std::optional<Bytes>> get_async(const std::string& key);
  core::Future<bool> exists_async(const std::string& key);
  core::Future<bool> del_async(const std::string& key);
  core::Future<std::vector<std::optional<Bytes>>> get_many_async(
      const std::vector<std::string>& keys);
  core::Future<core::Unit> set_many_async(
      const std::vector<std::pair<std::string, Bytes>>& pairs);

  const std::string& address() const { return address_; }
  KvServer& server() { return *server_; }

  /// The calling process's pipelined channel to this server.
  net::PipelinedChannel& channel() const;

 private:
  /// One wire exchange (request transfer, FIFO service, response transfer)
  /// on the current process's channel. Does not touch the caller's clock.
  net::WireSample wire(std::size_t request_bytes, std::size_t response_bytes);

  /// Charges request/queue/response costs; returns server-side arrival time.
  double round_trip(std::size_t request_bytes, std::size_t response_bytes);

  std::string address_;
  std::shared_ptr<KvServer> server_;
};

}  // namespace ps::kv
