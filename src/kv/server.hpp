// Redis-like in-memory key-value server (the RedisConnector substrate).
//
// The paper uses Redis as a hybrid in-memory/on-disk mediator with
// low latency, persistence, and easy configuration (section 4.1.2).
// KvServer reproduces the surface ProxyStore relies on — GET/SET/DEL/EXISTS
// with optional TTL — plus append-only-file persistence so a restarted
// server recovers its contents, and a single-threaded service model whose
// queueing is captured by a sim::Resource.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "proc/world.hpp"
#include "sim/resource.hpp"

namespace ps::kv {

struct KvServerOptions {
  /// Append-only-file path for persistence; empty disables.
  std::filesystem::path aof_path;
  /// Base service time per request (command parse + dispatch).
  double base_service_s = 15e-6;
  /// Server-side memory bandwidth applied to payload handling.
  double mem_Bps = 8e9;
  /// Number of worker threads modeled (Redis is single-threaded).
  std::size_t servers = 1;
};

class KvServer {
 public:
  /// Creates a server bound in `world`'s service directory at
  /// "redis://<host>/<name>". Replays the AOF if one exists.
  static std::shared_ptr<KvServer> start(proc::World& world,
                                         const std::string& host,
                                         const std::string& name,
                                         KvServerOptions options = {});

  explicit KvServer(std::string host, KvServerOptions options = {});

  const std::string& host() const { return host_; }

  // -- data plane (invoked by KvClient; thread-safe) -------------------------

  void set(const std::string& key, BytesView value,
           std::optional<std::chrono::milliseconds> ttl = std::nullopt,
           double virtual_now = 0.0);
  std::optional<Bytes> get(const std::string& key, double virtual_now = 0.0);
  bool exists(const std::string& key, double virtual_now = 0.0);
  bool del(const std::string& key);

  std::size_t size() const;
  void flush_all();

  /// Virtual service time for a request touching `bytes` of payload.
  double service_time(std::size_t bytes) const;

  /// The FIFO service queue (single-threaded Redis event loop).
  sim::Resource& queue() { return queue_; }

  /// Persists nothing further and truncates the AOF (test helper).
  void clear_persistence();

 private:
  struct Entry {
    Bytes value;
    /// Virtual expiry time; infinity when no TTL.
    double expires_at;
  };

  void append_aof(const std::string& op, const std::string& key,
                  BytesView value);
  void replay_aof();

  std::string host_;
  KvServerOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> data_;
  sim::Resource queue_;
  std::unique_ptr<std::ofstream> aof_;
};

/// Canonical service-directory address for a server.
std::string kv_address(const std::string& host, const std::string& name);

}  // namespace ps::kv
