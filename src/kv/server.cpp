#include "kv/server.hpp"

#include <fstream>
#include <limits>

#include "common/error.hpp"
#include "serde/serde.hpp"

namespace ps::kv {

namespace fs = std::filesystem;

std::string kv_address(const std::string& host, const std::string& name) {
  return "redis://" + host + "/" + name;
}

std::shared_ptr<KvServer> KvServer::start(proc::World& world,
                                          const std::string& host,
                                          const std::string& name,
                                          KvServerOptions options) {
  auto server = std::make_shared<KvServer>(host, std::move(options));
  world.services().bind<KvServer>(kv_address(host, name), server);
  return server;
}

KvServer::KvServer(std::string host, KvServerOptions options)
    : host_(std::move(host)),
      options_(std::move(options)),
      queue_(options_.servers) {
  if (!options_.aof_path.empty()) {
    replay_aof();
    aof_ = std::make_unique<std::ofstream>(
        options_.aof_path, std::ios::binary | std::ios::app);
    if (!*aof_) {
      throw Error("KvServer: cannot open AOF " + options_.aof_path.string());
    }
  }
}

double KvServer::service_time(std::size_t bytes) const {
  return options_.base_service_s +
         static_cast<double>(bytes) / options_.mem_Bps;
}

void KvServer::append_aof(const std::string& op, const std::string& key,
                          BytesView value) {
  if (!aof_) return;
  serde::Writer w;
  w.write_blob(op);
  w.write_blob(key);
  w.write_blob(value);
  const Bytes record = w.take();
  aof_->write(record.data(), static_cast<std::streamsize>(record.size()));
  aof_->flush();
}

void KvServer::replay_aof() {
  std::ifstream in(options_.aof_path, std::ios::binary);
  if (!in) return;  // fresh server
  Bytes contents((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  serde::Reader r(contents);
  constexpr double kNoExpiry = std::numeric_limits<double>::infinity();
  while (!r.at_end()) {
    const std::string op(r.read_blob());
    const std::string key(r.read_blob());
    const Bytes value(r.read_blob());
    if (op == "SET") {
      data_[key] = Entry{value, kNoExpiry};
    } else if (op == "DEL") {
      data_.erase(key);
    } else {
      throw Error("KvServer: corrupt AOF record op='" + op + "'");
    }
  }
}

void KvServer::set(const std::string& key, BytesView value,
                   std::optional<std::chrono::milliseconds> ttl,
                   double virtual_now) {
  std::lock_guard lock(mu_);
  double expires = std::numeric_limits<double>::infinity();
  if (ttl) expires = virtual_now + std::chrono::duration<double>(*ttl).count();
  data_[key] = Entry{Bytes(value), expires};
  append_aof("SET", key, value);
}

std::optional<Bytes> KvServer::get(const std::string& key,
                                   double virtual_now) {
  std::lock_guard lock(mu_);
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  if (it->second.expires_at <= virtual_now) {
    data_.erase(it);  // lazy expiry, as Redis does
    return std::nullopt;
  }
  return it->second.value;
}

bool KvServer::exists(const std::string& key, double virtual_now) {
  std::lock_guard lock(mu_);
  const auto it = data_.find(key);
  if (it == data_.end()) return false;
  if (it->second.expires_at <= virtual_now) {
    data_.erase(it);
    return false;
  }
  return true;
}

bool KvServer::del(const std::string& key) {
  std::lock_guard lock(mu_);
  const bool existed = data_.erase(key) > 0;
  if (existed) append_aof("DEL", key, {});
  return existed;
}

std::size_t KvServer::size() const {
  std::lock_guard lock(mu_);
  return data_.size();
}

void KvServer::flush_all() {
  std::lock_guard lock(mu_);
  data_.clear();
}

void KvServer::clear_persistence() {
  std::lock_guard lock(mu_);
  if (aof_) {
    aof_ = std::make_unique<std::ofstream>(
        options_.aof_path, std::ios::binary | std::ios::trunc);
  }
}

}  // namespace ps::kv
