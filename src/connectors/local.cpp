#include "connectors/local.hpp"

#include "common/uuid.hpp"
#include "connectors/costs.hpp"

namespace ps::connectors {

LocalConnector::LocalConnector()
    : address_("local://" + Uuid::random().str()),
      table_(std::make_shared<Table>()) {
  current_world().services().bind<Table>(address_, table_);
}

LocalConnector::LocalConnector(const std::string& address)
    : address_(address),
      table_(current_world().services().resolve<Table>(address)) {}

core::ConnectorConfig LocalConnector::config() const {
  return core::ConnectorConfig{.type = "local",
                               .params = {{"address", address_}}};
}

core::ConnectorTraits LocalConnector::traits() const {
  return core::ConnectorTraits{.storage = "memory",
                               .intra_site = true,
                               .inter_site = false,
                               .persistent = false};
}

core::Key LocalConnector::put(BytesView data) {
  charge_mem(data.size());
  core::Key key{.object_id = Uuid::random().str(), .meta = {}};
  std::lock_guard lock(table_->mu);
  table_->objects.emplace(key.object_id, Bytes(data));
  return key;
}

std::optional<Bytes> LocalConnector::get(const core::Key& key) {
  std::lock_guard lock(table_->mu);
  const auto it = table_->objects.find(key.object_id);
  if (it == table_->objects.end()) return std::nullopt;
  charge_mem(it->second.size());
  return it->second;
}

std::vector<std::optional<Bytes>> LocalConnector::get_batch(
    const std::vector<core::Key>& keys) {
  std::vector<std::optional<Bytes>> out;
  out.reserve(keys.size());
  std::lock_guard lock(table_->mu);
  for (const core::Key& key : keys) {
    const auto it = table_->objects.find(key.object_id);
    if (it == table_->objects.end()) {
      out.emplace_back(std::nullopt);
      continue;
    }
    charge_mem(it->second.size());
    out.emplace_back(it->second);
  }
  return out;
}

core::Future<std::optional<Bytes>> LocalConnector::get_async(
    const core::Key& key) {
  return core::make_ready_future(get(key));
}

core::Future<core::Key> LocalConnector::put_async(BytesView data) {
  return core::make_ready_future(put(data));
}

core::Future<bool> LocalConnector::exists_async(const core::Key& key) {
  return core::make_ready_future(exists(key));
}

core::Future<core::Unit> LocalConnector::evict_async(const core::Key& key) {
  evict(key);
  return core::make_ready_future(core::Unit{});
}

bool LocalConnector::exists(const core::Key& key) {
  std::lock_guard lock(table_->mu);
  return table_->objects.contains(key.object_id);
}

std::vector<bool> LocalConnector::exists_batch(
    const std::vector<core::Key>& keys) {
  std::vector<bool> out;
  out.reserve(keys.size());
  std::lock_guard lock(table_->mu);
  for (const core::Key& key : keys) {
    out.push_back(table_->objects.contains(key.object_id));
  }
  return out;
}

void LocalConnector::evict(const core::Key& key) {
  std::lock_guard lock(table_->mu);
  table_->objects.erase(key.object_id);
}

bool LocalConnector::put_at(const core::Key& key, BytesView data) {
  charge_mem(data.size());
  std::lock_guard lock(table_->mu);
  table_->objects.insert_or_assign(key.object_id, Bytes(data));
  return true;
}

core::Key LocalConnector::reserve_key() {
  return core::Key{.object_id = Uuid::random().str(), .meta = {}};
}

std::size_t LocalConnector::count() const {
  std::lock_guard lock(table_->mu);
  return table_->objects.size();
}

namespace {
const core::ConnectorRegistration kRegister(
    "local", [](const core::ConnectorConfig& cfg) {
      return std::static_pointer_cast<core::Connector>(
          std::make_shared<LocalConnector>(cfg.param("address")));
    });
}  // namespace

}  // namespace ps::connectors
