// Access-controlled channel wrapper (paper section 3.3: "proxies can be
// moved in place of confidential data (e.g., patient health information)
// while ensuring that the data can be resolved only where permitted").
//
// AccessControlConnector decorates any inner connector with a site
// allowlist: puts record the policy, and a get/exists issued from a process
// whose fabric site is not allowed raises AccessDeniedError — so a proxy of
// confidential data can circulate freely while the bytes remain fenced.
#pragma once

#include <memory>
#include <set>
#include <string>

#include "common/error.hpp"
#include "core/connector.hpp"

namespace ps::connectors {

/// Raised when a process outside the allowlist resolves a protected object.
class AccessDeniedError : public ConnectorError {
 public:
  using ConnectorError::ConnectorError;
};

class AccessControlConnector : public core::Connector {
 public:
  /// Objects put through this connector resolve only from processes whose
  /// fabric site is in `allowed_sites`.
  AccessControlConnector(std::shared_ptr<core::Connector> inner,
                         std::set<std::string> allowed_sites);

  std::string type() const override { return "access"; }
  core::ConnectorConfig config() const override;
  core::ConnectorTraits traits() const override { return inner_->traits(); }

  core::Key put(BytesView data) override;
  core::Key put_hinted(BytesView data, const core::PutHints& hints) override;
  std::vector<core::Key> put_batch(const std::vector<Bytes>& items) override;
  std::optional<Bytes> get(const core::Key& key) override;
  bool exists(const core::Key& key) override;
  void evict(const core::Key& key) override;
  bool put_at(const core::Key& key, BytesView data) override;
  core::Key reserve_key() override;
  void close() override { inner_->close(); }

  const std::set<std::string>& allowed_sites() const { return allowed_; }

 private:
  /// Throws AccessDeniedError unless the current process's site is allowed.
  void check_access(const core::Key& key) const;

  std::shared_ptr<core::Connector> inner_;
  std::set<std::string> allowed_;
};

}  // namespace ps::connectors
