// RedisConnector (paper section 4.1.2): mediated communication through an
// existing Redis-like server. The implementation is deliberately thin — the
// Python original is 31 lines — because the Connector protocol does all the
// heavy lifting; this is the paper's evidence that the proxy model extends
// easily to new mediated channels.
#pragma once

#include <string>

#include "core/connector.hpp"
#include "kv/client.hpp"

namespace ps::connectors {

class RedisConnector : public core::Connector {
 public:
  /// `address` of a running kv::KvServer, e.g. kv_address(host, name).
  explicit RedisConnector(const std::string& address);

  std::string type() const override { return "redis"; }
  core::ConnectorConfig config() const override;
  core::ConnectorTraits traits() const override;

  core::Key put(BytesView data) override;
  /// Pipelined bulk put: one round trip for the whole batch.
  std::vector<core::Key> put_batch(const std::vector<Bytes>& items) override;
  std::optional<Bytes> get(const core::Key& key) override;
  /// Pipelined bulk get (MGET): one round trip for the whole batch.
  std::vector<std::optional<Bytes>> get_batch(
      const std::vector<core::Key>& keys) override;
  bool exists(const core::Key& key) override;
  /// Pipelined bulk presence check: one round trip for the whole batch.
  std::vector<bool> exists_batch(const std::vector<core::Key>& keys) override;
  void evict(const core::Key& key) override;
  /// Pipelined bulk eviction (DEL): one round trip for the whole batch.
  void evict_batch(const std::vector<core::Key>& keys) override;
  bool put_at(const core::Key& key, BytesView data) override;
  core::Key reserve_key() override;

  // Completion-driven wire ops: each issues onto the kv channel and returns
  // a future stamped at its own pipelined completion vtime — no executor
  // worker is occupied while the request is in flight, and N outstanding
  // ops on one channel overlap transfer and FIFO service.
  core::Future<std::optional<Bytes>> get_async(const core::Key& key) override;
  core::Future<core::Key> put_async(BytesView data) override;
  core::Future<bool> exists_async(const core::Key& key) override;
  core::Future<core::Unit> evict_async(const core::Key& key) override;
  core::Future<std::vector<std::optional<Bytes>>> get_batch_async(
      const std::vector<core::Key>& keys) override;

 private:
  std::string address_;
  kv::KvClient client_;
};

}  // namespace ps::connectors
