// EndpointConnector (paper section 4.2.2).
//
// Clients interact with their site-local PS-endpoint; object keys are
// (object_id, endpoint_id). A request whose key names another endpoint is
// forwarded by the local endpoint over a peer connection, so producers and
// consumers at different sites exchange data without either talking to a
// remote server directly (Figure 3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/connector.hpp"
#include "endpoint/endpoint.hpp"

namespace ps::connectors {

class EndpointConnector : public core::Connector {
 public:
  /// `addresses`: service addresses ("psep://host/name") of the endpoints
  /// participating in the deployment, one per site. The connector binds to
  /// the endpoint co-located with the current host (or, failing that, one
  /// in the same site).
  explicit EndpointConnector(std::vector<std::string> addresses);

  std::string type() const override { return "endpoint"; }
  core::ConnectorConfig config() const override;
  core::ConnectorTraits traits() const override;

  core::Key put(BytesView data) override;
  std::optional<Bytes> get(const core::Key& key) override;
  /// Pipelined bulk get: the whole batch shares one pair of client<->
  /// endpoint transfer legs instead of one round trip per key.
  std::vector<std::optional<Bytes>> get_batch(
      const std::vector<core::Key>& keys) override;
  bool exists(const core::Key& key) override;
  void evict(const core::Key& key) override;
  bool put_at(const core::Key& key, BytesView data) override;
  core::Key reserve_key() override;

  // Completion-driven ops: the endpoint exchange runs inline on the caller
  // with its clock saved and restored, and the future is stamped at the
  // exchange's completion vtime — same cost as the executor adapter but
  // with zero workers held while the request is outstanding.
  core::Future<std::optional<Bytes>> get_async(const core::Key& key) override;
  core::Future<core::Key> put_async(BytesView data) override;
  core::Future<bool> exists_async(const core::Key& key) override;
  core::Future<core::Unit> evict_async(const core::Key& key) override;
  core::Future<std::vector<std::optional<Bytes>>> get_batch_async(
      const std::vector<core::Key>& keys) override;

  /// The endpoint this connector talks to.
  endpoint::Endpoint& home() { return *home_; }

 private:
  /// Issues `request` to the home endpoint, charging the client<->endpoint
  /// legs of the round trip.
  endpoint::EndpointResponse round_trip(endpoint::EndpointRequest request,
                                        std::size_t response_hint);

  std::vector<std::string> addresses_;
  std::shared_ptr<endpoint::Endpoint> home_;
};

}  // namespace ps::connectors
