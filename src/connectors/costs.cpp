#include "connectors/costs.hpp"

#include "sim/vtime.hpp"

namespace ps::connectors {

proc::World& current_world() { return proc::current_process().world(); }

const std::string& current_host() { return proc::current_process().host(); }

void charge_mem(std::size_t bytes) {
  sim::vadvance(current_world().fabric().mem_copy_time(current_host(), bytes));
}

void charge_disk_write(std::size_t bytes) {
  sim::vadvance(
      current_world().fabric().disk_write_time(current_host(), bytes));
}

void charge_disk_read(std::size_t bytes) {
  sim::vadvance(
      current_world().fabric().disk_read_time(current_host(), bytes));
}

void charge_transfer(const std::string& from, const std::string& to,
                     std::size_t bytes) {
  sim::vadvance(current_world().fabric().transfer_time(from, to, bytes));
}

}  // namespace ps::connectors
