// LocalConnector: in-memory mediated channel for testing and single-site use.
//
// Objects live in a shared in-memory table registered in the world's service
// directory, so a LocalConnector reconstructed in another simulated process
// (from a proxy's factory descriptor) sees the same objects — the minimal
// mediated channel satisfying the Connector protocol.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/connector.hpp"

namespace ps::connectors {

class LocalConnector : public core::Connector {
 public:
  /// Creates a fresh channel registered in the current world.
  LocalConnector();

  /// Attaches to an existing channel by address ("local://<uuid>").
  explicit LocalConnector(const std::string& address);

  std::string type() const override { return "local"; }
  core::ConnectorConfig config() const override;
  core::ConnectorTraits traits() const override;

  core::Key put(BytesView data) override;
  std::optional<Bytes> get(const core::Key& key) override;
  std::vector<std::optional<Bytes>> get_batch(
      const std::vector<core::Key>& keys) override;
  bool exists(const core::Key& key) override;
  std::vector<bool> exists_batch(
      const std::vector<core::Key>& keys) override;
  void evict(const core::Key& key) override;
  bool put_at(const core::Key& key, BytesView data) override;
  core::Key reserve_key() override;

  // Native async overrides: memory operations complete inline, so these
  // return already-ready futures with no executor round trip.
  core::Future<std::optional<Bytes>> get_async(const core::Key& key) override;
  core::Future<core::Key> put_async(BytesView data) override;
  core::Future<bool> exists_async(const core::Key& key) override;
  core::Future<core::Unit> evict_async(const core::Key& key) override;

  const std::string& address() const { return address_; }

  /// Number of objects currently stored (test observability).
  std::size_t count() const;

 private:
  struct Table {
    mutable std::mutex mu;
    std::unordered_map<std::string, Bytes> objects;
  };

  std::string address_;
  std::shared_ptr<Table> table_;
};

}  // namespace ps::connectors
