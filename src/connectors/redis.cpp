#include "connectors/redis.hpp"

#include "common/uuid.hpp"

namespace ps::connectors {

RedisConnector::RedisConnector(const std::string& address)
    : address_(address), client_(address) {}

core::ConnectorConfig RedisConnector::config() const {
  return core::ConnectorConfig{.type = "redis",
                               .params = {{"address", address_}}};
}

core::ConnectorTraits RedisConnector::traits() const {
  return core::ConnectorTraits{.storage = "hybrid",
                               .intra_site = true,
                               .inter_site = false,
                               .persistent = true};
}

core::Key RedisConnector::put(BytesView data) {
  core::Key key = reserve_key();
  put_at(key, data);
  return key;
}

core::Key RedisConnector::reserve_key() {
  return core::Key{.object_id = Uuid::random().str(), .meta = {}};
}

bool RedisConnector::put_at(const core::Key& key, BytesView data) {
  client_.set(key.object_id, data);
  return true;
}

std::vector<core::Key> RedisConnector::put_batch(
    const std::vector<Bytes>& items) {
  std::vector<core::Key> keys;
  std::vector<std::pair<std::string, Bytes>> pairs;
  keys.reserve(items.size());
  pairs.reserve(items.size());
  for (const Bytes& item : items) {
    keys.push_back(reserve_key());
    pairs.emplace_back(keys.back().object_id, item);
  }
  client_.set_many(pairs);
  return keys;
}

std::optional<Bytes> RedisConnector::get(const core::Key& key) {
  return client_.get(key.object_id);
}

std::vector<std::optional<Bytes>> RedisConnector::get_batch(
    const std::vector<core::Key>& keys) {
  std::vector<std::string> names;
  names.reserve(keys.size());
  for (const core::Key& key : keys) names.push_back(key.object_id);
  return client_.get_many(names);
}

bool RedisConnector::exists(const core::Key& key) {
  return client_.exists(key.object_id);
}

std::vector<bool> RedisConnector::exists_batch(
    const std::vector<core::Key>& keys) {
  std::vector<std::string> names;
  names.reserve(keys.size());
  for (const core::Key& key : keys) names.push_back(key.object_id);
  return client_.exists_many(names);
}

void RedisConnector::evict(const core::Key& key) {
  client_.del(key.object_id);
}

void RedisConnector::evict_batch(const std::vector<core::Key>& keys) {
  std::vector<std::string> names;
  names.reserve(keys.size());
  for (const core::Key& key : keys) names.push_back(key.object_id);
  client_.del_many(names);
}

core::Future<std::optional<Bytes>> RedisConnector::get_async(
    const core::Key& key) {
  return client_.get_async(key.object_id);
}

core::Future<core::Key> RedisConnector::put_async(BytesView data) {
  core::Key key = reserve_key();
  // The continuation runs at the request's completion vtime, so the minted
  // key arrives stamped with the wire cost.
  return client_.set_async(key.object_id, data)
      .then([key](const core::Unit&) { return key; });
}

core::Future<bool> RedisConnector::exists_async(const core::Key& key) {
  return client_.exists_async(key.object_id);
}

core::Future<core::Unit> RedisConnector::evict_async(const core::Key& key) {
  return client_.del_async(key.object_id)
      .then([](const bool&) { return core::Unit{}; });
}

core::Future<std::vector<std::optional<Bytes>>> RedisConnector::get_batch_async(
    const std::vector<core::Key>& keys) {
  std::vector<std::string> names;
  names.reserve(keys.size());
  for (const core::Key& key : keys) names.push_back(key.object_id);
  return client_.get_many_async(names);
}

namespace {
const core::ConnectorRegistration kRegister(
    "redis", [](const core::ConnectorConfig& cfg) {
      return std::static_pointer_cast<core::Connector>(
          std::make_shared<RedisConnector>(cfg.param("address")));
    });
}  // namespace

}  // namespace ps::connectors
