// GlobusConnector (paper section 4.2.1): extends file-based mediation to
// inter-site transfers through the Globus transfer service.
//
// The connector is configured with a set of endpoints; a put serializes the
// object to the endpoint matching the producing host and submits transfer
// tasks to every other endpoint. Keys are (object_id, per-destination task
// ids); a resolving proxy waits for the transfer task covering its host to
// succeed before reading, or raises TransferError. put_batch submits all
// objects in a single Globus transfer per destination.
#pragma once

#include <regex>
#include <string>
#include <vector>

#include "core/connector.hpp"
#include "globus/transfer.hpp"

namespace ps::connectors {

struct GlobusEndpointSpec {
  /// Regular expression matched against the current fabric host name
  /// (the hostname-pattern mapping of the paper).
  std::string host_pattern;
  Uuid endpoint;
};

class GlobusConnector : public core::Connector {
 public:
  explicit GlobusConnector(std::vector<GlobusEndpointSpec> endpoints);

  std::string type() const override { return "globus"; }
  core::ConnectorConfig config() const override;
  core::ConnectorTraits traits() const override;

  core::Key put(BytesView data) override;
  std::vector<core::Key> put_batch(const std::vector<Bytes>& items) override;
  std::optional<Bytes> get(const core::Key& key) override;
  bool exists(const core::Key& key) override;
  void evict(const core::Key& key) override;

 private:
  /// The configured endpoint whose pattern matches the current host.
  const GlobusEndpointSpec& local_endpoint() const;

  std::vector<GlobusEndpointSpec> endpoints_;
  std::shared_ptr<globus::TransferService> service_;
};

}  // namespace ps::connectors
