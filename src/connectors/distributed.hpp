// Distributed in-memory connectors (paper section 4.1.3).
//
// MargoConnector, UCXConnector, and ZMQConnector share one implementation
// differing only in transport profile: each node's first connector spawns a
// local storage server; objects stay on the producing node and consumers
// fetch them via RPC over the chosen transport. The store is elastic —
// servers appear as proxies reach new nodes.
#pragma once

#include <memory>
#include <string>

#include "core/connector.hpp"
#include "rpc/peer_store.hpp"

namespace ps::connectors {

class DistributedInMemoryConnector : public core::Connector {
 public:
  /// `transport_name` in {"margo", "ucx", "zmq"}. `store_id` names the
  /// distributed store; connectors with the same id share objects.
  DistributedInMemoryConnector(std::string transport_name,
                               std::string store_id);

  std::string type() const override { return transport_name_; }
  core::ConnectorConfig config() const override;
  core::ConnectorTraits traits() const override;

  core::Key put(BytesView data) override;
  std::optional<Bytes> get(const core::Key& key) override;
  bool exists(const core::Key& key) override;
  void evict(const core::Key& key) override;

  const std::string& store_id() const { return store_id_; }

 private:
  std::string transport_name_;
  std::string store_id_;
  rpc::PeerStoreClient client_;
};

/// Convenience aliases matching the paper's connector names.
class MargoConnector : public DistributedInMemoryConnector {
 public:
  explicit MargoConnector(std::string store_id)
      : DistributedInMemoryConnector("margo", std::move(store_id)) {}
};

class UCXConnector : public DistributedInMemoryConnector {
 public:
  explicit UCXConnector(std::string store_id)
      : DistributedInMemoryConnector("ucx", std::move(store_id)) {}
};

class ZMQConnector : public DistributedInMemoryConnector {
 public:
  explicit ZMQConnector(std::string store_id)
      : DistributedInMemoryConnector("zmq", std::move(store_id)) {}
};

}  // namespace ps::connectors
