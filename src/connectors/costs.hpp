// Virtual-time cost charging helpers shared by connector implementations.
//
// Connectors execute the real data path and additionally charge the calling
// thread's virtual clock with the modeled cost of the operation given the
// current process's fabric host. Unit tests run in the default world where
// all costs are tiny; benchmark harnesses build paper-calibrated fabrics.
#pragma once

#include <cstddef>
#include <string>

#include "proc/process.hpp"
#include "proc/world.hpp"

namespace ps::connectors {

/// The world of the calling thread's current process.
proc::World& current_world();

/// The fabric host of the calling thread's current process.
const std::string& current_host();

/// Charges an in-memory staging copy of `bytes` on the current host.
void charge_mem(std::size_t bytes);

/// Charges a file-system write / read of `bytes` on the current host.
void charge_disk_write(std::size_t bytes);
void charge_disk_read(std::size_t bytes);

/// Charges a one-way network transfer between two fabric hosts.
void charge_transfer(const std::string& from, const std::string& to,
                     std::size_t bytes);

}  // namespace ps::connectors
