#include "connectors/globus.hpp"

#include <fstream>

#include "common/uuid.hpp"
#include "connectors/costs.hpp"

namespace ps::connectors {

namespace fs = std::filesystem;

GlobusConnector::GlobusConnector(std::vector<GlobusEndpointSpec> endpoints)
    : endpoints_(std::move(endpoints)),
      service_(globus::TransferService::connect()) {
  if (endpoints_.size() < 2) {
    throw ConnectorError("GlobusConnector: needs at least two endpoints");
  }
}

core::ConnectorConfig GlobusConnector::config() const {
  core::ConnectorConfig cfg{.type = "globus", .params = {}};
  cfg.params["count"] = std::to_string(endpoints_.size());
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const std::string idx = std::to_string(i);
    cfg.params["pattern_" + idx] = endpoints_[i].host_pattern;
    cfg.params["endpoint_" + idx] = endpoints_[i].endpoint.str();
  }
  return cfg;
}

core::ConnectorTraits GlobusConnector::traits() const {
  return core::ConnectorTraits{.storage = "disk",
                               .intra_site = false,
                               .inter_site = true,
                               .persistent = true};
}

const GlobusEndpointSpec& GlobusConnector::local_endpoint() const {
  const std::string& host = current_host();
  for (const GlobusEndpointSpec& spec : endpoints_) {
    if (std::regex_search(host, std::regex(spec.host_pattern))) return spec;
  }
  throw ConnectorError("GlobusConnector: no endpoint pattern matches host '" +
                       host + "'");
}

core::Key GlobusConnector::put(BytesView data) {
  std::vector<core::Key> keys = put_batch({Bytes(data)});
  return std::move(keys.front());
}

std::vector<core::Key> GlobusConnector::put_batch(
    const std::vector<Bytes>& items) {
  const GlobusEndpointSpec& local = local_endpoint();
  const fs::path dir = service_->endpoint_dir(local.endpoint);

  std::vector<core::Key> keys;
  std::vector<std::string> files;
  keys.reserve(items.size());
  files.reserve(items.size());
  for (const Bytes& item : items) {
    core::Key key{.object_id = Uuid::random().str(), .meta = {}};
    const fs::path path = dir / key.object_id;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw ConnectorError("GlobusConnector: cannot write " + path.string());
    }
    out.write(item.data(), static_cast<std::streamsize>(item.size()));
    charge_disk_write(item.size());
    key.meta["source"] = local.endpoint.str();
    files.push_back(key.object_id);
    keys.push_back(std::move(key));
  }

  // One transfer task per remote destination for the whole batch
  // (Store::proxy_batch -> a single Globus transfer; paper section 4.2.1).
  for (const GlobusEndpointSpec& spec : endpoints_) {
    if (spec.endpoint == local.endpoint) continue;
    const Uuid task = service_->submit(local.endpoint, spec.endpoint, files);
    for (core::Key& key : keys) {
      key.meta["task_" + spec.endpoint.str()] = task.str();
    }
  }
  return keys;
}

std::optional<Bytes> GlobusConnector::get(const core::Key& key) {
  const GlobusEndpointSpec& local = local_endpoint();
  // If this host is not the producing endpoint, the object arrives via a
  // transfer task: wait for it (raising TransferError on failure).
  if (key.field("source") != local.endpoint.str()) {
    const auto it = key.meta.find("task_" + local.endpoint.str());
    if (it == key.meta.end()) {
      throw ConnectorError(
          "GlobusConnector: no transfer task targets this endpoint");
    }
    service_->wait(Uuid::parse(it->second));
  }
  const fs::path path = service_->endpoint_dir(local.endpoint) / key.object_id;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  charge_disk_read(data.size());
  return data;
}

bool GlobusConnector::exists(const core::Key& key) {
  const GlobusEndpointSpec& local = local_endpoint();
  if (key.field("source") != local.endpoint.str()) {
    const auto it = key.meta.find("task_" + local.endpoint.str());
    if (it == key.meta.end()) return false;
    if (service_->status(Uuid::parse(it->second)) ==
        globus::TaskStatus::kFailed) {
      return false;
    }
  }
  // The file may still be in flight; existence means "will be available".
  const fs::path path = service_->endpoint_dir(local.endpoint) / key.object_id;
  return fs::exists(path) || key.field("source") != local.endpoint.str();
}

void GlobusConnector::evict(const core::Key& key) {
  // Evict everywhere we can see (local endpoint view).
  const GlobusEndpointSpec& local = local_endpoint();
  std::error_code ec;
  fs::remove(service_->endpoint_dir(local.endpoint) / key.object_id, ec);
}

namespace {
const core::ConnectorRegistration kRegister(
    "globus", [](const core::ConnectorConfig& cfg) {
      const std::size_t count = std::stoul(cfg.param("count"));
      std::vector<GlobusEndpointSpec> endpoints;
      endpoints.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::string idx = std::to_string(i);
        endpoints.push_back(GlobusEndpointSpec{
            cfg.param("pattern_" + idx),
            Uuid::parse(cfg.param("endpoint_" + idx))});
      }
      return std::static_pointer_cast<core::Connector>(
          std::make_shared<GlobusConnector>(std::move(endpoints)));
    });
}  // namespace

}  // namespace ps::connectors
