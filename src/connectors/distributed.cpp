#include "connectors/distributed.hpp"

#include "common/uuid.hpp"

namespace ps::connectors {

DistributedInMemoryConnector::DistributedInMemoryConnector(
    std::string transport_name, std::string store_id)
    : transport_name_(std::move(transport_name)),
      store_id_(std::move(store_id)),
      client_(store_id_, rpc::transport_by_name(transport_name_)) {}

core::ConnectorConfig DistributedInMemoryConnector::config() const {
  return core::ConnectorConfig{.type = transport_name_,
                               .params = {{"store_id", store_id_}}};
}

core::ConnectorTraits DistributedInMemoryConnector::traits() const {
  return core::ConnectorTraits{.storage = "memory",
                               .intra_site = true,
                               .inter_site = false,
                               .persistent = false};
}

core::Key DistributedInMemoryConnector::put(BytesView data) {
  core::Key key{.object_id = Uuid::random().str(), .meta = {}};
  key.meta["host"] = client_.put(key.object_id, data);
  return key;
}

std::optional<Bytes> DistributedInMemoryConnector::get(const core::Key& key) {
  return client_.get(key.field("host"), key.object_id);
}

bool DistributedInMemoryConnector::exists(const core::Key& key) {
  return client_.exists(key.field("host"), key.object_id);
}

void DistributedInMemoryConnector::evict(const core::Key& key) {
  client_.evict(key.field("host"), key.object_id);
}

namespace {
core::ConnectorRegistry::FactoryFn make_factory(const std::string& transport) {
  return [transport](const core::ConnectorConfig& cfg) {
    return std::static_pointer_cast<core::Connector>(
        std::make_shared<DistributedInMemoryConnector>(
            transport, cfg.param("store_id")));
  };
}

const core::ConnectorRegistration kMargo("margo", make_factory("margo"));
const core::ConnectorRegistration kUcx("ucx", make_factory("ucx"));
const core::ConnectorRegistration kZmq("zmq", make_factory("zmq"));
}  // namespace

}  // namespace ps::connectors
