#include "connectors/endpoint.hpp"

#include "common/uuid.hpp"
#include "connectors/costs.hpp"
#include "obs/context.hpp"
#include "sim/vtime.hpp"

namespace ps::connectors {

namespace {

std::shared_ptr<endpoint::Endpoint> pick_home(
    const std::vector<std::string>& addresses) {
  proc::World& world = current_world();
  const std::string& host = current_host();
  const std::string& site = world.fabric().host(host).site;

  std::shared_ptr<endpoint::Endpoint> same_site;
  for (const std::string& address : addresses) {
    auto ep = world.services().try_resolve<endpoint::Endpoint>(address);
    if (!ep) continue;
    if (ep->host() == host) return ep;
    if (world.fabric().host(ep->host()).site == site && !same_site) {
      same_site = ep;
    }
  }
  if (same_site) return same_site;
  throw ConnectorError(
      "EndpointConnector: no PS-endpoint reachable from host '" + host + "'");
}

}  // namespace

EndpointConnector::EndpointConnector(std::vector<std::string> addresses)
    : addresses_(std::move(addresses)), home_(pick_home(addresses_)) {
  if (addresses_.empty()) {
    throw ConnectorError("EndpointConnector: no endpoint addresses");
  }
}

core::ConnectorConfig EndpointConnector::config() const {
  core::ConnectorConfig cfg{.type = "endpoint", .params = {}};
  cfg.params["count"] = std::to_string(addresses_.size());
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    cfg.params["address_" + std::to_string(i)] = addresses_[i];
  }
  return cfg;
}

core::ConnectorTraits EndpointConnector::traits() const {
  return core::ConnectorTraits{.storage = "hybrid",
                               .intra_site = true,
                               .inter_site = true,
                               .persistent = true};
}

endpoint::EndpointResponse EndpointConnector::round_trip(
    endpoint::EndpointRequest request, std::size_t response_hint) {
  request.trace = obs::current_context();
  // Client -> local endpoint leg.
  charge_transfer(current_host(), home_->host(), request.data.size() + 128);
  endpoint::EndpointResponse response = home_->handle(request);
  // Endpoint -> client leg.
  const std::size_t response_bytes =
      response.data ? response.data->size() : response_hint;
  charge_transfer(home_->host(), current_host(), response_bytes + 64);
  return response;
}

core::Key EndpointConnector::put(BytesView data) {
  core::Key key = reserve_key();
  put_at(key, data);
  return key;
}

core::Key EndpointConnector::reserve_key() {
  // Objects written against this key live on this connector's home
  // endpoint, wherever the eventual writer runs (requests forward).
  core::Key key{.object_id = Uuid::random().str(), .meta = {}};
  key.meta["endpoint_id"] = home_->uuid().str();
  return key;
}

bool EndpointConnector::put_at(const core::Key& key, BytesView data) {
  round_trip(
      endpoint::EndpointRequest{.op = "set",
                                .object_id = key.object_id,
                                .endpoint_id =
                                    Uuid::parse(key.field("endpoint_id")),
                                .data = Bytes(data)},
      0);
  return true;
}

std::optional<Bytes> EndpointConnector::get(const core::Key& key) {
  auto response = round_trip(
      endpoint::EndpointRequest{.op = "get",
                                .object_id = key.object_id,
                                .endpoint_id =
                                    Uuid::parse(key.field("endpoint_id")),
                                .data = {}},
      0);
  return std::move(response.data);
}

std::vector<std::optional<Bytes>> EndpointConnector::get_batch(
    const std::vector<core::Key>& keys) {
  if (keys.empty()) return {};
  // One combined request leg carries every key (~48 bytes of header per
  // sub-request), mirroring the per-request framing round_trip charges.
  charge_transfer(current_host(), home_->host(), keys.size() * 48 + 128);
  std::vector<std::optional<Bytes>> out;
  out.reserve(keys.size());
  std::size_t response_bytes = 0;
  for (const core::Key& key : keys) {
    endpoint::EndpointRequest request{
        .op = "get",
        .object_id = key.object_id,
        .endpoint_id = Uuid::parse(key.field("endpoint_id")),
        .data = {}};
    request.trace = obs::current_context();
    endpoint::EndpointResponse response = home_->handle(request);
    if (response.data) response_bytes += response.data->size();
    out.push_back(std::move(response.data));
  }
  // One combined response leg for all payloads.
  charge_transfer(home_->host(), current_host(), response_bytes + 64);
  return out;
}

bool EndpointConnector::exists(const core::Key& key) {
  return round_trip(
             endpoint::EndpointRequest{
                 .op = "exists",
                 .object_id = key.object_id,
                 .endpoint_id = Uuid::parse(key.field("endpoint_id")),
                 .data = {}},
             0)
      .ok;
}

void EndpointConnector::evict(const core::Key& key) {
  round_trip(endpoint::EndpointRequest{
                 .op = "evict",
                 .object_id = key.object_id,
                 .endpoint_id = Uuid::parse(key.field("endpoint_id")),
                 .data = {}},
             0);
}

namespace {

// Runs `op` (which advances the caller's clock through the endpoint legs)
// with the caller's clock saved/restored, and stamps the returned future at
// the exchange's completion vtime. Same virtual cost as parking the sync op
// on the AsyncExecutor — the worker there is seeded with the submitter's
// clock — but no worker is occupied while the request is outstanding.
template <typename T, typename Op>
core::Future<T> inline_async(Op&& op) {
  const double issue = sim::vnow();
  T value = op();
  const double done = sim::vnow();
  sim::vset(issue);
  core::Promise<T> promise;
  core::complete_at(promise, std::move(value), done);
  return promise.future();
}

}  // namespace

core::Future<std::optional<Bytes>> EndpointConnector::get_async(
    const core::Key& key) {
  return inline_async<std::optional<Bytes>>([&] { return get(key); });
}

core::Future<core::Key> EndpointConnector::put_async(BytesView data) {
  return inline_async<core::Key>([&] { return put(data); });
}

core::Future<bool> EndpointConnector::exists_async(const core::Key& key) {
  return inline_async<bool>([&] { return exists(key); });
}

core::Future<core::Unit> EndpointConnector::evict_async(const core::Key& key) {
  return inline_async<core::Unit>([&] {
    evict(key);
    return core::Unit{};
  });
}

core::Future<std::vector<std::optional<Bytes>>>
EndpointConnector::get_batch_async(const std::vector<core::Key>& keys) {
  return inline_async<std::vector<std::optional<Bytes>>>(
      [&] { return get_batch(keys); });
}

namespace {
const core::ConnectorRegistration kRegister(
    "endpoint", [](const core::ConnectorConfig& cfg) {
      const std::size_t count = std::stoul(cfg.param("count"));
      std::vector<std::string> addresses;
      addresses.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        addresses.push_back(cfg.param("address_" + std::to_string(i)));
      }
      return std::static_pointer_cast<core::Connector>(
          std::make_shared<EndpointConnector>(std::move(addresses)));
    });
}  // namespace

}  // namespace ps::connectors
