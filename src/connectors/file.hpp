// FileConnector (paper section 4.1.1): mediated communication via a shared
// file system. Objects are written as files under a data directory; the
// connector performs real file I/O and charges the modeled parallel-file-
// system cost of the current host.
#pragma once

#include <filesystem>
#include <string>

#include "core/connector.hpp"

namespace ps::connectors {

class FileConnector : public core::Connector {
 public:
  /// `store_dir` is created if needed.
  explicit FileConnector(std::filesystem::path store_dir);

  std::string type() const override { return "file"; }
  core::ConnectorConfig config() const override;
  core::ConnectorTraits traits() const override;

  core::Key put(BytesView data) override;
  std::optional<Bytes> get(const core::Key& key) override;
  bool exists(const core::Key& key) override;
  void evict(const core::Key& key) override;
  bool put_at(const core::Key& key, BytesView data) override;
  core::Key reserve_key() override;

  const std::filesystem::path& store_dir() const { return store_dir_; }

 private:
  std::filesystem::path path_for(const core::Key& key) const;

  std::filesystem::path store_dir_;
};

}  // namespace ps::connectors
