#include "connectors/access.hpp"

#include <sstream>

#include "common/hex.hpp"
#include "connectors/costs.hpp"
#include "serde/serde.hpp"

namespace ps::connectors {

AccessControlConnector::AccessControlConnector(
    std::shared_ptr<core::Connector> inner,
    std::set<std::string> allowed_sites)
    : inner_(std::move(inner)), allowed_(std::move(allowed_sites)) {
  if (!inner_) throw ConnectorError("AccessControlConnector: null inner");
  if (allowed_.empty()) {
    throw ConnectorError("AccessControlConnector: empty allowlist");
  }
}

core::ConnectorConfig AccessControlConnector::config() const {
  core::ConnectorConfig cfg{.type = "access", .params = {}};
  cfg.params["inner"] = to_hex(serde::to_bytes(inner_->config()));
  cfg.params["allowed"] = to_hex(serde::to_bytes(allowed_));
  return cfg;
}

void AccessControlConnector::check_access(const core::Key& key) const {
  const std::string& host = current_host();
  const std::string& site = current_world().fabric().host(host).site;
  if (!allowed_.contains(site)) {
    throw AccessDeniedError("object '" + key.object_id +
                            "' may not be resolved from site '" + site + "'");
  }
}

core::Key AccessControlConnector::put(BytesView data) {
  return inner_->put(data);
}

core::Key AccessControlConnector::put_hinted(BytesView data,
                                             const core::PutHints& hints) {
  return inner_->put_hinted(data, hints);
}

std::vector<core::Key> AccessControlConnector::put_batch(
    const std::vector<Bytes>& items) {
  return inner_->put_batch(items);
}

std::optional<Bytes> AccessControlConnector::get(const core::Key& key) {
  check_access(key);
  return inner_->get(key);
}

bool AccessControlConnector::exists(const core::Key& key) {
  check_access(key);
  return inner_->exists(key);
}

void AccessControlConnector::evict(const core::Key& key) {
  inner_->evict(key);
}

bool AccessControlConnector::put_at(const core::Key& key, BytesView data) {
  return inner_->put_at(key, data);
}

core::Key AccessControlConnector::reserve_key() {
  return inner_->reserve_key();
}

namespace {
const core::ConnectorRegistration kRegister(
    "access", [](const core::ConnectorConfig& cfg) {
      auto inner_cfg = serde::from_bytes<core::ConnectorConfig>(
          from_hex(cfg.param("inner")));
      auto allowed = serde::from_bytes<std::set<std::string>>(
          from_hex(cfg.param("allowed")));
      return std::static_pointer_cast<core::Connector>(
          std::make_shared<AccessControlConnector>(
              core::ConnectorRegistry::instance().reconstruct(inner_cfg),
              std::move(allowed)));
    });
}  // namespace

}  // namespace ps::connectors
