#include "ml/data.hpp"

#include <cmath>

namespace ps::ml {

Dataset fashion_like(std::size_t n, Rng& rng) {
  constexpr std::size_t kSize = 28;
  Dataset ds;
  ds.images = Tensor({n, 1, kSize, kSize});
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto label = static_cast<std::size_t>(rng.uniform_int(0, 9));
    ds.labels[i] = label;
    // Class structure: stripe frequency from the label's low bits,
    // orientation from bit 3, brightness offset from bit 2.
    const double freq = 0.3 + 0.18 * static_cast<double>(label % 4);
    const bool vertical = (label & 4) != 0;
    const float offset = (label & 8) != 0 ? 0.3f : 0.0f;
    for (std::size_t y = 0; y < kSize; ++y) {
      for (std::size_t x = 0; x < kSize; ++x) {
        const double t = static_cast<double>(vertical ? x : y);
        const double signal = 0.5 + 0.5 * std::sin(freq * t);
        const double noise = rng.normal(0.0, 0.15);
        ds.images.data()[(i * kSize + y) * kSize + x] =
            static_cast<float>(signal + noise) + offset;
      }
    }
  }
  return ds;
}

Micrograph micrograph(std::size_t height, std::size_t width,
                      std::size_t defects, Rng& rng) {
  Micrograph m;
  m.image = Tensor({1, 1, height, width});
  m.defect_mask.assign(height * width, false);
  // Noisy background.
  for (std::size_t i = 0; i < height * width; ++i) {
    m.image.data()[i] = static_cast<float>(rng.normal(0.2, 0.05));
  }
  // Bright Gaussian blobs = radiation-damage defects.
  for (std::size_t d = 0; d < defects; ++d) {
    const auto cy = static_cast<std::size_t>(
        rng.uniform_int(3, static_cast<std::int64_t>(height) - 4));
    const auto cx = static_cast<std::size_t>(
        rng.uniform_int(3, static_cast<std::int64_t>(width) - 4));
    for (std::ptrdiff_t dy = -3; dy <= 3; ++dy) {
      for (std::ptrdiff_t dx = -3; dx <= 3; ++dx) {
        const std::size_t y = cy + static_cast<std::size_t>(dy);
        const std::size_t x = cx + static_cast<std::size_t>(dx);
        const double r2 = static_cast<double>(dy * dy + dx * dx);
        const float bump = static_cast<float>(0.8 * std::exp(-r2 / 3.0));
        m.image.data()[y * width + x] += bump;
        if (r2 <= 4.0) m.defect_mask[y * width + x] = true;
      }
    }
  }
  for (const bool b : m.defect_mask) {
    if (b) ++m.defect_count;
  }
  return m;
}

float simulate_ionization_potential(const std::vector<float>& features) {
  // A smooth nonlinear response: deterministic, so the "simulation" task is
  // reproducible and the surrogate has something real to learn.
  double acc = 5.0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    const double f = features[i];
    const double w = 1.0 / static_cast<double>(1 + i % 7);
    acc += w * std::sin(1.7 * f) + 0.25 * w * f * f;
  }
  return static_cast<float>(acc);
}

std::vector<Molecule> molecules(std::size_t n, std::size_t dims, Rng& rng) {
  std::vector<Molecule> out(n);
  for (Molecule& mol : out) {
    mol.features.resize(dims);
    for (float& f : mol.features) {
      f = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    mol.ionization_potential = simulate_ionization_potential(mol.features);
  }
  return out;
}

}  // namespace ps::ml
