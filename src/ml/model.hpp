// Sequential model with softmax-cross-entropy / MSE heads, SGD training,
// serialization, and federated averaging.
#pragma once

#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "ml/layers.hpp"

namespace ps::ml {

/// Serializable model snapshot: architecture + flattened weights.
struct ModelState {
  std::vector<LayerSpec> specs;
  std::vector<Tensor> weights;

  bool operator==(const ModelState&) const = default;
  auto serde_members() { return std::tie(specs, weights); }
  auto serde_members() const { return std::tie(specs, weights); }
};

class Model {
 public:
  Model() = default;
  explicit Model(std::vector<std::unique_ptr<Layer>> layers);

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  void add(std::unique_ptr<Layer> layer);

  Tensor forward(const Tensor& input);
  /// Backpropagates `grad` (w.r.t. the output) through all layers.
  void backward(const Tensor& grad);
  void zero_gradients();
  void sgd_step(float lr);

  std::size_t parameter_count() const;

  ModelState state() const;
  void set_state(const ModelState& state);
  static Model from_state(const ModelState& state);

  Bytes serialize() const { return serde::to_bytes(state()); }
  static Model deserialize(BytesView data) {
    return from_state(serde::from_bytes<ModelState>(data));
  }

  std::vector<Layer*> layers();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Softmax cross-entropy over logits [N, C] with integer labels.
/// Returns (mean loss, grad w.r.t. logits).
std::pair<float, Tensor> softmax_cross_entropy(
    const Tensor& logits, const std::vector<std::size_t>& labels);

/// Mean squared error for regression outputs [N, 1].
std::pair<float, Tensor> mse_loss(const Tensor& output,
                                  const std::vector<float>& targets);

/// argmax over each row of [N, C].
std::vector<std::size_t> argmax_rows(const Tensor& logits);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<std::size_t>& labels);

/// Federated averaging: element-wise mean of the models' weights. All
/// states must share an architecture.
ModelState federated_average(const std::vector<ModelState>& states);

}  // namespace ps::ml
