#include "ml/model.hpp"

#include <cmath>
#include <stdexcept>

namespace ps::ml {

Model::Model(std::vector<std::unique_ptr<Layer>> layers)
    : layers_(std::move(layers)) {}

void Model::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
}

Tensor Model::forward(const Tensor& input) {
  Tensor x = input;
  for (const auto& layer : layers_) x = layer->forward(x);
  return x;
}

void Model::backward(const Tensor& grad) {
  Tensor g = grad;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
}

void Model::zero_gradients() {
  for (const auto& layer : layers_) layer->zero_gradients();
}

void Model::sgd_step(float lr) {
  for (const auto& layer : layers_) layer->sgd_step(lr);
}

std::size_t Model::parameter_count() const {
  std::size_t count = 0;
  for (const auto& layer : layers_) {
    for (const Tensor* p :
         const_cast<Layer&>(*layer).parameters()) {
      count += p->size();
    }
  }
  return count;
}

ModelState Model::state() const {
  ModelState state;
  for (const auto& layer : layers_) {
    state.specs.push_back(layer->spec());
    for (const Tensor* p : const_cast<Layer&>(*layer).parameters()) {
      state.weights.push_back(*p);
    }
  }
  return state;
}

void Model::set_state(const ModelState& state) {
  std::size_t weight_index = 0;
  if (state.specs.size() != layers_.size()) {
    throw std::invalid_argument("Model::set_state: architecture mismatch");
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i]->spec() != state.specs[i]) {
      throw std::invalid_argument("Model::set_state: layer spec mismatch");
    }
    for (Tensor* p : layers_[i]->parameters()) {
      if (weight_index >= state.weights.size() ||
          state.weights[weight_index].shape() != p->shape()) {
        throw std::invalid_argument("Model::set_state: weight shape mismatch");
      }
      *p = state.weights[weight_index++];
    }
  }
  if (weight_index != state.weights.size()) {
    throw std::invalid_argument("Model::set_state: extra weights");
  }
}

Model Model::from_state(const ModelState& state) {
  // Weights are overwritten by set_state; the init RNG seed is irrelevant.
  Rng rng(0);
  Model model;
  for (const LayerSpec& spec : state.specs) {
    model.add(layer_from_spec(spec, rng));
  }
  model.set_state(state);
  return model;
}

std::vector<Layer*> Model::layers() {
  std::vector<Layer*> out;
  out.reserve(layers_.size());
  for (const auto& layer : layers_) out.push_back(layer.get());
  return out;
}

std::pair<float, Tensor> softmax_cross_entropy(
    const Tensor& logits, const std::vector<std::size_t>& labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument("softmax_cross_entropy: shape mismatch");
  }
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  Tensor grad({n, c});
  float loss = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    float max_logit = logits.at(i, 0);
    for (std::size_t j = 1; j < c; ++j) {
      max_logit = std::max(max_logit, logits.at(i, j));
    }
    float denom = 0.0f;
    for (std::size_t j = 0; j < c; ++j) {
      denom += std::exp(logits.at(i, j) - max_logit);
    }
    const std::size_t label = labels[i];
    if (label >= c) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    const float log_prob =
        logits.at(i, label) - max_logit - std::log(denom);
    loss -= log_prob;
    for (std::size_t j = 0; j < c; ++j) {
      const float prob = std::exp(logits.at(i, j) - max_logit) / denom;
      grad.at(i, j) =
          (prob - (j == label ? 1.0f : 0.0f)) / static_cast<float>(n);
    }
  }
  return {loss / static_cast<float>(n), std::move(grad)};
}

std::pair<float, Tensor> mse_loss(const Tensor& output,
                                  const std::vector<float>& targets) {
  if (output.rank() != 2 || output.dim(1) != 1 ||
      output.dim(0) != targets.size()) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  const std::size_t n = output.dim(0);
  Tensor grad({n, 1});
  float loss = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float diff = output.at(i, 0) - targets[i];
    loss += diff * diff;
    grad.at(i, 0) = 2.0f * diff / static_cast<float>(n);
  }
  return {loss / static_cast<float>(n), std::move(grad)};
}

std::vector<std::size_t> argmax_rows(const Tensor& logits) {
  std::vector<std::size_t> out(logits.dim(0));
  for (std::size_t i = 0; i < logits.dim(0); ++i) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.dim(1); ++j) {
      if (logits.at(i, j) > logits.at(i, best)) best = j;
    }
    out[i] = best;
  }
  return out;
}

double accuracy(const Tensor& logits, const std::vector<std::size_t>& labels) {
  const auto predictions = argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(labels.size());
}

ModelState federated_average(const std::vector<ModelState>& states) {
  if (states.empty()) {
    throw std::invalid_argument("federated_average: no models");
  }
  ModelState out = states.front();
  for (std::size_t s = 1; s < states.size(); ++s) {
    if (states[s].specs != out.specs) {
      throw std::invalid_argument("federated_average: architecture mismatch");
    }
    for (std::size_t w = 0; w < out.weights.size(); ++w) {
      out.weights[w] += states[s].weights[w];
    }
  }
  const float scale = 1.0f / static_cast<float>(states.size());
  for (Tensor& w : out.weights) w *= scale;
  return out;
}

}  // namespace ps::ml
