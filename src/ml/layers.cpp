#include "ml/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"

namespace ps::ml {

void Layer::zero_gradients() {
  for (Tensor* g : gradients()) {
    std::fill(g->values().begin(), g->values().end(), 0.0f);
  }
}

void Layer::sgd_step(float lr) {
  const auto params = parameters();
  const auto grads = gradients();
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor scaled = *grads[i];
    scaled *= lr;
    *params[i] -= scaled;
  }
}

// -------------------------------------------------------------- Dense ----

Dense::Dense(std::size_t in, std::size_t out, Rng& rng)
    : in_(in),
      out_(out),
      weight_(Tensor::randn({in, out}, rng,
                            std::sqrt(2.0f / static_cast<float>(in)))),
      bias_({out}),
      dweight_({in, out}),
      dbias_({out}) {}

Tensor Dense::forward(const Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: bad input shape");
  }
  input_ = input;
  Tensor out = matmul(input, weight_);
  for (std::size_t n = 0; n < out.dim(0); ++n) {
    for (std::size_t j = 0; j < out_; ++j) out.at(n, j) += bias_.at(j);
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad) {
  // dW = x^T g ; db = sum_n g ; dx = g W^T
  dweight_ += matmul_at(input_, grad);
  for (std::size_t n = 0; n < grad.dim(0); ++n) {
    for (std::size_t j = 0; j < out_; ++j) dbias_.at(j) += grad.at(n, j);
  }
  return matmul_bt(grad, weight_);
}

LayerSpec Dense::spec() const {
  return LayerSpec{.kind = "dense",
                   .attrs = {{"in", static_cast<std::int64_t>(in_)},
                             {"out", static_cast<std::int64_t>(out_)}}};
}

// -------------------------------------------------------------- Conv2D ----

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t height, std::size_t width,
               Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      h_(height),
      w_(width),
      weight_(Tensor::randn(
          {out_channels, in_channels, kernel, kernel}, rng,
          std::sqrt(2.0f / static_cast<float>(in_channels * kernel * kernel)))),
      bias_({out_channels}),
      dweight_({out_channels, in_channels, kernel, kernel}),
      dbias_({out_channels}) {
  if (kernel % 2 == 0) {
    throw std::invalid_argument("Conv2D: kernel must be odd (same padding)");
  }
}

Tensor Conv2D::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != cin_ || input.dim(2) != h_ ||
      input.dim(3) != w_) {
    throw std::invalid_argument("Conv2D::forward: bad input shape");
  }
  input_ = input;
  const std::size_t n = input.dim(0);
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k_ / 2);
  Tensor out({n, cout_, h_, w_});
  const auto in_at = [&](std::size_t b, std::size_t c, std::ptrdiff_t y,
                         std::ptrdiff_t x) -> float {
    if (y < 0 || x < 0 || y >= static_cast<std::ptrdiff_t>(h_) ||
        x >= static_cast<std::ptrdiff_t>(w_)) {
      return 0.0f;
    }
    return input.data()[((b * cin_ + c) * h_ + static_cast<std::size_t>(y)) *
                            w_ +
                        static_cast<std::size_t>(x)];
  };
  // Batch items write disjoint output planes: fork-join across the batch.
  parallel_for(0, n, [&](std::size_t b) {
    for (std::size_t f = 0; f < cout_; ++f) {
      for (std::size_t y = 0; y < h_; ++y) {
        for (std::size_t x = 0; x < w_; ++x) {
          float acc = bias_.at(f);
          for (std::size_t c = 0; c < cin_; ++c) {
            for (std::size_t ky = 0; ky < k_; ++ky) {
              for (std::size_t kx = 0; kx < k_; ++kx) {
                acc += weight_.data()[((f * cin_ + c) * k_ + ky) * k_ + kx] *
                       in_at(b, c,
                             static_cast<std::ptrdiff_t>(y + ky) - pad,
                             static_cast<std::ptrdiff_t>(x + kx) - pad);
              }
            }
          }
          out.data()[((b * cout_ + f) * h_ + y) * w_ + x] = acc;
        }
      }
    }
  });
  return out;
}

Tensor Conv2D::backward(const Tensor& grad) {
  const std::size_t n = grad.dim(0);
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k_ / 2);
  Tensor dinput(input_.shape());
  const auto in_at = [&](std::size_t b, std::size_t c, std::ptrdiff_t y,
                         std::ptrdiff_t x) -> float {
    if (y < 0 || x < 0 || y >= static_cast<std::ptrdiff_t>(h_) ||
        x >= static_cast<std::ptrdiff_t>(w_)) {
      return 0.0f;
    }
    return input_.data()[((b * cin_ + c) * h_ + static_cast<std::size_t>(y)) *
                             w_ +
                         static_cast<std::size_t>(x)];
  };
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t f = 0; f < cout_; ++f) {
      for (std::size_t y = 0; y < h_; ++y) {
        for (std::size_t x = 0; x < w_; ++x) {
          const float g = grad.data()[((b * cout_ + f) * h_ + y) * w_ + x];
          if (g == 0.0f) continue;
          dbias_.at(f) += g;
          for (std::size_t c = 0; c < cin_; ++c) {
            for (std::size_t ky = 0; ky < k_; ++ky) {
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(y + ky) - pad;
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x + kx) - pad;
                dweight_.data()[((f * cin_ + c) * k_ + ky) * k_ + kx] +=
                    g * in_at(b, c, iy, ix);
                if (iy >= 0 && ix >= 0 &&
                    iy < static_cast<std::ptrdiff_t>(h_) &&
                    ix < static_cast<std::ptrdiff_t>(w_)) {
                  dinput.data()[((b * cin_ + c) * h_ +
                                 static_cast<std::size_t>(iy)) *
                                    w_ +
                                static_cast<std::size_t>(ix)] +=
                      g * weight_.data()[((f * cin_ + c) * k_ + ky) * k_ + kx];
                }
              }
            }
          }
        }
      }
    }
  }
  return dinput;
}

LayerSpec Conv2D::spec() const {
  return LayerSpec{
      .kind = "conv2d",
      .attrs = {{"cin", static_cast<std::int64_t>(cin_)},
                {"cout", static_cast<std::int64_t>(cout_)},
                {"kernel", static_cast<std::int64_t>(k_)},
                {"height", static_cast<std::int64_t>(h_)},
                {"width", static_cast<std::int64_t>(w_)}}};
}

// ------------------------------------------------------------ MaxPool2D ----

Tensor MaxPool2D::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(2) % 2 != 0 || input.dim(3) % 2 != 0) {
    throw std::invalid_argument("MaxPool2D: input must be [N,C,H,W], H and W even");
  }
  input_shape_ = input.shape();
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  Tensor out({n, c, h / 2, w / 2});
  argmax_.assign(out.size(), 0);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t y = 0; y < h; y += 2) {
        for (std::size_t x = 0; x < w; x += 2) {
          const std::size_t base = ((b * c + ch) * h + y) * w + x;
          std::size_t best = base;
          for (const std::size_t candidate :
               {base + 1, base + w, base + w + 1}) {
            if (input.at(candidate) > input.at(best)) best = candidate;
          }
          const std::size_t out_index =
              ((b * c + ch) * (h / 2) + y / 2) * (w / 2) + x / 2;
          out.at(out_index) = input.at(best);
          argmax_[out_index] = best;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad) {
  Tensor out(input_shape_);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    out.at(argmax_[i]) += grad.at(i);
  }
  return out;
}

// ---------------------------------------------------------------- ReLU ----

Tensor ReLU::forward(const Tensor& input) {
  input_ = input;
  Tensor out = input;
  for (float& v : out.values()) v = v > 0.0f ? v : 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad) {
  Tensor out = grad;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (input_.at(i) <= 0.0f) out.at(i) = 0.0f;
  }
  return out;
}

// ------------------------------------------------------------- Flatten ----

Tensor Flatten::forward(const Tensor& input) {
  input_shape_ = input.shape();
  Tensor out = input;
  out.reshape({input.dim(0), input.size() / input.dim(0)});
  return out;
}

Tensor Flatten::backward(const Tensor& grad) {
  Tensor out = grad;
  out.reshape(input_shape_);
  return out;
}

// ------------------------------------------------------------- factory ----

std::unique_ptr<Layer> layer_from_spec(const LayerSpec& spec, Rng& rng) {
  const auto attr = [&](const std::string& name) {
    return static_cast<std::size_t>(spec.attrs.at(name));
  };
  if (spec.kind == "dense") {
    return std::make_unique<Dense>(attr("in"), attr("out"), rng);
  }
  if (spec.kind == "conv2d") {
    return std::make_unique<Conv2D>(attr("cin"), attr("cout"), attr("kernel"),
                                    attr("height"), attr("width"), rng);
  }
  if (spec.kind == "relu") return std::make_unique<ReLU>();
  if (spec.kind == "maxpool") return std::make_unique<MaxPool2D>();
  if (spec.kind == "flatten") return std::make_unique<Flatten>();
  throw std::invalid_argument("layer_from_spec: unknown kind '" + spec.kind +
                              "'");
}

}  // namespace ps::ml
