// Neural network layers: Dense, Conv2D, ReLU, Flatten.
//
// Layers own their parameters and gradients and implement forward/backward.
// Each layer exposes a serializable spec so models reconstruct on remote
// processes (the FL aggregator ships whole models to edge devices).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/tensor.hpp"

namespace ps::ml {

/// Serializable layer description (architecture without weights).
struct LayerSpec {
  std::string kind;
  std::map<std::string, std::int64_t> attrs;

  bool operator==(const LayerSpec&) const = default;
  auto serde_members() { return std::tie(kind, attrs); }
  auto serde_members() const { return std::tie(kind, attrs); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  /// `grad` w.r.t. the layer output; returns grad w.r.t. the input and
  /// accumulates parameter gradients.
  virtual Tensor backward(const Tensor& grad) = 0;

  virtual std::vector<Tensor*> parameters() { return {}; }
  virtual std::vector<Tensor*> gradients() { return {}; }
  virtual LayerSpec spec() const = 0;

  void zero_gradients();
  void sgd_step(float lr);
};

/// Fully connected layer: y = x W + b, x is [N, in].
class Dense : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&dweight_, &dbias_}; }
  LayerSpec spec() const override;

  std::size_t in() const { return in_; }
  std::size_t out() const { return out_; }

 private:
  std::size_t in_, out_;
  Tensor weight_, bias_, dweight_, dbias_;
  Tensor input_;  // cached for backward
};

/// 2-D convolution, stride 1, zero padding to preserve H x W.
/// Input [N, C, H, W]; kernels [F, C, K, K]; output [N, F, H, W].
class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t height, std::size_t width, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&dweight_, &dbias_}; }
  LayerSpec spec() const override;

 private:
  std::size_t cin_, cout_, k_, h_, w_;
  Tensor weight_, bias_, dweight_, dbias_;
  Tensor input_;
};

/// 2x2 max pooling, stride 2. Input [N, C, H, W] with even H and W;
/// output [N, C, H/2, W/2].
class MaxPool2D : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad) override;
  LayerSpec spec() const override { return LayerSpec{.kind = "maxpool", .attrs = {}}; }

 private:
  std::vector<std::size_t> input_shape_;
  std::vector<std::size_t> argmax_;  // flat input index of each output max
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad) override;
  LayerSpec spec() const override { return LayerSpec{.kind = "relu", .attrs = {}}; }

 private:
  Tensor input_;
};

/// Collapses all trailing dimensions: [N, ...] -> [N, prod(...)].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad) override;
  LayerSpec spec() const override { return LayerSpec{.kind = "flatten", .attrs = {}}; }

 private:
  std::vector<std::size_t> input_shape_;
};

/// Reconstructs a layer from its spec (fresh weights from `rng`).
std::unique_ptr<Layer> layer_from_spec(const LayerSpec& spec, Rng& rng);

}  // namespace ps::ml
