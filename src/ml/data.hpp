// Synthetic datasets standing in for the paper's data dependencies.
//
// * fashion_like: a 10-class 28x28 grayscale image set with class-dependent
//   spatial structure (stripe frequency/orientation + noise) standing in
//   for Fashion-MNIST in the federated-learning experiments (Figure 10).
// * micrograph: transmission-electron-microscopy-like images with seeded
//   bright defects, for the real-time defect analysis app (Table 2).
// * molecules: feature vectors with a deterministic "quantum chemistry"
//   ionization potential, for the molecular-design app (Figure 11).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "ml/tensor.hpp"

namespace ps::ml {

struct Dataset {
  Tensor images;  // [N, 1, H, W] or flattened [N, D]
  std::vector<std::size_t> labels;
};

/// Generates `n` labeled 28x28 images with learnable class structure.
Dataset fashion_like(std::size_t n, Rng& rng);

struct Micrograph {
  Tensor image;  // [1, 1, H, W]
  /// Ground-truth defect pixel mask, row-major H x W.
  std::vector<bool> defect_mask;
  std::size_t defect_count = 0;
};

/// A synthetic micrograph with `defects` bright spots on noisy background.
Micrograph micrograph(std::size_t height, std::size_t width,
                      std::size_t defects, Rng& rng);

struct Molecule {
  std::vector<float> features;
  /// Deterministic "simulated" ionization potential (the ground truth the
  /// expensive simulation task computes).
  float ionization_potential = 0.0f;
};

/// Candidate set of `n` molecules with `dims`-dimensional features.
std::vector<Molecule> molecules(std::size_t n, std::size_t dims, Rng& rng);

/// The deterministic "quantum chemistry" kernel: recomputes a molecule's
/// ionization potential from its features (what simulation tasks evaluate).
float simulate_ionization_potential(const std::vector<float>& features);

}  // namespace ps::ml
