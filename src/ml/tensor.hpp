// Dense float tensors for the mini deep-learning library.
//
// The federated-learning (Figure 10), defect-analysis (Table 2), and
// molecular-design (Figure 11) applications need real trainable models whose
// serialized size scales with architecture. This library implements the
// minimum honestly: row-major tensors, matmul, conv2d, and SGD.
#pragma once

#include <cstddef>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "serde/serde.hpp"

namespace ps::ml {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }

  /// He/Glorot-style uniform init in [-limit, limit].
  static Tensor randn(std::vector<std::size_t> shape, Rng& rng,
                      float stddev);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& values() { return data_; }
  const std::vector<float>& values() const { return data_; }

  float& at(std::size_t i) { return data_.at(i); }
  float at(std::size_t i) const { return data_.at(i); }

  /// 2-D accessors (row-major).
  float& at(std::size_t r, std::size_t c) { return data_[r * shape_[1] + c]; }
  float at(std::size_t r, std::size_t c) const {
    return data_[r * shape_[1] + c];
  }

  /// Reshapes in place; the element count must match.
  void reshape(std::vector<std::size_t> shape);

  /// Elementwise operations (shapes must match).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scale);

  bool operator==(const Tensor&) const = default;

  auto serde_members() { return std::tie(shape_, data_); }
  auto serde_members() const { return std::tie(shape_, data_); }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// C = A (n x k) * B (k x m). Shapes validated.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A (n x k) * B^T where B is (m x k).
Tensor matmul_bt(const Tensor& a, const Tensor& b);

/// C = A^T (k x n -> n x k) * B (k x m)... i.e. a' (k x n) with a (n x k).
Tensor matmul_at(const Tensor& a, const Tensor& b);

}  // namespace ps::ml
