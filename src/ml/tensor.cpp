#include "ml/tensor.hpp"

#include <numeric>
#include <stdexcept>

#include "common/parallel.hpp"

namespace ps::ml {

namespace {
std::size_t element_count(const std::vector<std::size_t>& shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<>());
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(element_count(shape_), 0.0f) {}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

void Tensor::reshape(std::vector<std::size_t> shape) {
  if (element_count(shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch");
  }
  shape_ = std::move(shape);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  if (shape_ != other.shape_) {
    throw std::invalid_argument("Tensor::+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  if (shape_ != other.shape_) {
    throw std::invalid_argument("Tensor::-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scale) {
  for (float& v : data_) v *= scale;
  return *this;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes");
  }
  const std::size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  Tensor c({n, m});
  // Output rows are independent: fork-join across them for big products.
  const std::size_t min_rows_per_block =
      std::max<std::size_t>(1, 250'000 / std::max<std::size_t>(k * m, 1));
  parallel_for_blocks(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::size_t p = 0; p < k; ++p) {
            const float av = a.at(i, p);
            if (av == 0.0f) continue;
            const float* brow = b.data() + p * m;
            float* crow = c.data() + i * m;
            for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
          }
        }
      },
      min_rows_per_block);
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_bt: incompatible shapes");
  }
  const std::size_t n = a.dim(0), k = a.dim(1), m = b.dim(0);
  Tensor c({n, m});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const float* arow = a.data() + i * k;
      const float* brow = b.data() + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      c.at(i, j) = acc;
    }
  }
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("matmul_at: incompatible shapes");
  }
  const std::size_t k = a.dim(0), n = a.dim(1), m = b.dim(1);
  Tensor c({n, m});
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.data() + p * n;
    const float* brow = b.data() + p * m;
    for (std::size_t i = 0; i < n; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.data() + i * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

}  // namespace ps::ml
