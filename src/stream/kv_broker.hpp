// KvBroker: pub/sub event log on the kv substrate (cross-site capable).
//
// Topics are append-only event logs stored in a kv::KvServer:
//   ps.stream/<topic>/head    next sequence number (decimal)
//   ps.stream/<topic>/ev/<n>  serialized event n
//   ps.stream/<topic>/closed  end-of-stream marker
//   ps.stream/<topic>/subs    registered-subscriber count (decimal)
// Because every operation is a KvClient round trip, events cross simulated
// site boundaries with real (virtual-time) transfer and queueing costs —
// the broker is the bandwidth-constrained event channel that ProxyStream
// keeps bulk payloads out of.
//
// Concurrency contract: one producer per topic (head is read-modify-write),
// any number of subscribers in any process. Subscribers joining mid-stream
// start at the current tail. An idle subscriber polls the head, advancing
// its virtual clock by poll_interval_s per probe, and gives up with Error
// after max_polls probes without progress or close.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "kv/client.hpp"
#include "stream/pubsub.hpp"

namespace ps::stream {

struct KvBrokerOptions {
  /// Virtual-time backoff between head probes of an idle subscriber.
  double poll_interval_s = 0.005;
  /// Probe budget before next() fails (stuck-producer guard).
  std::uint32_t max_polls = 1000;
  /// Issue an idle subscriber's end-of-stream probes (closed marker + head
  /// counter) as two pipelined in-flight requests on the kv channel instead
  /// of two sequential round trips — the probe pair costs ~max, not sum.
  /// Off by default: the sequential probe costs are part of the blessed
  /// stream baselines.
  bool pipelined_poll = false;
};

class KvBroker : public PubSub {
 public:
  /// `address` of a running kv::KvServer (kv::kv_address(host, name)),
  /// resolved through the current world's service directory.
  explicit KvBroker(const std::string& address, KvBrokerOptions options = {});

  std::string type() const override { return "kv"; }

  void publish(const std::string& topic, BytesView event) override;
  /// Appends the whole batch with one pipelined log write: closed-check +
  /// head read + a single MSET of every event and the head advance — three
  /// round trips for N events instead of 3N.
  void publish_batch(const std::string& topic,
                     const std::vector<Bytes>& events) override;
  std::shared_ptr<Subscription> subscribe(const std::string& topic) override;
  std::size_t subscriber_count(const std::string& topic) override;
  void close_topic(const std::string& topic) override;

  const std::string& address() const { return address_; }

 private:
  std::string address_;
  KvBrokerOptions options_;
  kv::KvClient client_;
};

}  // namespace ps::stream
