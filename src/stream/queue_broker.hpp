// QueueBroker: in-process pub/sub over bounded blocking queues.
//
// Each subscriber owns a bounded Queue<Bytes>; publish fans the event out by
// pushing into every subscriber queue. A full queue blocks the publisher —
// the broker's backpressure: a producer cannot run unboundedly ahead of its
// slowest consumer. Closing a topic closes every subscriber queue, so
// consumers drain buffered events and then see end-of-stream.
//
// The broker mutex guards only the topic tables; the (potentially blocking)
// queue pushes happen outside it, so a stalled publisher never wedges
// subscribe/close from other threads.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/queue.hpp"
#include "stream/pubsub.hpp"

namespace ps::stream {

struct QueueBrokerOptions {
  /// Per-subscriber buffered-event bound; a full queue blocks publish().
  std::size_t queue_capacity = 1024;
};

class QueueBroker : public PubSub {
 public:
  explicit QueueBroker(QueueBrokerOptions options = {});

  std::string type() const override { return "queue"; }

  void publish(const std::string& topic, BytesView event) override;
  std::shared_ptr<Subscription> subscribe(const std::string& topic) override;
  std::size_t subscriber_count(const std::string& topic) override;
  void close_topic(const std::string& topic) override;
  void close() override;

  bool topic_closed(const std::string& topic);

 private:
  struct Topic {
    std::vector<std::shared_ptr<Queue<Bytes>>> subscribers;
    bool closed = false;
  };

  Topic& topic_locked(const std::string& topic);

  QueueBrokerOptions options_;
  std::mutex mu_;
  std::map<std::string, Topic> topics_;
};

}  // namespace ps::stream
