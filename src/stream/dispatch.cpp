#include "stream/dispatch.hpp"

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "serde/serde.hpp"
#include "stream/event.hpp"

namespace ps::stream {

StreamDispatcher::StreamDispatcher(std::shared_ptr<PubSub> broker,
                                   std::string topic, faas::Executor executor,
                                   std::string function)
    : broker_(std::move(broker)),
      topic_(std::move(topic)),
      executor_(std::move(executor)),
      function_(std::move(function)),
      subscription_(broker_->subscribe(topic_)) {}

void StreamDispatcher::submit(Bytes event_wire) {
  const Event event = serde::from_bytes<Event>(event_wire);
  obs::ContextScope adopt(event.trace);
  obs::SpanScope span("stream.dispatch", topic_, "dispatch");
  obs::MetricsRegistry::ambient().counter("stream.dispatch." + topic_).inc();
  futures_.push_back(executor_.submit(function_, std::move(event_wire)));
  ++dispatched_;
}

std::size_t StreamDispatcher::run() {
  std::size_t count = 0;
  while (auto wire = subscription_->next()) {
    submit(std::move(*wire));
    ++count;
  }
  return count;
}

bool StreamDispatcher::dispatch_one() {
  auto wire = subscription_->try_next();
  if (!wire) return false;
  submit(std::move(*wire));
  return true;
}

}  // namespace ps::stream
