#include "stream/queue_broker.hpp"

#include "common/error.hpp"

namespace ps::stream {

namespace {

/// Wraps one subscriber queue. pop() already returns nullopt on
/// closed-and-drained, which is exactly the Subscription contract.
class QueueSubscription : public Subscription {
 public:
  explicit QueueSubscription(std::shared_ptr<Queue<Bytes>> queue)
      : queue_(std::move(queue)) {}

  std::optional<Bytes> next() override { return queue_->pop(); }
  std::optional<Bytes> try_next() override { return queue_->try_pop(); }

 private:
  std::shared_ptr<Queue<Bytes>> queue_;
};

}  // namespace

QueueBroker::QueueBroker(QueueBrokerOptions options)
    : options_(options) {}

QueueBroker::Topic& QueueBroker::topic_locked(const std::string& topic) {
  return topics_[topic];
}

void QueueBroker::publish(const std::string& topic, BytesView event) {
  // Snapshot the subscriber list under the lock, push outside it: a full
  // queue blocks only this publisher, never subscribe()/close_topic().
  std::vector<std::shared_ptr<Queue<Bytes>>> targets;
  {
    std::lock_guard lock(mu_);
    Topic& t = topic_locked(topic);
    if (t.closed) {
      throw Error("QueueBroker: publish to closed topic '" + topic + "'");
    }
    targets = t.subscribers;
  }
  for (const auto& queue : targets) {
    queue->push(Bytes(event));
  }
}

std::shared_ptr<Subscription> QueueBroker::subscribe(const std::string& topic) {
  std::lock_guard lock(mu_);
  Topic& t = topic_locked(topic);
  auto queue = std::make_shared<Queue<Bytes>>(options_.queue_capacity);
  // Subscribing after close yields an immediately-drained stream.
  if (t.closed) queue->close();
  t.subscribers.push_back(queue);
  return std::make_shared<QueueSubscription>(std::move(queue));
}

std::size_t QueueBroker::subscriber_count(const std::string& topic) {
  std::lock_guard lock(mu_);
  return topic_locked(topic).subscribers.size();
}

void QueueBroker::close_topic(const std::string& topic) {
  std::lock_guard lock(mu_);
  Topic& t = topic_locked(topic);
  t.closed = true;
  for (const auto& queue : t.subscribers) queue->close();
}

void QueueBroker::close() {
  std::lock_guard lock(mu_);
  for (auto& [name, t] : topics_) {
    t.closed = true;
    for (const auto& queue : t.subscribers) queue->close();
  }
}

bool QueueBroker::topic_closed(const std::string& topic) {
  std::lock_guard lock(mu_);
  return topic_locked(topic).closed;
}

}  // namespace ps::stream
