#include "stream/kv_broker.hpp"

#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "sim/vtime.hpp"

namespace ps::stream {

namespace {

std::string topic_key(const std::string& topic, const std::string& field) {
  return "ps.stream/" + topic + "/" + field;
}

std::string event_key(const std::string& topic, std::uint64_t sequence) {
  return topic_key(topic, "ev/" + std::to_string(sequence));
}

std::uint64_t read_counter(kv::KvClient& client, const std::string& key) {
  const std::optional<Bytes> value = client.get(key);
  return value ? std::stoull(*value) : 0;
}

/// Cursor over the topic log. Each subscription keeps its own KvClient copy
/// so round-trip costs charge the thread actually consuming.
class KvSubscription : public Subscription {
 public:
  KvSubscription(kv::KvClient client, std::string topic, std::uint64_t cursor,
                 KvBrokerOptions options)
      : client_(std::move(client)),
        topic_(std::move(topic)),
        cursor_(cursor),
        options_(options) {}

  std::optional<Bytes> next() override {
    for (std::uint32_t poll = 0; poll <= options_.max_polls; ++poll) {
      if (auto event = take_available()) return event;
      // Nothing new: end-of-stream only once closed AND the head has not
      // moved past the cursor (events published before close still drain).
      if (at_end()) return std::nullopt;
      sim::vadvance(options_.poll_interval_s);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    throw Error("KvBroker: subscriber to '" + topic_ +
                "' exhausted its poll budget");
  }

  std::optional<Bytes> try_next() override { return take_available(); }

 private:
  bool at_end() {
    if (options_.pipelined_poll) {
      // Both probes in flight on the kv channel at once: the pair costs
      // ~max-of-pipeline instead of two sequential round trips. get() on
      // each merges that request's own completion vtime.
      auto closed = client_.exists_async(topic_key(topic_, "closed"));
      auto head = client_.get_async(topic_key(topic_, "head"));
      const bool is_closed = closed.get();
      const std::optional<Bytes> head_value = head.get();
      const std::uint64_t head_seq =
          head_value ? std::stoull(*head_value) : 0;
      return is_closed && head_seq <= cursor_;
    }
    return client_.exists(topic_key(topic_, "closed")) &&
           read_counter(client_, topic_key(topic_, "head")) <= cursor_;
  }

  std::optional<Bytes> take_available() {
    const std::uint64_t head =
        read_counter(client_, topic_key(topic_, "head"));
    if (cursor_ >= head) return std::nullopt;
    std::optional<Bytes> event = client_.get(event_key(topic_, cursor_));
    if (!event) {
      throw Error("KvBroker: event " + std::to_string(cursor_) +
                  " of topic '" + topic_ + "' missing from the log");
    }
    ++cursor_;
    return event;
  }

  kv::KvClient client_;
  std::string topic_;
  std::uint64_t cursor_;
  KvBrokerOptions options_;
};

}  // namespace

KvBroker::KvBroker(const std::string& address, KvBrokerOptions options)
    : address_(address), options_(options), client_(address) {}

void KvBroker::publish(const std::string& topic, BytesView event) {
  if (client_.exists(topic_key(topic, "closed"))) {
    throw Error("KvBroker: publish to closed topic '" + topic + "'");
  }
  const std::uint64_t head = read_counter(client_, topic_key(topic, "head"));
  // Event + head advance travel as one pipelined request.
  client_.set_many({{event_key(topic, head), Bytes(event)},
                    {topic_key(topic, "head"), std::to_string(head + 1)}});
}

void KvBroker::publish_batch(const std::string& topic,
                             const std::vector<Bytes>& events) {
  if (events.empty()) return;
  if (client_.exists(topic_key(topic, "closed"))) {
    throw Error("KvBroker: publish to closed topic '" + topic + "'");
  }
  const std::uint64_t head = read_counter(client_, topic_key(topic, "head"));
  // All events + the head advance travel as one pipelined request.
  std::vector<std::pair<std::string, Bytes>> pairs;
  pairs.reserve(events.size() + 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    pairs.emplace_back(event_key(topic, head + i), events[i]);
  }
  pairs.emplace_back(topic_key(topic, "head"),
                     Bytes(std::to_string(head + events.size())));
  client_.set_many(pairs);
}

std::shared_ptr<Subscription> KvBroker::subscribe(const std::string& topic) {
  const std::uint64_t cursor =
      read_counter(client_, topic_key(topic, "head"));
  const std::uint64_t subs = read_counter(client_, topic_key(topic, "subs"));
  client_.set(topic_key(topic, "subs"), std::to_string(subs + 1));
  return std::make_shared<KvSubscription>(client_, topic, cursor, options_);
}

std::size_t KvBroker::subscriber_count(const std::string& topic) {
  return static_cast<std::size_t>(
      read_counter(client_, topic_key(topic, "subs")));
}

void KvBroker::close_topic(const std::string& topic) {
  client_.set(topic_key(topic, "closed"), "1");
}

}  // namespace ps::stream
