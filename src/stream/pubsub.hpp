// Pluggable pub/sub broker interface — the ProxyStream event channel.
//
// Brokers move opaque serialized events (small metadata messages) between
// producers and subscribers; the bulk data never touches them. The interface
// is deliberately byte-oriented so any transport qualifies: the in-process
// QueueBroker (bounded queues, blocking backpressure) and the KvBroker
// (an event log on the kv substrate that crosses simulated site boundaries)
// both implement it, and third-party brokers (Kafka-, Redis-pubsub-like)
// would plug in the same way connectors do.
//
// Delivery contract shared by all brokers:
//   * fan-out: every subscriber registered at publish time receives the
//     event; a publish with zero subscribers is dropped (QueueBroker) or
//     never read (KvBroker) — either way it is not an error;
//   * a subscriber joining mid-stream sees only events published after it
//     subscribed;
//   * close_topic() marks end-of-stream: subscribers drain buffered events
//     and then observe nullopt, publishing afterwards throws.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace ps::stream {

/// One subscriber's position in a topic. Not thread-safe: a subscription
/// belongs to a single consumer (create one per consuming thread).
class Subscription {
 public:
  virtual ~Subscription() = default;

  /// Blocks for the next event; nullopt once the topic is closed and this
  /// subscriber has drained every event published since it joined.
  virtual std::optional<Bytes> next() = 0;

  /// Non-blocking variant: nullopt when no event is currently available
  /// (which does not distinguish "empty" from "closed" — use next()).
  virtual std::optional<Bytes> try_next() = 0;
};

class PubSub {
 public:
  virtual ~PubSub() = default;

  /// Broker type name (e.g. "queue", "kv").
  virtual std::string type() const = 0;

  /// Delivers `event` to every current subscriber of `topic`.
  /// Throws Error when the topic has been closed.
  virtual void publish(const std::string& topic, BytesView event) = 0;

  /// Delivers many events in order. The default loops over publish;
  /// brokers whose transport can pipeline (KvBroker: one log append round
  /// trip for the whole batch) override it, so a producer flushing a
  /// buffered batch pays per-batch instead of per-event channel costs.
  virtual void publish_batch(const std::string& topic,
                             const std::vector<Bytes>& events) {
    for (const Bytes& event : events) publish(topic, event);
  }

  /// Registers a new subscriber positioned at the topic's current tail.
  virtual std::shared_ptr<Subscription> subscribe(const std::string& topic) = 0;

  /// Number of subscribers currently registered on `topic` — what a
  /// producer minting ref-counted payloads uses as the reference count.
  virtual std::size_t subscriber_count(const std::string& topic) = 0;

  /// Marks end-of-stream on `topic` (idempotent).
  virtual void close_topic(const std::string& topic) = 0;

  /// Releases broker resources; topics behave as closed afterwards.
  virtual void close() {}
};

}  // namespace ps::stream
