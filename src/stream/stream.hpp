// StreamProducer / StreamConsumer — the ProxyStream programming model.
//
// A producer sends objects into a named topic: payloads are serialized,
// buffered, and flushed in batches through the store's connector
// (Connector::put_batch — one bulk transfer per flush), while a small Event
// record per object travels through the pluggable PubSub broker. Consumers
// receive events and mint lazy Proxy<T> payloads from the embedded factory
// descriptor, so bulk data moves producer -> channel -> consumer directly
// and only metadata crosses the broker.
//
// Eviction protocol: with ref_counted_eviction on (default), each flushed
// payload's reference count is set to the topic's subscriber count at
// publish time; every consumer resolve decrements it and the last resolve
// evicts the payload from the channel (RefCountRegistry semantics). An
// event published to zero subscribers evicts its payload immediately — no
// consumer can ever reach it (subscribers join at the tail).
//
// Observability: every flush/publish/consume runs under an obs span; the
// publish span's TraceContext rides inside the event (and its descriptor),
// so consume and resolve spans stitch into the producer's trace across
// process/site boundaries. Per-topic counters stream.publish.<topic>,
// stream.delivered.<topic>, stream.consume.<topic> feed `psctl stream
// stats` (lag = delivered - consumed).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/refcount.hpp"
#include "core/store.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "serde/serde.hpp"
#include "stream/event.hpp"
#include "stream/pubsub.hpp"

namespace ps::stream {

struct StreamProducerOptions {
  /// Flush when this many objects are buffered.
  std::size_t max_batch_items = 16;
  /// Flush when buffered serialized payloads reach this many bytes.
  std::size_t max_batch_bytes = std::size_t{1} << 20;
  /// Mint ref-counted payloads: the last subscriber resolve evicts.
  bool ref_counted_eviction = true;
};

template <typename T>
class StreamProducer {
 public:
  StreamProducer(std::shared_ptr<core::Store> store,
                 std::shared_ptr<PubSub> broker, std::string topic,
                 StreamProducerOptions options = {})
      : store_(std::move(store)),
        broker_(std::move(broker)),
        topic_(std::move(topic)),
        options_(options) {}

  ~StreamProducer() {
    try {
      close();
    } catch (...) {
      // Destructors must not throw; an explicit close() surfaces errors.
    }
  }

  StreamProducer(const StreamProducer&) = delete;
  StreamProducer& operator=(const StreamProducer&) = delete;

  /// Buffers one object (serialized immediately so the byte threshold sees
  /// wire sizes); flushes when either batch threshold is reached.
  void send(const T& value, std::map<std::string, std::string> attrs = {}) {
    if (closed_) {
      throw Error("StreamProducer: send on closed topic '" + topic_ + "'");
    }
    Pending pending{store_->serialize(value), std::move(attrs)};
    pending_bytes_ += pending.blob.size();
    pending_.push_back(std::move(pending));
    if (pending_.size() >= options_.max_batch_items ||
        pending_bytes_ >= options_.max_batch_bytes) {
      flush();
    }
  }

  /// Stores every buffered payload in one Connector::put_batch round trip
  /// and publishes one event per payload. Returns the events published.
  std::size_t flush() {
    if (pending_.empty()) return 0;
    obs::SpanScope flush_span("stream.flush", topic_);
    // Resolved in the ambient registry per flush so per-process metrics
    // scoping attributes the batch to the producing site.
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::ambient();
    obs::Timer timer(&metrics.histogram("stream.flush.vtime"),
                     &metrics.histogram("stream.flush.wall"));
    metrics.histogram("stream.batch.items")
        .observe(static_cast<double>(pending_.size()));
    metrics.histogram("stream.batch.bytes")
        .observe(static_cast<double>(pending_bytes_));

    std::vector<Bytes> blobs;
    std::vector<std::uint64_t> sizes;
    blobs.reserve(pending_.size());
    sizes.reserve(pending_.size());
    for (Pending& pending : pending_) {
      sizes.push_back(pending.blob.size());
      blobs.push_back(std::move(pending.blob));
    }
    const std::vector<core::Key> keys = store_->put_bytes_batch(blobs);

    const std::size_t subs = broker_->subscriber_count(topic_);
    std::shared_ptr<core::RefCountRegistry> refcounts;
    if (options_.ref_counted_eviction && subs > 0) {
      refcounts = core::RefCountRegistry::for_store(store_->name());
    }

    std::vector<Bytes> wire_events;
    wire_events.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      obs::SpanScope span("stream.publish", topic_);
      core::FactoryDescriptor descriptor{
          store_->name(), keys[i], store_->connector().config(),
          /*evict=*/false};
      if (refcounts) {
        refcounts->set(keys[i].canonical(), static_cast<std::uint32_t>(subs));
        descriptor.ref_counted = true;
      }
      descriptor.trace = span.context();

      Event event;
      event.topic = topic_;
      event.sequence = next_sequence_++;
      event.payload_bytes = sizes[i];
      event.descriptor = std::move(descriptor);
      event.attrs = std::move(pending_[i].attrs);
      event.trace = span.context();
      wire_events.push_back(serde::to_bytes(event));
      metrics.counter("stream.publish." + topic_).inc();
      metrics.counter("stream.delivered." + topic_).inc(subs);
    }
    // One pipelined broker append for the whole batch (KvBroker: three kv
    // round trips for N events instead of 3N).
    broker_->publish_batch(topic_, wire_events);

    if (options_.ref_counted_eviction && subs == 0) {
      // Nobody can ever reach these payloads (subscribers join at the
      // tail): reclaim the channel immediately instead of leaking — one
      // pipelined evict_batch round trip for the whole flush.
      store_->evict_batch(keys);
    }
    const std::size_t published = pending_.size();
    pending_.clear();
    pending_bytes_ = 0;
    return published;
  }

  /// Flushes any partial batch and marks end-of-stream. Idempotent.
  void close() {
    if (closed_) return;
    flush();
    broker_->close_topic(topic_);
    closed_ = true;
  }

  bool closed() const { return closed_; }
  const std::string& topic() const { return topic_; }
  /// Events published so far (excludes the buffered, unflushed tail).
  std::uint64_t published() const { return next_sequence_; }
  std::size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    Bytes blob;
    std::map<std::string, std::string> attrs;
  };

  std::shared_ptr<core::Store> store_;
  std::shared_ptr<PubSub> broker_;
  std::string topic_;
  StreamProducerOptions options_;
  std::vector<Pending> pending_;
  std::size_t pending_bytes_ = 0;
  std::uint64_t next_sequence_ = 0;
  bool closed_ = false;
};

/// One consumed event plus the lazy proxy over its payload.
template <typename T>
struct StreamItem {
  Event event;
  core::Proxy<T> proxy;
};

struct StreamConsumerOptions {
  /// Start resolving each delivered payload on the shared AsyncExecutor as
  /// soon as its event arrives, so the transfer overlaps whatever the
  /// consumer does before first access (the paper's compute/communication
  /// overlap applied to streams).
  bool prefetch_payloads = false;
};

template <typename T>
class StreamConsumer {
 public:
  StreamConsumer(std::shared_ptr<PubSub> broker, std::string topic,
                 StreamConsumerOptions options = {})
      : broker_(std::move(broker)),
        topic_(std::move(topic)),
        options_(options),
        subscription_(broker_->subscribe(topic_)) {}

  /// Blocks for the next event; nullopt at end-of-stream. The returned
  /// proxy is unresolved — the payload transfers on first access (or in
  /// the background when prefetch_payloads is on).
  std::optional<StreamItem<T>> next_item() {
    std::optional<Bytes> wire;
    {
      // Time blocked on the broker separately from payload handling: the
      // critical-path analyzer buckets this under "broker-poll".
      obs::SpanScope poll("stream.poll", topic_, "broker-poll");
      wire = subscription_->next();
    }
    if (!wire) return std::nullopt;
    Event event = serde::from_bytes<Event>(*wire);
    // Stitch into the producer's publish span across the broker hop.
    obs::ContextScope adopt(event.trace);
    obs::SpanScope span("stream.consume", topic_);
    obs::MetricsRegistry::ambient().counter("stream.consume." + topic_).inc();
    ++consumed_;
    core::Proxy<T> proxy = payload_proxy<T>(event);
    if (options_.prefetch_payloads) proxy.resolve_async();
    return StreamItem<T>{std::move(event), std::move(proxy)};
  }

  /// next_item() without the metadata.
  std::optional<core::Proxy<T>> next() {
    auto item = next_item();
    if (!item) return std::nullopt;
    return std::move(item->proxy);
  }

  const std::string& topic() const { return topic_; }
  std::uint64_t consumed() const { return consumed_; }

 private:
  std::shared_ptr<PubSub> broker_;
  std::string topic_;
  StreamConsumerOptions options_;
  std::shared_ptr<Subscription> subscription_;
  std::uint64_t consumed_ = 0;
};

}  // namespace ps::stream
