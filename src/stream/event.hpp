// Stream event metadata (the ProxyStream pattern of Pauloski et al. 2024).
//
// ProxyStream decouples a stream's event channel from its data channel:
// producers publish small, serializable Event records through a pub/sub
// broker while the bulk payload flows through a Store/Connector and reaches
// consumers as a lazy Proxy<T>. An Event therefore carries exactly what a
// remote consumer needs to reconstruct that proxy — a FactoryDescriptor —
// plus stream bookkeeping (topic, per-topic sequence number, payload size,
// user attributes) and the publisher's TraceContext so consume/dispatch
// spans stitch into the producer's trace across site boundaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>

#include "core/factory.hpp"
#include "core/proxy.hpp"
#include "core/store.hpp"
#include "obs/context.hpp"
#include "serde/serde.hpp"

namespace ps::stream {

struct Event {
  std::string topic;
  /// Position in the topic, assigned by the producer (0-based).
  std::uint64_t sequence = 0;
  /// Serialized payload size in the data channel (wire bytes).
  std::uint64_t payload_bytes = 0;
  /// Everything a consumer needs to mint a Proxy<T> over the payload.
  core::FactoryDescriptor descriptor;
  /// Application metadata riding the event channel (small by contract).
  std::map<std::string, std::string> attrs;
  /// Publish-span context: consumers adopt it so their consume/dispatch
  /// spans are children of the producer's publish span.
  obs::TraceContext trace{};

  bool operator==(const Event&) const = default;

  auto serde_members() {
    return std::tie(topic, sequence, payload_bytes, descriptor, attrs, trace);
  }
  auto serde_members() const {
    return std::tie(topic, sequence, payload_bytes, descriptor, attrs, trace);
  }
};

/// Mints the lazy payload proxy described by an event. Resolution follows
/// the normal descriptor path (store re-registration, ref-counted eviction).
template <typename T>
core::Proxy<T> payload_proxy(const Event& event) {
  return core::Proxy<T>(
      core::make_descriptor_factory<T>(event.descriptor));
}

}  // namespace ps::stream
