// Dispatch-on-event: the funcX-style bridge from a stream topic into the
// FaaS substrate.
//
// A StreamDispatcher subscribes to a topic and turns every event into one
// task submission through a faas::Executor: the serialized Event is the
// task payload, so the remote function reconstructs the lazy payload proxy
// with stream::payload_proxy<T>() and the bulk data flows straight from the
// channel to the worker — the cloud service only ever carries event
// metadata. The event's TraceContext is adopted around each submission, so
// dispatch and remote execution stitch into the producer's trace.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "faas/executor.hpp"
#include "stream/pubsub.hpp"

namespace ps::stream {

class StreamDispatcher {
 public:
  /// Subscribes to `topic` on construction (events published afterwards
  /// are dispatched; the subscriber joins at the tail like any other).
  StreamDispatcher(std::shared_ptr<PubSub> broker, std::string topic,
                   faas::Executor executor, std::string function);

  /// Pumps the topic to end-of-stream: one task submission per event.
  /// Returns the number of tasks dispatched. Futures accumulate in
  /// futures() for the caller to await.
  std::size_t run();

  /// Dispatches at most one buffered event without blocking; false when
  /// nothing was available.
  bool dispatch_one();

  std::vector<faas::TaskFuture>& futures() { return futures_; }
  const std::string& topic() const { return topic_; }
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  void submit(Bytes event_wire);

  std::shared_ptr<PubSub> broker_;
  std::string topic_;
  faas::Executor executor_;
  std::string function_;
  std::shared_ptr<Subscription> subscription_;
  std::vector<faas::TaskFuture> futures_;
  std::uint64_t dispatched_ = 0;
};

}  // namespace ps::stream
