// RTCDataChannel cost model (paper section 5.3.2).
//
// The paper found that aiortc data channels cannot fully utilize inter-site
// bandwidth: computing centers throttle UDP, and aiortc's congestion control
// is slower than BBR — a measured ceiling of ~80 Mbps between Frontera and
// Theta. Multiplexing over multiple channels helps only marginally because
// the single-threaded asyncio loop saturates after "a couple" of channels.
#pragma once

#include <cstddef>
#include <string>

#include "net/fabric.hpp"

namespace ps::endpoint {

struct DataChannelOptions {
  /// Effective ceiling of one SCTP-over-DTLS channel across the WAN
  /// (bytes/second). 10 MB/s = the paper's 80 Mbps observation.
  double wan_throttle_Bps = 10e6;
  /// Per-message SCTP/DTLS framing + event-loop dispatch cost.
  double per_msg_overhead_s = 1e-3;
  /// Number of multiplexed data channels.
  int channels = 1;
  /// The asyncio loop cannot drive more than about this many channels.
  double max_multiplex_benefit = 2.0;

  /// Aggregate WAN ceiling given multiplexing.
  double effective_throttle() const;
};

/// One-way virtual time to move `bytes` between two peered endpoints over
/// their data channel. Intra-site connections use the native interconnect
/// (no UDP policer); inter-site hops are throttled.
double data_channel_time(const net::Fabric& fabric, const std::string& from,
                         const std::string& to, std::size_t bytes,
                         const DataChannelOptions& options);

}  // namespace ps::endpoint
