// PS-endpoint (paper section 4.2.2).
//
// A PS-endpoint is an in-memory object store with optional disk spill,
// modeled as the paper's single-threaded asyncio application: one FIFO
// service queue handles client and peer requests. Endpoints register with a
// relay server (which assigns their UUID) and open WebRTC-like peer
// connections on demand: when an endpoint receives a request whose key
// names another endpoint, it establishes (offer/answer/ICE via relay, then
// hole punch) or reuses a peer connection and forwards the request over the
// data channel.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/uuid.hpp"
#include "endpoint/datachannel.hpp"
#include "obs/context.hpp"
#include "proc/world.hpp"
#include "relay/relay.hpp"
#include "sim/resource.hpp"

namespace ps::endpoint {

struct EndpointOptions {
  /// Spill objects to disk once in-memory bytes exceed this
  /// ("optional on-disk storage if host memory is insufficient").
  std::size_t max_memory_bytes = SIZE_MAX;
  /// Directory for spilled objects (required if max_memory_bytes is finite).
  std::filesystem::path spill_dir;
  DataChannelOptions data_channel;
  /// Event-loop dispatch cost per request.
  double base_service_s = 50e-6;
  /// Memory bandwidth applied to payload handling.
  double mem_Bps = 6e9;
};

struct EndpointRequest {
  std::string op;  // "get" | "set" | "exists" | "evict"
  std::string object_id;
  /// The endpoint owning the object; requests for other endpoints are
  /// forwarded over a peer connection.
  Uuid endpoint_id;
  Bytes data;  // set payload
  /// Caller's trace context; the serving (or peer) endpoint adopts it so
  /// its handle/forward spans stitch into the caller's trace.
  obs::TraceContext trace{};
};

struct EndpointResponse {
  bool ok = false;
  std::optional<Bytes> data;
};

class Endpoint : public std::enable_shared_from_this<Endpoint> {
 public:
  /// Starts an endpoint on fabric host `host`, registers it with the relay
  /// at `relay_address`, and binds it at "psep://<host>/<name>" plus
  /// "psep-uuid://<uuid>". The relay assigns the UUID unless `preferred` is
  /// given.
  static std::shared_ptr<Endpoint> start(proc::World& world,
                                         const std::string& host,
                                         const std::string& name,
                                         const std::string& relay_address,
                                         EndpointOptions options = {},
                                         const Uuid& preferred = Uuid());

  Endpoint(proc::World& world, std::string host, std::string name,
           std::shared_ptr<relay::RelayServer> relay, EndpointOptions options);
  ~Endpoint();

  const Uuid& uuid() const { return uuid_; }
  const std::string& host() const { return host_; }
  const std::string& name() const { return name_; }

  /// Serves one request at the caller's current virtual time: queues on the
  /// single-threaded event loop, forwards to a peer endpoint if needed, and
  /// advances the caller's virtual clock to the completion time.
  EndpointResponse handle(const EndpointRequest& request);

  /// True once a peer connection to `peer` has been established.
  bool has_peer(const Uuid& peer) const;

  /// Failure injection: drops an established peer connection; the next
  /// forwarded request re-establishes it ("the connection is re-established
  /// if lost for any reason").
  void drop_peer(const Uuid& peer);

  /// Unregisters from the relay and closes all peer connections.
  void stop();
  bool stopped() const;

  // -- observability ----------------------------------------------------------

  std::size_t object_count() const;
  std::size_t memory_bytes() const;
  std::size_t spilled_count() const;
  std::uint64_t handshakes_completed() const;
  std::uint64_t requests_served() const;

  /// Service time of one request touching `bytes` of payload.
  double service_time(std::size_t bytes) const;

  /// Locality endpoint spans record under: the endpoint is its own actor,
  /// so spans attribute to its host/site rather than the calling process.
  obs::SpanLocality span_locality() const;

  sim::Resource& queue() { return queue_; }

 private:
  enum class PeerPhase { kIdle, kOfferReceived, kConnected };

  struct PeerConnection {
    PeerPhase phase = PeerPhase::kIdle;
    bool ice_received = false;
  };

  /// The relay's WebSocket listener: answers offers, records ICE.
  void on_relay_message(const relay::RelayMessage& message);

  /// Establishes a peer connection via the Figure 4 handshake.
  void connect_peer(const Uuid& peer);

  /// Runs an operation against local storage (no forwarding).
  EndpointResponse local_op(const EndpointRequest& request);

  /// Serves a request arriving from a peer endpoint (queues locally).
  EndpointResponse handle_from_peer(const EndpointRequest& request);

  void store_object(const std::string& object_id, Bytes data);
  std::optional<Bytes> load_object(const std::string& object_id);
  bool object_exists(const std::string& object_id) const;
  void remove_object(const std::string& object_id);

  std::filesystem::path spill_path(const std::string& object_id) const;

  proc::World& world_;
  std::string host_;
  std::string name_;
  std::shared_ptr<relay::RelayServer> relay_;
  EndpointOptions options_;
  Uuid uuid_;
  bool stopped_ = false;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Bytes> memory_objects_;
  std::unordered_map<std::string, std::size_t> spilled_objects_;  // id->size
  std::size_t memory_bytes_ = 0;
  std::map<Uuid, PeerConnection> peers_;
  std::uint64_t handshakes_ = 0;
  std::uint64_t requests_ = 0;

  sim::Resource queue_{1};
};

/// Canonical service addresses.
std::string endpoint_address(const std::string& host, const std::string& name);
std::string endpoint_uuid_address(const Uuid& uuid);

}  // namespace ps::endpoint
