#include "endpoint/datachannel.hpp"

#include <algorithm>

namespace ps::endpoint {

double DataChannelOptions::effective_throttle() const {
  const double usable =
      std::min(static_cast<double>(channels), max_multiplex_benefit);
  return wan_throttle_Bps * std::max(1.0, usable);
}

double data_channel_time(const net::Fabric& fabric, const std::string& from,
                         const std::string& to, std::size_t bytes,
                         const DataChannelOptions& options) {
  net::Route route = fabric.route(from, to);
  double total = 0.0;
  for (net::Hop& hop : route.hops) {
    net::LinkProfile p = hop.profile;
    p.per_msg_overhead_s += options.per_msg_overhead_s;
    const bool wan = p.congestion == net::Congestion::kTcpWan ||
                     p.congestion == net::Congestion::kBbrWan ||
                     p.congestion == net::Congestion::kUdpThrottled;
    if (wan) {
      p.congestion = net::Congestion::kUdpThrottled;
      p.throttle_Bps = options.effective_throttle();
      p.ramp_rtt_factor = 2.0;  // aiortc ramps slower than BBR
    }
    total += p.transfer_time(bytes);
  }
  return total;
}

}  // namespace ps::endpoint
