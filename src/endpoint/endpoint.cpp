#include "endpoint/endpoint.hpp"

#include <fstream>

#include "common/error.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "sim/vtime.hpp"

namespace ps::endpoint {

namespace fs = std::filesystem;

namespace {

/// Request-path metric handles, resolved once per process.
struct EndpointMetrics {
  obs::Counter& requests;
  obs::Counter& forwards;
  obs::Counter& handshakes;
  obs::Histogram& handle_vtime;
  obs::Histogram& handle_wall;
  obs::Histogram& forward_vtime;

  /// Resolved in the ambient registry per call so the endpoint's metrics
  /// land in the site handling the request under per-process scoping.
  static EndpointMetrics get() {
    auto& r = obs::MetricsRegistry::ambient();
    return EndpointMetrics{r.counter("endpoint.requests"),
                           r.counter("endpoint.forwards"),
                           r.counter("endpoint.handshakes"),
                           r.histogram("endpoint.handle.vtime"),
                           r.histogram("endpoint.handle.wall"),
                           r.histogram("endpoint.forward.vtime")};
  }
};

}  // namespace

std::string endpoint_address(const std::string& host,
                             const std::string& name) {
  return "psep://" + host + "/" + name;
}

std::string endpoint_uuid_address(const Uuid& uuid) {
  return "psep-uuid://" + uuid.str();
}

std::shared_ptr<Endpoint> Endpoint::start(proc::World& world,
                                          const std::string& host,
                                          const std::string& name,
                                          const std::string& relay_address,
                                          EndpointOptions options,
                                          const Uuid& preferred) {
  auto relay = world.services().resolve<relay::RelayServer>(relay_address);
  auto ep = std::make_shared<Endpoint>(world, host, name, std::move(relay),
                                       std::move(options));
  // Register the WebSocket listener with the relay; the relay assigns the
  // UUID when no preferred id is provided.
  std::weak_ptr<Endpoint> weak = ep;
  ep->uuid_ = ep->relay_->register_endpoint(
      preferred, host, [weak](const relay::RelayMessage& message) {
        if (auto self = weak.lock()) self->on_relay_message(message);
      });
  world.services().bind<Endpoint>(endpoint_address(host, name), ep);
  world.services().bind<Endpoint>(endpoint_uuid_address(ep->uuid_), ep);
  return ep;
}

Endpoint::Endpoint(proc::World& world, std::string host, std::string name,
                   std::shared_ptr<relay::RelayServer> relay,
                   EndpointOptions options)
    : world_(world),
      host_(std::move(host)),
      name_(std::move(name)),
      relay_(std::move(relay)),
      options_(std::move(options)) {
  world_.fabric().host(host_);  // validate
  if (options_.max_memory_bytes != SIZE_MAX && options_.spill_dir.empty()) {
    throw ProtocolError("Endpoint: finite memory requires a spill_dir");
  }
  if (!options_.spill_dir.empty()) {
    fs::create_directories(options_.spill_dir);
  }
}

Endpoint::~Endpoint() = default;

double Endpoint::service_time(std::size_t bytes) const {
  return options_.base_service_s +
         static_cast<double>(bytes) / options_.mem_Bps;
}

obs::SpanLocality Endpoint::span_locality() const {
  std::string site;
  try {
    site = world_.fabric().host(host_).site;
  } catch (...) {
    site = "?";
  }
  return obs::SpanLocality{"endpoint:" + name_, host_, site};
}

void Endpoint::on_relay_message(const relay::RelayMessage& message) {
  // Continue the sender's trace through the relay hop.
  obs::ContextScope adopt(message.trace);
  obs::SpanScope span("endpoint.signal", message.kind, "wire-transfer");
  span.set_locality(span_locality());
  sim::vmerge(message.stamp);
  std::unique_lock lock(mu_);
  PeerConnection& peer = peers_[message.from];
  if (message.kind == "offer") {
    peer.phase = PeerPhase::kOfferReceived;
    lock.unlock();
    // Reply with our session description (Figure 4 steps 3-4).
    relay_->forward(relay::RelayMessage{
        .from = uuid_, .to = message.from, .kind = "answer",
        .payload = "sdp-answer:" + uuid_.str(), .stamp = 0.0});
  } else if (message.kind == "answer") {
    peer.phase = PeerPhase::kOfferReceived;  // initiator side: SDP done
  } else if (message.kind == "ice") {
    peer.ice_received = true;
    const bool must_reply = peer.phase == PeerPhase::kOfferReceived &&
                            message.payload.rfind("ice-initiator", 0) == 0;
    if (must_reply) {
      // Responder: exchange our candidates, then consider the pair
      // connected (the initiator completes the punch).
      peer.phase = PeerPhase::kConnected;
      ++handshakes_;
      if (obs::enabled()) EndpointMetrics::get().handshakes.inc();
      lock.unlock();
      relay_->forward(relay::RelayMessage{
          .from = uuid_, .to = message.from, .kind = "ice",
          .payload = "ice-responder:" + uuid_.str(), .stamp = 0.0});
    }
  } else {
    throw ProtocolError("Endpoint: unexpected relay message kind '" +
                        message.kind + "'");
  }
}

void Endpoint::connect_peer(const Uuid& peer_id) {
  {
    std::lock_guard lock(mu_);
    if (stopped_) throw ProtocolError("Endpoint " + name_ + " is stopped");
    const auto it = peers_.find(peer_id);
    if (it != peers_.end() && it->second.phase == PeerPhase::kConnected) {
      return;
    }
  }
  // Figure 4: (1-2) forward our SDP offer via the relay; the peer answers
  // (3-4); both sides then exchange ICE candidates via the relay, and (5)
  // the initiator completes UDP hole punching with one direct round trip.
  relay_->forward(relay::RelayMessage{.from = uuid_, .to = peer_id,
                                      .kind = "offer",
                                      .payload = "sdp-offer:" + uuid_.str(),
                                      .stamp = 0.0});
  relay_->forward(relay::RelayMessage{
      .from = uuid_, .to = peer_id, .kind = "ice",
      .payload = "ice-initiator:" + uuid_.str(), .stamp = 0.0});
  const std::string peer_host = relay_->endpoint_host(peer_id);
  sim::vadvance(world_.fabric().route(host_, peer_host).rtt());  // punch
  std::lock_guard lock(mu_);
  PeerConnection& peer = peers_[peer_id];
  if (peer.phase != PeerPhase::kConnected) {
    peer.phase = PeerPhase::kConnected;
    ++handshakes_;
    if (obs::enabled()) EndpointMetrics::get().handshakes.inc();
  }
}

EndpointResponse Endpoint::handle(const EndpointRequest& request) {
  {
    std::lock_guard lock(mu_);
    if (stopped_) throw ProtocolError("Endpoint " + name_ + " is stopped");
    ++requests_;
  }
  const bool local =
      request.endpoint_id == uuid_ || request.endpoint_id.is_nil();
  // Continue the caller's trace carried in the request header.
  obs::ContextScope adopt(request.trace);
  obs::SpanScope span(local ? "endpoint.handle" : "endpoint.forward",
                      request.op, "wire-transfer");
  span.set_locality(span_locality());
  EndpointMetrics metrics = EndpointMetrics::get();
  if (obs::enabled()) metrics.requests.inc();
  obs::Timer timer(&metrics.handle_vtime, &metrics.handle_wall);
  if (local) {
    // Single-threaded event loop: FIFO over all client requests, with the
    // service time covering both the request and the response payloads
    // (the loop copies the object out on gets).
    EndpointResponse response = local_op(request);
    const std::size_t payload =
        request.data.size() + (response.data ? response.data->size() : 0);
    const double done = queue_.schedule(sim::vnow(), service_time(payload));
    sim::vset(done);
    return response;
  }

  if (obs::enabled()) metrics.forwards.inc();
  obs::Timer forward_timer(&metrics.forward_vtime);

  // Dispatching a forwarded request costs the loop the request handling.
  const double done = queue_.schedule(
      sim::vnow(), service_time(request.data.size()));
  sim::vset(done);

  // Forward to the owning endpoint over a peer connection.
  connect_peer(request.endpoint_id);
  auto target = world_.services().try_resolve<Endpoint>(
      endpoint_uuid_address(request.endpoint_id));
  if (!target) {
    throw ProtocolError("Endpoint: peer " + request.endpoint_id.str() +
                        " is gone");
  }
  sim::vadvance(data_channel_time(world_.fabric(), host_, target->host_,
                                  request.data.size() + 256,
                                  options_.data_channel));
  EndpointResponse response;
  if (obs::TraceRecorder::global().enabled()) {
    // Re-stamp the header so the peer's span parents to this forward span.
    EndpointRequest relayed = request;
    relayed.trace = obs::current_context();
    response = target->handle_from_peer(relayed);
  } else {
    response = target->handle_from_peer(request);
  }
  const std::size_t response_bytes =
      (response.data ? response.data->size() : 0) + 64;
  sim::vadvance(data_channel_time(world_.fabric(), target->host_, host_,
                                  response_bytes, options_.data_channel));
  return response;
}

EndpointResponse Endpoint::handle_from_peer(const EndpointRequest& request) {
  {
    std::lock_guard lock(mu_);
    if (stopped_) throw ProtocolError("Endpoint " + name_ + " is stopped");
    ++requests_;
  }
  obs::ContextScope adopt(request.trace);
  obs::SpanScope span("endpoint.handle", request.op, "wire-transfer");
  span.set_locality(span_locality());
  EndpointResponse response = local_op(request);
  const std::size_t payload =
      request.data.size() + (response.data ? response.data->size() : 0);
  const double done = queue_.schedule(sim::vnow(), service_time(payload));
  sim::vset(done);
  return response;
}

EndpointResponse Endpoint::local_op(const EndpointRequest& request) {
  if (request.op == "set") {
    store_object(request.object_id, request.data);
    return EndpointResponse{.ok = true, .data = std::nullopt};
  }
  if (request.op == "get") {
    auto data = load_object(request.object_id);
    return EndpointResponse{.ok = data.has_value(), .data = std::move(data)};
  }
  if (request.op == "exists") {
    return EndpointResponse{.ok = object_exists(request.object_id),
                            .data = std::nullopt};
  }
  if (request.op == "evict") {
    remove_object(request.object_id);
    return EndpointResponse{.ok = true, .data = std::nullopt};
  }
  throw ProtocolError("Endpoint: unknown op '" + request.op + "'");
}

fs::path Endpoint::spill_path(const std::string& object_id) const {
  return options_.spill_dir / object_id;
}

void Endpoint::store_object(const std::string& object_id, Bytes data) {
  std::lock_guard lock(mu_);
  // Replace any previous copy.
  const auto mem_it = memory_objects_.find(object_id);
  if (mem_it != memory_objects_.end()) {
    memory_bytes_ -= mem_it->second.size();
    memory_objects_.erase(mem_it);
  }
  spilled_objects_.erase(object_id);

  if (memory_bytes_ + data.size() <= options_.max_memory_bytes) {
    memory_bytes_ += data.size();
    memory_objects_.emplace(object_id, std::move(data));
    return;
  }
  // Spill to disk.
  const fs::path path = spill_path(object_id);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw ProtocolError("Endpoint: cannot spill to " + path.string());
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  spilled_objects_[object_id] = data.size();
}

std::optional<Bytes> Endpoint::load_object(const std::string& object_id) {
  std::lock_guard lock(mu_);
  const auto it = memory_objects_.find(object_id);
  if (it != memory_objects_.end()) return it->second;
  if (spilled_objects_.contains(object_id)) {
    std::ifstream in(spill_path(object_id), std::ios::binary);
    if (!in) return std::nullopt;
    return Bytes((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  return std::nullopt;
}

bool Endpoint::object_exists(const std::string& object_id) const {
  std::lock_guard lock(mu_);
  return memory_objects_.contains(object_id) ||
         spilled_objects_.contains(object_id);
}

void Endpoint::remove_object(const std::string& object_id) {
  std::lock_guard lock(mu_);
  const auto it = memory_objects_.find(object_id);
  if (it != memory_objects_.end()) {
    memory_bytes_ -= it->second.size();
    memory_objects_.erase(it);
    return;
  }
  if (spilled_objects_.erase(object_id) > 0) {
    std::error_code ec;
    fs::remove(spill_path(object_id), ec);
  }
}

bool Endpoint::has_peer(const Uuid& peer) const {
  std::lock_guard lock(mu_);
  const auto it = peers_.find(peer);
  return it != peers_.end() && it->second.phase == PeerPhase::kConnected;
}

void Endpoint::drop_peer(const Uuid& peer) {
  std::lock_guard lock(mu_);
  peers_.erase(peer);
}

void Endpoint::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    peers_.clear();
  }
  relay_->unregister_endpoint(uuid_);
  world_.services().unbind(endpoint_address(host_, name_));
  world_.services().unbind(endpoint_uuid_address(uuid_));
}

bool Endpoint::stopped() const {
  std::lock_guard lock(mu_);
  return stopped_;
}

std::size_t Endpoint::object_count() const {
  std::lock_guard lock(mu_);
  return memory_objects_.size() + spilled_objects_.size();
}

std::size_t Endpoint::memory_bytes() const {
  std::lock_guard lock(mu_);
  return memory_bytes_;
}

std::size_t Endpoint::spilled_count() const {
  std::lock_guard lock(mu_);
  return spilled_objects_.size();
}

std::uint64_t Endpoint::handshakes_completed() const {
  std::lock_guard lock(mu_);
  return handshakes_;
}

std::uint64_t Endpoint::requests_served() const {
  std::lock_guard lock(mu_);
  return requests_;
}

}  // namespace ps::endpoint
