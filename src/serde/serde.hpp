// Binary serialization framework (the C++ stand-in for pickle).
//
// The paper's Store "(de)serializes objects before invoking the corresponding
// operation on the Connector" and allows custom (de)serialize functions.
// This framework provides:
//   * Writer/Reader over byte strings with bounds checking,
//   * a trait (`Codec<T>`) extensible by users, with built-in support for
//     scalars, enums, strings, containers, tuples, optional, variant,
//     chrono durations, and Uuid,
//   * aggregate support via a `serde_members()` member returning a tie of
//     fields,
//   * top-level helpers `to_bytes` / `from_bytes`.
//
// Encoding is little-endian fixed-width with 64-bit length prefixes; it is
// self-consistent but deliberately simple — the experiments measure data
// movement, not codec micro-optimizations.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/uuid.hpp"

namespace ps::serde {

class Writer {
 public:
  void write_raw(const void* data, std::size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }

  template <typename T>
    requires std::is_arithmetic_v<T>
  void write_scalar(T value) {
    // Assumes little-endian host (x86-64 / AArch64 Linux targets).
    write_raw(&value, sizeof(T));
  }

  void write_len(std::size_t n) {
    write_scalar<std::uint64_t>(static_cast<std::uint64_t>(n));
  }

  void write_blob(BytesView data) {
    write_len(data.size());
    write_raw(data.data(), data.size());
  }

  Bytes take() { return std::move(out_); }
  const Bytes& buffer() const { return out_; }
  std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  void read_raw(void* out, std::size_t n) {
    require(n);
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }

  template <typename T>
    requires std::is_arithmetic_v<T>
  T read_scalar() {
    T value;
    read_raw(&value, sizeof(T));
    return value;
  }

  std::size_t read_len() {
    const auto n = read_scalar<std::uint64_t>();
    if (n > data_.size() - pos_) {
      throw SerializationError("serde: length prefix exceeds buffer");
    }
    return static_cast<std::size_t>(n);
  }

  BytesView read_blob() {
    const std::size_t n = read_len();
    require(n);
    BytesView view = data_.substr(pos_, n);
    pos_ += n;
    return view;
  }

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    if (n > data_.size() - pos_) {
      throw SerializationError("serde: read past end of buffer");
    }
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

template <typename T, typename Enable = void>
struct Codec;  // specialize or provide serde_members()

template <typename T>
void encode(Writer& w, const T& value) {
  Codec<T>::encode(w, value);
}

template <typename T>
T decode(Reader& r) {
  return Codec<T>::decode(r);
}

template <typename T>
Bytes to_bytes(const T& value) {
  Writer w;
  encode(w, value);
  return w.take();
}

template <typename T>
T from_bytes(BytesView data) {
  Reader r(data);
  T value = decode<T>(r);
  if (!r.at_end()) {
    throw SerializationError("serde: trailing bytes after decode");
  }
  return value;
}

// ---------------------------------------------------------------------------
// Built-in codecs.
// ---------------------------------------------------------------------------

template <typename T>
struct Codec<T, std::enable_if_t<std::is_arithmetic_v<T>>> {
  static void encode(Writer& w, T value) { w.write_scalar(value); }
  static T decode(Reader& r) { return r.read_scalar<T>(); }
};

template <typename T>
struct Codec<T, std::enable_if_t<std::is_enum_v<T>>> {
  using U = std::underlying_type_t<T>;
  static void encode(Writer& w, T value) {
    w.write_scalar(static_cast<U>(value));
  }
  static T decode(Reader& r) { return static_cast<T>(r.read_scalar<U>()); }
};

template <>
struct Codec<std::string> {
  static void encode(Writer& w, const std::string& value) {
    w.write_blob(value);
  }
  static std::string decode(Reader& r) { return std::string(r.read_blob()); }
};

template <>
struct Codec<Uuid> {
  static void encode(Writer& w, const Uuid& value) {
    w.write_scalar(value.hi());
    w.write_scalar(value.lo());
  }
  static Uuid decode(Reader& r) {
    const auto hi = r.read_scalar<std::uint64_t>();
    const auto lo = r.read_scalar<std::uint64_t>();
    return Uuid(hi, lo);
  }
};

template <typename Rep, typename Period>
struct Codec<std::chrono::duration<Rep, Period>> {
  using D = std::chrono::duration<Rep, Period>;
  static void encode(Writer& w, const D& value) {
    w.write_scalar<std::int64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(value).count());
  }
  static D decode(Reader& r) {
    return std::chrono::duration_cast<D>(
        std::chrono::nanoseconds(r.read_scalar<std::int64_t>()));
  }
};

template <typename T>
struct Codec<std::vector<T>> {
  static void encode(Writer& w, const std::vector<T>& value) {
    w.write_len(value.size());
    for (const auto& item : value) serde::encode(w, item);
  }
  static std::vector<T> decode(Reader& r) {
    const std::size_t n = r.read_len();
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(serde::decode<T>(r));
    return out;
  }
};

template <typename T, std::size_t N>
struct Codec<std::array<T, N>> {
  static void encode(Writer& w, const std::array<T, N>& value) {
    for (const auto& item : value) serde::encode(w, item);
  }
  static std::array<T, N> decode(Reader& r) {
    std::array<T, N> out{};
    for (auto& item : out) item = serde::decode<T>(r);
    return out;
  }
};

template <typename A, typename B>
struct Codec<std::pair<A, B>> {
  static void encode(Writer& w, const std::pair<A, B>& value) {
    serde::encode(w, value.first);
    serde::encode(w, value.second);
  }
  static std::pair<A, B> decode(Reader& r) {
    A a = serde::decode<A>(r);
    B b = serde::decode<B>(r);
    return {std::move(a), std::move(b)};
  }
};

template <typename... Ts>
struct Codec<std::tuple<Ts...>> {
  static void encode(Writer& w, const std::tuple<Ts...>& value) {
    std::apply([&](const auto&... items) { (serde::encode(w, items), ...); },
               value);
  }
  static std::tuple<Ts...> decode(Reader& r) {
    // Braced init guarantees left-to-right evaluation of the decodes.
    return std::tuple<Ts...>{serde::decode<Ts>(r)...};
  }
};

template <typename K, typename V, typename C>
struct Codec<std::map<K, V, C>> {
  static void encode(Writer& w, const std::map<K, V, C>& value) {
    w.write_len(value.size());
    for (const auto& [k, v] : value) {
      serde::encode(w, k);
      serde::encode(w, v);
    }
  }
  static std::map<K, V, C> decode(Reader& r) {
    const std::size_t n = r.read_len();
    std::map<K, V, C> out;
    for (std::size_t i = 0; i < n; ++i) {
      K k = serde::decode<K>(r);
      V v = serde::decode<V>(r);
      out.emplace(std::move(k), std::move(v));
    }
    return out;
  }
};

template <typename K, typename V, typename H, typename E>
struct Codec<std::unordered_map<K, V, H, E>> {
  static void encode(Writer& w, const std::unordered_map<K, V, H, E>& value) {
    // Sort keys into a deterministic order so equal maps serialize equally.
    std::vector<const std::pair<const K, V>*> entries;
    entries.reserve(value.size());
    for (const auto& entry : value) entries.push_back(&entry);
    std::sort(entries.begin(), entries.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    w.write_len(entries.size());
    for (const auto* entry : entries) {
      serde::encode(w, entry->first);
      serde::encode(w, entry->second);
    }
  }
  static std::unordered_map<K, V, H, E> decode(Reader& r) {
    const std::size_t n = r.read_len();
    std::unordered_map<K, V, H, E> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      K k = serde::decode<K>(r);
      V v = serde::decode<V>(r);
      out.emplace(std::move(k), std::move(v));
    }
    return out;
  }
};

template <typename T, typename C>
struct Codec<std::set<T, C>> {
  static void encode(Writer& w, const std::set<T, C>& value) {
    w.write_len(value.size());
    for (const auto& item : value) serde::encode(w, item);
  }
  static std::set<T, C> decode(Reader& r) {
    const std::size_t n = r.read_len();
    std::set<T, C> out;
    for (std::size_t i = 0; i < n; ++i) out.insert(serde::decode<T>(r));
    return out;
  }
};

template <typename T>
struct Codec<std::optional<T>> {
  static void encode(Writer& w, const std::optional<T>& value) {
    w.write_scalar<std::uint8_t>(value.has_value() ? 1 : 0);
    if (value) serde::encode(w, *value);
  }
  static std::optional<T> decode(Reader& r) {
    if (r.read_scalar<std::uint8_t>() == 0) return std::nullopt;
    return serde::decode<T>(r);
  }
};

template <typename... Ts>
struct Codec<std::variant<Ts...>> {
  using V = std::variant<Ts...>;

  static void encode(Writer& w, const V& value) {
    w.write_scalar<std::uint32_t>(static_cast<std::uint32_t>(value.index()));
    std::visit([&](const auto& item) { serde::encode(w, item); }, value);
  }

  static V decode(Reader& r) {
    const auto index = r.read_scalar<std::uint32_t>();
    return decode_index(r, index, std::index_sequence_for<Ts...>{});
  }

 private:
  template <std::size_t... Is>
  static V decode_index(Reader& r, std::uint32_t index,
                        std::index_sequence<Is...>) {
    V out;
    bool matched = false;
    (void)((index == Is
                ? (out = V(std::in_place_index<Is>,
                           serde::decode<std::variant_alternative_t<Is, V>>(r)),
                   matched = true, true)
                : false) ||
           ...);
    if (!matched) {
      throw SerializationError("serde: variant index out of range");
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Aggregate support: any type exposing
//   auto serde_members()       -> std::tie(field, ...)
//   auto serde_members() const -> std::tie(field, ...)
// is serializable field-by-field.
// ---------------------------------------------------------------------------

template <typename T>
concept HasSerdeMembers = requires(T& t, const T& ct) {
  t.serde_members();
  ct.serde_members();
};

template <typename T>
struct Codec<T, std::enable_if_t<HasSerdeMembers<T>>> {
  static void encode(Writer& w, const T& value) {
    std::apply([&](const auto&... fields) { (serde::encode(w, fields), ...); },
               value.serde_members());
  }
  static T decode(Reader& r) {
    T value{};
    std::apply(
        [&](auto&... fields) {
          ((fields = serde::decode<std::decay_t<decltype(fields)>>(r)), ...);
        },
        value.serde_members());
    return value;
  }
};

/// True when a Codec exists for T (built-in, aggregate, or user-provided).
template <typename T>
concept Serializable = requires(Writer& w, Reader& r, const T& t) {
  Codec<std::decay_t<T>>::encode(w, t);
  { Codec<std::decay_t<T>>::decode(r) } -> std::convertible_to<std::decay_t<T>>;
};

}  // namespace ps::serde
