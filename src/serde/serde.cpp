#include "serde/serde.hpp"

// The framework is header-only templates; this TU exists so the library has
// an object file and to host non-template helpers if they grow.
namespace ps::serde {
namespace {
[[maybe_unused]] constexpr int kAnchor = 0;
}
}  // namespace ps::serde
