#include "proc/world.hpp"

#include "common/error.hpp"

namespace ps::proc {

World::World() = default;

std::unique_ptr<World> World::make_local() {
  auto world = std::make_unique<World>();
  world->fabric().add_site("local", net::hpc_interconnect(5e-6, 10e9));
  world->fabric().add_host("localhost", "local");
  world->spawn("main", "localhost");
  return world;
}

Process& World::spawn(const std::string& name, const std::string& host) {
  if (!fabric_.has_host(host)) {
    throw NotRegisteredError("World::spawn: unknown host " + host);
  }
  std::lock_guard lock(mu_);
  for (const auto& p : processes_) {
    if (p->name() == name) {
      throw NotRegisteredError("World::spawn: duplicate process " + name);
    }
  }
  processes_.push_back(std::make_unique<Process>(name, host, this));
  return *processes_.back();
}

std::vector<Process*> World::processes() const {
  std::lock_guard lock(mu_);
  std::vector<Process*> out;
  out.reserve(processes_.size());
  for (const auto& p : processes_) out.push_back(p.get());
  return out;
}

Process& World::process(const std::string& name) {
  std::lock_guard lock(mu_);
  for (const auto& p : processes_) {
    if (p->name() == name) return *p;
  }
  throw NotRegisteredError("World::process: unknown process " + name);
}

World& World::default_world() {
  static World* world = [] {
    // Leaked intentionally: the default world must outlive all static
    // destructors of user code that might still reference it.
    auto owned = make_local();
    return owned.release();
  }();
  return *world;
}

}  // namespace ps::proc
