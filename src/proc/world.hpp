// World: one isolated simulation universe.
//
// A World owns the network fabric (topology + virtual clock), the service
// directory (addressable substrate servers), and the simulated processes.
// Tests construct private Worlds for isolation; a lazily created default
// World with a single "local" host backs code that runs outside any
// explicit scope.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "proc/process.hpp"
#include "proc/services.hpp"
#include "sim/scheduler.hpp"

namespace ps::proc {

class World {
 public:
  /// Creates a world with an empty fabric. Call fabric() to build topology,
  /// then spawn processes on its hosts.
  World();

  /// Creates a world with a minimal single-site fabric ("local" site,
  /// "localhost" host) — convenient for unit tests.
  static std::unique_ptr<World> make_local();

  net::Fabric& fabric() { return fabric_; }
  const net::Fabric& fabric() const { return fabric_; }
  ServiceDirectory& services() { return services_; }
  sim::Scheduler& scheduler() { return scheduler_; }
  sim::VirtualClock& clock() { return fabric_.clock(); }

  /// Creates a process pinned to `host` (which must exist in the fabric).
  Process& spawn(const std::string& name, const std::string& host);

  /// Looks up a previously spawned process by name.
  Process& process(const std::string& name);

  /// The default world used by threads that never entered a scope.
  static World& default_world();

 private:
  net::Fabric fabric_;
  ServiceDirectory services_;
  sim::Scheduler scheduler_;
  std::mutex mu_;
  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace ps::proc
