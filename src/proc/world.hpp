// World: one isolated simulation universe.
//
// A World owns the network fabric (topology + virtual clock), the service
// directory (addressable substrate servers), and the simulated processes.
// Tests construct private Worlds for isolation; a lazily created default
// World with a single "local" host backs code that runs outside any
// explicit scope.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "proc/process.hpp"
#include "proc/services.hpp"
#include "sim/scheduler.hpp"

namespace ps::proc {

class World {
 public:
  /// Creates a world with an empty fabric. Call fabric() to build topology,
  /// then spawn processes on its hosts.
  World();

  /// Creates a world with a minimal single-site fabric ("local" site,
  /// "localhost" host) — convenient for unit tests.
  static std::unique_ptr<World> make_local();

  net::Fabric& fabric() { return fabric_; }
  const net::Fabric& fabric() const { return fabric_; }
  ServiceDirectory& services() { return services_; }
  sim::Scheduler& scheduler() { return scheduler_; }
  sim::VirtualClock& clock() { return fabric_.clock(); }

  /// Creates a process pinned to `host` (which must exist in the fabric).
  Process& spawn(const std::string& name, const std::string& host);

  /// Looks up a previously spawned process by name.
  Process& process(const std::string& name);

  /// Snapshot of every spawned process (pointers stay valid for the world's
  /// lifetime — processes are never destroyed before the world).
  std::vector<Process*> processes() const;

  /// Per-process metrics scoping (off by default). When on, ProcessScope
  /// routes obs::MetricsRegistry::ambient() to the entered process's own
  /// registry, so the telemetry plane can attribute metrics to the simulated
  /// site that produced them. Off, every process records into the global
  /// registry — the historical behavior every existing bench baseline
  /// assumes.
  void set_metrics_scoping(bool on) {
    metrics_scoping_.store(on, std::memory_order_relaxed);
  }
  bool metrics_scoping() const {
    return metrics_scoping_.load(std::memory_order_relaxed);
  }

  /// The default world used by threads that never entered a scope.
  static World& default_world();

 private:
  net::Fabric fabric_;
  ServiceDirectory services_;
  sim::Scheduler scheduler_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::atomic<bool> metrics_scoping_{false};
};

}  // namespace ps::proc
