#include "proc/process.hpp"

#include "net/fabric.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "proc/world.hpp"

namespace ps::proc {

namespace {
thread_local Process* t_current = nullptr;

// Teach the obs layer (which cannot link against proc) where spans execute.
// This TU defines current_process(), referenced by every simulated actor, so
// the initializer always runs before any span is recorded.
[[maybe_unused]] const bool g_locality_provider_installed = [] {
  obs::set_locality_provider([]() -> obs::SpanLocality {
    Process& process = current_process();
    std::string site;
    try {
      site = process.world().fabric().host(process.host()).site;
    } catch (...) {
      site = "?";
    }
    return obs::SpanLocality{process.name(), process.host(), site};
  });
  return true;
}();
}  // namespace

Process::Process(std::string name, std::string host, World* world)
    : name_(std::move(name)), host_(std::move(host)), world_(world) {}

Process::~Process() = default;

obs::MetricsRegistry& Process::metrics() {
  std::lock_guard lock(mu_);
  if (!metrics_) metrics_ = std::make_unique<obs::MetricsRegistry>();
  return *metrics_;
}

obs::MetricsRegistry* Process::try_metrics() const {
  std::lock_guard lock(mu_);
  return metrics_.get();
}

Process& current_process() {
  if (t_current == nullptr) {
    t_current = &World::default_world().process("main");
  }
  return *t_current;
}

ProcessScope::ProcessScope(Process& process)
    : previous_(t_current),
      previous_ambient_(obs::set_ambient_registry(
          process.world().metrics_scoping() ? &process.metrics() : nullptr)) {
  t_current = &process;
}

ProcessScope::~ProcessScope() {
  obs::set_ambient_registry(previous_ambient_);
  t_current = previous_;
}

}  // namespace ps::proc
