#include "proc/process.hpp"

#include "proc/world.hpp"

namespace ps::proc {

namespace {
thread_local Process* t_current = nullptr;
}  // namespace

Process::Process(std::string name, std::string host, World* world)
    : name_(std::move(name)), host_(std::move(host)), world_(world) {}

Process& current_process() {
  if (t_current == nullptr) {
    t_current = &World::default_world().process("main");
  }
  return *t_current;
}

ProcessScope::ProcessScope(Process& process) : previous_(t_current) {
  t_current = &process;
}

ProcessScope::~ProcessScope() { t_current = previous_; }

}  // namespace ps::proc
