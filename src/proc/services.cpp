#include "proc/services.hpp"

#include <algorithm>

namespace ps::proc {

std::vector<std::string> ServiceDirectory::addresses() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [address, entry] : entries_) out.push_back(address);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ps::proc
