// Service directory: the "network addressability" layer of the simulation.
//
// Real deployments address servers by host:port; in this in-process
// reproduction, substrate servers (Redis-like KV servers, relay servers,
// PS-endpoints, Globus transfer service, distributed store peers) register
// themselves in the world's service directory under an address string, and
// clients resolve the address to the live server object. ConnectorConfigs
// carry only the address string, so they remain serializable exactly like
// the Python implementation's connector configs.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace ps::proc {

class ServiceDirectory {
 public:
  /// Registers `service` under `address`. Re-registering an address replaces
  /// the previous binding (a restarted server).
  template <typename T>
  void bind(const std::string& address, std::shared_ptr<T> service) {
    std::lock_guard lock(mu_);
    entries_.insert_or_assign(
        address, Entry{std::type_index(typeid(T)), std::move(service)});
  }

  /// Resolves `address` to a service of type T.
  /// Throws NotRegisteredError if absent or of a different type.
  template <typename T>
  std::shared_ptr<T> resolve(const std::string& address) const {
    std::lock_guard lock(mu_);
    const auto it = entries_.find(address);
    if (it == entries_.end()) {
      throw NotRegisteredError("no service bound at '" + address + "'");
    }
    if (it->second.type != std::type_index(typeid(T))) {
      throw NotRegisteredError("service at '" + address +
                               "' has unexpected type");
    }
    return std::static_pointer_cast<T>(it->second.service);
  }

  /// Resolves `address` if present and of type T, else nullptr.
  template <typename T>
  std::shared_ptr<T> try_resolve(const std::string& address) const {
    std::lock_guard lock(mu_);
    const auto it = entries_.find(address);
    if (it == entries_.end() ||
        it->second.type != std::type_index(typeid(T))) {
      return nullptr;
    }
    return std::static_pointer_cast<T>(it->second.service);
  }

  bool contains(const std::string& address) const {
    std::lock_guard lock(mu_);
    return entries_.contains(address);
  }

  /// Removes a binding (a stopped server). No-op if absent.
  void unbind(const std::string& address) {
    std::lock_guard lock(mu_);
    entries_.erase(address);
  }

  std::vector<std::string> addresses() const;

 private:
  struct Entry {
    std::type_index type;
    std::shared_ptr<void> service;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace ps::proc
