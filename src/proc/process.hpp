// Simulated processes.
//
// The paper's semantics are cross-process: a proxy created in process P_a is
// serialized, shipped to process P_b, and on first resolve re-registers its
// Store there (Section 3.5). To test and exercise that behaviour inside one
// address space, we model processes explicitly: each Process owns its own
// typed registries (store registry, connector caches) and is pinned to a
// fabric host. A thread enters a process with ProcessScope; thread-locals
// track the current process, exactly like CPython's per-interpreter state.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <unordered_map>

namespace ps::obs {
class MetricsRegistry;
}  // namespace ps::obs

namespace ps::proc {

class World;

class Process {
 public:
  Process(std::string name, std::string host, World* world);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  /// Fabric host this process runs on.
  const std::string& host() const { return host_; }
  World& world() const { return *world_; }

  /// The process-owned metrics registry, created on first use. ProcessScope
  /// installs it as the thread's ambient registry when the world has
  /// per-process metrics scoping enabled, so substrate instrumentation lands
  /// here instead of the process-global registry.
  obs::MetricsRegistry& metrics();
  /// The registry if it was ever created, else nullptr (telemetry agents use
  /// this to skip processes that never recorded anything).
  obs::MetricsRegistry* try_metrics() const;

  /// Returns the process-local singleton of type T, default-constructing it
  /// on first use. T must be default-constructible. This is how per-process
  /// registries (e.g. the Store registry) are kept isolated.
  template <typename T>
  T& local() {
    std::lock_guard lock(mu_);
    const std::type_index key(typeid(T));
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      it = slots_.emplace(key, std::make_shared<T>()).first;
    }
    return *std::static_pointer_cast<T>(it->second);
  }

 private:
  std::string name_;
  std::string host_;
  World* world_;
  mutable std::mutex mu_;
  std::unordered_map<std::type_index, std::shared_ptr<void>> slots_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
};

/// The process the calling thread is currently executing in. Never null:
/// threads outside any scope run in the default world's "main" process.
Process& current_process();

/// RAII guard entering `process` on the calling thread. Nests. When the
/// process's world has metrics scoping enabled, also installs the process's
/// own MetricsRegistry as the thread's ambient registry for the duration
/// (restored on exit), so metrics recorded inside the scope land in the
/// simulated site doing the work.
class ProcessScope {
 public:
  explicit ProcessScope(Process& process);
  ~ProcessScope();

  ProcessScope(const ProcessScope&) = delete;
  ProcessScope& operator=(const ProcessScope&) = delete;

 private:
  Process* previous_;
  obs::MetricsRegistry* previous_ambient_;
};

}  // namespace ps::proc
