// HPC transport profiles for the RPC substrate.
//
// The paper's distributed in-memory connectors use Margo (Mercury RPC over
// RDMA), UCX, and ZeroMQ. Each transport achieves a different fraction of
// the physical link bandwidth and adds different per-message software
// overhead; crucially, UCX underperformed on Chameleon's 40GbE fabric while
// matching Margo on Polaris's Slingshot (paper section 5.1, Figure 6). We
// encode that as a per-link-class efficiency table.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "net/fabric.hpp"

namespace ps::rpc {

struct TransportProfile {
  std::string name;
  /// Fixed software overhead per RPC (request processing, protocol).
  double sw_overhead_s = 10e-6;
  /// Fraction of physical link bandwidth achieved, per link class.
  std::map<net::Congestion, double> efficiency;

  double efficiency_for(net::Congestion c) const;

  /// One-way time to move `bytes` from `from` to `to` over this transport.
  double transfer_time(const net::Fabric& fabric, const std::string& from,
                       const std::string& to, std::size_t bytes) const;
};

/// Margo/Mercury over RDMA: tiny overhead, near-wire bandwidth everywhere.
TransportProfile margo_transport();

/// UCX: matches Margo on modern HPC fabrics (Slingshot) but achieves a
/// fraction of peak on commodity 40GbE (the Chameleon anomaly).
TransportProfile ucx_transport();

/// ZeroMQ fallback: TCP-based, higher overhead, moderate bandwidth.
TransportProfile zmq_transport();

/// Lookup by name ("margo" | "ucx" | "zmq"); throws on unknown.
TransportProfile transport_by_name(const std::string& name);

}  // namespace ps::rpc
