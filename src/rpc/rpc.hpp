// Mercury/Margo-like RPC: named handlers over a transport profile.
//
// Servers register byte-level handlers; clients call them by name. Each call
// charges the caller's virtual time with request transfer, FIFO service
// queueing on the server, and response transfer — the client-observed RPC
// round trip, parameterized by the transport (Margo / UCX / ZMQ).
//
// The wire is completion-driven (net::PipelinedChannel): call() blocks the
// caller's clock for the round trip, while call_async() issues the request
// onto the channel and returns a Future<Bytes> stamped at that request's own
// pipelined completion vtime — N outstanding calls on one channel overlap
// transfer and FIFO service, so the ladder costs ~max-of-pipeline rather
// than sum-of-round-trips, and no thread or executor worker is held while a
// request is in flight.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "core/future.hpp"
#include "net/channel.hpp"
#include "obs/context.hpp"
#include "proc/world.hpp"
#include "rpc/transport.hpp"
#include "sim/resource.hpp"

namespace ps::rpc {

class RpcServer {
 public:
  using Handler = std::function<Bytes(BytesView)>;

  /// Creates a server on `host`, bound at "rpc://<transport>/<host>/<name>".
  static std::shared_ptr<RpcServer> start(proc::World& world,
                                          const std::string& host,
                                          const std::string& name,
                                          TransportProfile transport);

  RpcServer(std::string host, TransportProfile transport);

  void register_handler(const std::string& op, Handler handler);

  /// Invoked by RpcClient: runs the handler. `arrival` is the request's
  /// virtual arrival time; returns (response, virtual completion time).
  /// `ctx` is the caller's trace context carried in the request header: the
  /// server adopts it so its handler span joins the caller's trace.
  std::pair<Bytes, double> handle(const std::string& op, BytesView request,
                                  double arrival,
                                  obs::TraceContext ctx = {});

  const std::string& host() const { return host_; }
  const TransportProfile& transport() const { return transport_; }

  /// Per-request service time for a payload of `bytes`.
  double service_time(std::size_t bytes) const;

 private:
  std::string host_;
  TransportProfile transport_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Handler> handlers_;
  sim::Resource queue_{1};
};

std::string rpc_address(const std::string& transport, const std::string& host,
                        const std::string& name);

class RpcClient {
 public:
  /// Connects to the server at `address` in the current world.
  explicit RpcClient(const std::string& address);

  /// Calls `op`, charging virtual time for the full round trip.
  Bytes call(const std::string& op, BytesView request);

  /// Issues `op` onto the calling process's channel to this server and
  /// returns immediately: the caller's clock does not advance, no thread or
  /// executor worker is parked, and the returned future is already ready —
  /// stamped at this request's pipelined completion vtime, which waiters
  /// merge (`Future::wait`). Issue N calls back-to-back and they share the
  /// wire: total vtime is ~max-of-pipeline, not sum-of-round-trips.
  core::Future<Bytes> call_async(const std::string& op, BytesView request);

  RpcServer& server() { return *server_; }

  /// The calling process's pipelined channel to this server.
  net::PipelinedChannel& channel() const;

 private:
  /// One wire exchange on the current process's channel; fills `sample`
  /// with the request's lane timings and returns the response. Does not
  /// touch the caller's clock.
  Bytes transact(const std::string& op, BytesView request,
                 net::WireSample& sample);

  std::shared_ptr<RpcServer> server_;
};

}  // namespace ps::rpc
