// Mercury/Margo-like RPC: named handlers over a transport profile.
//
// Servers register byte-level handlers; clients call them by name. Each call
// charges the caller's virtual time with request transfer, FIFO service
// queueing on the server, and response transfer — the client-observed RPC
// round trip, parameterized by the transport (Margo / UCX / ZMQ).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "obs/context.hpp"
#include "proc/world.hpp"
#include "rpc/transport.hpp"
#include "sim/resource.hpp"

namespace ps::rpc {

class RpcServer {
 public:
  using Handler = std::function<Bytes(BytesView)>;

  /// Creates a server on `host`, bound at "rpc://<transport>/<host>/<name>".
  static std::shared_ptr<RpcServer> start(proc::World& world,
                                          const std::string& host,
                                          const std::string& name,
                                          TransportProfile transport);

  RpcServer(std::string host, TransportProfile transport);

  void register_handler(const std::string& op, Handler handler);

  /// Invoked by RpcClient: runs the handler. `arrival` is the request's
  /// virtual arrival time; returns (response, virtual completion time).
  /// `ctx` is the caller's trace context carried in the request header: the
  /// server adopts it so its handler span joins the caller's trace.
  std::pair<Bytes, double> handle(const std::string& op, BytesView request,
                                  double arrival,
                                  obs::TraceContext ctx = {});

  const std::string& host() const { return host_; }
  const TransportProfile& transport() const { return transport_; }

  /// Per-request service time for a payload of `bytes`.
  double service_time(std::size_t bytes) const;

 private:
  std::string host_;
  TransportProfile transport_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Handler> handlers_;
  sim::Resource queue_{1};
};

std::string rpc_address(const std::string& transport, const std::string& host,
                        const std::string& name);

class RpcClient {
 public:
  /// Connects to the server at `address` in the current world.
  explicit RpcClient(const std::string& address);

  /// Calls `op`, charging virtual time for the full round trip.
  Bytes call(const std::string& op, BytesView request);

  RpcServer& server() { return *server_; }

 private:
  std::shared_ptr<RpcServer> server_;
};

}  // namespace ps::rpc
