// Elastic distributed in-memory store (paper section 4.1.3).
//
// The Margo/UCX/ZMQ connectors spawn a storage server on each node where
// they are first initialized; the set of per-node servers forms the
// distributed store, expanding as proxies propagate to new nodes. Objects
// stay on the node that produced them; consumers on other nodes fetch them
// through an RPC over the chosen transport.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "rpc/rpc.hpp"

namespace ps::rpc {

class PeerStoreServer {
 public:
  /// Service-directory address of a node's storage server.
  static std::string address(const std::string& transport,
                             const std::string& store_id,
                             const std::string& host);

  /// Returns the storage server for (`store_id`, `host`), spawning and
  /// binding it on first use (the elastic-expansion behaviour).
  static std::shared_ptr<PeerStoreServer> ensure(
      proc::World& world, const std::string& host, const std::string& store_id,
      const TransportProfile& transport);

  PeerStoreServer(proc::World& world, const std::string& host,
                  const std::string& store_id,
                  const TransportProfile& transport);

  // -- same-node fast path ----------------------------------------------------

  void put_local(const std::string& id, BytesView data);
  std::optional<Bytes> get_local(const std::string& id) const;
  bool exists_local(const std::string& id) const;
  void evict_local(const std::string& id);
  std::size_t count() const;

  const std::string& host() const { return host_; }
  RpcServer& rpc() { return *rpc_; }

 private:
  void register_handlers();

  std::string host_;
  std::string store_id_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Bytes> objects_;
  std::shared_ptr<RpcServer> rpc_;
};

/// Node-transparent client: reads local objects directly, remote objects
/// via RPC to the owning node's server.
class PeerStoreClient {
 public:
  /// Initializes in the current process, spawning this node's server if
  /// needed (paper: "when one of these connectors is initialized for the
  /// first time in a process, it spawns a process that acts as the storage
  /// server for that node").
  PeerStoreClient(const std::string& store_id, TransportProfile transport);

  /// Stores on the local node; returns the owning host name.
  std::string put(const std::string& id, BytesView data);
  std::optional<Bytes> get(const std::string& owner_host,
                           const std::string& id);
  bool exists(const std::string& owner_host, const std::string& id);
  void evict(const std::string& owner_host, const std::string& id);

  // Completion-driven twins: remote fetches ride RpcClient::call_async on
  // the owning node's channel, so N outstanding peer ops pipeline and no
  // thread is held while a request is in flight. Local fast paths complete
  // inline at the same cost as the sync ops.
  core::Future<std::optional<Bytes>> get_async(const std::string& owner_host,
                                               const std::string& id);
  core::Future<bool> exists_async(const std::string& owner_host,
                                  const std::string& id);
  core::Future<core::Unit> evict_async(const std::string& owner_host,
                                       const std::string& id);

  const std::string& store_id() const { return store_id_; }
  const TransportProfile& transport() const { return transport_; }

 private:
  std::shared_ptr<PeerStoreServer> remote_server(
      const std::string& owner_host) const;

  /// The cached RPC client for `owner_host`'s server, connecting on first
  /// use. One service-directory resolve per (host, server) for the client's
  /// lifetime instead of one per call.
  RpcClient& remote_client(const std::string& owner_host);

  std::string store_id_;
  TransportProfile transport_;
  std::shared_ptr<PeerStoreServer> local_;
  std::mutex clients_mu_;
  std::unordered_map<std::string, std::unique_ptr<RpcClient>> clients_;
};

}  // namespace ps::rpc
