#include "rpc/transport.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ps::rpc {

double TransportProfile::efficiency_for(net::Congestion c) const {
  const auto it = efficiency.find(c);
  return it == efficiency.end() ? 0.8 : it->second;
}

double TransportProfile::transfer_time(const net::Fabric& fabric,
                                       const std::string& from,
                                       const std::string& to,
                                       std::size_t bytes) const {
  const net::Route route = fabric.route(from, to);
  double total = 0.0;
  for (const net::Hop& hop : route.hops) {
    net::LinkProfile p = hop.profile;
    p.bandwidth_Bps =
        std::max(1.0, p.bandwidth_Bps * efficiency_for(p.congestion));
    p.per_msg_overhead_s += sw_overhead_s;
    total += p.transfer_time(bytes);
  }
  return total;
}

TransportProfile margo_transport() {
  return TransportProfile{
      .name = "margo",
      .sw_overhead_s = 4e-6,
      .efficiency = {{net::Congestion::kRdma, 0.92},
                     {net::Congestion::kLan, 0.85}}};
}

TransportProfile ucx_transport() {
  return TransportProfile{
      .name = "ucx",
      .sw_overhead_s = 6e-6,
      // Matches Margo on RDMA fabrics; measurably worse on commodity LAN
      // (the Chameleon 40GbE observation in the paper).
      .efficiency = {{net::Congestion::kRdma, 0.92},
                     {net::Congestion::kLan, 0.35}}};
}

TransportProfile zmq_transport() {
  return TransportProfile{
      .name = "zmq",
      .sw_overhead_s = 45e-6,
      .efficiency = {{net::Congestion::kRdma, 0.55},
                     {net::Congestion::kLan, 0.55}}};
}

TransportProfile transport_by_name(const std::string& name) {
  if (name == "margo") return margo_transport();
  if (name == "ucx") return ucx_transport();
  if (name == "zmq") return zmq_transport();
  throw NotRegisteredError("unknown transport '" + name + "'");
}

}  // namespace ps::rpc
