#include "rpc/peer_store.hpp"

#include "common/error.hpp"
#include "proc/process.hpp"
#include "serde/serde.hpp"
#include "sim/vtime.hpp"

namespace ps::rpc {

namespace {
/// Serializes ensure() so concurrent first-touch from several threads
/// spawns exactly one server per (store, host).
std::mutex g_ensure_mu;
}  // namespace

std::string PeerStoreServer::address(const std::string& transport,
                                     const std::string& store_id,
                                     const std::string& host) {
  return "peerstore://" + transport + "/" + store_id + "/" + host;
}

std::shared_ptr<PeerStoreServer> PeerStoreServer::ensure(
    proc::World& world, const std::string& host, const std::string& store_id,
    const TransportProfile& transport) {
  std::lock_guard lock(g_ensure_mu);
  const std::string addr = address(transport.name, store_id, host);
  if (auto existing = world.services().try_resolve<PeerStoreServer>(addr)) {
    return existing;
  }
  auto server =
      std::make_shared<PeerStoreServer>(world, host, store_id, transport);
  world.services().bind<PeerStoreServer>(addr, server);
  return server;
}

PeerStoreServer::PeerStoreServer(proc::World& world, const std::string& host,
                                 const std::string& store_id,
                                 const TransportProfile& transport)
    : host_(host),
      store_id_(store_id),
      rpc_(RpcServer::start(world, host, "peerstore-" + store_id,
                            transport)) {
  register_handlers();
}

void PeerStoreServer::register_handlers() {
  rpc_->register_handler("get", [this](BytesView request) {
    const auto id = serde::from_bytes<std::string>(request);
    return serde::to_bytes(get_local(id));
  });
  rpc_->register_handler("exists", [this](BytesView request) {
    const auto id = serde::from_bytes<std::string>(request);
    return serde::to_bytes(exists_local(id));
  });
  rpc_->register_handler("evict", [this](BytesView request) {
    const auto id = serde::from_bytes<std::string>(request);
    evict_local(id);
    return serde::to_bytes(true);
  });
}

void PeerStoreServer::put_local(const std::string& id, BytesView data) {
  std::lock_guard lock(mu_);
  objects_[id] = Bytes(data);
}

std::optional<Bytes> PeerStoreServer::get_local(const std::string& id) const {
  std::lock_guard lock(mu_);
  const auto it = objects_.find(id);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

bool PeerStoreServer::exists_local(const std::string& id) const {
  std::lock_guard lock(mu_);
  return objects_.contains(id);
}

void PeerStoreServer::evict_local(const std::string& id) {
  std::lock_guard lock(mu_);
  objects_.erase(id);
}

std::size_t PeerStoreServer::count() const {
  std::lock_guard lock(mu_);
  return objects_.size();
}

PeerStoreClient::PeerStoreClient(const std::string& store_id,
                                 TransportProfile transport)
    : store_id_(store_id), transport_(std::move(transport)) {
  proc::Process& process = proc::current_process();
  local_ = PeerStoreServer::ensure(process.world(), process.host(), store_id_,
                                   transport_);
}

std::shared_ptr<PeerStoreServer> PeerStoreClient::remote_server(
    const std::string& owner_host) const {
  proc::World& world = proc::current_process().world();
  auto server = world.services().try_resolve<PeerStoreServer>(
      PeerStoreServer::address(transport_.name, store_id_, owner_host));
  if (!server) {
    throw ConnectorError("PeerStore: no storage server for store '" +
                         store_id_ + "' on host '" + owner_host + "'");
  }
  return server;
}

RpcClient& PeerStoreClient::remote_client(const std::string& owner_host) {
  remote_server(owner_host);  // fail fast with a specific error if absent
  std::lock_guard lock(clients_mu_);
  auto it = clients_.find(owner_host);
  if (it == clients_.end()) {
    it = clients_
             .emplace(owner_host,
                      std::make_unique<RpcClient>(rpc_address(
                          transport_.name, owner_host,
                          "peerstore-" + store_id_)))
             .first;
  }
  return *it->second;
}

std::string PeerStoreClient::put(const std::string& id, BytesView data) {
  // Local in-memory store: pay a memory copy plus transport registration.
  sim::vadvance(transport_.sw_overhead_s +
                static_cast<double>(data.size()) / 10e9);
  local_->put_local(id, data);
  return local_->host();
}

std::optional<Bytes> PeerStoreClient::get(const std::string& owner_host,
                                          const std::string& id) {
  if (owner_host == local_->host()) {
    sim::vadvance(transport_.sw_overhead_s);
    const auto value = local_->get_local(id);
    if (value) {
      sim::vadvance(static_cast<double>(value->size()) / 10e9);
    }
    return value;
  }
  const Bytes response =
      remote_client(owner_host).call("get", serde::to_bytes(id));
  return serde::from_bytes<std::optional<Bytes>>(response);
}

bool PeerStoreClient::exists(const std::string& owner_host,
                             const std::string& id) {
  if (owner_host == local_->host()) return local_->exists_local(id);
  return serde::from_bytes<bool>(
      remote_client(owner_host).call("exists", serde::to_bytes(id)));
}

void PeerStoreClient::evict(const std::string& owner_host,
                            const std::string& id) {
  if (owner_host == local_->host()) {
    local_->evict_local(id);
    return;
  }
  remote_client(owner_host).call("evict", serde::to_bytes(id));
}

core::Future<std::optional<Bytes>> PeerStoreClient::get_async(
    const std::string& owner_host, const std::string& id) {
  if (owner_host == local_->host()) {
    // Same cost as the sync local fast path, completed inline.
    sim::vadvance(transport_.sw_overhead_s);
    std::optional<Bytes> value = local_->get_local(id);
    if (value) {
      sim::vadvance(static_cast<double>(value->size()) / 10e9);
    }
    return core::make_ready_future(std::move(value));
  }
  return remote_client(owner_host)
      .call_async("get", serde::to_bytes(id))
      .then([](const Bytes& response) {
        return serde::from_bytes<std::optional<Bytes>>(response);
      });
}

core::Future<bool> PeerStoreClient::exists_async(const std::string& owner_host,
                                                 const std::string& id) {
  if (owner_host == local_->host()) {
    return core::make_ready_future(local_->exists_local(id));
  }
  return remote_client(owner_host)
      .call_async("exists", serde::to_bytes(id))
      .then([](const Bytes& response) {
        return serde::from_bytes<bool>(response);
      });
}

core::Future<core::Unit> PeerStoreClient::evict_async(
    const std::string& owner_host, const std::string& id) {
  if (owner_host == local_->host()) {
    local_->evict_local(id);
    return core::make_ready_future(core::Unit{});
  }
  return remote_client(owner_host)
      .call_async("evict", serde::to_bytes(id))
      .then([](const Bytes&) { return core::Unit{}; });
}

}  // namespace ps::rpc
