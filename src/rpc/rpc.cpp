#include "rpc/rpc.hpp"

#include "common/error.hpp"
#include "proc/process.hpp"
#include "sim/vtime.hpp"

namespace ps::rpc {

std::string rpc_address(const std::string& transport, const std::string& host,
                        const std::string& name) {
  return "rpc://" + transport + "/" + host + "/" + name;
}

std::shared_ptr<RpcServer> RpcServer::start(proc::World& world,
                                            const std::string& host,
                                            const std::string& name,
                                            TransportProfile transport) {
  auto server = std::make_shared<RpcServer>(host, transport);
  world.services().bind<RpcServer>(rpc_address(transport.name, host, name),
                                   server);
  return server;
}

RpcServer::RpcServer(std::string host, TransportProfile transport)
    : host_(std::move(host)), transport_(std::move(transport)) {}

void RpcServer::register_handler(const std::string& op, Handler handler) {
  std::lock_guard lock(mu_);
  handlers_[op] = std::move(handler);
}

double RpcServer::service_time(std::size_t bytes) const {
  // Handler dispatch plus a memory pass over the payload.
  return transport_.sw_overhead_s + static_cast<double>(bytes) / 10e9;
}

std::pair<Bytes, double> RpcServer::handle(const std::string& op,
                                           BytesView request, double arrival,
                                           obs::TraceContext ctx) {
  Handler handler;
  {
    std::lock_guard lock(mu_);
    const auto it = handlers_.find(op);
    if (it == handlers_.end()) {
      throw ProtocolError("RpcServer: no handler for op '" + op + "'");
    }
    handler = it->second;
  }
  obs::ContextScope adopt(ctx);
  obs::SpanScope span("rpc.handle", op, "wire-transfer");
  Bytes response = handler(request);
  const double done = queue_.schedule(
      arrival, service_time(request.size() + response.size()));
  return {std::move(response), done};
}

RpcClient::RpcClient(const std::string& address)
    : server_(proc::current_process().world().services().resolve<RpcServer>(
          address)) {}

net::PipelinedChannel& RpcClient::channel() const {
  return proc::current_process()
      .local<net::ChannelRegistry>()
      .channel_for(server_);
}

Bytes RpcClient::transact(const std::string& op, BytesView request,
                          net::WireSample& sample) {
  proc::World& world = proc::current_process().world();
  const std::string& here = proc::current_process().host();
  const std::string& there = server_->host();
  const TransportProfile& transport = server_->transport();
  const obs::TraceContext ctx = obs::current_context();

  Bytes response;
  const double request_cost =
      transport.transfer_time(world.fabric(), here, there, request.size());
  sample = channel().transact(
      sim::vnow(), request_cost, [&](double arrival) {
        auto [resp, done] = server_->handle(op, request, arrival, ctx);
        const double response_cost = transport.transfer_time(
            world.fabric(), there, here, resp.size());
        response = std::move(resp);
        return std::pair<double, double>{done, response_cost};
      });
  return response;
}

Bytes RpcClient::call(const std::string& op, BytesView request) {
  obs::SpanScope span("rpc.call", op, "wire-transfer");
  net::WireSample sample;
  Bytes response = transact(op, request, sample);
  sim::vset(sample.completion);
  return response;
}

core::Future<Bytes> RpcClient::call_async(const std::string& op,
                                          BytesView request) {
  obs::SpanScope span("rpc.call_async", op, "wire-transfer");
  net::WireSample sample;
  Bytes response = transact(op, request, sample);
  core::Promise<Bytes> promise;
  core::complete_at(promise, std::move(response), sample.completion);
  return promise.future();
}

}  // namespace ps::rpc
