#include "relay/relay.hpp"

#include "common/error.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "proc/process.hpp"
#include "sim/vtime.hpp"

namespace ps::relay {

std::shared_ptr<RelayServer> RelayServer::start(proc::World& world,
                                                const std::string& host,
                                                const std::string& name) {
  auto server = std::make_shared<RelayServer>(world, host);
  world.services().bind<RelayServer>("relay://" + host + "/" + name, server);
  return server;
}

RelayServer::RelayServer(proc::World& world, std::string host)
    : world_(world), host_(std::move(host)) {
  world_.fabric().host(host_);  // validate
}

Uuid RelayServer::register_endpoint(const Uuid& preferred,
                                    const std::string& endpoint_host,
                                    Handler handler) {
  world_.fabric().host(endpoint_host);  // validate
  const Uuid id = preferred.is_nil() ? Uuid::random() : preferred;
  std::lock_guard lock(mu_);
  endpoints_[id] = Registration{endpoint_host, std::move(handler)};
  return id;
}

void RelayServer::unregister_endpoint(const Uuid& id) {
  std::lock_guard lock(mu_);
  endpoints_.erase(id);
}

void RelayServer::forward(RelayMessage message) {
  Registration sender;
  Registration target;
  {
    std::lock_guard lock(mu_);
    const auto from_it = endpoints_.find(message.from);
    const auto to_it = endpoints_.find(message.to);
    if (from_it == endpoints_.end()) {
      throw ProtocolError("relay: sender " + message.from.str() +
                          " not registered");
    }
    if (to_it == endpoints_.end()) {
      throw ProtocolError("relay: target " + message.to.str() +
                          " not registered");
    }
    sender = from_it->second;
    target = to_it->second;
    ++forwarded_;
  }
  if (obs::enabled()) {
    obs::MetricsRegistry::ambient().counter("relay.forwarded").inc();
  }
  // The relay is its own actor: record the forward under the relay host's
  // locality, not the calling endpoint's process.
  obs::SpanScope span("relay.forward", message.kind, "wire-transfer");
  std::string site;
  try {
    site = world_.fabric().host(host_).site;
  } catch (...) {
    site = "?";
  }
  span.set_locality({"relay", host_, site});
  // Two signaling legs: sender -> relay, relay -> target. Messages are
  // O(KB) session descriptions.
  const std::size_t bytes = message.payload.size() + 128;
  sim::vadvance(world_.fabric().transfer_time(sender.host, host_, bytes));
  sim::vadvance(world_.fabric().transfer_time(host_, target.host, bytes));
  message.stamp = sim::vnow();
  message.trace = obs::current_context();
  target.handler(message);
}

const std::string& RelayServer::endpoint_host(const Uuid& id) const {
  std::lock_guard lock(mu_);
  const auto it = endpoints_.find(id);
  if (it == endpoints_.end()) {
    throw ProtocolError("relay: endpoint " + id.str() + " not registered");
  }
  return it->second.host;
}

bool RelayServer::is_registered(const Uuid& id) const {
  std::lock_guard lock(mu_);
  return endpoints_.contains(id);
}

std::size_t RelayServer::endpoint_count() const {
  std::lock_guard lock(mu_);
  return endpoints_.size();
}

std::uint64_t RelayServer::forwarded_count() const {
  std::lock_guard lock(mu_);
  return forwarded_;
}

}  // namespace ps::relay
