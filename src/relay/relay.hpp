// Relay (signaling) server for PS-endpoint peering (paper section 4.2.2,
// Figure 4).
//
// PS-endpoints register with a publicly accessible relay server over a
// WebSocket-like channel; the relay assigns UUIDs and forwards the small
// (O(KB)) session-description and ICE-candidate messages that bootstrap a
// peer-to-peer connection. The relay never carries object data — its
// hosting requirement is minimal, exactly as in the paper.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/uuid.hpp"
#include "obs/context.hpp"
#include "proc/world.hpp"

namespace ps::relay {

/// A signaling message forwarded between peers through the relay.
struct RelayMessage {
  Uuid from;
  Uuid to;
  /// "offer" | "answer" | "ice" (SDP exchange then ICE candidates).
  std::string kind;
  /// Message body (session description / candidate list).
  std::string payload;
  /// Virtual arrival time at the receiving endpoint.
  double stamp = 0.0;
  /// Trace context stamped by the relay on forward: the receiving
  /// endpoint's handler adopts it so its spans stitch into the sender's
  /// trace through the relay hop.
  obs::TraceContext trace{};
};

class RelayServer {
 public:
  using Handler = std::function<void(const RelayMessage&)>;

  /// Starts a relay bound at "relay://<host>/<name>" in `world`.
  static std::shared_ptr<RelayServer> start(proc::World& world,
                                            const std::string& host,
                                            const std::string& name);

  RelayServer(proc::World& world, std::string host);

  /// Registers an endpoint living on fabric host `endpoint_host`; the relay
  /// assigns a UUID when `preferred` is nil (paper: "the relay server
  /// assigns a unique UUID if not already assigned"). `handler` receives
  /// forwarded messages (the endpoint's WebSocket listener task).
  Uuid register_endpoint(const Uuid& preferred,
                         const std::string& endpoint_host, Handler handler);

  void unregister_endpoint(const Uuid& id);

  /// Forwards `message` to its target, charging the sender's virtual time
  /// with the two legs (sender -> relay -> target). Throws ProtocolError if
  /// the target is not registered.
  void forward(RelayMessage message);

  /// Fabric host of a registered endpoint.
  const std::string& endpoint_host(const Uuid& id) const;

  bool is_registered(const Uuid& id) const;
  std::size_t endpoint_count() const;
  const std::string& host() const { return host_; }

  /// Total signaling messages forwarded (observability).
  std::uint64_t forwarded_count() const;

 private:
  struct Registration {
    std::string host;
    Handler handler;
  };

  proc::World& world_;
  std::string host_;
  mutable std::mutex mu_;
  std::map<Uuid, Registration> endpoints_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace ps::relay
