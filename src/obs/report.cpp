#include "obs/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <variant>

#include "obs/critical.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace ps::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// ------------------------------------------------- minimal JSON reader ----
// Just enough JSON for the artifacts this module itself writes: objects,
// arrays, strings with simple escapes, and numbers.

struct JsonValue {
  std::variant<std::nullptr_t, double, std::string,
               std::map<std::string, JsonValue>, std::vector<JsonValue>>
      v = nullptr;

  bool is_object() const {
    return std::holds_alternative<std::map<std::string, JsonValue>>(v);
  }
  bool is_array() const {
    return std::holds_alternative<std::vector<JsonValue>>(v);
  }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const std::map<std::string, JsonValue>& obj() const {
    return std::get<std::map<std::string, JsonValue>>(v);
  }
  const std::vector<JsonValue>& arr() const {
    return std::get<std::vector<JsonValue>>(v);
  }
  double num() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> value = parse_value();
    skip_ws();
    if (!value || pos_ != text_.size()) {
      if (error != nullptr) {
        *error = error_.empty() ? "trailing content after JSON value"
                                : error_;
      }
      return std::nullopt;
    }
    return value;
  }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
      return false;
    }
    ++pos_;
    return true;
  }

  std::optional<JsonValue> parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return JsonValue{std::move(*s)};
    }
    return parse_number();
  }

  std::optional<std::string> parse_string() {
    if (!expect('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out += text_[pos_++];
    }
    if (!expect('"')) return std::nullopt;
    return out;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a JSON number");
      return std::nullopt;
    }
    try {
      return JsonValue{std::stod(text_.substr(start, pos_ - start))};
    } catch (const std::exception&) {
      fail("unparsable number");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_object() {
    if (!expect('{')) return std::nullopt;
    std::map<std::string, JsonValue> out;
    if (peek() != '}') {
      while (true) {
        auto key = parse_string();
        if (!key || !expect(':')) return std::nullopt;
        auto value = parse_value();
        if (!value) return std::nullopt;
        out[std::move(*key)] = std::move(*value);
        if (peek() != ',') break;
        ++pos_;
      }
    }
    if (!expect('}')) return std::nullopt;
    return JsonValue{std::move(out)};
  }

  std::optional<JsonValue> parse_array() {
    if (!expect('[')) return std::nullopt;
    std::vector<JsonValue> out;
    if (peek() != ']') {
      while (true) {
        auto value = parse_value();
        if (!value) return std::nullopt;
        out.push_back(std::move(*value));
        if (peek() != ',') break;
        ++pos_;
      }
    }
    if (!expect(']')) return std::nullopt;
    return JsonValue{std::move(out)};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool schema_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

double num_or(const std::map<std::string, JsonValue>& obj,
              const std::string& key, double fallback) {
  const auto it = obj.find(key);
  return it != obj.end() && it->second.is_number() ? it->second.num()
                                                   : fallback;
}

std::string str_or(const std::map<std::string, JsonValue>& obj,
                   const std::string& key, const std::string& fallback) {
  const auto it = obj.find(key);
  return it != obj.end() && it->second.is_string() ? it->second.str()
                                                   : fallback;
}

}  // namespace

std::string git_revision(const std::string& start_dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path dir = start_dir.empty() ? fs::current_path(ec) : fs::path(start_dir);
  if (ec) return "unknown";
  for (int depth = 0; depth < 64 && !dir.empty(); ++depth) {
    const fs::path head_path = dir / ".git" / "HEAD";
    if (fs::exists(head_path, ec)) {
      std::ifstream head(head_path);
      std::string line;
      if (!std::getline(head, line)) return "unknown";
      if (line.rfind("ref: ", 0) == 0) {
        std::ifstream ref(dir / ".git" / line.substr(5));
        std::string rev;
        if (std::getline(ref, rev) && !rev.empty()) return rev;
        return "unknown";
      }
      return line.empty() ? "unknown" : line;
    }
    const fs::path parent = dir.parent_path();
    if (parent == dir) break;
    dir = parent;
  }
  return "unknown";
}

BenchArtifact collect_bench_artifact(
    const std::string& bench_name, std::uint64_t seed,
    const std::map<std::string, SeriesMeta>& series_meta,
    std::size_t profile_top_n) {
  BenchArtifact artifact;
  artifact.bench = bench_name;
  artifact.seed = seed;
  artifact.git_rev = git_revision();
  const MetricsRegistry& registry = MetricsRegistry::global();
  // Built lazily on the first series that actually has an exemplar; the
  // flight ring is the fallback when the exemplar's trace already rolled
  // out of the (larger but clearable) TraceRecorder.
  std::optional<CriticalPath> recorded_paths;
  std::optional<CriticalPath> flight_paths;
  for (const auto& [name, meta] : series_meta) {
    const Histogram* h = registry.find_histogram(name);
    if (h == nullptr || h->count() == 0) continue;
    SeriesStats stats;
    stats.count = h->count();
    stats.mean_s = h->mean();
    stats.p50_s = h->p50();
    stats.p99_s = h->p99();
    stats.p999_s = h->p999();
    stats.min_s = h->min();
    stats.max_s = h->max();
    stats.sum_s = h->sum();
    stats.units = meta.units;
    stats.kind = meta.kind;
    const Exemplar exemplar = h->max_exemplar();
    if (exemplar.valid()) {
      if (!recorded_paths) {
        recorded_paths = CriticalPath::from_recorder(TraceRecorder::global());
      }
      // Only a trace *root* explains the whole measured sample; an inner
      // hop's subtree would under-account and fail the 5% sum check.
      std::optional<CriticalPathReport> path = recorded_paths->for_span(
          exemplar.trace_hi, exemplar.trace_lo, exemplar.span_id,
          /*require_root=*/true);
      if (!path) {
        if (!flight_paths) {
          flight_paths =
              CriticalPath::from_spans(FlightRecorder::global().recent());
        }
        path = flight_paths->for_span(exemplar.trace_hi, exemplar.trace_lo,
                                      exemplar.span_id, /*require_root=*/true);
      }
      if (path) {
        SeriesAttribution attribution;
        attribution.trace_id = path->trace_id;
        attribution.span_id = exemplar.span_id;
        attribution.sample_s = exemplar.value_s;
        attribution.attributed_s = path->attributed_s;
        attribution.segments = std::move(path->segments);
        stats.attribution = std::move(attribution);
      }
    }
    artifact.series.emplace(name, stats);
  }
  const SloReport slo_report = SloRegistry::global().evaluate(registry);
  for (const SloVerdict& v : slo_report.verdicts) {
    SloResult result;
    result.name = v.objective.name;
    result.metric = v.objective.metric;
    result.percentile = v.objective.percentile;
    result.threshold_s = v.objective.threshold_s;
    result.min_samples = v.objective.min_samples;
    result.status = to_string(v.status);
    result.observed_s = v.observed_s;
    result.samples = v.samples;
    artifact.slos.push_back(std::move(result));
  }
  artifact.profile_top =
      Profile::from_recorder(TraceRecorder::global()).top_nodes(profile_top_n);
  return artifact;
}

std::string bench_artifact_json(const BenchArtifact& artifact) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(artifact.schema_version);
  out += ",\"bench\":\"";
  json_escape_into(out, artifact.bench);
  out += "\",\"seed\":" + std::to_string(artifact.seed);
  out += ",\"git_rev\":\"";
  json_escape_into(out, artifact.git_rev);
  out += "\",\"series\":{";
  bool first = true;
  for (const auto& [name, s] : artifact.series) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"";
    json_escape_into(out, name);
    out += "\":{\"count\":" + std::to_string(s.count);
    out += ",\"mean_s\":" + fmt_double(s.mean_s);
    out += ",\"p50_s\":" + fmt_double(s.p50_s);
    out += ",\"p99_s\":" + fmt_double(s.p99_s);
    out += ",\"p999_s\":" + fmt_double(s.p999_s);
    out += ",\"min_s\":" + fmt_double(s.min_s);
    out += ",\"max_s\":" + fmt_double(s.max_s);
    out += ",\"sum_s\":" + fmt_double(s.sum_s);
    out += ",\"units\":\"";
    json_escape_into(out, s.units);
    out += "\",\"kind\":\"";
    json_escape_into(out, s.kind);
    out += "\"";
    if (s.attribution) {
      const SeriesAttribution& a = *s.attribution;
      out += ",\"attribution\":{\"trace_id\":\"";
      json_escape_into(out, a.trace_id);
      out += "\",\"span_id\":" + std::to_string(a.span_id);
      out += ",\"sample_s\":" + fmt_double(a.sample_s);
      out += ",\"attributed_s\":" + fmt_double(a.attributed_s);
      out += ",\"segments\":[";
      bool first_seg = true;
      for (const SegmentShare& seg : a.segments) {
        if (!first_seg) out += ",";
        first_seg = false;
        out += "{\"segment\":\"";
        json_escape_into(out, seg.segment);
        out += "\",\"vtime_s\":" + fmt_double(seg.vtime_s);
        out += ",\"spans\":" + std::to_string(seg.spans) + "}";
      }
      out += "]}";
    }
    out += "}";
  }
  out += "\n },\"slos\":[";
  first = true;
  for (const SloResult& slo : artifact.slos) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\":\"";
    json_escape_into(out, slo.name);
    out += "\",\"metric\":\"";
    json_escape_into(out, slo.metric);
    out += "\",\"percentile\":\"";
    json_escape_into(out, slo.percentile);
    out += "\",\"threshold_s\":" + fmt_double(slo.threshold_s);
    out += ",\"min_samples\":" + std::to_string(slo.min_samples);
    out += ",\"status\":\"";
    json_escape_into(out, slo.status);
    out += "\",\"observed_s\":" + fmt_double(slo.observed_s);
    out += ",\"samples\":" + std::to_string(slo.samples);
    out += "}";
  }
  out += "\n ],\"profile_top\":[";
  first = true;
  for (const ProfileEntry& entry : artifact.profile_top) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"path\":\"";
    json_escape_into(out, entry.path);
    out += "\",\"count\":" + std::to_string(entry.count);
    out += ",\"total_vtime_s\":" + fmt_double(entry.total_vtime_s);
    out += ",\"self_vtime_s\":" + fmt_double(entry.self_vtime_s);
    out += ",\"total_wall_s\":" + fmt_double(entry.total_wall_s);
    out += ",\"self_wall_s\":" + fmt_double(entry.self_wall_s);
    out += "}";
  }
  out += "\n ]}\n";
  return out;
}

bool write_bench_artifact(const std::string& path,
                          const BenchArtifact& artifact) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << bench_artifact_json(artifact);
  return static_cast<bool>(file);
}

std::optional<BenchArtifact> parse_bench_artifact(const std::string& text,
                                                  std::string* error) {
  std::optional<JsonValue> root = JsonReader(text).parse(error);
  if (!root) return std::nullopt;
  if (!root->is_object()) {
    schema_error(error, "artifact is not a JSON object");
    return std::nullopt;
  }
  const auto& obj = root->obj();
  const auto version = obj.find("schema_version");
  if (version == obj.end() || !version->second.is_number()) {
    schema_error(error, "missing schema_version");
    return std::nullopt;
  }
  BenchArtifact artifact;
  artifact.schema_version = static_cast<int>(version->second.num());
  // v1 artifacts (no p999 column, no SLO section) are still readable so a
  // schema bump never orphans blessed baselines mid-transition; anything
  // newer than this build is rejected.
  if (artifact.schema_version < 1 ||
      artifact.schema_version > kBenchSchemaVersion) {
    schema_error(error, "unsupported schema_version " +
                            std::to_string(artifact.schema_version));
    return std::nullopt;
  }
  const auto bench = obj.find("bench");
  if (bench == obj.end() || !bench->second.is_string() ||
      bench->second.str().empty()) {
    schema_error(error, "missing bench name");
    return std::nullopt;
  }
  artifact.bench = bench->second.str();
  const auto seed = obj.find("seed");
  if (seed == obj.end() || !seed->second.is_number()) {
    schema_error(error, "missing seed");
    return std::nullopt;
  }
  artifact.seed = static_cast<std::uint64_t>(seed->second.num());
  artifact.git_rev = str_or(obj, "git_rev", "unknown");

  const auto series = obj.find("series");
  if (series == obj.end() || !series->second.is_object()) {
    schema_error(error, "missing series object");
    return std::nullopt;
  }
  for (const auto& [name, value] : series->second.obj()) {
    if (!value.is_object()) {
      schema_error(error, "series '" + name + "' is not an object");
      return std::nullopt;
    }
    const auto& s = value.obj();
    const auto count = s.find("count");
    const auto mean = s.find("mean_s");
    if (count == s.end() || !count->second.is_number() || mean == s.end() ||
        !mean->second.is_number()) {
      schema_error(error, "series '" + name + "' missing count/mean_s");
      return std::nullopt;
    }
    SeriesStats stats;
    stats.count = static_cast<std::uint64_t>(count->second.num());
    stats.mean_s = mean->second.num();
    stats.p50_s = num_or(s, "p50_s", stats.mean_s);
    stats.p99_s = num_or(s, "p99_s", stats.mean_s);
    // v1 artifacts have no p999 column; the p99 value keeps vtime diffs
    // against them meaningful without inventing a tail.
    stats.p999_s = num_or(s, "p999_s", stats.p99_s);
    stats.min_s = num_or(s, "min_s", stats.mean_s);
    stats.max_s = num_or(s, "max_s", stats.mean_s);
    stats.sum_s = num_or(s, "sum_s", 0.0);
    stats.units = str_or(s, "units", "s");
    stats.kind = str_or(s, "kind", "vtime");
    if (stats.kind != "vtime" && stats.kind != "wall") {
      schema_error(error, "series '" + name + "' has unknown kind '" +
                              stats.kind + "'");
      return std::nullopt;
    }
    // Optional (v3) attribution: validated when present, never required —
    // v1/v2 artifacts and exemplar-free v3 series simply lack it.
    const auto attribution = s.find("attribution");
    if (attribution != s.end()) {
      if (!attribution->second.is_object()) {
        schema_error(error,
                     "series '" + name + "' attribution is not an object");
        return std::nullopt;
      }
      const auto& a = attribution->second.obj();
      SeriesAttribution attr;
      attr.trace_id = str_or(a, "trace_id", "");
      attr.span_id = static_cast<std::uint64_t>(num_or(a, "span_id", 0.0));
      attr.sample_s = num_or(a, "sample_s", 0.0);
      attr.attributed_s = num_or(a, "attributed_s", 0.0);
      const auto segments = a.find("segments");
      if (attr.trace_id.size() != 32 || segments == a.end() ||
          !segments->second.is_array() || segments->second.arr().empty()) {
        schema_error(error, "series '" + name +
                                "' attribution needs a 32-hex trace_id and "
                                "a non-empty segments array");
        return std::nullopt;
      }
      for (const JsonValue& value : segments->second.arr()) {
        if (!value.is_object()) {
          schema_error(error,
                       "series '" + name + "' has a non-object segment");
          return std::nullopt;
        }
        const auto& seg = value.obj();
        SegmentShare share;
        share.segment = str_or(seg, "segment", "");
        if (share.segment.empty()) {
          schema_error(error,
                       "series '" + name + "' has a segment without a name");
          return std::nullopt;
        }
        share.vtime_s = num_or(seg, "vtime_s", 0.0);
        share.spans = static_cast<std::uint64_t>(num_or(seg, "spans", 0.0));
        attr.segments.push_back(std::move(share));
      }
      stats.attribution = std::move(attr);
    }
    artifact.series.emplace(name, stats);
  }

  const auto slos = obj.find("slos");
  if (artifact.schema_version >= 2 &&
      (slos == obj.end() || !slos->second.is_array())) {
    schema_error(error, "missing slos array");
    return std::nullopt;
  }
  if (slos != obj.end() && slos->second.is_array()) {
    for (const JsonValue& value : slos->second.arr()) {
      if (!value.is_object()) {
        schema_error(error, "slos entry is not an object");
        return std::nullopt;
      }
      const auto& s = value.obj();
      SloResult result;
      result.name = str_or(s, "name", "");
      result.metric = str_or(s, "metric", "");
      result.percentile = str_or(s, "percentile", "");
      result.status = str_or(s, "status", "");
      if (result.name.empty() || result.metric.empty()) {
        schema_error(error, "slos entry missing name/metric");
        return std::nullopt;
      }
      if (result.status != "pass" && result.status != "breach" &&
          result.status != "insufficient_data") {
        schema_error(error, "slo '" + result.name + "' has unknown status '" +
                                result.status + "'");
        return std::nullopt;
      }
      result.threshold_s = num_or(s, "threshold_s", 0.0);
      result.min_samples =
          static_cast<std::uint64_t>(num_or(s, "min_samples", 1.0));
      result.observed_s = num_or(s, "observed_s", 0.0);
      result.samples = static_cast<std::uint64_t>(num_or(s, "samples", 0.0));
      artifact.slos.push_back(std::move(result));
    }
  }

  const auto profile = obj.find("profile_top");
  if (profile == obj.end() || !profile->second.is_array()) {
    schema_error(error, "missing profile_top array");
    return std::nullopt;
  }
  for (const JsonValue& value : profile->second.arr()) {
    if (!value.is_object()) {
      schema_error(error, "profile_top entry is not an object");
      return std::nullopt;
    }
    const auto& p = value.obj();
    ProfileEntry entry;
    entry.path = str_or(p, "path", "");
    if (entry.path.empty()) {
      schema_error(error, "profile_top entry missing path");
      return std::nullopt;
    }
    entry.count = static_cast<std::uint64_t>(num_or(p, "count", 0.0));
    entry.total_vtime_s = num_or(p, "total_vtime_s", 0.0);
    entry.self_vtime_s = num_or(p, "self_vtime_s", 0.0);
    entry.total_wall_s = num_or(p, "total_wall_s", 0.0);
    entry.self_wall_s = num_or(p, "self_wall_s", 0.0);
    artifact.profile_top.push_back(std::move(entry));
  }
  return artifact;
}

std::optional<BenchArtifact> read_bench_artifact(const std::string& path,
                                                 std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (error != nullptr) *error = "cannot read '" + path + "'";
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return parse_bench_artifact(buffer.str(), error);
}

namespace {

/// |a - b| within `rel` of max(|a|, |b|), treating tiny values as equal.
bool close(double a, double b, double rel) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= rel * std::max(scale, 1e-12);
}

}  // namespace

DiffResult diff_bench_artifacts(const BenchArtifact& baseline,
                                const BenchArtifact& candidate,
                                const DiffOptions& options) {
  DiffResult result;
  std::size_t failing = 0;
  for (const auto& [name, base] : baseline.series) {
    SeriesDelta delta;
    delta.name = name;
    delta.kind = base.kind;
    delta.base_count = base.count;
    delta.base_mean_s = base.mean_s;

    const auto it = candidate.series.find(name);
    if (it == candidate.series.end()) {
      delta.verdict = options.fail_on_missing ? "missing" : "ok";
      if (delta.verdict == "missing") ++failing;
      result.deltas.push_back(std::move(delta));
      continue;
    }
    const SeriesStats& cand = it->second;
    delta.cand_count = cand.count;
    delta.cand_mean_s = cand.mean_s;
    delta.rel_delta = base.mean_s == 0.0
                          ? 0.0
                          : (cand.mean_s - base.mean_s) / base.mean_s;

    if (base.kind == "vtime") {
      // Deterministic series: any difference — count or statistics — is
      // drift, faster or slower.
      const bool same =
          base.count == cand.count &&
          close(base.mean_s, cand.mean_s, options.vtime_rel_tol) &&
          close(base.p50_s, cand.p50_s, options.vtime_rel_tol) &&
          close(base.p99_s, cand.p99_s, options.vtime_rel_tol) &&
          close(base.p999_s, cand.p999_s, options.vtime_rel_tol) &&
          close(base.max_s, cand.max_s, options.vtime_rel_tol);
      delta.verdict = same ? "ok" : "drift";
    } else {
      // Wall clock: only a mean beyond the noise tolerance fails, and only
      // in the slow direction.
      const bool regressed =
          cand.mean_s > base.mean_s * (1.0 + options.wall_rel_tol);
      delta.verdict = regressed ? "regression" : "ok";
    }
    if (delta.verdict != "ok") ++failing;
    result.deltas.push_back(std::move(delta));
  }
  for (const auto& [name, cand] : candidate.series) {
    if (baseline.series.contains(name)) continue;
    SeriesDelta delta;
    delta.name = name;
    delta.kind = cand.kind;
    delta.cand_count = cand.count;
    delta.cand_mean_s = cand.mean_s;
    delta.verdict = "new";
    result.deltas.push_back(std::move(delta));
  }

  // The SLO gate: a candidate artifact carrying any breached objective
  // fails the diff even when every series matches its baseline — the
  // objective is a promise about absolute latency, not relative drift.
  for (const SloResult& slo : candidate.slos) {
    if (slo.status == "breach") result.slo_breaches.push_back(slo);
  }

  result.failed = failing > 0 || !result.slo_breaches.empty();
  char summary[160];
  if (!result.failed) {
    std::snprintf(summary, sizeof(summary),
                  "all %zu baseline series match, %zu SLO breaches",
                  baseline.series.size(), result.slo_breaches.size());
  } else if (failing == 0) {
    std::snprintf(summary, sizeof(summary),
                  "series match but %zu SLO objective%s breached",
                  result.slo_breaches.size(),
                  result.slo_breaches.size() == 1 ? " is" : "s are");
  } else {
    std::snprintf(summary, sizeof(summary),
                  "%zu of %zu baseline series drifted or regressed, "
                  "%zu SLO breaches",
                  failing, baseline.series.size(),
                  result.slo_breaches.size());
  }
  result.summary = summary;
  return result;
}

}  // namespace ps::obs
