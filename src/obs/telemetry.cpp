#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/stats.hpp"
#include "obs/export.hpp"

namespace ps::obs {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Prometheus metric name, mirroring the rule in obs/export.cpp.
std::string prom_name(const std::string& name) {
  std::string out = "ps_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::uint64_t to_ns(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

/// cur - prev clamped at zero; counts the clamp.
std::uint64_t clamped_sub(std::uint64_t cur, std::uint64_t prev,
                          std::uint64_t* clamped) {
  if (cur >= prev) return cur - prev;
  if (clamped != nullptr) ++*clamped;
  return 0;
}

HistogramSnapshot histogram_snapshot_delta(const HistogramSnapshot& prev,
                                           const HistogramSnapshot& cur,
                                           std::uint64_t* clamped) {
  HistogramSnapshot delta;
  delta.count = clamped_sub(cur.count, prev.count, clamped);
  delta.sum_ns = clamped_sub(cur.sum_ns, prev.sum_ns, clamped);
  delta.buckets.resize(cur.buckets.size(), 0);
  for (std::size_t i = 0; i < cur.buckets.size(); ++i) {
    const std::uint64_t before = i < prev.buckets.size() ? prev.buckets[i] : 0;
    delta.buckets[i] = clamped_sub(cur.buckets[i], before, clamped);
  }
  // The window's raw samples are the slice of the shared reservoir between
  // the two cumulative counts — observation order, so concatenating window
  // slices rebuilds the whole-run prefix exactly.
  if (delta.count > 0 && prev.count < Histogram::kReservoir &&
      cur.count > prev.count) {
    const std::size_t lo = static_cast<std::size_t>(prev.count);
    const std::size_t hi = static_cast<std::size_t>(std::min<std::uint64_t>(
        {cur.count, Histogram::kReservoir, cur.reservoir.size()}));
    if (hi > lo) {
      delta.reservoir.assign(cur.reservoir.begin() + lo,
                             cur.reservoir.begin() + hi);
    }
  }
  if (delta.reservoir.size() == delta.count && !delta.reservoir.empty()) {
    // The slice covers the whole window: exact min/max. to_ns matches the
    // rounding observe() applied, so merged windows recompose the
    // cumulative min/max bit for bit.
    delta.min_ns = UINT64_MAX;
    delta.max_ns = 0;
    for (const double s : delta.reservoir) {
      const std::uint64_t ns = to_ns(s);
      delta.min_ns = std::min(delta.min_ns, ns);
      delta.max_ns = std::max(delta.max_ns, ns);
    }
  } else if (delta.count > 0) {
    // Window past the reservoir: fall back to the cumulative extremes
    // (conservative, and still recomposes the run's min/max under merge).
    delta.min_ns = cur.min_ns;
    delta.max_ns = cur.max_ns;
  }
  // Exemplars are cumulative witnesses (max-wins) — carry the current best.
  delta.exemplars = cur.exemplars;
  return delta;
}

}  // namespace

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  if (count <= Histogram::kReservoir && reservoir.size() == count) {
    // Exact path: the whole series is in the reservoir (the same rule
    // Histogram::percentile applies when the series fits).
    Stats stats;
    stats.reserve(reservoir.size());
    for (const double s : reservoir) stats.add(s);
    return stats.percentile(p);
  }
  const auto& bounds = Histogram::bounds();
  const double rank =
      p / 100.0 * static_cast<double>(count - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size() && i < bounds.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) > rank) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double frac = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
    cumulative += in_bucket;
  }
  return max_s();
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum_ns += other.sum_ns;
  if (other.count > 0) {
    min_ns = std::min(min_ns, other.min_ns);
    max_ns = std::max(max_ns, other.max_ns);
  }
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  for (const double s : other.reservoir) {
    if (reservoir.size() >= Histogram::kReservoir) break;
    reservoir.push_back(s);
  }
  for (const ExemplarSnapshot& ex : other.exemplars) {
    bool placed = false;
    for (ExemplarSnapshot& mine : exemplars) {
      if (mine.bucket != ex.bucket) continue;
      if (ex.value_s > mine.value_s) mine = ex;  // max witness wins
      placed = true;
      break;
    }
    if (!placed) exemplars.push_back(ex);
  }
}

RegistrySnapshot MetricsRegistry::take_snapshot(double vtime_s) const {
  RegistrySnapshot snap;
  snap.vtime_s = vtime_s;
  std::lock_guard lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = GaugeSnapshot{
        gauge->value(), static_cast<std::uint8_t>(gauge->agg())};
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.count = hist->count();
    h.sum_ns = hist->sum_ns();
    h.min_ns = hist->min_ns();
    h.max_ns = hist->max_ns();
    h.buckets = hist->bucket_counts();
    h.reservoir = hist->reservoir_values();
    for (const auto& [le, ex] : hist->exemplars()) {
      ExemplarSnapshot e;
      e.bucket = static_cast<std::uint32_t>(Histogram::bucket_index(le));
      e.value_s = ex.value_s;
      e.trace_hi = ex.trace_hi;
      e.trace_lo = ex.trace_lo;
      e.span_id = ex.span_id;
      e.vtime_s = ex.vtime_s;
      h.exemplars.push_back(e);
    }
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

RegistrySnapshot registry_snapshot_delta(const RegistrySnapshot& prev,
                                         const RegistrySnapshot& cur,
                                         std::uint64_t* clamped) {
  RegistrySnapshot delta;
  delta.vtime_s = cur.vtime_s;
  for (const auto& [name, value] : cur.counters) {
    const auto it = prev.counters.find(name);
    const std::uint64_t before = it == prev.counters.end() ? 0 : it->second;
    delta.counters[name] = clamped_sub(value, before, clamped);
  }
  delta.gauges = cur.gauges;  // point-in-time: never differenced
  for (const auto& [name, hist] : cur.histograms) {
    const auto it = prev.histograms.find(name);
    static const HistogramSnapshot kEmpty;
    delta.histograms[name] = histogram_snapshot_delta(
        it == prev.histograms.end() ? kEmpty : it->second, hist, clamped);
  }
  return delta;
}

RegistrySnapshot merge_registry_snapshots(
    const std::vector<RegistrySnapshot>& snapshots) {
  RegistrySnapshot merged;
  std::map<std::string, double> last_write_vtime;
  for (const RegistrySnapshot& snap : snapshots) {
    merged.vtime_s = std::max(merged.vtime_s, snap.vtime_s);
    for (const auto& [name, value] : snap.counters) {
      merged.counters[name] += value;
    }
    for (const auto& [name, gauge] : snap.gauges) {
      auto [it, inserted] = merged.gauges.emplace(name, gauge);
      if (inserted) {
        last_write_vtime[name] = snap.vtime_s;
        continue;
      }
      GaugeSnapshot& mine = it->second;
      mine.agg = gauge.agg;  // hints agree across sites by construction
      switch (gauge.agg_hint()) {
        case GaugeAgg::kSum:
          mine.value += gauge.value;
          break;
        case GaugeAgg::kMax:
          mine.value = std::max(mine.value, gauge.value);
          break;
        case GaugeAgg::kLast:
          if (snap.vtime_s >= last_write_vtime[name]) {
            mine.value = gauge.value;
            last_write_vtime[name] = snap.vtime_s;
          }
          break;
      }
    }
    for (const auto& [name, hist] : snap.histograms) {
      merged.histograms[name].merge(hist);
    }
  }
  return merged;
}

// ------------------------------------------------------------- windows ----

TelemetryWindows::TelemetryWindows(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TelemetryWindows::feed(const RegistrySnapshot& cumulative) {
  if (!seeded_) {
    seeded_ = true;
    cumulative_ = cumulative;
    return;
  }
  std::uint64_t clamped = 0;
  Window window;
  window.start_vtime_s = cumulative_.vtime_s;
  window.end_vtime_s = cumulative.vtime_s;
  window.delta = registry_snapshot_delta(cumulative_, cumulative, &clamped);
  if (clamped > 0) {
    clamped_ += clamped;
    MetricsRegistry::ambient().counter("telemetry.rate.clamped").inc(clamped);
  }
  windows_.push_back(std::move(window));
  cumulative_ = cumulative;
  while (windows_.size() > capacity_) windows_.pop_front();
}

RegistrySnapshot TelemetryWindows::merged_last(double span_s) const {
  RegistrySnapshot merged;
  if (windows_.empty()) return merged;
  const double now = windows_.back().end_vtime_s;
  std::vector<RegistrySnapshot> deltas;
  for (const Window& window : windows_) {
    // Strictly-after with a hair of slack so a window ending exactly at
    // now - span_s (common with fixed-interval scrapes) is included.
    if (window.end_vtime_s > now - span_s - 1e-9) {
      deltas.push_back(window.delta);
    }
  }
  return merge_registry_snapshots(deltas);
}

RegistrySnapshot TelemetryWindows::merged_all() const {
  std::vector<RegistrySnapshot> deltas;
  deltas.reserve(windows_.size());
  for (const Window& window : windows_) deltas.push_back(window.delta);
  return merge_registry_snapshots(deltas);
}

double TelemetryWindows::rate(const std::string& counter,
                              double span_s) const {
  if (windows_.empty()) return 0.0;
  const double now = windows_.back().end_vtime_s;
  double start = now;
  std::uint64_t events = 0;
  for (const Window& window : windows_) {
    if (window.end_vtime_s <= now - span_s - 1e-9) continue;
    start = std::min(start, window.start_vtime_s);
    const auto it = window.delta.counters.find(counter);
    if (it != window.delta.counters.end()) events += it->second;
  }
  const double covered = now - start;
  if (covered <= 0.0) return 0.0;
  return static_cast<double>(events) / covered;
}

// ---------------------------------------------------------- federation ----

namespace {

void append_registry_json(std::string& out, const RegistrySnapshot& snap) {
  out += "{\"vtime_s\":" + fmt_double(snap.vtime_s);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json_escape_into(out, name);
    out += "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json_escape_into(out, name);
    out += "\":{\"value\":" + fmt_double(gauge.value);
    out += ",\"agg\":\"" + to_string(gauge.agg_hint()) + "\"}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json_escape_into(out, name);
    out += "\":{\"count\":" + std::to_string(hist.count);
    out += ",\"sum_s\":" + fmt_double(hist.sum_s());
    out += ",\"mean_s\":" + fmt_double(hist.mean_s());
    out += ",\"min_s\":" + fmt_double(hist.min_s());
    out += ",\"max_s\":" + fmt_double(hist.max_s());
    out += ",\"p50_s\":" + fmt_double(hist.p50());
    out += ",\"p99_s\":" + fmt_double(hist.p99());
    out += ",\"p999_s\":" + fmt_double(hist.p999()) + "}";
  }
  out += "}}";
}

}  // namespace

std::string federated_metrics_json(
    const std::map<std::string, RegistrySnapshot>& by_site) {
  std::string out = "{\"schema_version\":1,\"sites\":{";
  bool first = true;
  std::vector<RegistrySnapshot> all;
  for (const auto& [site, snap] : by_site) {
    if (!first) out += ",";
    first = false;
    out += "\n \"";
    json_escape_into(out, site);
    out += "\":";
    append_registry_json(out, snap);
    all.push_back(snap);
  }
  out += "\n},\"aggregate\":";
  append_registry_json(out, merge_registry_snapshots(all));
  out += "}\n";
  return out;
}

std::string federated_prometheus_text(
    const std::map<std::string, RegistrySnapshot>& by_site) {
  std::string out;

  // Family-major order (one # HELP/# TYPE per family, then one sample per
  // site) keeps the exposition conformant — a family must not repeat.
  std::map<std::string, bool> counter_names;
  std::map<std::string, GaugeAgg> gauge_names;
  std::map<std::string, bool> histogram_names;
  for (const auto& [site, snap] : by_site) {
    for (const auto& [name, value] : snap.counters) counter_names[name];
    for (const auto& [name, gauge] : snap.gauges) {
      gauge_names[name] = gauge.agg_hint();
    }
    for (const auto& [name, hist] : snap.histograms) histogram_names[name];
  }

  for (const auto& [name, unused] : counter_names) {
    const std::string prom = prom_name(name) + "_total";
    out += "# HELP " + prom + " Monotonic count of " + name +
           " events per site.\n";
    out += "# TYPE " + prom + " counter\n";
    for (const auto& [site, snap] : by_site) {
      const auto it = snap.counters.find(name);
      if (it == snap.counters.end()) continue;
      out += prom + "{site=\"" + prom_label_escape(site) + "\"} " +
             std::to_string(it->second) + "\n";
    }
  }

  std::vector<RegistrySnapshot> all;
  for (const auto& [site, snap] : by_site) all.push_back(snap);
  const RegistrySnapshot aggregate = merge_registry_snapshots(all);
  for (const auto& [name, agg] : gauge_names) {
    const std::string prom = prom_name(name);
    out += "# HELP " + prom + " Instantaneous value of " + name +
           " per site (agg=" + to_string(agg) + ").\n";
    out += "# TYPE " + prom + " gauge\n";
    for (const auto& [site, snap] : by_site) {
      const auto it = snap.gauges.find(name);
      if (it == snap.gauges.end()) continue;
      out += prom + "{site=\"" + prom_label_escape(site) + "\"} " +
             fmt_double(it->second.value) + "\n";
    }
    // The hint-honoring cross-site combination — the one line a scraper
    // without GaugeAgg metadata cannot compute (summing a queue depth
    // across sites would be wrong for agg=last/max).
    const auto it = aggregate.gauges.find(name);
    if (it != aggregate.gauges.end()) {
      out += prom + "{site=\"aggregate\"} " + fmt_double(it->second.value) +
             "\n";
    }
  }

  const auto& bounds = Histogram::bounds();
  for (const auto& [name, unused] : histogram_names) {
    const std::string prom = prom_name(name) + "_seconds";
    out += "# HELP " + prom + " Latency distribution of " + name +
           " in seconds per site.\n";
    out += "# TYPE " + prom + " histogram\n";
    for (const auto& [site, snap] : by_site) {
      const auto it = snap.histograms.find(name);
      if (it == snap.histograms.end()) continue;
      const HistogramSnapshot& hist = it->second;
      const std::string site_label = "site=\"" + prom_label_escape(site) +
                                     "\"";
      std::map<std::uint32_t, const ExemplarSnapshot*> exemplar_by_bucket;
      for (const ExemplarSnapshot& ex : hist.exemplars) {
        exemplar_by_bucket[ex.bucket] = &ex;
      }
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0;
           i < hist.buckets.size() && i < bounds.size(); ++i) {
        if (hist.buckets[i] == 0) continue;
        cumulative += hist.buckets[i];
        out += prom + "_bucket{" + site_label + ",le=\"" +
               fmt_double(bounds[i]) + "\"} " + std::to_string(cumulative);
        const auto ex = exemplar_by_bucket.find(
            static_cast<std::uint32_t>(i));
        if (ex != exemplar_by_bucket.end()) {
          const ExemplarSnapshot& witness = *ex->second;
          out += " # {trace_id=\"" +
                 prom_label_escape(
                     TraceContext{witness.trace_hi, witness.trace_lo,
                                  witness.span_id, 0}
                         .trace_id_hex()) +
                 "\",span_id=\"" + std::to_string(witness.span_id) + "\"} " +
                 fmt_double(witness.value_s) + " " +
                 fmt_double(witness.vtime_s);
        }
        out += "\n";
      }
      out += prom + "_bucket{" + site_label + ",le=\"+Inf\"} " +
             std::to_string(hist.count) + "\n";
      out += prom + "_sum{" + site_label + "} " + fmt_double(hist.sum_s()) +
             "\n";
      out += prom + "_count{" + site_label + "} " +
             std::to_string(hist.count) + "\n";
    }
    const std::string summary = prom_name(name) + "_quantiles_seconds";
    out += "# HELP " + summary + " Latency quantiles of " + name +
           " in seconds per site.\n";
    out += "# TYPE " + summary + " summary\n";
    for (const auto& [site, snap] : by_site) {
      const auto it = snap.histograms.find(name);
      if (it == snap.histograms.end()) continue;
      const std::string site_label = "site=\"" + prom_label_escape(site) +
                                     "\"";
      for (const double q : {0.5, 0.99, 0.999}) {
        out += summary + "{" + site_label + ",quantile=\"" + fmt_double(q) +
               "\"} " + fmt_double(it->second.percentile(q * 100.0)) + "\n";
      }
      out += summary + "_sum{" + site_label + "} " +
             fmt_double(it->second.sum_s()) + "\n";
      out += summary + "_count{" + site_label + "} " +
             std::to_string(it->second.count) + "\n";
    }
  }

  out += "# EOF\n";
  return out;
}

}  // namespace ps::obs
