#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/stats.hpp"
#include "sim/vtime.hpp"

namespace ps::obs {

namespace {

std::atomic<bool> g_enabled{true};

/// Bucket bounds: 100 ns .. 1000 s, four per decade (10 decades).
std::array<double, Histogram::kBuckets> make_bounds() {
  std::array<double, Histogram::kBuckets> bounds{};
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    bounds[i] = 1e-7 * std::pow(10.0, static_cast<double>(i + 1) / 4.0);
  }
  return bounds;
}

std::uint64_t to_ns(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

std::string fmt_double(double v) {
  char buf[32];
  // Shortest form that survives a JSON round trip for our value range.
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt_latency(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  }
  return buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::string to_string(GaugeAgg agg) {
  switch (agg) {
    case GaugeAgg::kLast:
      return "last";
    case GaugeAgg::kSum:
      return "sum";
    case GaugeAgg::kMax:
      return "max";
  }
  return "last";
}

namespace {
thread_local MetricsRegistry* t_ambient_registry = nullptr;
}  // namespace

MetricsRegistry* set_ambient_registry(MetricsRegistry* registry) {
  MetricsRegistry* previous = t_ambient_registry;
  t_ambient_registry = registry;
  return previous;
}

// ------------------------------------------------------------ histogram ----

const std::array<double, Histogram::kBuckets>& Histogram::bounds() {
  static const std::array<double, kBuckets> kBounds = make_bounds();
  return kBounds;
}

std::size_t Histogram::bucket_index(double seconds) {
  const auto& b = bounds();
  const auto it = std::lower_bound(b.begin(), b.end(), seconds);
  if (it == b.end()) return kBuckets - 1;
  return static_cast<std::size_t>(it - b.begin());
}

void Histogram::observe(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  buckets_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t ns = to_ns(seconds);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = min_ns_.load(std::memory_order_relaxed);
  while (ns < seen &&
         !min_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  const std::uint64_t idx = count_.fetch_add(1, std::memory_order_relaxed);
  if (idx < kReservoir) {
    reservoir_[idx].store(seconds, std::memory_order_relaxed);
  }
  maybe_exemplar(bucket_index(seconds), seconds);
}

void Histogram::maybe_exemplar(std::size_t bucket, double seconds) {
  // Lock-free fast path: a non-improving sample never takes the mutex.
  if (seconds <= exemplar_best_[bucket].load(std::memory_order_relaxed)) {
    return;
  }
  const TraceContext ctx = current_context();
  if (!ctx.valid()) return;  // no trace to link — not exemplar material
  std::lock_guard lock(exemplar_mu_);
  if (seconds <= exemplar_best_[bucket].load(std::memory_order_relaxed)) {
    return;  // lost the race to a larger sample
  }
  exemplar_best_[bucket].store(seconds, std::memory_order_relaxed);
  Exemplar& slot = exemplar_slots_[bucket];
  slot.value_s = seconds;
  slot.trace_hi = ctx.trace_hi;
  slot.trace_lo = ctx.trace_lo;
  slot.span_id = ctx.span_id;
  slot.vtime_s = sim::vnow();
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return sum() / static_cast<double>(n);
}

double Histogram::min() const {
  const std::uint64_t ns = min_ns_.load(std::memory_order_relaxed);
  if (ns == UINT64_MAX) return 0.0;
  return static_cast<double>(ns) * 1e-9;
}

double Histogram::max() const {
  return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (n <= kReservoir) {
    // Exact path: the whole series is in the reservoir.
    Stats stats;
    stats.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      stats.add(reservoir_[i].load(std::memory_order_relaxed));
    }
    return stats.percentile(p);
  }
  // Interpolated path: walk the cumulative bucket counts.
  const double rank = p / 100.0 * static_cast<double>(n - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket =
        buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) > rank) {
      const double lower = i == 0 ? 0.0 : bounds()[i - 1];
      const double upper = bounds()[i];
      const double frac = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
    cumulative += in_bucket;
  }
  return max();
}

std::vector<std::pair<double, std::uint64_t>> Histogram::nonzero_buckets()
    const {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) out.emplace_back(bounds()[i], n);
  }
  return out;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> Histogram::reservoir_values() const {
  // Exact when the registry is quiescent (the deterministic benches). A
  // scrape racing a writer may see a claimed-but-unwritten slot as 0.0 —
  // never a torn value, and the windowing layer clamps rather than trusts
  // cross-snapshot invariants, so racing scrapes degrade gracefully.
  const std::uint64_t n = std::min<std::uint64_t>(count(), kReservoir);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(reservoir_[i].load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<std::pair<double, Exemplar>> Histogram::exemplars() const {
  std::vector<std::pair<double, Exemplar>> out;
  std::lock_guard lock(exemplar_mu_);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (exemplar_slots_[i].valid()) {
      out.emplace_back(bounds()[i], exemplar_slots_[i]);
    }
  }
  return out;
}

Exemplar Histogram::max_exemplar() const {
  Exemplar best;
  std::lock_guard lock(exemplar_mu_);
  for (const Exemplar& slot : exemplar_slots_) {
    if (slot.valid() && (!best.valid() || slot.value_s > best.value_s)) {
      best = slot;
    }
  }
  return best;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
  std::lock_guard lock(exemplar_mu_);
  for (auto& best : exemplar_best_) {
    best.store(-1.0, std::memory_order_relaxed);
  }
  for (Exemplar& slot : exemplar_slots_) slot = Exemplar{};
}

// ------------------------------------------------------------- registry ----

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry& MetricsRegistry::ambient() {
  MetricsRegistry* scoped = t_ambient_registry;
  return scoped != nullptr ? *scoped : global();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, GaugeAgg agg) {
  Gauge& g = gauge(name);
  g.set_agg(agg);
  return g;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  std::lock_guard lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  std::lock_guard lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::map<std::string, std::pair<double, GaugeAgg>>
MetricsRegistry::gauges_with_agg() const {
  std::lock_guard lock(mu_);
  std::map<std::string, std::pair<double, GaugeAgg>> out;
  for (const auto& [name, gauge] : gauges_) {
    out[name] = {gauge->value(), gauge->agg()};
  }
  return out;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) out.push_back(name);
  return out;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::dump_json() const {
  std::lock_guard lock(mu_);
  // schema_version history: v2 added this field plus the shared
  // "bucket_bounds_s" array (all histogram bucket upper bounds, so
  // per-histogram "buckets" [le, count] pairs can be mapped back to raw
  // bucket indices); v3 adds the per-histogram "exemplars" array linking
  // each bucket's worst sample to its trace/span.
  std::string out = "{\"schema_version\":3,\"bucket_bounds_s\":[";
  bool first_bound = true;
  for (const double bound : Histogram::bounds()) {
    if (!first_bound) out += ",";
    first_bound = false;
    out += fmt_double(bound);
  }
  out += "],\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json_escape_into(out, name);
    out += "\":" + std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json_escape_into(out, name);
    out += "\":" + fmt_double(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json_escape_into(out, name);
    out += "\":{\"count\":" + std::to_string(hist->count());
    out += ",\"sum_s\":" + fmt_double(hist->sum());
    out += ",\"mean_s\":" + fmt_double(hist->mean());
    out += ",\"min_s\":" + fmt_double(hist->min());
    out += ",\"max_s\":" + fmt_double(hist->max());
    out += ",\"p50_s\":" + fmt_double(hist->p50());
    out += ",\"p95_s\":" + fmt_double(hist->p95());
    out += ",\"p99_s\":" + fmt_double(hist->p99());
    out += ",\"p999_s\":" + fmt_double(hist->p999());
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (const auto& [le, n] : hist->nonzero_buckets()) {
      if (!first_bucket) out += ",";
      first_bucket = false;
      out += "[" + fmt_double(le) + "," + std::to_string(n) + "]";
    }
    out += "],\"exemplars\":[";
    bool first_exemplar = true;
    for (const auto& [le, ex] : hist->exemplars()) {
      if (!first_exemplar) out += ",";
      first_exemplar = false;
      out += "{\"le\":" + fmt_double(le);
      out += ",\"value_s\":" + fmt_double(ex.value_s);
      out += ",\"trace_id\":\"" + ex.trace_id_hex() + "\"";
      out += ",\"span_id\":" + std::to_string(ex.span_id);
      out += ",\"vtime_s\":" + fmt_double(ex.vtime_s) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::dump_table() const {
  std::lock_guard lock(mu_);
  std::string out;
  char line[256];
  if (!counters_.empty()) {
    out += "-- counters ------------------------------------------------\n";
    for (const auto& [name, counter] : counters_) {
      std::snprintf(line, sizeof(line), "%-44s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(counter->value()));
      out += line;
    }
  }
  if (!gauges_.empty()) {
    out += "-- gauges --------------------------------------------------\n";
    for (const auto& [name, gauge] : gauges_) {
      std::snprintf(line, sizeof(line), "%-44s %12.3f\n", name.c_str(),
                    gauge->value());
      out += line;
    }
  }
  if (!histograms_.empty()) {
    out += "-- histograms ----------------------------------------------\n";
    std::snprintf(line, sizeof(line), "%-44s %8s %10s %10s %10s %10s %10s\n",
                  "name", "count", "mean", "p50", "p95", "p99", "max");
    out += line;
    for (const auto& [name, hist] : histograms_) {
      std::snprintf(line, sizeof(line),
                    "%-44s %8llu %10s %10s %10s %10s %10s\n", name.c_str(),
                    static_cast<unsigned long long>(hist->count()),
                    fmt_latency(hist->mean()).c_str(),
                    fmt_latency(hist->p50()).c_str(),
                    fmt_latency(hist->p95()).c_str(),
                    fmt_latency(hist->p99()).c_str(),
                    fmt_latency(hist->max()).c_str());
      out += line;
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

}  // namespace ps::obs
