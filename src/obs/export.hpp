// Exporters: Chrome trace-event (Perfetto) JSON and Prometheus text format.
//
// `perfetto_trace_json` renders TraceRecorder spans as a Chrome
// trace-event file (the JSON format Perfetto's UI and chrome://tracing
// load natively). Each simulated site becomes a Perfetto "process" and each
// simulated process a "thread" within it, so the cross-site causal path of
// one trace reads as slices spread across site-labelled tracks. Every span
// is emitted twice: once on a virtual-time track (pid = 1 + site index,
// what the simulator says the distributed timing was) and once on a
// wall-clock track (pid = 1001 + site index, what the host actually spent).
// Slice args carry trace_id/span_id/parent_span_id so causal edges survive
// the export.
//
// `prometheus_text` renders a MetricsRegistry snapshot in the Prometheus
// text exposition format (counters, gauges, and histograms with cumulative
// `_bucket{le=...}` series), suitable for a textfile collector or diffing
// in tests.
#pragma once

#include <string>
#include <vector>

namespace ps::obs {

class TraceRecorder;
class MetricsRegistry;
struct SpanRecord;

/// Chrome trace-event JSON ({"displayTimeUnit":"ms","traceEvents":[...]})
/// of all spans currently held by `recorder`.
std::string perfetto_trace_json(const TraceRecorder& recorder);

/// Same rendering over an explicit span set (flight-recorder snapshots,
/// tests) — no recorder needed.
std::string perfetto_trace_json(const std::vector<SpanRecord>& spans);

/// Writes perfetto_trace_json(TraceRecorder::global()) to `path`.
/// Returns false if the file cannot be written.
bool write_perfetto_trace(const std::string& path);

/// Prometheus label *value* escaping per the text exposition format:
/// backslash -> \\, double-quote -> \", newline -> \n. Everything emitting
/// `{label="value"}` pairs must route values through this.
std::string prom_label_escape(const std::string& value);

/// Prometheus text exposition of every registered metric. Metric names are
/// sanitized (dots -> underscores) and prefixed `ps_`; histograms are
/// exported in seconds with a `_seconds` suffix. Buckets holding an
/// exemplar carry an OpenMetrics-style annotation —
/// `... # {trace_id="...",span_id="..."} <value> <vtime>` — linking the
/// bucket's worst sample to its trace.
std::string prometheus_text(const MetricsRegistry& registry);

}  // namespace ps::obs
