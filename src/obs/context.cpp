#include "obs/context.hpp"

#include <atomic>
#include <cstdio>

#include "obs/trace.hpp"
#include "sim/vtime.hpp"

namespace ps::obs {

namespace {

// Trace ids are sequence numbers under a fixed process tag rather than
// random draws, keeping traces reproducible on the deterministic simulator
// while still globally unique within a run.
constexpr std::uint64_t kTraceTag = 0x70733a7472616365ULL;  // "ps:trace"

std::atomic<std::uint64_t> g_next_trace{1};
std::atomic<std::uint64_t> g_next_span{1};

thread_local TraceContext t_context;

std::atomic<LocalityProvider> g_locality_provider{nullptr};

}  // namespace

std::string TraceContext::trace_id_hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(trace_hi),
                static_cast<unsigned long long>(trace_lo));
  return buf;
}

TraceContext current_context() { return t_context; }

TraceContext new_root_context() {
  TraceContext ctx;
  ctx.trace_hi = kTraceTag;
  ctx.trace_lo = g_next_trace.fetch_add(1, std::memory_order_relaxed);
  ctx.span_id = g_next_span.fetch_add(1, std::memory_order_relaxed);
  ctx.parent_span_id = 0;
  return ctx;
}

TraceContext child_of(const TraceContext& parent) {
  if (!parent.valid()) return new_root_context();
  TraceContext ctx;
  ctx.trace_hi = parent.trace_hi;
  ctx.trace_lo = parent.trace_lo;
  ctx.span_id = g_next_span.fetch_add(1, std::memory_order_relaxed);
  ctx.parent_span_id = parent.span_id;
  return ctx;
}

void set_locality_provider(LocalityProvider provider) {
  g_locality_provider.store(provider, std::memory_order_release);
}

SpanLocality current_locality() {
  if (const LocalityProvider provider =
          g_locality_provider.load(std::memory_order_acquire)) {
    return provider();
  }
  return SpanLocality{"untracked", "unknown", "unknown"};
}

ContextScope::ContextScope(const TraceContext& ctx) : previous_(t_context) {
  if (ctx.valid()) t_context = ctx;
}

ContextScope::~ContextScope() { t_context = previous_; }

SpanScope::SpanScope(const std::string& name, std::string subject,
                     std::string kind) {
  TraceRecorder& recorder = TraceRecorder::global();
  if (!recorder.enabled()) return;
  active_ = true;
  name_ = name;
  subject_ = std::move(subject);
  kind_ = std::move(kind);
  previous_ = t_context;
  ctx_ = previous_.valid() ? child_of(previous_) : new_root_context();
  t_context = ctx_;
  wall_start_ = recorder.wall_now();
  vtime_start_ = sim::vnow();
}

void SpanScope::set_locality(SpanLocality locality) {
  if (!active_) return;
  has_locality_override_ = true;
  locality_override_ = std::move(locality);
}

SpanScope::~SpanScope() {
  if (!active_) return;
  t_context = previous_;
  TraceRecorder& recorder = TraceRecorder::global();
  SpanRecord span;
  span.ctx = ctx_;
  span.name = std::move(name_);
  span.subject = std::move(subject_);
  span.kind = std::move(kind_);
  SpanLocality locality =
      has_locality_override_ ? std::move(locality_override_)
                             : current_locality();
  span.process = std::move(locality.process);
  span.host = std::move(locality.host);
  span.site = std::move(locality.site);
  span.wall_start = wall_start_;
  span.wall_end = recorder.wall_now();
  span.vtime_start = vtime_start_;
  span.vtime_end = sim::vnow();
  recorder.record_span(std::move(span));
}

}  // namespace ps::obs
