// Span-derived call-tree profiles: "where did the time go" without Perfetto.
//
// A Profile aggregates the TraceRecorder's closed spans into a call tree
// keyed by span-name path (root;child;grandchild). Spans from different
// traces that executed the same name path merge into one node, so a bench
// that runs the same round trip N times yields one tree with count = N
// rather than N parallel trees. Each node carries invocation count plus
// total and *self* time in both clocks — virtual time (deterministic, what
// the simulator charged) and wall time (what the host actually spent) —
// where self = total minus the time attributed to child spans, clamped at
// zero for overlapping/async children.
//
// Outputs:
//   * table()      — indented human-readable tree (psctl profile);
//   * folded()     — flamegraph-ready folded stacks, one "a;b;c <ns>" line
//                    per node with the node's self time in integer
//                    nanoseconds (feed to flamegraph.pl / speedscope);
//   * top_nodes(n) — flat hottest-first list for the BENCH_*.json artifact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ps::obs {

struct ProfileNode {
  std::string name;  // span name of this tree position
  std::uint64_t count = 0;
  double total_wall_s = 0.0;
  double self_wall_s = 0.0;
  double total_vtime_s = 0.0;
  double self_vtime_s = 0.0;
  std::vector<ProfileNode> children;  // sorted by total_vtime_s descending
};

/// A flattened node: the full semicolon-joined name path plus the node's
/// aggregates, as surfaced in bench artifacts.
struct ProfileEntry {
  std::string path;  // "root;child;leaf"
  std::uint64_t count = 0;
  double total_wall_s = 0.0;
  double self_wall_s = 0.0;
  double total_vtime_s = 0.0;
  double self_vtime_s = 0.0;
};

class Profile {
 public:
  /// Aggregates closed spans into a call tree. Parentage follows
  /// (trace id, parent_span_id); spans whose parent was never recorded
  /// (dropped by the ring buffer, or roots) start a tree at depth zero.
  static Profile from_spans(const std::vector<SpanRecord>& spans);
  static Profile from_recorder(const TraceRecorder& recorder);

  const std::vector<ProfileNode>& roots() const { return roots_; }
  bool empty() const { return roots_.empty(); }

  /// Total time across all root spans (the denominator of a flamegraph).
  double total_vtime_s() const;
  double total_wall_s() const;

  /// Folded-stack output: one line per node, "path;to;node <self-ns>",
  /// every node included (zero-self nodes keep the sum property that the
  /// self times under a root add up to the root's total). `vtime` selects
  /// the deterministic virtual-time profile; false selects wall time.
  std::string folded(bool vtime = true) const;

  /// The n hottest nodes by self time (virtual time, wall tie-break),
  /// flattened with their full paths.
  std::vector<ProfileEntry> top_nodes(std::size_t n) const;

  /// Human-readable indented tree, hottest subtree first.
  std::string table() const;

 private:
  std::vector<ProfileNode> roots_;
};

}  // namespace ps::obs
