#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ps::obs {

namespace {

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Microseconds with nanosecond resolution — the unit of trace-event ts/dur.
std::string fmt_us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

void append_metadata(std::string& out, bool& first, int pid, int tid,
                     const char* what, const std::string& label) {
  if (!first) out += ",\n";
  first = false;
  out += "{\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  if (tid >= 0) {
    out += ",\"tid\":";
    out += std::to_string(tid);
  }
  out += ",\"name\":\"";
  out += what;
  out += "\",\"args\":{\"name\":\"";
  json_escape_into(out, label);
  out += "\"}}";
}

void append_slice(std::string& out, bool& first, const SpanRecord& span,
                  int pid, int tid, double start_s, double end_s) {
  if (!first) out += ",\n";
  first = false;
  double dur = end_s - start_s;
  if (dur < 0.0) dur = 0.0;
  out += "{\"ph\":\"X\",\"cat\":\"span\",\"name\":\"";
  json_escape_into(out, span.name);
  out += "\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  out += fmt_us(start_s);
  out += ",\"dur\":";
  out += fmt_us(dur);
  out += ",\"args\":{\"trace_id\":\"";
  out += span.ctx.trace_id_hex();
  out += "\",\"span_id\":";
  out += std::to_string(span.ctx.span_id);
  out += ",\"parent_span_id\":";
  out += std::to_string(span.ctx.parent_span_id);
  if (!span.kind.empty()) {
    out += ",\"kind\":\"";
    json_escape_into(out, span.kind);
    out += "\"";
  }
  out += ",\"process\":\"";
  json_escape_into(out, span.process);
  out += "\",\"host\":\"";
  json_escape_into(out, span.host);
  out += "\",\"site\":\"";
  json_escape_into(out, span.site);
  if (!span.subject.empty()) {
    out += "\",\"subject\":\"";
    json_escape_into(out, span.subject);
  }
  out += "\"}}";
}

/// Prometheus metric name: `ps_` + name with every non-[a-zA-Z0-9_:] byte
/// replaced by '_'.
std::string prom_name(const std::string& name) {
  std::string out = "ps_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string prom_label_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string perfetto_trace_json(const TraceRecorder& recorder) {
  return perfetto_trace_json(recorder.spans());
}

std::string perfetto_trace_json(const std::vector<SpanRecord>& spans) {
  // Sites become Perfetto processes; each gets a virtual-time pid (1-based)
  // and a wall-clock pid offset by 1000. Simulated processes become threads.
  std::map<std::string, int> site_pid;
  std::map<std::pair<std::string, std::string>, int> actor_tid;
  for (const SpanRecord& span : spans) {
    site_pid.emplace(span.site, 0);
    actor_tid.emplace(std::make_pair(span.site, span.process), 0);
  }
  int next_pid = 1;
  for (auto& [site, pid] : site_pid) pid = next_pid++;
  int next_tid = 1;
  for (auto& [actor, tid] : actor_tid) tid = next_tid++;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [site, pid] : site_pid) {
    append_metadata(out, first, pid, -1, "process_name", site + " [vtime]");
    append_metadata(out, first, pid + 1000, -1, "process_name",
                    site + " [wall]");
  }
  for (const auto& [actor, tid] : actor_tid) {
    const int pid = site_pid[actor.first];
    append_metadata(out, first, pid, tid, "thread_name", actor.second);
    append_metadata(out, first, pid + 1000, tid, "thread_name", actor.second);
  }
  for (const SpanRecord& span : spans) {
    const int pid = site_pid[span.site];
    const int tid = actor_tid[std::make_pair(span.site, span.process)];
    append_slice(out, first, span, pid, tid, span.vtime_start, span.vtime_end);
    append_slice(out, first, span, pid + 1000, tid, span.wall_start,
                 span.wall_end);
  }
  out += "\n]}\n";
  return out;
}

bool write_perfetto_trace(const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << perfetto_trace_json(TraceRecorder::global());
  return static_cast<bool>(file);
}

std::string prometheus_text(const MetricsRegistry& registry) {
  std::string out;

  // Conformance notes (also checked by tests/obs_test.cpp): every metric
  // family gets `# HELP` then `# TYPE`, counters carry the `_total` suffix,
  // and histograms expose cumulative `_bucket` counts ending in `+Inf`.
  for (const auto& [name, value] : registry.counters()) {
    const std::string prom = prom_name(name) + "_total";
    out += "# HELP " + prom + " Monotonic count of " + name + " events.\n";
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }

  for (const auto& [name, value] : registry.gauges()) {
    const std::string prom = prom_name(name);
    out += "# HELP " + prom + " Instantaneous value of " + name + ".\n";
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + fmt_double(value) + "\n";
  }

  for (const std::string& name : registry.histogram_names()) {
    const Histogram* h = registry.find_histogram(name);
    if (h == nullptr) continue;
    const std::string prom = prom_name(name) + "_seconds";
    out += "# HELP " + prom + " Latency distribution of " + name +
           " in seconds.\n";
    out += "# TYPE " + prom + " histogram\n";
    // Buckets with a trace-linked exemplar get the OpenMetrics-style
    // annotation after the cumulative count; exemplar-free buckets (and
    // whole histograms never observed under a span) are byte-identical to
    // the pre-exemplar exposition.
    std::map<double, Exemplar> exemplar_by_le;
    for (const auto& [le, ex] : h->exemplars()) exemplar_by_le[le] = ex;
    std::uint64_t cumulative = 0;
    for (const auto& [le, n] : h->nonzero_buckets()) {
      cumulative += n;
      out += prom + "_bucket{le=\"" + fmt_double(le) +
             "\"} " + std::to_string(cumulative);
      const auto ex = exemplar_by_le.find(le);
      if (ex != exemplar_by_le.end()) {
        out += " # {trace_id=\"" +
               prom_label_escape(ex->second.trace_id_hex()) +
               "\",span_id=\"" + std::to_string(ex->second.span_id) +
               "\"} " + fmt_double(ex->second.value_s) + " " +
               fmt_double(ex->second.vtime_s);
      }
      out += "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(h->count()) + "\n";
    out += prom + "_sum " + fmt_double(h->sum()) + "\n";
    out += prom + "_count " + std::to_string(h->count()) + "\n";

    // Companion summary family: precomputed tail quantiles (p50/p99/p999)
    // so scrapers and SLO dashboards need not reconstruct percentiles from
    // the log-spaced buckets. A distinct family name keeps both expositions
    // conformant (one # TYPE per family).
    const std::string summary = prom_name(name) + "_quantiles_seconds";
    out += "# HELP " + summary + " Latency quantiles of " + name +
           " in seconds.\n";
    out += "# TYPE " + summary + " summary\n";
    for (const double q : {0.5, 0.99, 0.999}) {
      out += summary + "{quantile=\"" + fmt_double(q) + "\"} " +
             fmt_double(h->quantile(q)) + "\n";
    }
    out += summary + "_sum " + fmt_double(h->sum()) + "\n";
    out += summary + "_count " + std::to_string(h->count()) + "\n";
  }

  return out;
}

}  // namespace ps::obs
