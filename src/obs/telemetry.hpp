// Telemetry plane data model: registry snapshots, windowed deltas, and
// cross-site federation (DESIGN.md §12).
//
// A RegistrySnapshot is a deep value copy of one MetricsRegistry at one
// virtual instant. Snapshots compose two ways:
//
//   * in time — registry_snapshot_delta() subtracts two cumulative
//     snapshots of the same registry into a window, and TelemetryWindows
//     keeps a ring of those windows so consumers (psctl top, burn-rate SLO
//     evaluation) can ask "what happened in the last N virtual seconds"
//     instead of "what happened since boot". Deltas subtract in the same
//     integer domains the hot-path atomics accumulate in (counts, ns), so
//     merging every window of a run recomposes the whole-run histogram
//     exactly: count, sum, buckets, and p50/p99/p999 are bit-identical,
//     because the per-window reservoir slices concatenate back into the
//     whole-run sample prefix. A scrape racing a writer can never produce a
//     negative rate: deltas clamp at zero and count each clamp in the
//     scraper's "telemetry.rate.clamped" counter.
//
//   * across space — merge_registry_snapshots() folds N per-process or
//     per-site snapshots into one view: counters sum, histograms merge,
//     exemplars keep the max witness per bucket, and gauges follow their
//     declared GaugeAgg hint (a queue depth must not be summed across
//     sites the way a throughput counter is).
//
// federated_metrics_json() / federated_prometheus_text() render a
// site-keyed snapshot map for machines: every Prometheus sample carries a
// `site` label (escaped, so hostile site names round-trip) and the
// exposition terminates with the OpenMetrics `# EOF` marker.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "obs/metrics.hpp"

namespace ps::obs {

/// One bucket's trace-linked tail witness in wire form (bucket is the raw
/// index into Histogram::bounds()). Cumulative, like the exemplar it copies:
/// window deltas carry the best witness so far, and merges keep the
/// max-value witness per bucket.
struct ExemplarSnapshot {
  std::uint32_t bucket = 0;
  double value_s = 0.0;
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  double vtime_s = 0.0;

  auto serde_members() {
    return std::tie(bucket, value_s, trace_hi, trace_lo, span_id, vtime_s);
  }
  auto serde_members() const {
    return std::tie(bucket, value_s, trace_hi, trace_lo, span_id, vtime_s);
  }
};

/// Value copy of one Histogram: the full bucket array (index-aligned with
/// Histogram::bounds()), the raw-sample reservoir prefix, and the integer
/// sum/min/max the atomics maintain. percentile() reproduces
/// Histogram::percentile() exactly — Stats-exact while the reservoir holds
/// the whole series, bucket-interpolated beyond it.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t min_ns = UINT64_MAX;
  std::uint64_t max_ns = 0;
  std::vector<std::uint64_t> buckets;  // Histogram::kBuckets entries
  std::vector<double> reservoir;       // first min(count, kReservoir) samples
  std::vector<ExemplarSnapshot> exemplars;

  auto serde_members() {
    return std::tie(count, sum_ns, min_ns, max_ns, buckets, reservoir,
                    exemplars);
  }
  auto serde_members() const {
    return std::tie(count, sum_ns, min_ns, max_ns, buckets, reservoir,
                    exemplars);
  }

  double sum_s() const { return static_cast<double>(sum_ns) * 1e-9; }
  double mean_s() const {
    return count == 0 ? 0.0 : sum_s() / static_cast<double>(count);
  }
  double min_s() const {
    return min_ns == UINT64_MAX ? 0.0 : static_cast<double>(min_ns) * 1e-9;
  }
  double max_s() const { return static_cast<double>(max_ns) * 1e-9; }

  /// p in [0, 100]; mirrors Histogram::percentile() bit for bit.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }
  double p999() const { return percentile(99.9); }

  /// Accumulates `other` into this snapshot: counts/sums/buckets add,
  /// min/max widen, reservoirs concatenate (capped at Histogram::kReservoir
  /// — append windows in chronological order and the result is exactly the
  /// whole-run sample prefix), exemplars keep the max witness per bucket.
  void merge(const HistogramSnapshot& other);
};

/// Gauge value + aggregation hint in wire form.
struct GaugeSnapshot {
  double value = 0.0;
  std::uint8_t agg = 0;  // GaugeAgg

  auto serde_members() { return std::tie(value, agg); }
  auto serde_members() const { return std::tie(value, agg); }

  GaugeAgg agg_hint() const { return static_cast<GaugeAgg>(agg); }
};

/// Deep value copy of one MetricsRegistry at one virtual instant.
struct RegistrySnapshot {
  double vtime_s = 0.0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  auto serde_members() {
    return std::tie(vtime_s, counters, gauges, histograms);
  }
  auto serde_members() const {
    return std::tie(vtime_s, counters, gauges, histograms);
  }

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// One site's registry view on the federation wire: the per-process
/// registries of every process at the site, merged at scrape time.
struct SiteSnapshot {
  std::string site;
  std::string host;        // the telemetry agent's host
  std::size_t processes = 0;  // processes merged into this snapshot
  RegistrySnapshot registry;

  auto serde_members() { return std::tie(site, host, processes, registry); }
  auto serde_members() const {
    return std::tie(site, host, processes, registry);
  }
};

/// `cur - prev` for two cumulative snapshots of the same registry. Counter
/// and histogram deltas clamp at zero (a racing scrape or a registry reset
/// between scrapes must never yield a negative rate); every clamp
/// increments *clamped (when non-null) — TelemetryWindows feeds that into
/// the scraper's "telemetry.rate.clamped" counter. Gauges are point-in-time
/// and carry the current value, never a difference.
RegistrySnapshot registry_snapshot_delta(const RegistrySnapshot& prev,
                                         const RegistrySnapshot& cur,
                                         std::uint64_t* clamped = nullptr);

/// Folds N snapshots into one: counters sum, histograms merge, gauges
/// follow their GaugeAgg hint (last-write resolves by greatest vtime_s).
/// The result's vtime_s is the greatest input vtime.
RegistrySnapshot merge_registry_snapshots(
    const std::vector<RegistrySnapshot>& snapshots);

/// Ring of per-window deltas over one logical registry (one site, or the
/// whole fleet). feed() consumes *cumulative* snapshots — the Prometheus
/// model: the scraped side stays dumb and monotonic, the consumer owns the
/// windowing — and appends the delta window [previous.vtime_s, cur.vtime_s].
class TelemetryWindows {
 public:
  struct Window {
    double start_vtime_s = 0.0;
    double end_vtime_s = 0.0;
    RegistrySnapshot delta;
  };

  explicit TelemetryWindows(std::size_t capacity = 64);

  /// Appends the window between the previously fed snapshot and
  /// `cumulative`. The first feed only seeds the baseline (no window).
  void feed(const RegistrySnapshot& cumulative);

  const std::deque<Window>& windows() const { return windows_; }
  /// The most recently fed cumulative snapshot.
  const RegistrySnapshot& cumulative() const { return cumulative_; }
  bool seeded() const { return seeded_; }

  /// Clamp events observed across all feeds (monotonicity violations —
  /// racing scrapes or registry resets).
  std::uint64_t clamped() const { return clamped_; }

  /// Merges every retained window whose end lies in (now - span_s, now],
  /// where now is the latest window end. Windows straddling the boundary
  /// are included whole (windows are the quantum of this layer).
  RegistrySnapshot merged_last(double span_s) const;

  /// Merges all retained windows (== the whole run while nothing has been
  /// evicted from the ring).
  RegistrySnapshot merged_all() const;

  /// Counter increments per virtual second over the trailing `span_s`
  /// (0 when the counter or the windows are absent).
  double rate(const std::string& counter, double span_s) const;

 private:
  std::size_t capacity_;
  bool seeded_ = false;
  RegistrySnapshot cumulative_;
  std::deque<Window> windows_;
  std::uint64_t clamped_ = 0;
};

/// {"schema_version":1,"sites":{<site>:{...}},"aggregate":{...}} — the
/// aggregate is merge_registry_snapshots() over the sites (gauge hints
/// honored). Site names and metric names are JSON-escaped.
std::string federated_metrics_json(
    const std::map<std::string, RegistrySnapshot>& by_site);

/// Prometheus text exposition with a `site` label on every sample
/// (label-escaped, so hostile site names round-trip). Gauges additionally
/// emit one site="aggregate" sample combined per their GaugeAgg hint —
/// the one aggregation a hint-blind scraper cannot derive. Terminated with
/// the OpenMetrics `# EOF` marker.
std::string federated_prometheus_text(
    const std::map<std::string, RegistrySnapshot>& by_site);

}  // namespace ps::obs
