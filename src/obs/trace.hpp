// Proxy lifecycle tracing and distributed span collection.
//
// A TraceRecorder captures two kinds of records:
//   * instant events — per-subject lifecycle points (a subject is a
//     "<store>/<key>" string minted when a proxy is created), each stamped
//     with wall time (steady-clock seconds since recorder construction) and
//     the recording thread's virtual time, plus the thread's active
//     TraceContext so events attribute to the span they occurred under;
//   * spans — closed [start, end] intervals produced by obs::SpanScope,
//     carrying a full TraceContext (128-bit trace id, span id, parent span
//     id) and the simulated locality (process/host/site) they executed in.
//     Because the context rides on the wire (factory descriptors, FaaS task
//     records, relay messages, endpoint requests), spans recorded in
//     different simulated processes/sites stitch into one causal trace.
//
// Disabled by default: the hot-path cost when off is one relaxed load.
// The Store and descriptor-factory resolve path emit the canonical
// lifecycle — proxy.created -> factory.serialized -> factory.deserialized ->
// resolve.start -> connector.get -> deserialize -> cache.insert ->
// resolve.done — so `timeline()` reconstructs where a resolve spent its
// time across processes, and obs/export.hpp renders spans() as a
// Perfetto-loadable Chrome trace.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/context.hpp"

namespace ps::obs {

struct TraceEvent {
  std::string subject;  // e.g. "store-name/key-canonical"
  std::string name;     // e.g. "resolve.start"
  double wall_s = 0.0;  // steady seconds since the recorder's origin
  double vtime_s = 0.0;  // recording thread's sim::vnow()
  /// The thread's active trace context at record time (invalid when the
  /// event occurred outside any span).
  TraceContext ctx;
};

/// One closed span: a named interval executed in one simulated locality,
/// causally positioned by its TraceContext.
struct SpanRecord {
  TraceContext ctx;
  std::string name;     // e.g. "faas.submit", "proxy.resolve"
  std::string subject;  // optional "<store>/<key>" attribution
  /// Critical-path segment this span's self-time belongs to (e.g.
  /// "wire-transfer", "serde", "executor-queue"); empty means the
  /// CriticalPath analyzer classifies by span name, falling back to
  /// "other". See obs/critical.hpp for the taxonomy.
  std::string kind;
  std::string process;  // simulated process the span ran in
  std::string host;     // fabric host
  std::string site;     // fabric site
  double wall_start = 0.0;
  double wall_end = 0.0;
  double vtime_start = 0.0;
  double vtime_end = 0.0;
};

class TraceRecorder {
 public:
  /// Default ceiling on retained events and spans (each). Overridable at
  /// process start via PROXYSTORE_TRACE_CAP (positive integer) and at
  /// runtime via set_capacity().
  static constexpr std::size_t kDefaultCapacity = 65536;

  TraceRecorder();

  static TraceRecorder& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends an event (no-op while disabled). Oldest events are dropped
  /// once the buffer exceeds capacity.
  void record(const std::string& subject, const std::string& event);

  /// Appends a closed span (no-op while disabled). Oldest spans are
  /// dropped once the buffer exceeds capacity.
  void record_span(SpanRecord span);

  /// All events for one subject, in record order.
  std::vector<TraceEvent> timeline(const std::string& subject) const;

  std::vector<TraceEvent> events() const;
  std::vector<SpanRecord> spans() const;
  std::size_t size() const;
  std::size_t span_count() const;
  void clear();

  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Monotonic counts of records evicted by the capacity ceiling (never
  /// reset by clear(); mirrored into the metrics registry as
  /// "trace.dropped.events" / "trace.dropped.spans").
  std::uint64_t dropped_events() const {
    return dropped_events_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }

  /// Wall seconds since the recorder's origin (the clock span timestamps
  /// are expressed in).
  double wall_now() const;

  /// [{"subject": ..., "event": ..., "wall_s": ..., "vtime_s": ...}, ...]
  std::string dump_json() const;

 private:
  void note_dropped_events(std::size_t n);
  void note_dropped_spans(std::size_t n);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::deque<TraceEvent> events_;
  std::deque<SpanRecord> spans_;
  std::size_t capacity_ = kDefaultCapacity;
  std::atomic<std::uint64_t> dropped_events_{0};
  std::atomic<std::uint64_t> dropped_spans_{0};
  std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();
};

/// RAII trace span: records "<name>.start" on construction and "<name>.done"
/// on destruction. Cheap no-op while tracing is disabled.
class Span {
 public:
  Span(std::string subject, std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string subject_;
  std::string name_;
  bool active_ = false;
};

}  // namespace ps::obs
