// Proxy lifecycle tracing.
//
// A TraceRecorder captures per-subject event timelines (a subject is a
// "<store>/<key>" string minted when a proxy is created), each event stamped
// with both wall time (steady-clock seconds since recorder construction) and
// the recording thread's virtual time. Disabled by default: the hot-path cost
// when off is one relaxed load. The Store and descriptor-factory resolve path
// emit the canonical lifecycle — proxy.created -> factory.serialized ->
// factory.deserialized -> resolve.start -> connector.get -> deserialize ->
// cache.insert -> resolve.done — so `timeline()` reconstructs where a
// resolve spent its time across processes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace ps::obs {

struct TraceEvent {
  std::string subject;  // e.g. "store-name/key-canonical"
  std::string name;     // e.g. "resolve.start"
  double wall_s = 0.0;  // steady seconds since the recorder's origin
  double vtime_s = 0.0;  // recording thread's sim::vnow()
};

class TraceRecorder {
 public:
  static TraceRecorder& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends an event (no-op while disabled). Oldest events are dropped
  /// once the buffer exceeds capacity.
  void record(const std::string& subject, const std::string& event);

  /// All events for one subject, in record order.
  std::vector<TraceEvent> timeline(const std::string& subject) const;

  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  void clear();

  void set_capacity(std::size_t capacity);

  /// [{"subject": ..., "event": ..., "wall_s": ..., "vtime_s": ...}, ...]
  std::string dump_json() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::deque<TraceEvent> events_;
  std::size_t capacity_ = 65536;
  std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();
};

/// RAII trace span: records "<name>.start" on construction and "<name>.done"
/// on destruction. Cheap no-op while tracing is disabled.
class Span {
 public:
  Span(std::string subject, std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string subject_;
  std::string name_;
  bool active_ = false;
};

}  // namespace ps::obs
