// Process-wide metrics registry.
//
// Named counters, gauges, and fixed-bucket latency histograms with lock-free
// hot-path updates. Registration (name -> metric) takes a mutex once; callers
// cache the returned reference, after which every increment/observe is a
// handful of relaxed atomic operations. Histograms keep a bounded reservoir of
// raw samples so percentiles are exact for small series (benches) and
// bucket-interpolated beyond that. Exported as a human-readable table or JSON
// (`dump_table()` / `dump_json()`, surfaced by `psctl metrics`).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/context.hpp"

namespace ps::obs {

struct RegistrySnapshot;  // obs/telemetry.hpp

/// Global instrumentation switch. Hot-path helpers (InstrumentedConnector,
/// Timer) check this once per operation; disabling reduces instrumentation to
/// a single relaxed load.
bool enabled();
void set_enabled(bool on);

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// How a point-in-time gauge combines across processes/sites when the
/// telemetry plane federates registries (obs/telemetry.hpp). Counters always
/// sum and histograms always merge, but a queue depth summed across windows
/// or a utilization summed across sites is a lie — so every gauge carries an
/// aggregation hint that the merger and the Prometheus export honor.
enum class GaugeAgg : std::uint8_t {
  kLast = 0,  ///< most recent writer wins (default; e.g. phase markers)
  kSum = 1,   ///< additive across processes (e.g. queued work per executor)
  kMax = 2,   ///< worst-case wins (e.g. peak backlog, high-water marks)
};

/// "last" | "sum" | "max".
std::string to_string(GaugeAgg agg);

/// Last-writer-wins instantaneous value (queue depths, bytes held).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

  GaugeAgg agg() const {
    return static_cast<GaugeAgg>(agg_.load(std::memory_order_relaxed));
  }
  void set_agg(GaugeAgg agg) {
    agg_.store(static_cast<std::uint8_t>(agg), std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<std::uint8_t> agg_{0};
};

/// One tail witness: the largest value observed in a bucket, linked to the
/// trace it came from. Valid only when observed under an active trace
/// context (exemplar-free histograms export exactly as before).
struct Exemplar {
  double value_s = 0.0;
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  double vtime_s = 0.0;  // observer's sim::vnow() at observe time

  bool valid() const { return (trace_hi | trace_lo) != 0; }
  std::string trace_id_hex() const {
    return TraceContext{trace_hi, trace_lo, span_id, 0}.trace_id_hex();
  }
};

/// Fixed-bucket latency histogram over seconds.
///
/// Buckets are log-spaced upper bounds from 100 ns to 1000 s (four per
/// decade); values past the last bound land in the final bucket. All updates
/// are relaxed atomics. The first kReservoir raw samples are additionally
/// retained so percentiles over short series are exact (computed through
/// ps::Stats); longer series fall back to within-bucket linear interpolation.
///
/// Each bucket also keeps one Exemplar — the max value observed in that
/// bucket under an active trace context (max-value-wins replacement). The
/// hot path stays lock-free: a relaxed load of the bucket's current best
/// rejects non-improving samples before the slow (mutex) replacement path.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;
  static constexpr std::size_t kReservoir = 1024;

  Histogram() {
    for (auto& best : exemplar_best_) {
      best.store(-1.0, std::memory_order_relaxed);
    }
  }

  /// Upper bounds (seconds) of each bucket, strictly increasing.
  static const std::array<double, kBuckets>& bounds();

  /// Index of the bucket `seconds` falls into.
  static std::size_t bucket_index(double seconds);

  void observe(double seconds);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Sum of observed values in seconds (nanosecond resolution).
  double sum() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  double mean() const;
  double min() const;
  double max() const;

  /// p in [0, 100]. Exact while count() <= kReservoir, else interpolated
  /// from bucket boundaries.
  double percentile(double p) const;
  /// quantile(q) == percentile(100 q); q in [0, 1]. The form SLO
  /// objectives and the Prometheus summary exposition speak.
  double quantile(double q) const { return percentile(q * 100.0); }
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }
  double p999() const { return percentile(99.9); }

  /// (upper_bound, count) for buckets with at least one sample.
  std::vector<std::pair<double, std::uint64_t>> nonzero_buckets() const;

  /// All kBuckets per-bucket counts (including zeros), index-aligned with
  /// bounds() — the raw material HistogramSnapshot captures.
  std::vector<std::uint64_t> bucket_counts() const;

  /// The retained raw-sample prefix: min(count(), kReservoir) values in
  /// observation order. Exact while the series fits the reservoir.
  std::vector<double> reservoir_values() const;

  /// Raw sum in nanoseconds (the unit the atomics accumulate in). Snapshot
  /// deltas subtract in this integer domain so windows recompose the
  /// whole-run sum without floating-point drift.
  std::uint64_t sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t min_ns() const {
    return min_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }

  /// (bucket upper bound, exemplar) for buckets holding a valid exemplar.
  std::vector<std::pair<double, Exemplar>> exemplars() const;
  /// The largest-valued exemplar across all buckets (invalid when none —
  /// i.e. the histogram was never observed under a trace context).
  Exemplar max_exemplar() const;

  void reset();

 private:
  void maybe_exemplar(std::size_t bucket, double seconds);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> min_ns_{UINT64_MAX};
  std::atomic<std::uint64_t> max_ns_{0};
  std::array<std::atomic<double>, kReservoir> reservoir_{};
  /// Best value per bucket (-1 = empty): the lock-free rejection gate.
  std::array<std::atomic<double>, kBuckets> exemplar_best_{};
  mutable std::mutex exemplar_mu_;
  std::array<Exemplar, kBuckets> exemplar_slots_{};
};

/// Process-wide named-metric registry.
///
/// Lookup registers on first use and returns a reference that stays valid for
/// the life of the process (reset() zeroes values, never destroys metrics).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// The registry the calling thread should record into. Defaults to
  /// global(); proc::ProcessScope installs a process-owned registry here
  /// when its world has per-process metrics scoping enabled, so substrate
  /// instrumentation (connectors, stores, stream, faas) lands in the
  /// simulated site doing the work instead of one process-wide blob.
  static MetricsRegistry& ambient();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Registers (or looks up) a gauge and pins its aggregation hint — how
  /// the telemetry merger combines it across processes/sites.
  Gauge& gauge(const std::string& name, GaugeAgg agg);
  Histogram& histogram(const std::string& name);

  /// Snapshots for export and tests.
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  /// Gauge values together with their aggregation hints.
  std::map<std::string, std::pair<double, GaugeAgg>> gauges_with_agg() const;
  std::vector<std::string> histogram_names() const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Machine-readable export: {"schema_version": 3,
  /// "bucket_bounds_s": [...], "counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum_s, mean_s, min_s, max_s, p50_s,
  /// p95_s, p99_s, p999_s, buckets: [[le, n], ...], exemplars: [{le,
  /// value_s, trace_id, span_id, vtime_s}, ...]}}}. v3 adds the (possibly
  /// empty) per-histogram exemplars array.
  std::string dump_json() const;

  /// Columnar export: counters, then per-histogram count/mean/p50/p95/p99/max.
  std::string dump_table() const;

  /// Zeroes every registered metric (names and references survive).
  void reset();

  /// Deep value copy of every metric at one instant, stamped with the
  /// scraper's virtual time. Defined in obs/telemetry.cpp (which owns the
  /// snapshot data model).
  RegistrySnapshot take_snapshot(double vtime_s) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Installs `registry` as the calling thread's ambient registry (nullptr
/// restores the global default) and returns the previous override — the
/// save/restore pair proc::ProcessScope uses. Plain thread_local swap;
/// callers own the registry's lifetime.
MetricsRegistry* set_ambient_registry(MetricsRegistry* registry);

}  // namespace ps::obs
