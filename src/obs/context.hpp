// Distributed trace context (W3C-traceparent-like) for cross-site stitching.
//
// A TraceContext is a 128-bit trace id plus a 64-bit span id and parent span
// id. It is small, trivially copyable, and serializable, so it rides on the
// wire inside every message that crosses a simulated process/site boundary:
// the serde-encoded FactoryDescriptor of a proxy, FaaS task records, relay
// signaling messages, PS-endpoint requests, and RPC calls. Each hop adopts
// the incoming context (ContextScope) and opens a child span (SpanScope), so
// a proxy created at site A and resolved inside a FaaS worker at site B
// records spans stitched into one causal trace.
//
// Context is tracked per thread. SpanScope is a no-op (one relaxed load, no
// allocation) while the global TraceRecorder is disabled.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>

namespace ps::obs {

struct TraceContext {
  /// 128-bit trace id (hi:lo); zero means "no active trace".
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  /// This hop's span; zero only in the invalid context.
  std::uint64_t span_id = 0;
  /// Span this hop is causally under; zero for trace roots.
  std::uint64_t parent_span_id = 0;

  bool valid() const { return (trace_hi | trace_lo) != 0; }

  /// "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx" — 32 hex digits, for exports.
  std::string trace_id_hex() const;

  bool operator==(const TraceContext&) const = default;

  auto serde_members() {
    return std::tie(trace_hi, trace_lo, span_id, parent_span_id);
  }
  auto serde_members() const {
    return std::tie(trace_hi, trace_lo, span_id, parent_span_id);
  }
};

/// The calling thread's active context (invalid when no trace is active).
TraceContext current_context();

/// A fresh root context: new 128-bit trace id, new span id, no parent.
TraceContext new_root_context();

/// A child of `parent`: same trace id, new span id, parent = parent.span_id.
TraceContext child_of(const TraceContext& parent);

// ---------------------------------------------------------------------------
// Locality: which simulated process/host/site a span executed in. The proc
// layer installs a provider at startup (obs cannot depend on proc); spans
// recorded before installation attribute to the "untracked" locality.
// ---------------------------------------------------------------------------

struct SpanLocality {
  std::string process;  // simulated process name (Perfetto tid)
  std::string host;     // fabric host
  std::string site;     // fabric site (Perfetto pid)
};

using LocalityProvider = SpanLocality (*)();

void set_locality_provider(LocalityProvider provider);
SpanLocality current_locality();

// ---------------------------------------------------------------------------
// Scopes.
// ---------------------------------------------------------------------------

/// RAII: adopts a context carried in from another process/site as the
/// calling thread's current context (no-op when `ctx` is invalid), restoring
/// the previous context on destruction. Receivers of wire messages use this
/// so their child spans stitch into the sender's trace.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext previous_;
};

/// RAII span: on construction becomes the thread's current context (a child
/// of the previous context, or a new trace root), on destruction records a
/// SpanRecord — wall + virtual start/end, locality — into the global
/// TraceRecorder. Inert while tracing is disabled.
class SpanScope {
 public:
  /// `kind` tags the recorded span with its critical-path segment
  /// ("wire-transfer", "serde", ... — see obs/critical.hpp); empty leaves
  /// classification to the analyzer's name-based fallback.
  explicit SpanScope(const std::string& name, std::string subject = {},
                     std::string kind = {});
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// This span's context — what callers embed in wire messages so remote
  /// hops become children of this span. Invalid while tracing is disabled.
  const TraceContext& context() const { return ctx_; }
  bool active() const { return active_; }

  /// Overrides the recorded locality (e.g. the relay records under its own
  /// host, not the caller's process).
  void set_locality(SpanLocality locality);

 private:
  bool active_ = false;
  bool has_locality_override_ = false;
  TraceContext ctx_;
  TraceContext previous_;
  std::string name_;
  std::string subject_;
  std::string kind_;
  SpanLocality locality_override_;
  double wall_start_ = 0.0;
  double vtime_start_ = 0.0;
};

}  // namespace ps::obs
