#include "obs/flight.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/vtime.hpp"

namespace ps::obs {

namespace {

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::size_t approx_span_bytes(const SpanRecord& span) {
  return sizeof(SpanRecord) + span.name.size() + span.subject.size() +
         span.kind.size() + span.process.size() + span.host.size() +
         span.site.size();
}

FlightRecorder::FlightRecorder() {
  if (const char* budget = std::getenv("PROXYSTORE_FLIGHT_BUDGET")) {
    const unsigned long long v = std::strtoull(budget, nullptr, 10);
    if (v > 0) budget_ = static_cast<std::size_t>(v);
  }
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

void FlightRecorder::record(const SpanRecord& span) {
  const std::size_t cost = approx_span_bytes(span);
  std::size_t dropped = 0;
  {
    std::lock_guard lock(mu_);
    ring_.push_back(span);
    ring_bytes_ += cost;
    while (ring_bytes_ > budget_ && ring_.size() > 1) {
      ring_bytes_ -= approx_span_bytes(ring_.front());
      ring_.pop_front();
      ++dropped;
    }
  }
  if (dropped > 0) dropped_.fetch_add(dropped, std::memory_order_relaxed);
}

FlightRecorder::Snapshot FlightRecorder::snapshot(std::string reason) {
  Snapshot snap;
  snap.reason = std::move(reason);
  snap.wall_s = TraceRecorder::global().wall_now();
  snap.vtime_s = sim::vnow();
  std::lock_guard lock(mu_);
  snap.spans.assign(ring_.begin(), ring_.end());
  snapshots_.push_back(snap);
  while (snapshots_.size() > kMaxSnapshots) {
    snapshots_.erase(snapshots_.begin());
  }
  return snap;
}

std::vector<FlightRecorder::Snapshot> FlightRecorder::snapshots() const {
  std::lock_guard lock(mu_);
  return snapshots_;
}

bool FlightRecorder::has_snapshot() const {
  std::lock_guard lock(mu_);
  return !snapshots_.empty();
}

FlightRecorder::Snapshot FlightRecorder::latest_or_live() const {
  {
    std::lock_guard lock(mu_);
    if (!snapshots_.empty()) return snapshots_.back();
  }
  // No anomaly recorded: capture the ring as it stands, without retaining.
  Snapshot snap;
  snap.reason = "live";
  snap.wall_s = TraceRecorder::global().wall_now();
  snap.vtime_s = sim::vnow();
  std::lock_guard lock(mu_);
  snap.spans.assign(ring_.begin(), ring_.end());
  return snap;
}

std::string FlightRecorder::dump_json(const Snapshot& snap) {
  char buf[160];
  std::string head = "{\"flight\":{\"reason\":\"";
  json_escape_into(head, snap.reason);
  std::snprintf(buf, sizeof(buf),
                "\",\"wall_s\":%.9f,\"vtime_s\":%.9f,\"span_count\":%zu},",
                snap.wall_s, snap.vtime_s, snap.spans.size());
  head += buf;
  // Splice the flight header into the standard Chrome trace document —
  // viewers ignore unknown top-level keys, so the dump stays loadable.
  const std::string trace = perfetto_trace_json(snap.spans);
  return head + trace.substr(1);
}

bool FlightRecorder::dump(const std::string& path, const Snapshot& snap) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << dump_json(snap);
  return static_cast<bool>(file);
}

bool FlightRecorder::dump(const std::string& path) const {
  return dump(path, latest_or_live());
}

std::vector<SpanRecord> FlightRecorder::recent() const {
  std::lock_guard lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::size_t FlightRecorder::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

std::size_t FlightRecorder::bytes() const {
  std::lock_guard lock(mu_);
  return ring_bytes_;
}

std::size_t FlightRecorder::budget() const {
  std::lock_guard lock(mu_);
  return budget_;
}

void FlightRecorder::set_budget(std::size_t budget_bytes) {
  std::size_t dropped = 0;
  {
    std::lock_guard lock(mu_);
    budget_ = budget_bytes == 0 ? 1 : budget_bytes;
    while (ring_bytes_ > budget_ && ring_.size() > 1) {
      ring_bytes_ -= approx_span_bytes(ring_.front());
      ring_.pop_front();
      ++dropped;
    }
  }
  if (dropped > 0) dropped_.fetch_add(dropped, std::memory_order_relaxed);
}

void FlightRecorder::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  ring_bytes_ = 0;
  snapshots_.clear();
}

// ------------------------------------------------------------- watchdog ----

LatencyWatchdog& LatencyWatchdog::global() {
  static LatencyWatchdog* watchdog = new LatencyWatchdog();  // never destroyed
  return *watchdog;
}

void LatencyWatchdog::watch(std::string metric, double threshold_s) {
  std::lock_guard lock(mu_);
  for (Watch& w : watches_) {
    if (w.metric == metric) {
      w.threshold_s = threshold_s;
      w.triggered = false;
      return;
    }
  }
  watches_.push_back(Watch{std::move(metric), threshold_s, false});
}

void LatencyWatchdog::clear() {
  std::lock_guard lock(mu_);
  watches_.clear();
}

std::size_t LatencyWatchdog::size() const {
  std::lock_guard lock(mu_);
  return watches_.size();
}

std::size_t LatencyWatchdog::check(const MetricsRegistry& registry) {
  // Snapshot the watch list, test outside the lock (find_histogram and
  // FlightRecorder::snapshot take their own locks), then latch.
  std::vector<std::pair<std::string, double>> due;
  {
    std::lock_guard lock(mu_);
    for (Watch& w : watches_) {
      if (w.triggered) continue;
      due.emplace_back(w.metric, w.threshold_s);
    }
  }
  std::size_t taken = 0;
  for (const auto& [metric, threshold_s] : due) {
    const Histogram* h = registry.find_histogram(metric);
    if (h == nullptr || h->count() == 0) continue;
    const double observed = h->max();
    if (observed <= threshold_s) continue;
    char reason[192];
    std::snprintf(reason, sizeof(reason),
                  "anomaly: %s max %.6fs > %.6fs", metric.c_str(), observed,
                  threshold_s);
    FlightRecorder::global().snapshot(reason);
    ++taken;
    std::lock_guard lock(mu_);
    for (Watch& w : watches_) {
      if (w.metric == metric) w.triggered = true;
    }
  }
  return taken;
}

std::size_t LatencyWatchdog::check() {
  return check(MetricsRegistry::global());
}

}  // namespace ps::obs
