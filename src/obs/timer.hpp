// Scoped timing into registry histograms.
//
// A Timer measures an operation in both clocks the reproduction cares about:
// the calling thread's virtual time (deterministic, what the benches report)
// and the wall clock (what real instrumentation overhead shows up in). It
// records into the histograms it was given on stop()/destruction — pass
// nullptr to skip a clock. When the global obs switch is off the timer does
// nothing beyond reading one atomic.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"
#include "sim/vtime.hpp"

namespace ps::obs {

class Timer {
 public:
  explicit Timer(Histogram* vtime_hist, Histogram* wall_hist = nullptr)
      : vtime_hist_(vtime_hist), wall_hist_(wall_hist), armed_(enabled()) {
    if (!armed_) return;
    vstart_ = sim::vnow();
    wstart_ = std::chrono::steady_clock::now();
  }

  ~Timer() {
    if (armed_ && !stopped_) stop();
  }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Records once into the configured histograms; returns the virtual-time
  /// duration in seconds (0 when instrumentation is disabled).
  double stop() {
    if (!armed_ || stopped_) return 0.0;
    stopped_ = true;
    const double velapsed = vtime_elapsed();
    if (vtime_hist_ != nullptr) vtime_hist_->observe(velapsed);
    if (wall_hist_ != nullptr) wall_hist_->observe(wall_elapsed());
    return velapsed;
  }

  double vtime_elapsed() const {
    return armed_ ? sim::vnow() - vstart_ : 0.0;
  }

  double wall_elapsed() const {
    if (!armed_) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wstart_)
        .count();
  }

 private:
  Histogram* vtime_hist_;
  Histogram* wall_hist_;
  bool armed_;
  bool stopped_ = false;
  double vstart_ = 0.0;
  std::chrono::steady_clock::time_point wstart_;
};

}  // namespace ps::obs
