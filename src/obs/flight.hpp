// Always-on flight recorder: the last N bytes of span history, snapshotted
// on anomaly.
//
// The TraceRecorder is an opt-in debugging buffer — large, cleared between
// runs, and often disabled. The FlightRecorder is the opposite: a small
// byte-budgeted ring of the most recent SpanRecords that is always fed
// while tracing is on, cheap enough to leave running for a whole bench or
// load run. When something goes wrong — an SLO breach detected by
// SloRegistry::evaluate, or a latency-threshold anomaly caught by the
// LatencyWatchdog — the ring is frozen into a named Snapshot. Snapshots
// are retained (last kMaxSnapshots) and can be written out as a
// self-contained, Perfetto-loadable Chrome trace JSON (`dump`), which is
// what `psctl flight dump` and the bench harness's breach auto-dump emit:
// CI failures ship the exact offending traces, not just a red verdict.
//
// Budget math: a SpanRecord costs sizeof(SpanRecord) plus its heap strings
// (approx_span_bytes). At the default 8 MiB budget and typical span sizes
// (~250 B with short names/subjects) the ring holds on the order of 30k
// spans — several times a full load_mixed run — so the trace behind a
// p999 exemplar is still in the ring when the breach is detected at
// collection time. Override with PROXYSTORE_FLIGHT_BUDGET (bytes).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ps::obs {

class MetricsRegistry;

/// Approximate resident cost of one record: struct plus heap strings.
std::size_t approx_span_bytes(const SpanRecord& span);

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultBudgetBytes = 8u << 20;  // 8 MiB
  static constexpr std::size_t kMaxSnapshots = 4;

  /// One frozen copy of the ring, stamped with why and when it was taken.
  struct Snapshot {
    std::string reason;
    double wall_s = 0.0;   // TraceRecorder::global().wall_now() at capture
    double vtime_s = 0.0;  // capturing thread's sim::vnow()
    std::vector<SpanRecord> spans;
  };

  /// Reads PROXYSTORE_FLIGHT_BUDGET (bytes) when set.
  FlightRecorder();

  static FlightRecorder& global();

  /// Copies `span` into the ring, evicting oldest records past the byte
  /// budget. Called by TraceRecorder::record_span for every span.
  void record(const SpanRecord& span);

  /// Freezes the current ring as a named snapshot (retaining the newest
  /// kMaxSnapshots) and returns a copy of it.
  Snapshot snapshot(std::string reason);

  std::vector<Snapshot> snapshots() const;
  bool has_snapshot() const;

  /// The latest retained snapshot, or a live "live" capture of the ring
  /// when none has been taken yet.
  Snapshot latest_or_live() const;

  /// `snap` as a self-contained Chrome trace JSON: the usual
  /// {"traceEvents": [...]} document (loadable by Perfetto / the existing
  /// re-parse test) with one extra top-level "flight" object carrying
  /// reason/wall_s/vtime_s/span_count.
  static std::string dump_json(const Snapshot& snap);

  /// Writes dump_json(snap) to `path`; false when unwritable.
  static bool dump(const std::string& path, const Snapshot& snap);

  /// dump(path, latest_or_live()).
  bool dump(const std::string& path) const;

  std::vector<SpanRecord> recent() const;
  std::size_t size() const;
  std::size_t bytes() const;
  std::size_t budget() const;
  void set_budget(std::size_t budget_bytes);
  /// Monotonic count of records evicted by the budget (never reset).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Empties the ring and drops retained snapshots (tests, multi-run
  /// tools). Drop counters stay monotonic.
  void clear();

 private:
  mutable std::mutex mu_;
  std::deque<SpanRecord> ring_;
  std::size_t ring_bytes_ = 0;
  std::size_t budget_ = kDefaultBudgetBytes;
  std::atomic<std::uint64_t> dropped_{0};
  std::vector<Snapshot> snapshots_;
};

/// Latency-threshold anomaly detector over registry histograms.
///
/// watch() registers "metric's max must stay under threshold_s"; check()
/// re-reads every watched histogram and, on the first crossing of each
/// threshold (latched, so a slow metric triggers one snapshot rather than
/// one per check), freezes the flight recorder with an
/// "anomaly: <metric> max <observed> > <threshold>" reason. The load
/// harness arms it per phase and checks after each phase completes.
class LatencyWatchdog {
 public:
  static LatencyWatchdog& global();

  void watch(std::string metric, double threshold_s);
  void clear();
  std::size_t size() const;

  /// Returns the number of snapshots taken by this call.
  std::size_t check(const MetricsRegistry& registry);
  std::size_t check();

 private:
  struct Watch {
    std::string metric;
    double threshold_s = 0.0;
    bool triggered = false;
  };

  mutable std::mutex mu_;
  std::vector<Watch> watches_;
};

}  // namespace ps::obs
