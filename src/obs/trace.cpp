#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "sim/vtime.hpp"

namespace ps::obs {

TraceRecorder::TraceRecorder() {
  if (const char* cap = std::getenv("PROXYSTORE_TRACE_CAP")) {
    const unsigned long long v = std::strtoull(cap, nullptr, 10);
    if (v > 0) capacity_ = static_cast<std::size_t>(v);
  }
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

void TraceRecorder::note_dropped_events(std::size_t n) {
  if (n == 0) return;
  dropped_events_.fetch_add(n, std::memory_order_relaxed);
  // Lazily resolved once: registry references stay valid for process life.
  static Counter& counter =
      MetricsRegistry::global().counter("trace.dropped.events");
  counter.inc(n);
}

void TraceRecorder::note_dropped_spans(std::size_t n) {
  if (n == 0) return;
  dropped_spans_.fetch_add(n, std::memory_order_relaxed);
  static Counter& counter =
      MetricsRegistry::global().counter("trace.dropped.spans");
  counter.inc(n);
}

void TraceRecorder::record(const std::string& subject,
                           const std::string& event) {
  if (!enabled()) return;
  TraceEvent e;
  e.subject = subject;
  e.name = event;
  e.wall_s = wall_now();
  e.vtime_s = sim::vnow();
  e.ctx = current_context();
  std::size_t dropped = 0;
  {
    std::lock_guard lock(mu_);
    events_.push_back(std::move(e));
    while (events_.size() > capacity_) {
      events_.pop_front();
      ++dropped;
    }
  }
  note_dropped_events(dropped);
}

void TraceRecorder::record_span(SpanRecord span) {
  if (!enabled()) return;
  // The flight recorder keeps its own (byte-budgeted) copy so a breach
  // snapshot survives even after this buffer has rolled past the span.
  FlightRecorder::global().record(span);
  std::size_t dropped = 0;
  {
    std::lock_guard lock(mu_);
    spans_.push_back(std::move(span));
    while (spans_.size() > capacity_) {
      spans_.pop_front();
      ++dropped;
    }
  }
  note_dropped_spans(dropped);
}

std::vector<TraceEvent> TraceRecorder::timeline(
    const std::string& subject) const {
  std::lock_guard lock(mu_);
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.subject == subject) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard lock(mu_);
  return {events_.begin(), events_.end()};
}

std::vector<SpanRecord> TraceRecorder::spans() const {
  std::lock_guard lock(mu_);
  return {spans_.begin(), spans_.end()};
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::size_t TraceRecorder::span_count() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
  spans_.clear();
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  std::size_t dropped_events = 0;
  std::size_t dropped_spans = 0;
  {
    std::lock_guard lock(mu_);
    capacity_ = capacity == 0 ? 1 : capacity;
    while (events_.size() > capacity_) {
      events_.pop_front();
      ++dropped_events;
    }
    while (spans_.size() > capacity_) {
      spans_.pop_front();
      ++dropped_spans;
    }
  }
  note_dropped_events(dropped_events);
  note_dropped_spans(dropped_spans);
}

std::size_t TraceRecorder::capacity() const {
  std::lock_guard lock(mu_);
  return capacity_;
}

double TraceRecorder::wall_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin_)
      .count();
}

std::string TraceRecorder::dump_json() const {
  std::lock_guard lock(mu_);
  std::string out = "[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"subject\":\"" + e.subject + "\",\"event\":\"" + e.name + "\"";
    std::snprintf(buf, sizeof(buf), ",\"wall_s\":%.9f,\"vtime_s\":%.9f}",
                  e.wall_s, e.vtime_s);
    out += buf;
  }
  out += "]";
  return out;
}

Span::Span(std::string subject, std::string name)
    : subject_(std::move(subject)), name_(std::move(name)) {
  active_ = TraceRecorder::global().enabled();
  if (active_) TraceRecorder::global().record(subject_, name_ + ".start");
}

Span::~Span() {
  if (active_) TraceRecorder::global().record(subject_, name_ + ".done");
}

}  // namespace ps::obs
