// Critical-path attribution over TraceRecorder span trees.
//
// A trace is a tree of SpanRecords stitched by (trace id, parent_span_id)
// — the same parentage Profile uses — covering a causal chain like
// store.proxy -> connector op -> endpoint/relay forward -> faas dispatch ->
// remote resolve, including async spans whose parent is the submitting
// span. CriticalPath decomposes a root span's end-to-end virtual time into
// named segments by an exact interval sweep: walking each span's children
// in vtime order, every child's (clipped, non-overlapping) window is
// attributed recursively, and the gaps between children — the span's own
// self-time — are credited to the span's segment kind. Segment sums
// therefore reconstruct the end-to-end latency exactly (modulo float
// addition), which is what lets `psctl bench check` assert that a series'
// attribution explains its p999 exemplar to within 5%.
//
// Segment taxonomy (SpanRecord.kind, with a span-name fallback here):
//   executor-queue  time queued behind the AsyncExecutor / open-loop sched
//   wire-transfer   connector ops, endpoint/relay/rpc forwarding
//   serde           value (de)serialization in the store
//   swarm-fetch     swarm chunk discovery + first-attempt chunk waves
//   swarm-repair    swarm re-requests after corrupt/missing/slow replicas
//   broker-poll     stream subscription polling
//   cache-probe     store cache lookups
//   dispatch        faas/stream dispatch fan-out
//   client          client-side time in the load fleet's root spans
//   other           anything untagged and unclassifiable
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "obs/trace.hpp"

namespace ps::obs {

/// The segment a span's self-time belongs to: its explicit kind when set,
/// else a name-prefix classification, else "other".
std::string segment_kind(const SpanRecord& span);

struct SegmentShare {
  std::string segment;
  double vtime_s = 0.0;    // self-time credited to this segment
  std::uint64_t spans = 0; // spans whose self-time landed here
};

/// One decomposed root: where its end-to-end window went.
struct CriticalPathReport {
  std::string trace_id;    // 32 hex digits
  std::uint64_t root_span_id = 0;
  std::string root_name;
  double vtime_s = 0.0;      // root's end-to-end virtual window
  double wall_s = 0.0;       // root's wall window (context, not decomposed)
  double attributed_s = 0.0; // sum over segments; == vtime_s by construction
  std::size_t span_count = 0;
  std::vector<SegmentShare> segments;  // largest share first
};

class CriticalPath {
 public:
  static CriticalPath from_spans(std::vector<SpanRecord> spans);
  static CriticalPath from_recorder(const TraceRecorder& recorder);

  /// One report per trace root, slowest (largest vtime window) first.
  const std::vector<CriticalPathReport>& reports() const { return reports_; }
  std::vector<CriticalPathReport> top(std::size_t n) const;

  /// Decomposes the subtree rooted at one specific span. When
  /// `require_root` the span must be a trace root (parent_span_id == 0) —
  /// the exemplar-attribution path uses this so the decomposed window is
  /// the whole measured sample, not an inner hop. nullopt when the span is
  /// not held (e.g. already rolled out of the recorder).
  std::optional<CriticalPathReport> for_span(std::uint64_t trace_hi,
                                             std::uint64_t trace_lo,
                                             std::uint64_t span_id,
                                             bool require_root = false) const;

  /// Columnar rendering for `psctl trace critical`.
  static std::string table(const std::vector<CriticalPathReport>& reports);
  /// {"critical_paths":[{trace_id, root, ..., segments:[...]}, ...]}.
  static std::string json(const std::vector<CriticalPathReport>& reports);

 private:
  using SpanKey = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;

  CriticalPathReport decompose(std::size_t root_idx) const;
  void attribute(std::size_t idx, double lo, double hi,
                 std::map<std::string, SegmentShare>& acc,
                 std::size_t& count) const;

  std::vector<SpanRecord> spans_;
  std::map<SpanKey, std::size_t> by_id_;          // (hi, lo, span) -> index
  std::map<SpanKey, std::vector<std::size_t>> children_;  // key by parent
  std::vector<CriticalPathReport> reports_;
};

}  // namespace ps::obs
